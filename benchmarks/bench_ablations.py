"""Ablation benches for the design choices DESIGN.md calls out.

- double buffering (max vs serialized stage delays);
- convolutional (halo) reuse: overlapping vs disjoint activation tiles;
- the DSE's lower-bound pruning (rate with vs without pruning).
"""

import time

from repro.dataflow.library import kc_partitioned, x_partitioned
from repro.dse import explore
from repro.dse.space import DesignSpace, kc_partitioned_variants
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.area import AreaModel
from repro.model.zoo import build
from repro.util.text_table import format_table


def test_ablation_double_buffering(emit_result):
    layer = build("vgg16").layer("CONV5")
    rows = []
    for bandwidth in (4, 16, 64):
        buffered = analyze_layer(
            layer, x_partitioned(), Accelerator(num_pes=64, noc=NoC(bandwidth=bandwidth))
        )
        serial = analyze_layer(
            layer,
            x_partitioned(),
            Accelerator(num_pes=64, noc=NoC(bandwidth=bandwidth), double_buffered=False),
        )
        rows.append(
            [
                bandwidth,
                f"{buffered.runtime:.4e}",
                f"{serial.runtime:.4e}",
                f"{serial.runtime / buffered.runtime:.2f}x",
                buffered.l1_buffer_req,
                serial.l1_buffer_req,
            ]
        )
        assert serial.runtime > buffered.runtime
    emit_result(
        "ablation_double_buffering",
        format_table(
            ["NoC BW", "double-buffered cycles", "serialized cycles",
             "slowdown", "L1 req (2x)", "L1 req (1x)"],
            rows,
            title="Ablation — double buffering (Figure 8's max-vs-sum rule)",
        ),
    )


def test_ablation_halo_reuse(emit_result):
    """Bigger overlapping tiles cut input refetch (convolutional reuse)."""
    layer = build("vgg16").layer("CONV5")
    accelerator = Accelerator(num_pes=64)
    rows = []
    reads = []
    for y_tile, x_tile in ((1, 1), (4, 4), (8, 8)):
        flow = kc_partitioned(c_tile=16, y_tile=y_tile, x_tile=x_tile)
        report = analyze_layer(layer, flow, accelerator)
        reads.append(report.l2_reads["I"])
        rows.append(
            [
                f"y{y_tile}/x{x_tile}",
                f"{report.l2_reads['I']:.4e}",
                f"{report.reuse_factors['I']:.1f}",
                report.l1_buffer_req,
            ]
        )
    emit_result(
        "ablation_halo_reuse",
        format_table(
            ["activation tile", "L2 input reads", "input reuse", "L1 req (B)"],
            rows,
            title="Ablation — convolutional (halo) reuse vs tile size (KC-P)",
        ),
    )
    assert reads[-1] < reads[0]


def test_ablation_dse_pruning(emit_result):
    """Pruning skips invalid subspaces without changing the valid set."""
    layer = build("vgg16").layer("CONV13")
    space = DesignSpace(
        pe_counts=list(range(64, 2049, 64)),
        noc_bandwidths=[4, 16, 64],
        dataflow_variants=kc_partitioned_variants(c_tiles=(16,), spatial_tiles=((1, 1),)),
    )
    pruned_run = explore(layer, space, area_budget=16.0, power_budget=450.0)

    # A "no pruning" reference: infinite budget, then filter a posteriori.
    start = time.perf_counter()
    unpruned_run = explore(layer, space, area_budget=1e12, power_budget=1e12)
    unpruned_time = time.perf_counter() - start
    area_model = AreaModel()
    filtered = [
        p for p in unpruned_run.points if p.area <= 16.0 and p.power <= 450.0
    ]
    assert len(filtered) == pruned_run.statistics.valid
    assert pruned_run.statistics.pruned > 0
    emit_result(
        "ablation_dse_pruning",
        format_table(
            ["mode", "explored", "evaluated", "valid", "time (s)"],
            [
                [
                    "pruned",
                    pruned_run.statistics.explored,
                    pruned_run.statistics.evaluated,
                    pruned_run.statistics.valid,
                    f"{pruned_run.statistics.elapsed_seconds:.2f}",
                ],
                [
                    "exhaustive",
                    unpruned_run.statistics.explored,
                    unpruned_run.statistics.evaluated,
                    len(filtered),
                    f"{unpruned_time:.2f}",
                ],
            ],
            title="Ablation — DSE lower-bound pruning soundness and speed",
        ),
    )


def test_ablation_kernel_benchmark(benchmark):
    layer = build("vgg16").layer("CONV5")
    accelerator = Accelerator(num_pes=64, double_buffered=False)
    benchmark(analyze_layer, layer, x_partitioned(), accelerator)
