"""Equivalence-pruning benchmark: Figure-13 sweep, enriched mapping axis.

Runs the Figure-13 KC-P design-space exploration twice over a mapping
axis deliberately enriched with symmetric twins and writes
``BENCH_equiv.json``:

- every stock KC-P variant, plus
- its **transposed twin** (R<->S, Y<->X, Y'<->X' renamed via
  :func:`repro.equiv.transpose_dataflow`), plus
- a **redundant spelling** with the naturally-inert single-chunk
  ``TemporalMap(Sz(R)) R`` directive removed (binding infers an
  identical whole-extent iterator, so the mapping is unchanged).

The plain sweep evaluates all of them; the ``equiv_prune=True`` sweep
canonicalizes each variant once, evaluates one representative per
equivalence class, and replays the representative's outcome to the
twins. The gate (``check_regression.py --equiv``) checks two things:

1. **Soundness** — the pruned sweep's surviving points and all three
   optima are bit-identical to the plain sweep's.
2. **Effectiveness** — ``skip_fraction`` (cost-model calls avoided /
   baseline calls) is at least 25% on this sweep.

Both figures are deterministic counts (no wall-clock in the gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_equiv.py \
        [--out BENCH_equiv.json] [--max-pes 256] [--step 8]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import MapDirective
from repro.tensors import dims as D
from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
)
from repro.equiv import transpose_dataflow
from repro.model.zoo import build

AREA_BUDGET = 16.0
POWER_BUDGET = 450.0


def enriched_variants() -> list:
    """Stock KC-P variants plus transposed twins and redundant spellings."""
    base = kc_partitioned_variants()
    variants = list(base)
    for label, flow in base:
        variants.append((f"{label}~T", transpose_dataflow(flow)))
        # Redundant spelling: drop the inert single-chunk R temporal map.
        slimmed = tuple(
            d
            for d in flow.directives
            if not (isinstance(d, MapDirective) and not d.spatial and d.dim == D.R)
        )
        if len(slimmed) < len(flow.directives):
            variants.append(
                (
                    f"{label}~red",
                    Dataflow(name=f"{flow.name}~red", directives=slimmed),
                )
            )
    return variants


def _point_dict(point) -> "dict | None":
    if point is None:
        return None
    return {
        "tile": point.tile_label,
        "num_pes": point.num_pes,
        "bandwidth": point.noc_bandwidth,
        "throughput": point.throughput,
        "energy": point.energy,
        "edp": point.edp,
    }


def run_comparison(max_pes: int, step: int) -> dict:
    layer = build("vgg16").layer("CONV11")
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=max_pes, step=step),
        noc_bandwidths=default_bandwidths(128),
        dataflow_variants=enriched_variants(),
    )

    start = time.perf_counter()
    plain = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False,
    )
    baseline_wall = time.perf_counter() - start

    start = time.perf_counter()
    pruned = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False, equiv_prune=True,
    )
    pruned_wall = time.perf_counter() - start

    bit_identical = (
        pruned.points == plain.points
        and pruned.throughput_optimal == plain.throughput_optimal
        and pruned.energy_optimal == plain.energy_optimal
        and pruned.edp_optimal == plain.edp_optimal
    )
    baseline_calls = plain.statistics.cost_model_calls
    avoided = baseline_calls - pruned.statistics.cost_model_calls
    return {
        "sweep": f"fig13 KC-P CONV11 enriched mapping axis "
        f"({max_pes} PEs max, step {step}, {len(space.dataflow_variants)} variants)",
        "space_size": space.size,
        "bit_identical": bit_identical,
        "parity_violations": 0 if bit_identical else 1,
        "baseline_cost_model_calls": baseline_calls,
        "pruned_cost_model_calls": pruned.statistics.cost_model_calls,
        "equiv_replays": pruned.statistics.equiv_replays,
        "calls_avoided": avoided,
        "skip_fraction": avoided / baseline_calls if baseline_calls else 0.0,
        "baseline_wall_seconds": baseline_wall,
        "pruned_wall_seconds": pruned_wall,
        "speedup": baseline_wall / pruned_wall if pruned_wall else 0.0,
        "optima": {
            "throughput": _point_dict(pruned.throughput_optimal),
            "energy": _point_dict(pruned.energy_optimal),
            "edp": _point_dict(pruned.edp_optimal),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_equiv.json"))
    parser.add_argument("--max-pes", type=int, default=256)
    parser.add_argument("--step", type=int, default=8)
    args = parser.parse_args(argv)

    report = run_comparison(args.max_pes, args.step)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"{report['sweep']}: bit_identical={report['bit_identical']}, "
        f"{report['calls_avoided']}/{report['baseline_cost_model_calls']} "
        f"cost-model calls avoided ({report['skip_fraction']:.1%}), "
        f"{report['equiv_replays']} outcomes replayed from class "
        f"representatives, {report['baseline_wall_seconds']:.2f}s -> "
        f"{report['pruned_wall_seconds']:.2f}s"
    )
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
