"""Capacity-pruning benchmark: Figure-13 sweep, two ways.

Runs the Figure-13 KC-P design-space exploration twice per budget
setting and writes ``BENCH_capacity.json``:

1. **Soundness** — at the paper's default area/power budget, a sweep
   with ``capacity_prune=True`` must return the identical point set and
   bit-identical optima: the screen replicates the explorer's own
   requirement-sized budget test, so it can only pre-empt rejections
   the fold step would make anyway.
2. **Effectiveness** — under a tightened area budget (a
   capacity-constrained accelerator), many candidates' requirement-
   sized designs provably bust the budget; the report records how many
   cost-model calls the static occupancy bounds avoided versus the
   unpruned sweep at the same budget.

Both figures are deterministic counts (no wall-clock in the gate), so
``check_regression.py --capacity`` gates on them directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_capacity.py \
        [--out BENCH_capacity.json] [--max-pes 256] [--step 8]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
)
from repro.model.zoo import build

AREA_BUDGET = 16.0
POWER_BUDGET = 450.0
#: The tightened budget for the effectiveness pair: small enough that a
#: large fraction of requirement-sized designs provably bust it, large
#: enough that the sweep still has a non-trivial feasible region.
CAPPED_AREA_BUDGET = 4.0


def _point_dict(point) -> "dict | None":
    if point is None:
        return None
    return {
        "tile": point.tile_label,
        "num_pes": point.num_pes,
        "bandwidth": point.noc_bandwidth,
        "throughput": point.throughput,
        "energy": point.energy,
        "edp": point.edp,
    }


def run_comparison(max_pes: int, step: int) -> dict:
    layer = build("vgg16").layer("CONV11")
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=max_pes, step=step),
        noc_bandwidths=default_bandwidths(128),
        dataflow_variants=kc_partitioned_variants(),
    )

    # Soundness pair: default budgets, identical points and optima.
    plain = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False,
    )
    screened = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False, capacity_prune=True,
    )
    bit_identical = (
        screened.points == plain.points
        and screened.throughput_optimal == plain.throughput_optimal
        and screened.energy_optimal == plain.energy_optimal
        and screened.edp_optimal == plain.edp_optimal
    )

    # Effectiveness pair: capacity-constrained budget, over-budget
    # candidates screened before their cost-model call.
    start = time.perf_counter()
    baseline = explore(
        layer, space, area_budget=CAPPED_AREA_BUDGET,
        power_budget=POWER_BUDGET, cache=False,
    )
    baseline_wall = time.perf_counter() - start

    start = time.perf_counter()
    pruned = explore(
        layer, space, area_budget=CAPPED_AREA_BUDGET,
        power_budget=POWER_BUDGET, cache=False, capacity_prune=True,
    )
    pruned_wall = time.perf_counter() - start

    capped_identical = (
        pruned.points == baseline.points
        and pruned.throughput_optimal == baseline.throughput_optimal
        and pruned.energy_optimal == baseline.energy_optimal
        and pruned.edp_optimal == baseline.edp_optimal
    )
    baseline_calls = baseline.statistics.cost_model_calls
    avoided = baseline_calls - pruned.statistics.cost_model_calls
    return {
        "sweep": f"fig13 KC-P CONV11 ({max_pes} PEs max, step {step})",
        "space_size": space.size,
        "bit_identical": bit_identical and capped_identical,
        "capped_area_budget": CAPPED_AREA_BUDGET,
        "baseline_cost_model_calls": baseline_calls,
        "pruned_cost_model_calls": pruned.statistics.cost_model_calls,
        "capacity_rejects": pruned.statistics.capacity_rejects,
        "calls_avoided": avoided,
        "skip_fraction": avoided / baseline_calls if baseline_calls else 0.0,
        "baseline_wall_seconds": baseline_wall,
        "pruned_wall_seconds": pruned_wall,
        "speedup": baseline_wall / pruned_wall if pruned_wall else 0.0,
        "optima": {
            "throughput": _point_dict(screened.throughput_optimal),
            "energy": _point_dict(screened.energy_optimal),
            "edp": _point_dict(screened.edp_optimal),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_capacity.json"))
    parser.add_argument("--max-pes", type=int, default=256)
    parser.add_argument("--step", type=int, default=8)
    args = parser.parse_args(argv)

    report = run_comparison(args.max_pes, args.step)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"{report['sweep']}: bit_identical={report['bit_identical']}, "
        f"{report['calls_avoided']}/{report['baseline_cost_model_calls']} "
        f"cost-model calls avoided ({report['skip_fraction']:.1%}) at "
        f"area budget {report['capped_area_budget']}, "
        f"{report['baseline_wall_seconds']:.2f}s -> "
        f"{report['pruned_wall_seconds']:.2f}s"
    )
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
