"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
prints the rows/series the paper reports and also writes them under
``results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit(name: str, text: str) -> None:
    """Print an experiment table and persist it to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def emit_result():
    return emit


@pytest.hookimpl(trylast=True)
def pytest_collection_modifyitems(config, items):
    """Keep the experiment (table-regenerating) tests under --benchmark-only.

    pytest-benchmark skips tests without the ``benchmark`` fixture when
    ``--benchmark-only`` is active; in this suite those tests *are* the
    benchmark payload (they regenerate the paper's tables and figures),
    so strip that skip marker again for items in this directory.
    """
    if not config.getoption("benchmark_only", False):
        return
    for item in items:
        item.own_markers = [
            marker
            for marker in item.own_markers
            if not (
                marker.name == "skip"
                and "--benchmark-only" in str(marker.kwargs.get("reason", ""))
            )
        ]
