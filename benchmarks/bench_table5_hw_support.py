"""Table 5: the impact of multicast, reduction, bandwidth, and buffers.

Fixed 56-PE KC-P design points on VGG16 CONV2 (the paper's setting):
a reference design, a bandwidth-starved one, one without spatial
multicast hardware, and one without spatial reduction hardware. The
paper's shape: less bandwidth costs throughput at equal energy; missing
multicast/reduction support costs ~1.4-1.5x energy.
"""

import pytest

from repro.dataflow.library import kc_partitioned
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.zoo import build
from repro.util.text_table import format_table

#: KC-P with 8-wide clusters so 56 PEs form 7 clusters (K spatial across
#: clusters -> input multicast exists for the 'no multicast' ablation).
FLOW = kc_partitioned(c_tile=8)


def design_points():
    return [
        ("Reference", Accelerator(num_pes=56, noc=NoC(bandwidth=40))),
        ("Small bandwidth", Accelerator(num_pes=56, noc=NoC(bandwidth=2))),
        (
            "No multicast",
            Accelerator(num_pes=56, noc=NoC(bandwidth=40, multicast=False)),
        ),
        (
            "No sp. reduction",
            Accelerator(num_pes=56, noc=NoC(bandwidth=40), spatial_reduction=False),
        ),
    ]


@pytest.fixture(scope="module")
def reports():
    layer = build("vgg16").layer("CONV2")
    return {
        name: analyze_layer(layer, kc_partitioned(c_tile=8), accelerator)
        for name, accelerator in design_points()
    }


def test_table5(reports, emit_result):
    rows = []
    for (name, accelerator) in design_points():
        report = reports[name]
        rows.append(
            [
                name,
                accelerator.num_pes,
                accelerator.noc.bandwidth,
                "yes" if accelerator.noc.multicast else "no",
                "yes" if accelerator.spatial_reduction else "no",
                f"{report.throughput:.2f}",
                f"{report.energy_total:.4e}",
                report.l1_buffer_req,
            ]
        )
    emit_result(
        "table5_hw_support",
        format_table(
            [
                "design point", "PEs", "BW (pt/cyc)", "multicast",
                "sp. reduction", "MAC/cycle", "energy (xMAC)", "L1 (B)",
            ],
            rows,
            title="Table 5 — hardware reuse-support ablations (KC-P, VGG16 CONV2, 56 PEs)",
        ),
    )


def test_table5_shape_claims(reports):
    reference = reports["Reference"]

    # Less bandwidth: throughput drops, energy essentially unchanged.
    starved = reports["Small bandwidth"]
    assert starved.throughput < reference.throughput
    assert starved.energy_total == pytest.approx(reference.energy_total, rel=0.01)

    # No multicast: energy rises (duplicate fetches).
    no_multicast = reports["No multicast"]
    assert no_multicast.energy_total > reference.energy_total * 1.05

    # No spatial reduction: energy rises (per-PE partial-sum commits).
    no_reduction = reports["No sp. reduction"]
    assert no_reduction.energy_total > reference.energy_total * 1.02

    # The reference point dominates both ablations on energy.
    assert reference.energy_total == min(
        r.energy_total for r in reports.values()
    )


def test_table5_kernel_benchmark(benchmark):
    layer = build("vgg16").layer("CONV2")
    accelerator = Accelerator(num_pes=56, noc=NoC(bandwidth=40))
    benchmark(analyze_layer, layer, kc_partitioned(c_tile=8), accelerator)
