"""Auto-tuner benchmark (the paper's Section 7 future work, implemented).

Tunes representative layers of each operator class and reports the
winner versus the best Table 3 dataflow, plus the evaluation rate of
the cost model in the tuning loop (the paper's headline is 0.17M
designs/second for the C++ DSE; this records the Python equivalent).
"""

import time

from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator
from repro.model.zoo import build
from repro.tuner import enumerate_candidates, tune_layer
from repro.util.text_table import format_table

ACCELERATOR = Accelerator(num_pes=256)


def workloads():
    return [
        ("vgg16/CONV2", build("vgg16").layer("CONV2")),
        ("vgg16/CONV11", build("vgg16").layer("CONV11")),
        ("mobilenet_v2/BN2_1_dw", build("mobilenet_v2").layer("BN2_1_dw")),
        ("mobilenet_v2/BN2_1_expand", build("mobilenet_v2").layer("BN2_1_expand")),
    ]


def test_autotuner_vs_table3(emit_result):
    rows = []
    for name, layer in workloads():
        start = time.perf_counter()
        result = tune_layer(layer, ACCELERATOR, objective="runtime")
        elapsed = time.perf_counter() - start
        baseline_name, baseline = min(
            (
                (flow_name, analyze_layer(layer, flow, ACCELERATOR))
                for flow_name, flow in table3_dataflows().items()
            ),
            key=lambda pair: pair[1].runtime,
        )
        speedup = baseline.runtime / result.best_report.runtime
        rows.append(
            [
                name,
                result.best.spec.name,
                f"{result.best_report.runtime:.4e}",
                f"{baseline_name}: {baseline.runtime:.4e}",
                f"{speedup:.2f}x",
                f"{result.evaluated / elapsed:,.0f}/s",
            ]
        )
        # The tuner's template space contains the Table 3 strategies, so
        # it must never lose to them meaningfully.
        assert result.best_report.runtime <= baseline.runtime * 1.05
    emit_result(
        "autotuner",
        format_table(
            ["layer", "tuned dataflow", "tuned cycles", "best Table 3", "speedup", "eval rate"],
            rows,
            title="Auto-tuner (Section 7 future work) vs the Table 3 dataflows",
        ),
    )


def test_cost_model_evaluation_rate(benchmark, emit_result):
    """How many dataflow evaluations per second the model sustains."""
    layer = build("vgg16").layer("CONV11")
    specs = list(
        enumerate_candidates(
            c_tiles=(1, 16), k_tiles=(1,), plane_tiles=(1,), cluster_sizes=(8,)
        )
    )

    def evaluate_all():
        return tune_layer(layer, ACCELERATOR, candidates=specs)

    result = benchmark(evaluate_all)
    assert result.evaluated > 0
