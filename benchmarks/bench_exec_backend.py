"""Micro-benchmarks for the batch-evaluation backend (:mod:`repro.exec`).

Three timed kernels for the CI regression gate: the serial cold path
(pure cost-model throughput), the warm memoization path (cache-lookup
throughput), and the cache-key construction itself. A fourth
pure-Python calibration spin lets ``check_regression.py`` normalize
away machine-speed differences between the baseline host and the CI
runner.
"""

import pytest

from repro.dataflow.library import kc_partitioned, yr_partitioned
from repro.exec import AnalysisCache, EvalPoint, cache_key, evaluate_batch
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.zoo import build
from repro.util.text_table import format_table


@pytest.fixture(scope="module")
def points():
    layer = build("vgg16").layer("CONV11")
    flows = [kc_partitioned(c_tile=16), yr_partitioned()]
    return [
        EvalPoint(layer, flow, Accelerator(num_pes=pes, noc=NoC(bandwidth=bw)))
        for flow in flows
        for pes in (64, 128, 256, 512)
        for bw in (8, 16, 32, 64)
    ]


def test_bench_serial_cold(benchmark, points):
    """Uncached serial evaluation: the pre-backend sweep behavior."""
    result = benchmark(evaluate_batch, points, executor="serial", cache=False)
    assert result.stats.evaluated == len(points)


def test_bench_cache_warm(benchmark, points):
    """Fully warm memoized evaluation: the tuner-restart fast path."""
    cache = AnalysisCache()
    evaluate_batch(points, cache=cache)

    result = benchmark(evaluate_batch, points, cache=cache)
    assert result.stats.cache_hits == len(points)


def test_bench_cache_key(benchmark, points):
    """Content-addressed key construction (paid once per novel point)."""
    point = points[0]
    key = benchmark(
        cache_key, point.layer, point.dataflow, point.accelerator, point.energy_model
    )
    assert len(key) == 64


def test_bench_calibration(benchmark):
    """Pure-Python spin used to normalize cross-machine regressions."""
    def spin():
        total = 0
        for i in range(200_000):
            total += i * i
        return total

    assert benchmark(spin) > 0


def test_backend_throughput_table(points, emit_result):
    """Human-readable summary of the cold-vs-warm throughput gap."""
    import time

    start = time.perf_counter()
    cold = evaluate_batch(points, executor="serial", cache=False)
    cold_seconds = time.perf_counter() - start

    cache = AnalysisCache()
    evaluate_batch(points, cache=cache)
    start = time.perf_counter()
    warm = evaluate_batch(points, cache=cache)
    warm_seconds = time.perf_counter() - start

    for a, b in zip(cold, warm):
        assert a.report == b.report
    rows = [
        [
            "serial cold", len(points), cold.stats.evaluated,
            f"{cold_seconds * 1e3:.1f}", f"{len(points) / cold_seconds:,.0f}",
        ],
        [
            "cache warm", len(points), warm.stats.cache_hits,
            f"{warm_seconds * 1e3:.1f}", f"{len(points) / warm_seconds:,.0f}",
        ],
    ]
    emit_result(
        "exec_backend_throughput",
        format_table(
            ["path", "points", "computed/hits", "time (ms)", "points/s"],
            rows,
            title="Batch-evaluation backend — cold vs warm throughput",
        ),
    )
