"""Figure 11: reuse factors and NoC bandwidth requirements per operator.

Four representative operators (the paper's picks, with MobileNetV2's
depthwise standing in for ResNeXt's — see EXPERIMENTS.md), five
dataflows, 256 PEs: activation and filter reuse factors (log scale in
the paper), the algorithmic maximum ("A" bars), and the NoC bandwidth
each dataflow needs to stay compute-bound.
"""

import pytest

from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator
from repro.model.zoo import build
from repro.util.text_table import format_table

ACCELERATOR = Accelerator(num_pes=256)


def operators():
    return [
        ("early layer", build("resnet50").layer("CONV1")),
        ("late layer", build("vgg16").layer("CONV13")),
        ("depth-wise", build("mobilenet_v2").layer("BN4_1_dw")),
        ("point-wise", build("mobilenet_v2").layer("BN2_1_expand")),
    ]


@pytest.fixture(scope="module")
def reports():
    table = {}
    for op_name, layer in operators():
        for flow_name, flow in table3_dataflows().items():
            table[(op_name, flow_name)] = analyze_layer(layer, flow, ACCELERATOR)
    return table


def test_fig11a_activation_reuse(reports, emit_result):
    rows = []
    for op_name, layer in operators():
        for flow_name in table3_dataflows():
            report = reports[(op_name, flow_name)]
            rows.append(
                [op_name, flow_name, f"{report.reuse_factors['I']:.1f}"]
            )
        rows.append(
            [op_name, "A (max)", f"{report.max_reuse_factors['I']:.1f}"]
        )
    emit_result(
        "fig11a_activation_reuse",
        format_table(
            ["operator", "dataflow", "activation reuse factor"],
            rows,
            title="Figure 11(a) — activation reuse factors (paper plots log scale)",
        ),
    )


def test_fig11b_filter_reuse(reports, emit_result):
    rows = []
    for op_name, layer in operators():
        for flow_name in table3_dataflows():
            report = reports[(op_name, flow_name)]
            if "W" not in report.reuse_factors:
                continue
            rows.append([op_name, flow_name, f"{report.reuse_factors['W']:.1f}"])
        rows.append([op_name, "A (max)", f"{report.max_reuse_factors['W']:.1f}"])
    emit_result(
        "fig11b_filter_reuse",
        format_table(
            ["operator", "dataflow", "filter reuse factor"],
            rows,
            title="Figure 11(b) — filter reuse factors (paper plots log scale)",
        ),
    )


def test_fig11c_noc_bandwidth_requirements(reports, emit_result):
    rows = []
    for op_name, _layer in operators():
        for flow_name in table3_dataflows():
            report = reports[(op_name, flow_name)]
            rows.append([op_name, flow_name, f"{report.noc_bw_req_gbps:.1f}"])
    emit_result(
        "fig11c_noc_bandwidth",
        format_table(
            ["operator", "dataflow", "required bandwidth (GB/s)"],
            rows,
            title="Figure 11(c) — NoC bandwidth requirements, 256 PEs",
        ),
    )


def test_fig11_shape_claims(reports):
    flows = list(table3_dataflows())

    # Reuse never exceeds the algorithmic maximum.
    for key, report in reports.items():
        for tensor, factor in report.reuse_factors.items():
            assert factor <= report.max_reuse_factors[tensor] * 1.001

    # YR-P exploits more activation reuse than KC-P on the early layer
    # (the basis of its early-layer energy win, Section 5.1).
    assert (
        reports[("early layer", "YR-P")].reuse_factors["I"]
        > reports[("early layer", "KC-P")].reuse_factors["I"]
    )

    # On the late layer YR-P's and KC-P's reuse factors are of the same
    # order ("almost similar" in the paper's words).
    late_ratio = (
        reports[("late layer", "YR-P")].reuse_factors["I"]
        / reports[("late layer", "KC-P")].reuse_factors["I"]
    )
    assert 0.5 < late_ratio < 2.0

    # Point-wise convolution kills convolutional reuse: YX-P needs more
    # bandwidth there than on the late CONV2D layer.
    assert (
        reports[("point-wise", "YX-P")].noc_bw_req_gbps
        > reports[("late layer", "YX-P")].noc_bw_req_gbps
    )


def test_fig11_kernel_benchmark(benchmark):
    layer = build("vgg16").layer("CONV13")
    flow = table3_dataflows()["YR-P"]
    benchmark(analyze_layer, layer, flow, ACCELERATOR)
