"""Figure 10: runtime and energy of the five dataflows across five DNNs.

Reproduces both the per-model bars (Figure 10 a-e) and the per-operator
averages with the adaptive dataflow (Figure 10 f), including the
paper's headline: adaptive selection buys roughly 37% runtime and 10%
energy on average.
"""

from collections import defaultdict

import pytest

from repro.adaptive import adaptive_analysis
from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_network
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.taxonomy import classify_layer
from repro.model.zoo import build
from repro.util.text_table import format_table

MODELS = ["resnet50", "vgg16", "resnext50", "mobilenet_v2", "unet"]

#: 256 PEs and 32 GB/s NoC, as stated in the Figure 10 caption. The
#: paper quotes NoC widths in data points per cycle (Table 5), so
#: 32 GB/s at 8-bit activations is 32 points/cycle at 1 GHz.
ACCELERATOR = Accelerator(num_pes=256, noc=NoC(bandwidth=32))


@pytest.fixture(scope="module")
def sweep():
    """All (model, dataflow) network analyses plus adaptive selections."""
    dataflows = table3_dataflows()
    results = {}
    adaptive = {}
    for model_name in MODELS:
        network = build(model_name)
        for flow_name, flow in dataflows.items():
            results[(model_name, flow_name)] = analyze_network(
                network, flow, ACCELERATOR
            )
        adaptive[model_name] = adaptive_analysis(
            network, dataflows, ACCELERATOR, metric="runtime"
        )
    return results, adaptive


def test_fig10_per_model_runtime_and_energy(sweep, emit_result):
    results, adaptive = sweep
    rows = []
    for model_name in MODELS:
        for flow_name in table3_dataflows():
            result = results[(model_name, flow_name)]
            rows.append(
                [model_name, flow_name, f"{result.runtime:.4e}", f"{result.energy_total:.4e}"]
            )
        rows.append(
            [
                model_name,
                "Adaptive",
                f"{adaptive[model_name].runtime:.4e}",
                f"{adaptive[model_name].energy_total:.4e}",
            ]
        )
    emit_result(
        "fig10_dataflow_comparison",
        format_table(
            ["model", "dataflow", "runtime (cycles)", "energy (xMAC)"],
            rows,
            title="Figure 10(a-e) — five dataflows x five models, 256 PEs / 32 GB/s",
        ),
    )


def test_fig10f_operator_class_averages(sweep, emit_result):
    """Figure 10(f): per-operator-class average runtime/energy."""
    results, _ = sweep
    by_class = defaultdict(lambda: defaultdict(lambda: [0.0, 0.0]))
    for model_name in MODELS:
        network = build(model_name)
        for flow_name in table3_dataflows():
            result = results[(model_name, flow_name)]
            for report in result.layer_reports:
                cls = classify_layer(network.layer(report.layer_name)).value
                accumulator = by_class[cls][flow_name]
                accumulator[0] += report.runtime
                accumulator[1] += report.energy_total
    rows = []
    for cls, flows in sorted(by_class.items()):
        for flow_name, (runtime, energy) in sorted(flows.items()):
            rows.append([cls, flow_name, f"{runtime:.4e}", f"{energy:.4e}"])
    emit_result(
        "fig10f_operator_classes",
        format_table(
            ["operator class", "dataflow", "total runtime", "total energy"],
            rows,
            title="Figure 10(f) — per-operator-class totals across all five models",
        ),
    )


def test_fig10_shape_claims(sweep):
    """The qualitative claims the paper draws from Figure 10."""
    results, adaptive = sweep
    flows = list(table3_dataflows())

    # KC-P has the best average runtime across models.
    total_runtime = {
        f: sum(results[(m, f)].runtime for m in MODELS) for f in flows
    }
    assert min(total_runtime, key=total_runtime.get) == "KC-P"

    # Section 5.1: KC-P's energy efficiency on VGG16 is worse than
    # YR-P's (the row-stationary early-layer reuse win). The two
    # stationary dataflows (X-P, YR-P) lead the energy ranking.
    vgg_energy = {f: results[("vgg16", f)].energy_total for f in flows}
    assert vgg_energy["YR-P"] < vgg_energy["KC-P"]
    ranked = sorted(vgg_energy, key=vgg_energy.get)
    assert set(ranked[:2]) == {"X-P", "YR-P"}

    # UNet's wide activations favor YX-P's 2-D activation parallelism:
    # among all models, YX-P comes closest to (the overall winner) KC-P
    # on UNet. (The paper's outright YX-P win on UNet does not fully
    # reproduce — see EXPERIMENTS.md — but the relative preference does.)
    yx_over_kc = {
        m: results[(m, "YX-P")].runtime / results[(m, "KC-P")].runtime
        for m in MODELS
    }
    assert min(yx_over_kc, key=yx_over_kc.get) == "unet"
    # And YX-P is UNet's best activation-parallel (non-channel) dataflow.
    assert results[("unet", "YX-P")].runtime < results[("unet", "X-P")].runtime
    assert results[("unet", "YX-P")].runtime < results[("unet", "C-P")].runtime

    # Adaptive selection cuts runtime versus the best single dataflow
    # (paper: ~37% on the per-operator averages). The gain is largest on
    # operator-diverse networks like MobileNetV2.
    best_single = sum(min(results[(m, f)].runtime for f in flows) for m in MODELS)
    adaptive_total = sum(adaptive[m].runtime for m in MODELS)
    best_flow_total = min(total_runtime.values())
    assert adaptive_total <= best_single * 1.0001
    assert 1 - adaptive_total / best_flow_total > 0.05
    mobilenet_best = min(results[("mobilenet_v2", f)].runtime for f in flows)
    assert 1 - adaptive["mobilenet_v2"].runtime / mobilenet_best > 0.1


def test_fig10_throughput_benchmark(benchmark):
    """Timed kernel: a full VGG16 sweep under one dataflow."""
    network = build("vgg16")
    flow = table3_dataflows()["KC-P"]
    result = benchmark(analyze_network, network, flow, ACCELERATOR)
    assert result.runtime > 0
