"""Vector-engine throughput + parity benchmark: Figure-13 grid, two ways.

Evaluates the Figure-13-style hardware grid (PE counts x NoC
bandwidths) for every Table-3 dataflow on a VGG-16 layer through the
vectorized whole-grid engine (``repro.vector``) and through the scalar
``analyze_layer`` pipeline, then writes ``BENCH_vector.json`` recording
points/sec for both, the speedup, the fallback rate, and the result of
a zero-tolerance differential parity check over every grid point.

Timing uses best-of-N minima (the standard noise-resistant estimator
for microbenchmarks), and the speedup is a ratio of same-machine
timings, so ``check_regression.py --vector`` gates on it directly; the
parity-violation count is deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_vector.py \
        [--out BENCH_vector.json] [--max-pes 16384] [--repeats 7] \
        [--scalar-sample 32]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.energy import DEFAULT_ENERGY_MODEL
from repro.model.zoo import build
from repro.vector import (
    VectorLoweringError,
    crosscheck_vector,
    evaluate_grid,
    lower_group,
)

BANDWIDTHS = (1, 2, 4, 8, 16, 32, 64, 128)


def fig13_grid(max_pes: int) -> list:
    """The Fig-13-style grid: power-of-two PE counts x NoC bandwidths."""
    pe_counts = []
    pes = 4
    while pes <= max_pes:
        pe_counts.append(pes)
        pes *= 2
    return [Accelerator(num_pes=p, noc=NoC(bandwidth=b)) for p in pe_counts for b in BANDWIDTHS]


def time_vector(layer, dataflow, grid, repeats: int) -> float:
    """Best-of-N seconds per point through the whole-grid engine.

    The lowering is shared across repeats exactly as the batch backend
    shares it across a group, but the first call pays it so cold-start
    cost is included in the worst sample and excluded from the best.
    """
    lowered = lower_group(layer, dataflow, grid[0], DEFAULT_ENERGY_MODEL)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        evaluate_grid(layer, dataflow, grid, lowered=lowered)
        best = min(best, time.perf_counter() - start)
    return best / len(grid)


def time_scalar(layer, dataflow, grid, sample: int, repeats: int) -> float:
    """Best-of-N seconds per point through the scalar pipeline.

    Replaying a deterministic evenly-spaced sample keeps the benchmark
    fast while covering the full PE/bandwidth range (scalar cost is
    near-constant across grid points for one dataflow).
    """
    stride = max(1, len(grid) // sample)
    points = grid[::stride]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for accelerator in points:
            try:
                analyze_layer(layer, dataflow, accelerator)
            except (BindingError, DataflowError):
                pass
        best = min(best, time.perf_counter() - start)
    return best / len(points)


def run_benchmark(max_pes: int, repeats: int, scalar_sample: int) -> dict:
    layer = build("vgg16").layer("CONV11")
    grid = fig13_grid(max_pes)
    flows = table3_dataflows()

    per_dataflow = {}
    total_vector = 0.0
    total_scalar = 0.0
    parity_violations = 0
    parity_points = 0
    fallbacks = 0
    points = 0
    for name, dataflow in flows.items():
        points += len(grid)
        # Parity first (full grid, zero tolerance): the speedup is
        # meaningless if the vectorized results are wrong.
        try:
            report = crosscheck_vector(layer, dataflow, grid, rtol=0.0)
        except VectorLoweringError:
            fallbacks += len(grid)
            per_dataflow[name] = {"vectorized": False}
            continue
        parity_points += report.points_checked
        parity_violations += len(report.mismatches)

        vector_spp = time_vector(layer, dataflow, grid, repeats)
        scalar_spp = time_scalar(layer, dataflow, grid, scalar_sample, repeats)
        total_vector += vector_spp
        total_scalar += scalar_spp
        per_dataflow[name] = {
            "vectorized": True,
            "vector_points_per_sec": 1.0 / vector_spp,
            "scalar_points_per_sec": 1.0 / scalar_spp,
            "speedup": scalar_spp / vector_spp,
            "parity_mismatches": len(report.mismatches),
        }

    return {
        "sweep": f"fig13 grid CONV11 x Table-3 dataflows ({max_pes} PEs max)",
        "points": points,
        "grid_points": len(grid),
        "dataflows": len(flows),
        "vector_points_per_sec": len(flows) / total_vector if total_vector else 0.0,
        "scalar_points_per_sec": len(flows) / total_scalar if total_scalar else 0.0,
        "speedup": total_scalar / total_vector if total_vector else 0.0,
        "fallback_points": fallbacks,
        "fallback_rate": fallbacks / points if points else 0.0,
        "parity_points_checked": parity_points,
        "parity_violations": parity_violations,
        "per_dataflow": per_dataflow,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_vector.json"))
    parser.add_argument("--max-pes", type=int, default=16384)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--scalar-sample", type=int, default=32)
    args = parser.parse_args(argv)

    report = run_benchmark(args.max_pes, args.repeats, args.scalar_sample)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"{report['sweep']}: speedup x{report['speedup']:.1f} "
        f"({report['vector_points_per_sec']:,.0f} vs "
        f"{report['scalar_points_per_sec']:,.0f} points/s), "
        f"{report['parity_violations']} parity violations over "
        f"{report['parity_points_checked']} points, "
        f"fallback rate {report['fallback_rate']:.1%}"
    )
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
