"""Figure 13: hardware design-space exploration under the Eyeriss budget.

KC-P and YR-P accelerators for VGG16 CONV2 (early) and CONV11 (late),
16 mm^2 / 450 mW: the DSE statistics table (Figure 13 c), the
throughput- and energy-optimized design points (the stars/crosses of
Figure 13 a/b), and the area-throughput / buffer-throughput series.
"""

import pytest

from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
    yr_partitioned_variants,
)
from repro.model.zoo import build
from repro.util.text_table import format_table

AREA_BUDGET = 16.0
POWER_BUDGET = 450.0


def spaces():
    return {
        "KC-P": DesignSpace(
            pe_counts=default_pe_counts(max_pes=512, step=16),
            noc_bandwidths=default_bandwidths(128),
            dataflow_variants=kc_partitioned_variants(),
        ),
        "YR-P": DesignSpace(
            pe_counts=default_pe_counts(max_pes=512, step=16),
            noc_bandwidths=default_bandwidths(128),
            dataflow_variants=yr_partitioned_variants(),
        ),
    }


@pytest.fixture(scope="module")
def dse_results():
    vgg16 = build("vgg16")
    results = {}
    for flow_name, space in spaces().items():
        for layer_name in ("CONV2", "CONV11"):
            layer = vgg16.layer(layer_name)
            results[(flow_name, layer_name)] = explore(
                layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET
            )
    return results


def test_fig13c_dse_statistics(dse_results, emit_result):
    rows = []
    for (flow_name, layer_name), result in dse_results.items():
        stats = result.statistics
        rows.append(
            [
                f"{flow_name}/{layer_name}",
                stats.valid,
                stats.explored,
                stats.pruned,
                f"{stats.elapsed_seconds:.2f}",
                f"{stats.effective_rate:,.0f}",
            ]
        )
    emit_result(
        "fig13c_dse_statistics",
        format_table(
            ["DSE setting", "valid designs", "explored", "pruned", "time (s)", "designs/s"],
            rows,
            title="Figure 13(c) — DSE statistics (paper: 0.17M designs/s in C++)",
        ),
    )


def test_fig13_optimal_points(dse_results, emit_result):
    rows = []
    for (flow_name, layer_name), result in dse_results.items():
        for objective, point in (
            ("throughput", result.throughput_optimal),
            ("energy", result.energy_optimal),
            ("edp", result.edp_optimal),
        ):
            if point is None:
                continue
            rows.append(
                [
                    f"{flow_name}/{layer_name}",
                    objective,
                    point.tile_label,
                    point.num_pes,
                    point.noc_bandwidth,
                    point.l1_size * point.num_pes + point.l2_size,
                    f"{point.throughput:.1f}",
                    f"{point.energy:.4e}",
                    f"{point.area:.2f}",
                    f"{point.power:.0f}",
                ]
            )
    emit_result(
        "fig13_optimal_designs",
        format_table(
            [
                "setting", "objective", "tile", "PEs", "BW",
                "total buffer (B)", "MAC/cyc", "energy", "mm^2", "mW",
            ],
            rows,
            title="Figure 13(a,b) — throughput-/energy-/EDP-optimized designs",
        ),
    )


def test_fig13_area_throughput_series(dse_results, emit_result):
    """The area-vs-throughput scatter, binned for a textual rendering."""
    lines = []
    for (flow_name, layer_name), result in dse_results.items():
        best_by_bin = {}
        for point in result.points:
            area_bin = round(point.area)
            best_by_bin[area_bin] = max(
                best_by_bin.get(area_bin, 0.0), point.throughput
            )
        series = " ".join(
            f"({area},{thpt:.0f})" for area, thpt in sorted(best_by_bin.items())
        )
        lines.append(f"{flow_name}/{layer_name}: {series}")
    emit_result(
        "fig13_area_throughput",
        "Figure 13 — max throughput per area bin (mm^2, MAC/cycle)\n"
        + "\n".join(lines),
    )


def test_fig13_shape_claims(dse_results):
    for (flow_name, layer_name), result in dse_results.items():
        stats = result.statistics
        assert stats.valid > 0
        assert stats.pruned > 0, "the pruning optimization must engage"
        # Every valid design respects the budget.
        for point in result.points:
            assert point.area <= AREA_BUDGET and point.power <= POWER_BUDGET

    # KC-P reaches a much higher peak throughput than YR-P on the late
    # layer (Figure 13 a vs b, where YR-P saturates near ~50 MACs/cycle
    # because Y-parallelism is capped at 14 rows).
    kc_best = dse_results[("KC-P", "CONV11")].throughput_optimal.throughput
    yr_best = dse_results[("YR-P", "CONV11")].throughput_optimal.throughput
    assert kc_best > 2 * yr_best

    # Early and late layers prefer different hardware (Section 5.2).
    early = dse_results[("KC-P", "CONV2")].throughput_optimal
    late = dse_results[("KC-P", "CONV11")].throughput_optimal
    assert (early.num_pes, early.noc_bandwidth, early.tile_label) != (
        late.num_pes, late.noc_bandwidth, late.tile_label,
    )


def test_fig13_static_lint_pruning(dse_results, emit_result):
    """The static-analyzer win: cost-model calls and wall-clock saved.

    Re-runs every Figure 13 sweep with ``static_lint=False`` and
    compares; optima must be identical (the lint reject set is
    binding-equivalent) while the linted sweep pays strictly fewer
    cost-model evaluations wherever any variant is unbindable.
    """
    import time

    vgg16 = build("vgg16")
    rows = []
    for flow_name, space in spaces().items():
        for layer_name in ("CONV2", "CONV11"):
            layer = vgg16.layer(layer_name)
            linted = dse_results[(flow_name, layer_name)]
            start = time.perf_counter()
            brute = explore(
                layer, space, area_budget=AREA_BUDGET,
                power_budget=POWER_BUDGET, static_lint=False,
            )
            brute_elapsed = time.perf_counter() - start

            # Identical surviving designs and optima.
            assert len(linted.points) == len(brute.points)
            assert linted.throughput_optimal == brute.throughput_optimal
            assert linted.energy_optimal == brute.energy_optimal
            assert linted.edp_optimal == brute.edp_optimal
            if linted.statistics.static_rejects:
                assert (
                    linted.statistics.cost_model_calls
                    < brute.statistics.cost_model_calls
                )

            saved = brute_elapsed - linted.statistics.elapsed_seconds
            rows.append(
                [
                    f"{flow_name}/{layer_name}",
                    linted.statistics.static_rejects,
                    linted.statistics.cost_model_calls,
                    brute.statistics.cost_model_calls,
                    f"{linted.statistics.elapsed_seconds:.2f}",
                    f"{brute_elapsed:.2f}",
                    f"{saved:+.2f}",
                ]
            )
    emit_result(
        "fig13_static_lint_pruning",
        format_table(
            [
                "DSE setting", "lint rejects", "cost-model calls (lint)",
                "cost-model calls (brute)", "lint time (s)",
                "brute time (s)", "saved (s)",
            ],
            rows,
            title="Static mapping analyzer — DSE pruning win (identical optima)",
        ),
    )


def test_fig13_dse_rate_benchmark(benchmark):
    """Timed kernel: one pruned sweep over a small space.

    ``cache=False`` keeps the kernel honest: with memoization on, every
    round after the first would measure cache lookups, not the model.
    """
    layer = build("vgg16").layer("CONV11")
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=128, step=32),
        noc_bandwidths=[8, 32],
        dataflow_variants=kc_partitioned_variants(c_tiles=(16,), spatial_tiles=((1, 1),)),
    )
    result = benchmark(explore, layer, space, AREA_BUDGET, POWER_BUDGET, cache=False)
    assert result.statistics.explored == space.size


def test_fig13_backend_speedup(emit_result):
    """The acceptance experiment for the batch-evaluation backend.

    One Figure 13 sweep, three ways: serial with the cache off (the
    pre-backend behavior), a cold run that fills a fresh cache, and a
    warm rerun with ``jobs=$(nproc)``. The warm rerun must return the
    identical result at >= 2x the serial-cold speed.
    """
    import os
    import time

    from repro.exec import AnalysisCache

    layer = build("vgg16").layer("CONV11")
    space = spaces()["KC-P"]
    jobs = os.cpu_count() or 1

    start = time.perf_counter()
    serial_cold = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        executor="serial", cache=False,
    )
    serial_seconds = time.perf_counter() - start

    shared = AnalysisCache()
    start = time.perf_counter()
    fill = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        executor="auto", jobs=jobs, cache=shared,
    )
    fill_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        executor="auto", jobs=jobs, cache=shared,
    )
    warm_seconds = time.perf_counter() - start

    for other in (fill, warm):
        assert other.points == serial_cold.points
        assert other.throughput_optimal == serial_cold.throughput_optimal
        assert other.energy_optimal == serial_cold.energy_optimal
    assert warm.statistics.cache_hits == warm.statistics.cost_model_calls > 0

    speedup = serial_seconds / warm_seconds
    rows = [
        ["serial, cache off", "serial", 0, f"{serial_seconds:.3f}", "1.0x"],
        [
            f"cold, jobs={jobs}", fill.statistics.executor,
            fill.statistics.cache_hits, f"{fill_seconds:.3f}",
            f"{serial_seconds / fill_seconds:.1f}x",
        ],
        [
            f"warm, jobs={jobs}", warm.statistics.executor,
            warm.statistics.cache_hits, f"{warm_seconds:.3f}", f"{speedup:.1f}x",
        ],
    ]
    emit_result(
        "fig13_backend_speedup",
        format_table(
            ["run", "executor", "cache hits", "time (s)", "speedup"],
            rows,
            title=(
                "Batch-evaluation backend — Fig 13 KC-P/CONV11 sweep "
                "(identical results, warm cache)"
            ),
        ),
    )
    assert speedup >= 2.0, f"warm-cache sweep only {speedup:.2f}x over serial cold"
