"""CI self-lint: every registered lint rule is explainable and documented.

The lint engine's contract is that every ``DFxxx`` code a user can see
in a diagnostic can also be looked up: ``repro lint --explain DFxxx``
must render its full documentation, and ``docs/mapping-lints.md`` must
describe it (either a ``## DFxxx — ...`` section or a ``| DFxxx |``
summary-table row). This script walks both rule registries (concrete
``RULES`` and symbolic ``SYMBOLIC_RULES``) and fails CI when a rule was
registered without holding up that contract — the failure mode this
guards against is adding a new rule family and forgetting the docs.

Usage::

    PYTHONPATH=src python benchmarks/check_rules.py [--docs docs/mapping-lints.md]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

DEFAULT_DOCS = Path(__file__).resolve().parent.parent / "docs" / "mapping-lints.md"


def registered_codes() -> list:
    """Every rule code either registry knows, sorted."""
    from repro.lint import RULES, SYMBOLIC_RULES

    return sorted(set(RULES) | set(SYMBOLIC_RULES))


def documented_codes(docs_text: str) -> set:
    """Codes with a ``## DFxxx`` heading or a ``| DFxxx |`` table row."""
    headings = re.findall(r"^##\s+(DF\d+)\b", docs_text, flags=re.MULTILINE)
    rows = re.findall(r"^\|\s*(DF\d+)\s*\|", docs_text, flags=re.MULTILINE)
    return set(headings) | set(rows)


def check(docs_path: Path) -> list:
    """Failure messages, empty when every rule holds the contract."""
    from repro.lint import explain_rule

    try:
        docs_text = docs_path.read_text()
    except OSError as error:
        return [f"cannot read docs file {docs_path}: {error.strerror or error}"]

    documented = documented_codes(docs_text)
    failures = []
    for code in registered_codes():
        try:
            explanation = explain_rule(code)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            failures.append(f"{code}: explain_rule raised {error!r}")
            continue
        if not explanation.strip():
            failures.append(f"{code}: explain_rule returned an empty explanation")
        if "unknown family" in explanation:
            failures.append(
                f"{code}: no provenance family registered for prefix "
                f"{code[:3]} (add it to repro.lint.engine._FAMILIES)"
            )
        if code not in documented:
            failures.append(
                f"{code}: not documented in {docs_path.name} "
                f"(add a '## {code} — ...' section or a '| {code} |' row)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--docs", type=Path, default=DEFAULT_DOCS)
    args = parser.parse_args(argv)

    codes = registered_codes()
    failures = check(args.docs)
    if failures:
        print(
            f"{len(failures)} rule-registry contract violation(s) "
            f"across {len(codes)} registered rules:",
            file=sys.stderr,
        )
        for message in failures:
            print(f"  {message}", file=sys.stderr)
        return 1
    print(
        f"all {len(codes)} registered lint rules are explainable and "
        f"documented in {args.docs.name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
