"""Communication-capability pruning benchmark: Figure-13 sweep, two ways.

Runs the Figure-13 KC-P design-space exploration twice per hardware
capability setting and writes ``BENCH_comm.json``:

1. **Soundness** — on reduction-capable hardware (the default), a sweep
   with ``comm_prune=True`` must return optima bit-identical to the
   plain sweep: the screen never runs there, by construction.
2. **Effectiveness** — on hardware *without* spatial-reduction support,
   the communication classifier proves every spatially-reduced KC-P
   variant a DF300 write-race up front; the report records how many
   cost-model calls that avoided versus the unpruned sweep on the same
   hardware.

Both figures are deterministic counts (no wall-clock in the gate), so
``check_regression.py --comm`` gates on them directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_comm_pruning.py \
        [--out BENCH_comm.json] [--max-pes 256] [--step 8]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
)
from repro.model.zoo import build

AREA_BUDGET = 16.0
POWER_BUDGET = 450.0


def _point_dict(point) -> "dict | None":
    if point is None:
        return None
    return {
        "tile": point.tile_label,
        "num_pes": point.num_pes,
        "bandwidth": point.noc_bandwidth,
        "throughput": point.throughput,
        "energy": point.energy,
        "edp": point.edp,
    }


def run_comparison(max_pes: int, step: int) -> dict:
    layer = build("vgg16").layer("CONV11")
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=max_pes, step=step),
        noc_bandwidths=default_bandwidths(128),
        dataflow_variants=kc_partitioned_variants(),
    )

    # Soundness pair: reduction-capable hardware, screen must be inert.
    plain = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False,
    )
    capable = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False, comm_prune=True,
    )
    bit_identical = (
        capable.statistics.comm_rejects == 0
        and capable.throughput_optimal == plain.throughput_optimal
        and capable.energy_optimal == plain.energy_optimal
        and capable.edp_optimal == plain.edp_optimal
    )

    # Effectiveness pair: no reduction tree, racy variants screened.
    start = time.perf_counter()
    baseline = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False, spatial_reduction=False,
    )
    baseline_wall = time.perf_counter() - start

    start = time.perf_counter()
    pruned = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False, spatial_reduction=False, comm_prune=True,
    )
    pruned_wall = time.perf_counter() - start

    baseline_calls = baseline.statistics.cost_model_calls
    avoided = baseline_calls - pruned.statistics.cost_model_calls
    return {
        "sweep": f"fig13 KC-P CONV11 ({max_pes} PEs max, step {step})",
        "space_size": space.size,
        "bit_identical": bit_identical,
        "baseline_cost_model_calls": baseline_calls,
        "pruned_cost_model_calls": pruned.statistics.cost_model_calls,
        "comm_rejects": pruned.statistics.comm_rejects,
        "calls_avoided": avoided,
        "skip_fraction": avoided / baseline_calls if baseline_calls else 0.0,
        "baseline_wall_seconds": baseline_wall,
        "pruned_wall_seconds": pruned_wall,
        "speedup": baseline_wall / pruned_wall if pruned_wall else 0.0,
        "optima": {
            "throughput": _point_dict(capable.throughput_optimal),
            "energy": _point_dict(capable.energy_optimal),
            "edp": _point_dict(capable.edp_optimal),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_comm.json"))
    parser.add_argument("--max-pes", type=int, default=256)
    parser.add_argument("--step", type=int, default=8)
    args = parser.parse_args(argv)

    report = run_comparison(args.max_pes, args.step)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"{report['sweep']}: bit_identical={report['bit_identical']}, "
        f"{report['calls_avoided']}/{report['baseline_cost_model_calls']} "
        f"cost-model calls avoided ({report['skip_fraction']:.1%}) on "
        f"reduction-free hardware, "
        f"{report['baseline_wall_seconds']:.2f}s -> "
        f"{report['pruned_wall_seconds']:.2f}s"
    )
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
