"""Per-phase timing benchmark: one traced Figure-13 sweep.

Runs a small KC-P design-space exploration with the observability
subsystem enabled and writes:

- ``BENCH_obs.json`` — per-engine-phase self time, CPU time, and share
  of total (machine-independent fractions, compared against
  ``baseline_obs.json`` by ``check_regression.py --phases``), plus the
  headline sweep counters;
- a Perfetto/Chrome trace (``--trace-out``) of the whole sweep,
  uploadable as a CI artifact and loadable in https://ui.perfetto.dev.

Usage::

    PYTHONPATH=src python benchmarks/obs_phases.py \
        [--out BENCH_obs.json] [--trace-out obs-trace.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import obs
from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_pe_counts,
    kc_partitioned_variants,
)
from repro.model.zoo import build
from repro.obs.profile import phase_timings, write_trace

#: Names beyond the engine phases worth tracking run over run.
HEADLINE_COUNTERS = (
    "engine.layers_analyzed",
    "dse.mappings_evaluated",
    "dse.pruned_by_lint",
    "exec.cache_hits",
    "cache.corrupt_entries",
)


def run_sweep() -> dict:
    layer = build("vgg16").layer("CONV11")
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=128, step=32),
        noc_bandwidths=[8, 32],
        dataflow_variants=kc_partitioned_variants(
            c_tiles=(16,), spatial_tiles=((1, 1),)
        ),
    )
    obs.configure(enabled=True, reset=True)
    start = time.perf_counter()
    result = explore(
        layer, space, area_budget=16.0, power_budget=450.0, cache=False
    )
    wall = time.perf_counter() - start
    assert result.statistics.explored == space.size
    return {
        "sweep": "fig13 KC-P CONV11 (128 PEs max, traced)",
        "wall_seconds": wall,
        "explored": result.statistics.explored,
        "phases": phase_timings(),
        "counters": {
            name: obs.counter_value(name) for name in HEADLINE_COUNTERS
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_obs.json"))
    parser.add_argument("--trace-out", type=Path, default=None)
    args = parser.parse_args(argv)

    report = run_sweep()
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, entry in report["phases"].items():
        print(
            f"  {name:24s} n={entry['count']:5d} "
            f"self={entry['self_ns'] / 1e6:8.2f} ms share={entry['share']:.1%}"
        )
    if args.trace_out is not None:
        write_trace(args.trace_out)
        print(f"wrote {args.trace_out} — load it in https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
