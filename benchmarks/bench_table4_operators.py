"""Table 4: the operator taxonomy across state-of-the-art DNNs.

Regenerates the table's rows from the model zoo: every operator class,
the zoo layers exemplifying it, and the measured characteristics the
paper lists (dimensions, parallelism, reuse behavior under a reference
dataflow).
"""

from collections import defaultdict

import pytest

from repro.dataflow.library import kc_partitioned
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator
from repro.model.taxonomy import OperatorClass, classify_layer
from repro.model.zoo import build
from repro.util.text_table import format_table

MODELS = ["vgg16", "resnet50", "resnext50", "mobilenet_v2", "unet", "dcgan", "lstm"]


@pytest.fixture(scope="module")
def inventory():
    table = defaultdict(list)
    for model_name in MODELS:
        network = build(model_name)
        for layer in network.layers:
            table[classify_layer(layer)].append((model_name, layer))
    return table


def test_table4_operator_inventory(inventory, emit_result):
    accelerator = Accelerator(num_pes=256)
    flow = kc_partitioned(c_tile=16)
    rows = []
    for operator_class in OperatorClass:
        members = inventory.get(operator_class, [])
        if not members:
            continue
        model_name, example = members[0]
        try:
            report = analyze_layer(example, flow, accelerator)
            reuse = f"{report.reuse_factors.get('I', 0):.1f}"
            bandwidth = f"{report.noc_bw_req_gbps:.1f}"
        except Exception:
            reuse = bandwidth = "-"
        rows.append(
            [
                operator_class.value,
                len(members),
                f"{model_name}/{example.name}",
                f"{example.total_ops():.2e}",
                reuse,
                bandwidth,
            ]
        )
    emit_result(
        "table4_operators",
        format_table(
            [
                "operator class", "layers in zoo", "example",
                "example ops", "act reuse (KC-P)", "BW req GB/s",
            ],
            rows,
            title="Table 4 — operator classes across the model zoo",
        ),
    )


def test_table4_every_class_represented(inventory):
    present = set(inventory)
    for required in (
        OperatorClass.EARLY_CONV,
        OperatorClass.LATE_CONV,
        OperatorClass.POINTWISE,
        OperatorClass.DEPTHWISE,
        OperatorClass.TRANSPOSED,
        OperatorClass.FULLY_CONNECTED,
        OperatorClass.RESIDUAL,
    ):
        assert required in present, required


def test_table4_kernel_benchmark(benchmark, inventory):
    accelerator = Accelerator(num_pes=256)
    flow = kc_partitioned(c_tile=16)
    _, layer = inventory[OperatorClass.LATE_CONV][0]
    benchmark(analyze_layer, layer, flow, accelerator)
