"""Figure 12: energy breakdown (MAC + L1/L2 accesses) per dataflow.

VGG16 CONV1 (early) and CONV11 (late), five dataflows, access counts
multiplied by the embedded energy table and normalized to C-P's MAC
energy — exactly the figure's presentation.
"""

import pytest

from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator
from repro.model.zoo import build
from repro.util.text_table import format_table

ACCELERATOR = Accelerator(num_pes=256)
COMPONENTS = ["MAC", "L1 read", "L1 write", "L2 read", "L2 write"]


@pytest.fixture(scope="module")
def breakdowns():
    vgg16 = build("vgg16")
    table = {}
    for layer_name in ("CONV1", "CONV11"):
        layer = vgg16.layer(layer_name)
        for flow_name, flow in table3_dataflows().items():
            report = analyze_layer(layer, flow, ACCELERATOR)
            table[(layer_name, flow_name)] = report.energy_breakdown
    return table


def test_fig12_breakdown_table(breakdowns, emit_result):
    rows = []
    for layer_name in ("CONV1", "CONV11"):
        mac_ref = breakdowns[(layer_name, "C-P")]["MAC"]
        for flow_name in table3_dataflows():
            breakdown = breakdowns[(layer_name, flow_name)]
            rows.append(
                [layer_name, flow_name]
                + [f"{breakdown[c] / mac_ref:.3f}" for c in COMPONENTS]
                + [f"{sum(breakdown[c] for c in COMPONENTS) / mac_ref:.3f}"]
            )
    emit_result(
        "fig12_energy_breakdown",
        format_table(
            ["layer", "dataflow"] + COMPONENTS + ["total"],
            rows,
            title=(
                "Figure 12 — energy breakdown normalized to C-P MAC energy "
                "(VGG16 CONV1 and CONV11, 256 PEs)"
            ),
        ),
    )


def test_fig12_shape_claims(breakdowns):
    # Reuse-exploiting dataflows keep traffic local: L1 energy beats L2
    # for every dataflow except C-P, the paper's "no local reuse" (NLR)
    # case, whose bars are L2-read dominated in Figure 12.
    for (layer_name, flow_name), breakdown in breakdowns.items():
        l1 = breakdown["L1 read"] + breakdown["L1 write"]
        l2 = breakdown["L2 read"] + breakdown["L2 write"]
        if flow_name != "C-P":
            assert l1 > l2, (layer_name, flow_name)
    nlr_late = breakdowns[("CONV11", "C-P")]
    assert nlr_late["L2 read"] > nlr_late["L1 read"]

    # C-P pays heavily in L2 on the late layer (no local reuse, Table 3).
    late_l2 = {
        flow_name: breakdowns[("CONV11", flow_name)]["L2 read"]
        for flow_name in table3_dataflows()
    }
    assert late_l2["C-P"] == max(late_l2.values())

    # MAC energy itself is dataflow-independent.
    for layer_name in ("CONV1", "CONV11"):
        macs = {
            flow_name: breakdowns[(layer_name, flow_name)]["MAC"]
            for flow_name in table3_dataflows()
        }
        assert max(macs.values()) == pytest.approx(min(macs.values()))


def test_fig12_kernel_benchmark(benchmark):
    layer = build("vgg16").layer("CONV1")
    flow = table3_dataflows()["C-P"]
    benchmark(analyze_layer, layer, flow, ACCELERATOR)
