"""Section 5.1's closing suggestion: adaptive vs heterogeneous chips.

The paper: per-operator dataflow preference "can be exploited by
flexible accelerators like Flexflow and MAERI or via heterogeneous
accelerators that employ multiple sub-accelerators with various
dataflow styles in a single DNN accelerator chip." This bench compares,
at equal total PE count:

- the best *homogeneous* single-dataflow chip;
- a *flexible* chip that reconfigures its dataflow per layer
  (the adaptive analysis);
- a *heterogeneous* chip split into a KC-P half and a YX-P half,
  sequentially and pipelined across inputs.
"""

import pytest

from repro.adaptive import adaptive_analysis
from repro.dataflow.library import kc_partitioned, table3_dataflows, yx_partitioned
from repro.engines.analysis import analyze_network
from repro.hardware.accelerator import Accelerator
from repro.hetero import analyze_heterogeneous, split_accelerator
from repro.model.zoo import build
from repro.util.text_table import format_table

CHIP = Accelerator(num_pes=256)


@pytest.fixture(scope="module")
def comparison():
    network = build("mobilenet_v2")
    flows = table3_dataflows()

    homogeneous = {
        name: analyze_network(network, flow, CHIP) for name, flow in flows.items()
    }
    best_name = min(homogeneous, key=lambda name: homogeneous[name].runtime)

    flexible = adaptive_analysis(network, flows, CHIP, metric="runtime")

    subs = split_accelerator(
        CHIP,
        {
            "KC-half": (0.5, kc_partitioned(c_tile=16)),
            "YX-half": (0.5, yx_partitioned()),
        },
    )
    hetero_seq = analyze_heterogeneous(network, subs, mode="sequential")
    hetero_pipe = analyze_heterogeneous(network, subs, mode="pipelined")
    return network, homogeneous[best_name], best_name, flexible, hetero_seq, hetero_pipe


def test_heterogeneous_comparison(comparison, emit_result):
    network, best, best_name, flexible, hetero_seq, hetero_pipe = comparison
    rows = [
        [f"homogeneous ({best_name})", f"{best.runtime:.4e}", f"{best.energy_total:.4e}", "-"],
        [
            "flexible (adaptive)",
            f"{flexible.runtime:.4e}",
            f"{flexible.energy_total:.4e}",
            f"{1 - flexible.runtime / best.runtime:.1%}",
        ],
        [
            "heterogeneous (sequential)",
            f"{hetero_seq.runtime:.4e}",
            f"{hetero_seq.energy_total:.4e}",
            f"{1 - hetero_seq.runtime / best.runtime:+.1%}",
        ],
        [
            "heterogeneous (pipelined interval)",
            f"{hetero_pipe.runtime:.4e}",
            f"{hetero_pipe.energy_total:.4e}",
            "-",
        ],
    ]
    emit_result(
        "heterogeneous",
        format_table(
            ["organization", "runtime (cycles)", "energy (xMAC)", "vs best homogeneous"],
            rows,
            title=f"Section 5.1 — chip organizations on {network.name}, 256 PEs total",
        )
        + f"\npipelined partition usage: {hetero_pipe.histogram()}",
    )


def test_heterogeneous_shape_claims(comparison):
    _, best, _, flexible, hetero_seq, hetero_pipe = comparison
    # The flexible chip is the upper bound at full width.
    assert flexible.runtime <= best.runtime
    # Pipelined heterogeneity beats its own sequential latency per input
    # interval and keeps both halves busy.
    assert hetero_pipe.runtime < hetero_seq.runtime
    usage = hetero_pipe.utilization_by_partition()
    assert len(usage) == 2
    assert min(usage.values()) > 0.3


def test_heterogeneous_kernel_benchmark(benchmark):
    network = build("alexnet")
    subs = split_accelerator(
        CHIP,
        {
            "KC-half": (0.5, kc_partitioned(c_tile=16)),
            "YX-half": (0.5, yx_partitioned()),
        },
    )
    benchmark(analyze_heterogeneous, network, subs, "pipelined")
