"""Figure 9: analytical-model validation against the reference executor.

The paper validates MAESTRO against MAERI RTL (64 PEs, VGG16) and
Eyeriss' reported runtime (168 PEs, AlexNet), finding ~3.9% mean error
and a 1029-4116x speedup. Here the reference is the independent
event-driven simulator (see DESIGN.md's substitution table); the bench
reports per-layer model-vs-reference error and the model's speedup.
"""

import time

import pytest

from repro.dataflow.library import kc_partitioned, yr_partitioned, yx_partitioned
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator
from repro.model.zoo import build
from repro.simulator import simulate_layer
from repro.util.text_table import format_table

#: (network, PE count, dataflow factory, layers) — MAERI-like 64-PE VGG16
#: and Eyeriss-like 168-PE AlexNet, as in the paper's Figure 9.
CONFIGS = [
    ("vgg16", 64, ("KC-P", kc_partitioned), ["CONV1", "CONV5", "CONV11"]),
    ("vgg16", 64, ("YX-P", yx_partitioned), ["CONV1", "CONV5", "CONV11"]),
    ("alexnet", 168, ("YR-P", yr_partitioned), ["CONV2", "CONV3", "CONV5"]),
    ("alexnet", 168, ("YX-P", yx_partitioned), ["CONV2", "CONV3", "CONV5"]),
]


@pytest.fixture(scope="module")
def validation_rows():
    rows = []
    errors = []
    speedups = []
    for model_name, pes, (flow_name, factory), layer_names in CONFIGS:
        network = build(model_name)
        accelerator = Accelerator(num_pes=pes)
        for layer_name in layer_names:
            layer = network.layer(layer_name)
            start = time.perf_counter()
            report = analyze_layer(layer, factory(), accelerator)
            model_time = time.perf_counter() - start
            start = time.perf_counter()
            sim = simulate_layer(layer, factory(), accelerator, max_outer_states=30_000)
            sim_time = time.perf_counter() - start
            error = (report.runtime - sim.runtime) / sim.runtime * 100.0
            errors.append(abs(error))
            speedups.append(sim_time / max(model_time, 1e-9))
            rows.append(
                [
                    f"{model_name}/{layer_name}",
                    f"{flow_name}@{pes}PE",
                    f"{sim.runtime:.4e}",
                    f"{report.runtime:.4e}",
                    f"{error:+.2f}%",
                    f"{sim_time / max(model_time, 1e-9):.0f}x",
                ]
            )
    return rows, errors, speedups


def test_fig9_validation_table(validation_rows, emit_result):
    rows, errors, speedups = validation_rows
    mean_error = sum(errors) / len(errors)
    table = format_table(
        ["workload", "config", "reference cycles", "model cycles", "error", "speedup"],
        rows,
        title="Figure 9 — runtime model validation (reference = event-driven simulator)",
    )
    table += (
        f"\nmean |error| = {mean_error:.2f}%  (paper: ~3.9% vs RTL)"
        f"\nmedian speedup = {sorted(speedups)[len(speedups)//2]:.0f}x "
        f"(paper: 1029-4116x vs RTL simulation)"
    )
    emit_result("fig9_validation", table)
    assert mean_error < 10.0


def test_fig9_model_latency(benchmark):
    """The paper quotes ~10 ms to run MAESTRO on a layer."""
    layer = build("vgg16").layer("CONV11")
    accelerator = Accelerator(num_pes=64)
    flow = kc_partitioned()
    report = benchmark(analyze_layer, layer, flow, accelerator)
    assert report.runtime > 0
