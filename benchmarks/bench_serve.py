"""Serving-layer benchmark: load, latency, cache efficacy, shard parity.

Boots a real :class:`~repro.serve.app.ThreadedServer` in-process, drives
it over sockets with :class:`~repro.serve.client.ServeClient`, and
writes ``BENCH_serve.json`` for ``check_regression.py --serve``:

1. **Analyze load** — a cold pass over distinct (layer, dataflow)
   queries followed by repeat passes of the same queries. Records req/s
   and p50/p99 latency over the warm passes, and the cache-hit ratio of
   the repeats (the shared cross-request cache must make repeats free).
2. **DSE shard parity** — a sharded, streamed Figure-13-style sweep
   whose final front must be bit-identical to the in-process
   :func:`repro.dse.explorer.explore` over the same normalized inputs
   (rebuilt via :func:`repro.serve.protocol.dse_inputs`, the same
   code path the server uses).
3. **Single-flight** — the same DSE job submitted twice concurrently;
   the second submission must join the first, not recompute.

The p99 gate is deliberately loose (order-of-magnitude, not
millisecond): it exists to catch serving regressions like event-loop
stalls or accidental sweep-per-request, and the latency load runs
against warm cache so the figure is dominated by serving overhead, not
the cost model.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--out BENCH_serve.json] [--requests 60] [--max-pes 64] \
        [--pe-step 16] [--shards 4]
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import time
from pathlib import Path

from repro.dse.explorer import explore
from repro.serve import ServeClient, ServeConfig, ThreadedServer, protocol

#: Distinct (model, layer, dataflow) queries for the analyze load.
ANALYZE_QUERIES = (
    ("vgg16", "CONV1", "KC-P"),
    ("vgg16", "CONV2", "KC-P"),
    ("vgg16", "CONV3", "YR-P"),
    ("vgg16", "CONV4", "C-P"),
    ("vgg16", "CONV5", "X-P"),
    ("vgg16", "CONV1", "YX-P"),
)


def analyze_load(client: ServeClient, requests: int) -> dict:
    """Cold pass + warm repeats; returns latency and hit-ratio figures."""
    # Cold pass: populate the shared cache (not timed into the p99).
    for model, layer, flow in ANALYZE_QUERIES:
        client.analyze(model=model, layer=layer, dataflow=flow)

    latencies = []
    hits = 0
    start = time.perf_counter()
    for index in range(requests):
        model, layer, flow = ANALYZE_QUERIES[index % len(ANALYZE_QUERIES)]
        t0 = time.perf_counter()
        result = client.analyze(model=model, layer=layer, dataflow=flow)
        latencies.append(time.perf_counter() - t0)
        if all(entry["cached"] for entry in result["layers"]):
            hits += 1
    elapsed = time.perf_counter() - start

    latencies.sort()
    return {
        "requests": requests,
        "req_per_sec": requests / elapsed if elapsed else float("inf"),
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
        * 1e3,
        "cache_hit_ratio": hits / requests if requests else 0.0,
    }


def dse_parity(
    client: ServeClient, max_pes: int, pe_step: int, shards: int
) -> dict:
    """Streamed sharded sweep vs the in-process explorer, bit for bit."""
    job = dict(
        model="vgg16",
        layer="CONV1",
        dataflow="KC-P",
        max_pes=max_pes,
        pe_step=pe_step,
        max_bandwidth=32,
        shards=shards,
    )
    events = list(client.dse_stream(**job))
    final = events[-1]
    assert final["event"] == "result", f"sweep did not finish: {final}"
    front_updates = sum(1 for event in events if event["event"] == "front")

    # The parity reference: the exact sweep the server ran, rebuilt from
    # the same normalized document through the same protocol helpers.
    norm = protocol.validate("dse", dict(job))
    layer, space, kwargs = protocol.dse_inputs(norm)
    direct = explore(layer, space, **kwargs)
    direct_front = [protocol.design_point_dict(p) for p in direct.pareto()]
    parity_ok = direct_front == final["front"]

    # Repeat the identical job: every grid point must come off the
    # shared cache. ``cost_model_calls`` counts every point that needed
    # a cost-model answer, memoized or fresh, so hits/calls is the
    # fraction of the sweep served from cache.
    repeat = client.dse(**job)
    stats = repeat["statistics"]
    calls = stats["cost_model_calls"]
    repeat_hit_ratio = stats["cache_hits"] / calls if calls else 0.0

    return {
        "space_size": space.size,
        "shards": final["shards"],
        "front_size": len(final["front"]),
        "front_updates": front_updates,
        "parity_ok": parity_ok,
        "repeat_cache_hit_ratio": repeat_hit_ratio,
        "statistics": final["statistics"],
    }


def singleflight(client: ServeClient, max_pes: int, pe_step: int) -> dict:
    """Two concurrent identical jobs; the follower must join the leader."""
    job = dict(
        model="vgg16",
        layer="CONV2",
        dataflow="YR-P",
        max_pes=max_pes,
        pe_step=pe_step,
        max_bandwidth=16,
        shards=2,
    )
    results = [None, None]

    def submit(slot: int) -> None:
        results[slot] = client.dse(**job)

    threads = [
        threading.Thread(target=submit, args=(slot,)) for slot in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results[0] is not None and results[1] is not None
    same_job = results[0]["job_id"] == results[1]["job_id"]
    identical = results[0]["front"] == results[1]["front"]
    return {"joined": same_job, "fronts_identical": identical}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_serve.json"))
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--max-pes", type=int, default=64)
    parser.add_argument("--pe-step", type=int, default=16)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args()

    with ThreadedServer(
        ServeConfig(port=0, max_concurrency=4, allow_shutdown=False)
    ) as server:
        client = ServeClient(port=server.port, timeout=300.0)
        print(f"server up on port {server.port}")

        load = analyze_load(client, args.requests)
        print(
            f"analyze load: {load['req_per_sec']:.0f} req/s, "
            f"p50 {load['p50_ms']:.1f}ms, p99 {load['p99_ms']:.1f}ms, "
            f"cache hit {load['cache_hit_ratio']:.1%}"
        )

        parity = dse_parity(client, args.max_pes, args.pe_step, args.shards)
        print(
            f"dse parity: {parity['space_size']} points in "
            f"{parity['shards']} shards, {parity['front_updates']} anytime "
            f"updates, parity_ok={parity['parity_ok']}, repeat hit "
            f"{parity['repeat_cache_hit_ratio']:.1%}"
        )

        flight = singleflight(client, args.max_pes, args.pe_step)
        print(
            f"single-flight: joined={flight['joined']}, "
            f"fronts_identical={flight['fronts_identical']}"
        )

        # /metrics must expose the serving counters the docs promise.
        metrics = client.metrics()
        has_latency = "serve_latency" in metrics
        has_queue = "serve_queue_depth" in metrics

    report = {
        "bench": "serve",
        "parity_ok": bool(
            parity["parity_ok"] and flight["fronts_identical"]
        ),
        "cache_hit_ratio": min(
            load["cache_hit_ratio"], parity["repeat_cache_hit_ratio"]
        ),
        "p99_ms": load["p99_ms"],
        "p50_ms": load["p50_ms"],
        "req_per_sec": load["req_per_sec"],
        "singleflight_joined": flight["joined"],
        "metrics_exposed": bool(has_latency and has_queue),
        "analyze_load": load,
        "dse": parity,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
