"""Figures 5 and 6: dataflow playground reuse and row-stationary mapping.

Regenerates Figure 5's per-dataflow reuse annotations (the six 1-D
convolution variants) and Figure 6(d)'s per-PE mapping tables for the
row-stationary example, using the reuse classifier and the mapping
enumerator.
"""

from repro.dataflow.library import fig5_playground, row_stationary_fig6
from repro.engines.analysis import analyze_layer
from repro.engines.insight import summarize_reuse
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.visualize import mapping_table


def conv1d():
    return conv2d("conv1d", k=1, c=1, y=1, x=17, r=1, s=6)


def fig6_layer():
    return conv2d("fig1", n=2, k=4, c=6, y=8, x=8, r=3, s=3)


def test_fig5_reuse_annotations(emit_result):
    layer = conv1d()
    blocks = []
    for key, flow in fig5_playground().items():
        accelerator = Accelerator(num_pes=6 if key == "F" else 3)
        summary = summarize_reuse(layer, flow, accelerator)
        report = analyze_layer(layer, flow, accelerator)
        blocks.append(
            f"--- Figure 5({key}) ---\n"
            + summary.describe()
            + f"\n  L2 reads: W={report.l2_reads['W']:.0f} I={report.l2_reads['I']:.0f}"
            + f"  L2 writes: O={report.l2_writes['O']:.0f}"
        )
    emit_result("fig5_playground", "\n".join(blocks))


def test_fig6d_mapping_tables(emit_result):
    layer = fig6_layer()
    flow = row_stationary_fig6()
    accelerator = Accelerator(num_pes=6)
    tables = [
        mapping_table(layer, flow, accelerator, tensor, steps=2)
        for tensor in ("I", "W", "O")
    ]
    emit_result(
        "fig6d_mappings",
        "Figure 6(d) — per-PE data mapping, row-stationary on 6 PEs\n\n"
        + "\n\n".join(tables),
    )


def test_fig56_kernel_benchmark(benchmark):
    layer = fig6_layer()
    flow = row_stationary_fig6()
    accelerator = Accelerator(num_pes=6)
    benchmark(analyze_layer, layer, flow, accelerator)
