"""Branch-and-bound pruning benchmark: Figure-13 sweep, two ways.

Runs the Figure-13 KC-P design-space exploration exhaustively (the
PR 2 batch-backend baseline) and again with ``symbolic_prune=True``,
then writes ``BENCH_absint.json`` recording whether the three optima
came back bit-identical, how many cost-model calls the abstract
interpreter avoided, and the wall-clock of both sweeps. The skip
fraction and the equality flag are machine-independent, so
``check_regression.py --absint`` gates on them directly.

Usage::

    PYTHONPATH=src python benchmarks/bench_absint_pruning.py \
        [--out BENCH_absint.json] [--max-pes 256] [--step 8]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
)
from repro.model.zoo import build

AREA_BUDGET = 16.0
POWER_BUDGET = 450.0


def _point_dict(point) -> "dict | None":
    if point is None:
        return None
    return {
        "tile": point.tile_label,
        "num_pes": point.num_pes,
        "bandwidth": point.noc_bandwidth,
        "throughput": point.throughput,
        "energy": point.energy,
        "edp": point.edp,
    }


def run_comparison(max_pes: int, step: int) -> dict:
    layer = build("vgg16").layer("CONV11")
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=max_pes, step=step),
        noc_bandwidths=default_bandwidths(128),
        dataflow_variants=kc_partitioned_variants(),
    )

    start = time.perf_counter()
    exhaustive = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False,
    )
    exhaustive_wall = time.perf_counter() - start

    start = time.perf_counter()
    pruned = explore(
        layer, space, area_budget=AREA_BUDGET, power_budget=POWER_BUDGET,
        cache=False, symbolic_prune=True,
    )
    pruned_wall = time.perf_counter() - start

    bit_identical = (
        pruned.throughput_optimal == exhaustive.throughput_optimal
        and pruned.energy_optimal == exhaustive.energy_optimal
        and pruned.edp_optimal == exhaustive.edp_optimal
    )
    avoided = (
        pruned.statistics.symbolic_rejects + pruned.statistics.bnb_pruned
    )
    baseline_calls = exhaustive.statistics.cost_model_calls
    return {
        "sweep": f"fig13 KC-P CONV11 ({max_pes} PEs max, step {step})",
        "space_size": space.size,
        "bit_identical": bit_identical,
        "baseline_cost_model_calls": baseline_calls,
        "pruned_cost_model_calls": pruned.statistics.cost_model_calls,
        "symbolic_rejects": pruned.statistics.symbolic_rejects,
        "bnb_pruned": pruned.statistics.bnb_pruned,
        "calls_avoided": avoided,
        "skip_fraction": avoided / baseline_calls if baseline_calls else 0.0,
        "baseline_wall_seconds": exhaustive_wall,
        "pruned_wall_seconds": pruned_wall,
        "speedup": exhaustive_wall / pruned_wall if pruned_wall else 0.0,
        "optima": {
            "throughput": _point_dict(pruned.throughput_optimal),
            "energy": _point_dict(pruned.energy_optimal),
            "edp": _point_dict(pruned.edp_optimal),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("BENCH_absint.json"))
    parser.add_argument("--max-pes", type=int, default=256)
    parser.add_argument("--step", type=int, default=8)
    args = parser.parse_args(argv)

    report = run_comparison(args.max_pes, args.step)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"{report['sweep']}: bit_identical={report['bit_identical']}, "
        f"{report['calls_avoided']}/{report['baseline_cost_model_calls']} "
        f"cost-model calls avoided ({report['skip_fraction']:.1%}), "
        f"{report['baseline_wall_seconds']:.2f}s -> "
        f"{report['pruned_wall_seconds']:.2f}s"
    )
    print(f"[written to {args.out}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
