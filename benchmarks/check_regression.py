"""Benchmark regression gate for CI.

Compares a fresh ``pytest-benchmark --benchmark-json`` report against
the committed baseline and fails (exit 1) when any shared benchmark's
mean time regressed by more than the tolerance.

Raw wall-clock comparisons across different machines are meaningless,
so when both reports contain the pure-Python calibration benchmark
(``test_bench_calibration`` in ``bench_exec_backend.py``), every mean
is first normalized by that machine's calibration time. Benchmarks
present in only one report are listed but never fail the gate.

``--only SUBSTR`` restricts the gate to matching benchmarks — how CI
applies a tight tolerance to just the tracing-overhead kernel.

``--phases BENCH_obs.json`` additionally compares the per-engine-phase
time *shares* (fractions of summed phase self-time, machine-independent
by construction) against ``--phases-baseline``; a phase whose share
drifted by more than ``--phase-tolerance`` fails the gate.

``--absint BENCH_absint.json`` gates the branch-and-bound pruning
report from ``bench_absint_pruning.py``: the pruned sweep must return
bit-identical optima and avoid at least ``--min-skip`` of the
exhaustive sweep's cost-model calls. Both figures are deterministic
counts, so no machine normalization is needed.

``--comm BENCH_comm.json`` gates the communication-capability pruning
report from ``bench_comm_pruning.py`` the same way: optima on
reduction-capable hardware must be bit-identical with the screen on,
and on reduction-free hardware at least ``--comm-min-skip`` of the
baseline sweep's cost-model calls must be avoided.

``--vector BENCH_vector.json`` gates the vector-engine report from
``bench_vector.py``: zero parity violations against the scalar engines,
at least ``--vector-min-speedup`` points/sec over them (a same-machine
ratio, so no normalization is needed), and a fallback rate within
``--vector-max-fallback``.

``--equiv BENCH_equiv.json`` gates the equivalence-pruning report from
``bench_equiv.py``: the pruned sweep over the enriched mapping axis
(transposed twins + redundant spellings) must be bit-identical to the
exhaustive sweep and avoid at least ``--equiv-min-skip`` of its
cost-model calls.

``--capacity BENCH_capacity.json`` gates the capacity-pruning report
from ``bench_capacity.py``: both budget settings must be bit-identical
to the unpruned sweep (point set and optima), and under the
capacity-constrained budget at least ``--capacity-min-skip`` of the
baseline sweep's cost-model calls must be avoided.

``--serve BENCH_serve.json`` gates the serving-layer report from
``bench_serve.py``: the sharded server-side DSE front must be
bit-identical to the in-process explorer, repeated identical queries
must hit the shared cache at least ``--serve-min-hit`` of the time, and
the warm analyze load's p99 latency must stay under ``--serve-max-p99``
milliseconds.

Each per-subsystem gate is one :class:`SubsystemGate` entry in the
``SUBSYSTEM_GATES`` registry — the flag, its threshold options, the
section heading, and the failure-report label all come from the table,
so adding a gate is a single new entry plus its ``*_failures`` checker.

A missing or malformed report file fails with a one-line error, not a
stack trace.

``--list-gates`` prints the registry and exits; the ``current``
positional is optional, so a lane that only produced a subsystem report
can run e.g. ``check_regression.py --serve BENCH_serve.json`` alone.

Usage::

    python benchmarks/check_regression.py [current.json] [--list-gates] \
        [--baseline benchmarks/baseline.json] [--tolerance 0.25] \
        [--only SUBSTR] \
        [--phases BENCH_obs.json] [--phases-baseline baseline_obs.json] \
        [--phase-tolerance 0.15] \
        [--absint BENCH_absint.json] [--min-skip 0.30] \
        [--comm BENCH_comm.json] [--comm-min-skip 0.20] \
        [--vector BENCH_vector.json] [--vector-min-speedup 20] \
        [--vector-max-fallback 0.0] \
        [--equiv BENCH_equiv.json] [--equiv-min-skip 0.25] \
        [--capacity BENCH_capacity.json] [--capacity-min-skip 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Tuple

CALIBRATION = "test_bench_calibration"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_PHASES_BASELINE = Path(__file__).resolve().parent / "baseline_obs.json"


def load_report(path: Path, what: str) -> dict:
    """Read and parse one JSON report, failing with a one-line error.

    A missing or malformed report is an operator mistake (wrong path,
    interrupted bench run), not a bug in this gate — so it exits with a
    single clear message instead of a stack trace.
    """
    try:
        text = path.read_text()
    except OSError as error:
        raise SystemExit(
            f"error: cannot read {what} report {path}: "
            f"{error.strerror or error}"
        )
    try:
        document = json.loads(text)
    except ValueError as error:
        raise SystemExit(f"error: malformed JSON in {what} report {path}: {error}")
    if not isinstance(document, dict):
        raise SystemExit(
            f"error: malformed {what} report {path}: expected a JSON object, "
            f"got {type(document).__name__}"
        )
    return document


def load_means(path: Path) -> dict:
    """Map benchmark fullname -> mean seconds from a benchmark-json report."""
    report = load_report(path, "benchmark")
    try:
        return {
            bench["fullname"]: bench["stats"]["mean"]
            for bench in report["benchmarks"]
        }
    except (KeyError, TypeError) as error:
        raise SystemExit(
            f"error: malformed benchmark report {path}: "
            f"missing or mistyped key {error}"
        )


def calibration_time(means: dict) -> float:
    for fullname, mean in means.items():
        if CALIBRATION in fullname:
            return mean
    return 1.0


def phase_share_failures(
    current_path: Path, baseline_path: Path, tolerance: float
) -> list:
    """Engine phases whose share of total time drifted beyond tolerance."""
    current = load_report(current_path, "phase-share").get("phases", {})
    baseline = load_report(baseline_path, "phase-share baseline").get("phases", {})
    failures = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            print(f"  PHASE-NEW {name} (present in one report only, skipped)")
            continue
        delta = current[name]["share"] - baseline[name]["share"]
        verdict = "ok"
        if abs(delta) > tolerance:
            verdict = "DRIFTED"
            failures.append((name, delta))
        print(
            f"  {verdict:10s}{name}: share {baseline[name]['share']:.1%} -> "
            f"{current[name]['share']:.1%} ({delta:+.1%})"
        )
    return failures


def absint_failures(path: Path, min_skip: float) -> list:
    """Soundness and effectiveness gate for the symbolic pruning report."""
    report = load_report(path, "symbolic-pruning")
    failures = []
    if not report["bit_identical"]:
        failures.append(
            "pruned optima differ from exhaustive (soundness violation)"
        )
    skip = report["skip_fraction"]
    verdict = "ok"
    if skip < min_skip:
        verdict = "TOO FEW"
        failures.append(
            f"only {skip:.1%} of cost-model calls avoided (need {min_skip:.0%})"
        )
    print(
        f"  {verdict:10s}{report['sweep']}: bit_identical="
        f"{report['bit_identical']}, {report['calls_avoided']}/"
        f"{report['baseline_cost_model_calls']} calls avoided ({skip:.1%}), "
        f"{report['baseline_wall_seconds']:.2f}s -> "
        f"{report['pruned_wall_seconds']:.2f}s"
    )
    return failures


def comm_failures(path: Path, min_skip: float) -> list:
    """Soundness and effectiveness gate for the comm pruning report."""
    report = load_report(path, "comm-pruning")
    failures = []
    if not report["bit_identical"]:
        failures.append(
            "comm-pruned optima differ on reduction-capable hardware "
            "(soundness violation)"
        )
    skip = report["skip_fraction"]
    verdict = "ok"
    if skip < min_skip:
        verdict = "TOO FEW"
        failures.append(
            f"only {skip:.1%} of cost-model calls avoided on reduction-free "
            f"hardware (need {min_skip:.0%})"
        )
    print(
        f"  {verdict:10s}{report['sweep']}: bit_identical="
        f"{report['bit_identical']}, {report['calls_avoided']}/"
        f"{report['baseline_cost_model_calls']} calls avoided ({skip:.1%}), "
        f"{report['comm_rejects']} comm-race rejects"
    )
    return failures


def vector_failures(path: Path, min_speedup: float, max_fallback: float) -> list:
    """Parity and throughput gate for the vector-engine report.

    Parity violations are deterministic and always fatal; the speedup is
    a same-machine ratio of best-of-N timings (machine-independent by
    construction), so it is gated directly against ``--vector-min-speedup``.
    """
    report = load_report(path, "vector-engine")
    try:
        sweep = report["sweep"]
        speedup = report["speedup"]
        violations = report["parity_violations"]
        checked = report["parity_points_checked"]
        fallback = report["fallback_rate"]
    except KeyError as error:
        raise SystemExit(
            f"error: malformed vector-engine report {path}: missing key {error}"
        )
    failures = []
    verdict = "ok"
    if violations:
        verdict = "MISMATCH"
        failures.append(
            f"{violations} parity violation(s) between the vector and scalar "
            f"engines over {checked} grid points"
        )
    if speedup < min_speedup:
        verdict = "TOO SLOW"
        failures.append(
            f"vector engine only x{speedup:.1f} over scalar "
            f"(need x{min_speedup:.0f})"
        )
    if fallback > max_fallback:
        verdict = "FALLBACKS"
        failures.append(
            f"{fallback:.1%} of points fell back to the scalar engines "
            f"(cap {max_fallback:.0%})"
        )
    print(
        f"  {verdict:10s}{sweep}: x{speedup:.1f} speedup, "
        f"{violations}/{checked} parity violations, "
        f"fallback rate {fallback:.1%}"
    )
    return failures


def serve_failures(path: Path, min_hit: float, max_p99_ms: float) -> list:
    """Parity, cache, and latency gate for the serving-layer report.

    Shard parity and the repeat-query cache-hit ratio are deterministic;
    the p99 gate is wall-clock and deliberately loose — it exists to
    catch order-of-magnitude serving regressions (event-loop stalls,
    lost streaming, accidental sweep-per-request), not millisecond noise.
    """
    report = load_report(path, "serving")
    try:
        parity_ok = report["parity_ok"]
        hit_ratio = report["cache_hit_ratio"]
        p99_ms = report["p99_ms"]
        req_per_sec = report["req_per_sec"]
    except KeyError as error:
        raise SystemExit(
            f"error: malformed serving report {path}: missing key {error}"
        )
    failures = []
    verdict = "ok"
    if not parity_ok:
        verdict = "MISMATCH"
        failures.append(
            "sharded server-side DSE front differs from the in-process "
            "explorer (parity violation)"
        )
    if hit_ratio < min_hit:
        verdict = "COLD"
        failures.append(
            f"repeat-query cache-hit ratio {hit_ratio:.1%} below "
            f"{min_hit:.0%}"
        )
    if p99_ms > max_p99_ms:
        verdict = "TOO SLOW"
        failures.append(
            f"p99 request latency {p99_ms:.1f}ms over the "
            f"{max_p99_ms:.0f}ms cap"
        )
    print(
        f"  {verdict:10s}serve: parity_ok={parity_ok}, "
        f"cache hit {hit_ratio:.1%}, p99 {p99_ms:.1f}ms, "
        f"{req_per_sec:.0f} req/s"
    )
    return failures


def equiv_failures(path: Path, min_skip: float) -> list:
    """Soundness and effectiveness gate for the equivalence-pruning report."""
    report = load_report(path, "equivalence-pruning")
    failures = []
    verdict = "ok"
    if report["parity_violations"] or not report["bit_identical"]:
        verdict = "MISMATCH"
        failures.append(
            "equiv-pruned sweep differs from exhaustive on the enriched "
            "mapping axis (soundness violation)"
        )
    skip = report["skip_fraction"]
    if skip < min_skip:
        verdict = "TOO FEW"
        failures.append(
            f"only {skip:.1%} of cost-model calls avoided via equivalence "
            f"classes (need {min_skip:.0%})"
        )
    print(
        f"  {verdict:10s}{report['sweep']}: bit_identical="
        f"{report['bit_identical']}, {report['calls_avoided']}/"
        f"{report['baseline_cost_model_calls']} calls avoided ({skip:.1%}), "
        f"{report['equiv_replays']} outcomes replayed"
    )
    return failures


def capacity_failures(path: Path, min_skip: float) -> list:
    """Soundness and effectiveness gate for the capacity-pruning report."""
    report = load_report(path, "capacity-pruning")
    failures = []
    verdict = "ok"
    if not report["bit_identical"]:
        verdict = "MISMATCH"
        failures.append(
            "capacity-pruned sweep differs from exhaustive "
            "(soundness violation)"
        )
    skip = report["skip_fraction"]
    if skip < min_skip:
        verdict = "TOO FEW"
        failures.append(
            f"only {skip:.1%} of cost-model calls avoided under the "
            f"capacity-constrained budget (need {min_skip:.0%})"
        )
    print(
        f"  {verdict:10s}{report['sweep']}: bit_identical="
        f"{report['bit_identical']}, {report['calls_avoided']}/"
        f"{report['baseline_cost_model_calls']} calls avoided ({skip:.1%}), "
        f"{report['capacity_rejects']} capacity rejects at area budget "
        f"{report['capped_area_budget']}"
    )
    return failures


@dataclass(frozen=True)
class SubsystemGate:
    """One table entry: a ``--<name> REPORT.json`` gate and its options.

    ``check`` receives the report path plus the parsed argparse namespace
    (so threshold options registered via ``options`` are reachable by
    their dests) and returns a list of failure messages.
    """

    name: str  # flag (--<name>) and argparse dest for the report path
    metavar: str
    help: str
    heading: str  # section header printed before the check runs
    label: str  # "<label> gate failure(s)" in the stderr report
    check: Callable[[Path, argparse.Namespace], list]
    options: Tuple[Tuple[str, dict], ...] = field(default_factory=tuple)


SUBSYSTEM_GATES: Tuple[SubsystemGate, ...] = (
    SubsystemGate(
        name="absint",
        metavar="BENCH_absint.json",
        help="also gate the symbolic-pruning report from bench_absint_pruning.py",
        heading="symbolic branch-and-bound pruning",
        label="symbolic-pruning",
        check=lambda path, args: absint_failures(path, args.min_skip),
        options=(
            (
                "--min-skip",
                dict(
                    type=float,
                    default=0.30,
                    help="minimum fraction of cost-model calls the pruning "
                    "must avoid",
                ),
            ),
        ),
    ),
    SubsystemGate(
        name="comm",
        metavar="BENCH_comm.json",
        help="also gate the comm-capability pruning report from "
        "bench_comm_pruning.py",
        heading="communication-capability pruning",
        label="comm-pruning",
        check=lambda path, args: comm_failures(path, args.comm_min_skip),
        options=(
            (
                "--comm-min-skip",
                dict(
                    type=float,
                    default=0.20,
                    help="minimum fraction of cost-model calls comm pruning "
                    "must avoid on reduction-free hardware",
                ),
            ),
        ),
    ),
    SubsystemGate(
        name="vector",
        metavar="BENCH_vector.json",
        help="also gate the vector-engine parity + throughput report from "
        "bench_vector.py",
        heading="vector-engine parity + throughput",
        label="vector-engine",
        check=lambda path, args: vector_failures(
            path, args.vector_min_speedup, args.vector_max_fallback
        ),
        options=(
            (
                "--vector-min-speedup",
                dict(
                    type=float,
                    default=20.0,
                    help="minimum points/sec speedup of the vector engine "
                    "over the scalar engines (default 20)",
                ),
            ),
            (
                "--vector-max-fallback",
                dict(
                    type=float,
                    default=0.0,
                    help="maximum fraction of points allowed to fall back "
                    "to the scalar engines (default 0)",
                ),
            ),
        ),
    ),
    SubsystemGate(
        name="equiv",
        metavar="BENCH_equiv.json",
        help="also gate the equivalence-pruning parity + effectiveness "
        "report from bench_equiv.py",
        heading="equivalence-class pruning",
        label="equivalence-pruning",
        check=lambda path, args: equiv_failures(path, args.equiv_min_skip),
        options=(
            (
                "--equiv-min-skip",
                dict(
                    type=float,
                    default=0.25,
                    help="minimum fraction of cost-model calls equivalence "
                    "pruning must avoid on the enriched mapping axis "
                    "(default 0.25)",
                ),
            ),
        ),
    ),
    SubsystemGate(
        name="serve",
        metavar="BENCH_serve.json",
        help="also gate the serving-layer parity + cache + latency report "
        "from bench_serve.py",
        heading="analysis server (repro.serve)",
        label="serving",
        check=lambda path, args: serve_failures(
            path, args.serve_min_hit, args.serve_max_p99
        ),
        options=(
            (
                "--serve-min-hit",
                dict(
                    type=float,
                    default=0.9,
                    help="minimum cache-hit ratio on repeated identical "
                    "queries (default 0.9)",
                ),
            ),
            (
                "--serve-max-p99",
                dict(
                    type=float,
                    default=1000.0,
                    help="maximum p99 request latency in milliseconds for "
                    "the warm analyze load (default 1000)",
                ),
            ),
        ),
    ),
    SubsystemGate(
        name="capacity",
        metavar="BENCH_capacity.json",
        help="also gate the capacity-bound pruning parity + effectiveness "
        "report from bench_capacity.py",
        heading="capacity-bound pruning",
        label="capacity-pruning",
        check=lambda path, args: capacity_failures(path, args.capacity_min_skip),
        options=(
            (
                "--capacity-min-skip",
                dict(
                    type=float,
                    default=0.20,
                    help="minimum fraction of cost-model calls capacity "
                    "pruning must avoid under the capacity-constrained "
                    "budget (default 0.20)",
                ),
            ),
        ),
    ),
)


def print_gate_table() -> None:
    """Print the SubsystemGate registry (``--list-gates``)."""
    print("registered subsystem gates:")
    for gate in SUBSYSTEM_GATES:
        print(f"\n  --{gate.name} {gate.metavar}")
        print(f"      section: {gate.heading}")
        print(f"      label:   {gate.label}")
        if not gate.options:
            print("      options: (none)")
        for flag, options in gate.options:
            print(
                f"      option:  {flag} (default {options.get('default')!r})"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "current", type=Path, nargs="?", default=None,
        help="fresh --benchmark-json report (omit to run only subsystem "
        "gates such as --serve)",
    )
    parser.add_argument(
        "--list-gates", action="store_true",
        help="print the registered SubsystemGate table and exit",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--only", default=None, metavar="SUBSTR",
        help="gate only benchmarks whose fullname contains SUBSTR",
    )
    parser.add_argument(
        "--phases", type=Path, default=None, metavar="BENCH_obs.json",
        help="also compare per-engine-phase time shares from obs_phases.py",
    )
    parser.add_argument(
        "--phases-baseline", type=Path, default=DEFAULT_PHASES_BASELINE,
    )
    parser.add_argument(
        "--phase-tolerance", type=float, default=0.15,
        help="allowed absolute drift per phase share (default 0.15)",
    )
    for gate in SUBSYSTEM_GATES:
        parser.add_argument(
            f"--{gate.name}", type=Path, default=None, metavar=gate.metavar,
            help=gate.help,
        )
        for flag, options in gate.options:
            parser.add_argument(flag, **options)
    args = parser.parse_args(argv)

    if args.list_gates:
        print_gate_table()
        return 0
    if args.current is None and args.phases is None and not any(
        getattr(args, gate.name) is not None for gate in SUBSYSTEM_GATES
    ):
        parser.error(
            "nothing to check: pass a benchmark report, --phases, or at "
            "least one subsystem gate (see --list-gates)"
        )

    failures = []
    if args.current is not None:
        baseline = load_means(args.baseline)
        current = load_means(args.current)
        base_cal = calibration_time(baseline)
        cur_cal = calibration_time(current)
        print(f"calibration: baseline {base_cal:.6f}s, current {cur_cal:.6f}s")

        for fullname in sorted(set(baseline) | set(current)):
            if CALIBRATION in fullname:
                continue
            if args.only is not None and args.only not in fullname:
                continue
            if fullname not in baseline:
                print(f"  NEW      {fullname} (no baseline, skipped)")
                continue
            if fullname not in current:
                print(f"  MISSING  {fullname} (not in current run, skipped)")
                continue
            ratio = (current[fullname] / cur_cal) / (baseline[fullname] / base_cal)
            verdict = "ok"
            if ratio > 1.0 + args.tolerance:
                verdict = "REGRESSED"
                failures.append((fullname, ratio))
            print(
                f"  {verdict:10s}{fullname}: {baseline[fullname]:.6f}s -> "
                f"{current[fullname]:.6f}s (normalized x{ratio:.2f})"
            )

    phase_failures = []
    if args.phases is not None:
        print("\nper-engine-phase time shares:")
        phase_failures = phase_share_failures(
            args.phases, args.phases_baseline, args.phase_tolerance
        )

    gate_errors: List[Tuple[SubsystemGate, list]] = []
    for gate in SUBSYSTEM_GATES:
        report_path = getattr(args, gate.name)
        if report_path is None:
            continue
        print(f"\n{gate.heading}:")
        errors = gate.check(report_path, args)
        if errors:
            gate_errors.append((gate, errors))

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%}:", file=sys.stderr,
        )
        for fullname, ratio in failures:
            print(f"  {fullname}: x{ratio:.2f}", file=sys.stderr)
    if phase_failures:
        print(
            f"\n{len(phase_failures)} phase share(s) drifted beyond "
            f"{args.phase_tolerance:.0%}:", file=sys.stderr,
        )
        for name, delta in phase_failures:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
    for gate, errors in gate_errors:
        print(
            f"\n{len(errors)} {gate.label} gate failure(s):",
            file=sys.stderr,
        )
        for message in errors:
            print(f"  {message}", file=sys.stderr)
    if failures or phase_failures or gate_errors:
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
