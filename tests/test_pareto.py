"""Tests for Pareto-front extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.pareto import pareto_front


def test_empty():
    assert pareto_front([], [lambda x: x]) == []


def test_requires_objectives():
    with pytest.raises(ValueError):
        pareto_front([1, 2], [])


def test_single_item():
    assert pareto_front([7], [lambda x: x]) == [7]


def test_two_objectives_front():
    # (cost, delay) points; front: (1, 9), (3, 4), (6, 1).
    points = [(1, 9), (3, 4), (6, 1), (4, 5), (7, 7), (6, 4)]
    front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
    assert sorted(front) == [(1, 9), (3, 4), (6, 1)]


def test_duplicates_kept_once_each(event=None):
    points = [(1, 1), (1, 1), (2, 2)]
    front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
    # The sweep keeps the first (1,1); (2,2) is dominated.
    assert (2, 2) not in front
    assert (1, 1) in front


def test_three_objectives():
    points = [(1, 2, 3), (2, 1, 3), (3, 3, 1), (3, 3, 3)]
    front = pareto_front(
        points, [lambda p: p[0], lambda p: p[1], lambda p: p[2]]
    )
    assert (3, 3, 3) not in front
    assert len(front) == 3


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=40
    )
)
def test_front_members_not_dominated(points):
    front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
    assert front
    for member in front:
        for other in points:
            strictly_better = (
                other[0] <= member[0]
                and other[1] <= member[1]
                and (other[0] < member[0] or other[1] < member[1])
            )
            assert not strictly_better


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=40
    )
)
def test_every_point_dominated_by_front(points):
    front = pareto_front(points, [lambda p: p[0], lambda p: p[1]])
    for point in points:
        assert any(
            member[0] <= point[0] and member[1] <= point[1] for member in front
        )
