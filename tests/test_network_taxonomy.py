"""Tests for Network helpers, the text table, and the Table 4 taxonomy."""

import pytest

from repro.errors import LayerError
from repro.model.layer import conv2d, dwconv, elementwise, fc, pool, pwconv, trconv
from repro.model.network import Network
from repro.model.taxonomy import OperatorClass, classify_layer
from repro.util.text_table import format_table


def small_net():
    return Network(
        name="net",
        layers=(
            conv2d("a", k=4, c=4, y=8, x=8, r=3, s=3),
            pool("p", c=4, y=6, x=6, window=2),
            fc("f", k=10, c=36),
        ),
    )


class TestNetwork:
    def test_iteration_and_len(self):
        net = small_net()
        assert len(net) == 3
        assert [l.name for l in net] == ["a", "p", "f"]

    def test_lookup(self):
        assert small_net().layer("p").operator.name == "POOL"
        with pytest.raises(KeyError):
            small_net().layer("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(LayerError):
            Network(
                name="bad",
                layers=(fc("x", k=2, c=2), fc("x", k=3, c=3)),
            )

    def test_conv_layers_filter(self):
        assert [l.name for l in small_net().conv_layers()] == ["a"]

    def test_subset_preserves_order(self):
        subset = small_net().subset(["f", "a"])
        assert [l.name for l in subset] == ["f", "a"]

    def test_total_ops(self):
        net = small_net()
        assert net.total_ops() == sum(l.total_ops() for l in net)


class TestTaxonomy:
    """Table 4's operator classes."""

    def test_early_conv(self):
        layer = conv2d("e", k=64, c=3, y=224, x=224, r=3, s=3)
        assert classify_layer(layer) is OperatorClass.EARLY_CONV

    def test_late_conv_c_exceeds_y(self):
        layer = conv2d("l", k=512, c=512, y=14, x=14, r=3, s=3)
        assert classify_layer(layer) is OperatorClass.LATE_CONV

    def test_boundary_uses_strict_inequality(self):
        layer = conv2d("b", k=8, c=14, y=14, x=14, r=3, s=3)
        assert classify_layer(layer) is OperatorClass.EARLY_CONV

    def test_grouped_conv_counts_total_channels(self):
        layer = conv2d("g", k=64, c=64, y=14, x=14, r=3, s=3, groups=32)
        assert classify_layer(layer) is OperatorClass.LATE_CONV

    def test_pointwise(self):
        assert classify_layer(pwconv("p", k=8, c=8, y=7, x=7)) is OperatorClass.POINTWISE

    def test_depthwise(self):
        layer = dwconv("d", c=8, y=7, x=7, r=3, s=3, padding=1)
        assert classify_layer(layer) is OperatorClass.DEPTHWISE

    def test_transposed(self):
        layer = trconv("t", k=4, c=4, y=8, x=8, r=2, s=2, upscale=2)
        assert classify_layer(layer) is OperatorClass.TRANSPOSED

    def test_fully_connected(self):
        assert classify_layer(fc("f", k=10, c=20)) is OperatorClass.FULLY_CONNECTED

    def test_residual(self):
        assert classify_layer(elementwise("r", c=8, y=7, x=7)) is OperatorClass.RESIDUAL

    def test_pooling(self):
        assert classify_layer(pool("p", c=8, y=8, x=8, window=2)) is OperatorClass.POOLING


class TestTextTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.0000001], [0.0]])
        assert "e+" in text or "e-" in text
        assert "0" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
