"""Tests for the per-PE mapping enumerator (Figure 6(d) reproduction)."""

import pytest

from repro.dataflow.library import fig5_playground, row_stationary_fig6
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.visualize import enumerate_mappings, mapping_table


@pytest.fixture(scope="module")
def fig6_setup():
    layer = conv2d("fig1", n=2, k=4, c=6, y=8, x=8, r=3, s=3)
    return layer, row_stationary_fig6(), Accelerator(num_pes=6)


def by_pe(mappings, step):
    return {
        mapping.pe_coordinates: mapping.boxes
        for mapping in mappings
        if mapping.step == step
    }


class TestFig6d:
    """The relationships the paper reads off Figure 6(d)."""

    def test_six_pes_enumerated(self, fig6_setup):
        layer, flow, acc = fig6_setup
        mappings = enumerate_mappings(layer, flow, acc, steps=1)
        assert len(mappings) == 6
        assert {m.pe_coordinates for m in mappings} == {
            (c, p) for c in range(2) for p in range(3)
        }

    def test_weights_identical_across_clusters(self, fig6_setup):
        """Same weight set in both clusters -> spatial multicast."""
        layer, flow, acc = fig6_setup
        pes = by_pe(enumerate_mappings(layer, flow, acc, steps=1), 0)
        for pe in range(3):
            assert pes[(0, pe)]["W"] == pes[(1, pe)]["W"]

    def test_weights_differ_by_filter_row_within_cluster(self, fig6_setup):
        layer, flow, acc = fig6_setup
        pes = by_pe(enumerate_mappings(layer, flow, acc, steps=1), 0)
        r_rows = [pes[(0, pe)]["W"][2] for pe in range(3)]
        assert r_rows == [(0, 1), (1, 2), (2, 3)]

    def test_inputs_replicated_diagonally(self, fig6_setup):
        """Cluster 0 / PE i+1 holds the same rows as cluster 1 / PE i."""
        layer, flow, acc = fig6_setup
        pes = by_pe(enumerate_mappings(layer, flow, acc, steps=1), 0)
        for pe in range(2):
            assert pes[(0, pe + 1)]["I"] == pes[(1, pe)]["I"]

    def test_outputs_identical_within_cluster(self, fig6_setup):
        """All PEs of a cluster accumulate the same outputs."""
        layer, flow, acc = fig6_setup
        pes = by_pe(enumerate_mappings(layer, flow, acc, steps=1), 0)
        for cluster in range(2):
            outputs = {pes[(cluster, pe)]["O"] for pe in range(3)}
            assert len(outputs) == 1
        assert pes[(0, 0)]["O"] != pes[(1, 0)]["O"]

    def test_steps_advance_the_mapping(self, fig6_setup):
        layer, flow, acc = fig6_setup
        mappings = enumerate_mappings(layer, flow, acc, steps=2)
        step0 = by_pe(mappings, 0)
        step1 = by_pe(mappings, 1)
        assert step0[(0, 0)]["W"] != step1[(0, 0)]["W"]  # K advanced
        assert step0[(0, 0)]["I"] == step1[(0, 0)]["I"]  # inputs held


class TestFig5Mappings:
    def test_output_stationary_a(self):
        """Figure 5(A): PEs hold distinct output columns, same weights."""
        layer = conv2d("conv1d", k=1, c=1, y=1, x=17, r=1, s=6)
        flow = fig5_playground()["A"]
        pes = by_pe(
            enumerate_mappings(layer, flow, Accelerator(num_pes=3), steps=1), 0
        )
        outputs = [pes[(p,)]["O"][3] for p in range(3)]
        assert outputs == [(0, 1), (1, 2), (2, 3)]
        weights = {pes[(p,)]["W"] for p in range(3)}
        assert len(weights) == 1


class TestMappingTable:
    def test_renders(self, fig6_setup):
        layer, flow, acc = fig6_setup
        text = mapping_table(layer, flow, acc, "W", steps=2)
        assert "W mapping" in text
        assert "0/2" in text

    def test_unknown_tensor_raises(self, fig6_setup):
        layer, flow, acc = fig6_setup
        with pytest.raises(KeyError):
            mapping_table(layer, flow, acc, "Z")
