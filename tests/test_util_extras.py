"""Tests for the ASCII chart helper and the dims module."""

import pytest

from repro.tensors import dims as D
from repro.tensors.dims import base_dim, is_output_coordinate, validate_dim
from repro.util.ascii_chart import bar_chart


class TestDims:
    def test_canonical_count(self):
        assert len(D.CANONICAL_DIMS) == 7

    def test_aliases(self):
        assert D.OUTPUT_DIM_OF[D.Y] == D.YP
        assert D.INPUT_DIM_OF[D.XP] == D.X

    def test_base_dim(self):
        assert base_dim(D.YP) == D.Y
        assert base_dim(D.K) == D.K

    def test_is_output_coordinate(self):
        assert is_output_coordinate(D.YP)
        assert not is_output_coordinate(D.Y)

    def test_validate(self):
        assert validate_dim("K") == "K"
        with pytest.raises(ValueError):
            validate_dim("Z")


class TestBarChart:
    def test_linear(self):
        chart = bar_chart([("a", 10.0), ("bb", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_log_scale(self):
        chart = bar_chart([("x", 10.0), ("y", 1000.0)], width=30, log=True)
        x_bar = chart.splitlines()[0].count("#")
        y_bar = chart.splitlines()[1].count("#")
        assert y_bar == 30
        assert 8 <= x_bar <= 12  # log10(10)/log10(1000) = 1/3 of width

    def test_title(self):
        assert bar_chart([("a", 1.0)], title="T").splitlines()[0] == "T"

    def test_zero_value_has_empty_bar(self):
        chart = bar_chart([("a", 0.0), ("b", 4.0)])
        assert chart.splitlines()[0].count("#") == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 0.0)], log=True)
