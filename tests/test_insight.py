"""Tests for the qualitative reuse classifier."""

import pytest

from repro.dataflow.library import (
    kc_partitioned,
    output_stationary_1level,
    table3_dataflows,
    weight_stationary_1level,
)
from repro.engines.insight import summarize_reuse
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d


@pytest.fixture
def layer():
    return conv2d("l", k=16, c=8, y=18, x=18, r=3, s=3)


class TestInformalStyles:
    def test_weight_stationary_library_flow(self, layer):
        summary = summarize_reuse(layer, weight_stationary_1level(), Accelerator(num_pes=16))
        assert "weight-stationary" in summary.innermost.informal_style

    def test_output_stationary_library_flow(self, layer):
        summary = summarize_reuse(layer, output_stationary_1level(), Accelerator(num_pes=16))
        assert "output-stationary" in summary.innermost.informal_style

    def test_kc_p_inner_reduces(self, layer):
        summary = summarize_reuse(layer, kc_partitioned(c_tile=8), Accelerator(num_pes=64))
        assert summary.levels[1].spatial_reduction


class TestDescribe:
    def test_mentions_levels_and_tensors(self, layer):
        summary = summarize_reuse(layer, kc_partitioned(c_tile=8), Accelerator(num_pes=64))
        text = summary.describe()
        assert "level 0" in text
        assert "level 1" in text

    @pytest.mark.parametrize("name,flow", list(table3_dataflows().items()))
    def test_all_table3_flows_summarize(self, layer, name, flow):
        summary = summarize_reuse(layer, flow, Accelerator(num_pes=64))
        assert summary.dataflow_name == name
        assert summary.describe()
