"""Tests for heterogeneous multi-sub-accelerator analysis."""

import pytest

from repro.dataflow.library import kc_partitioned, yr_partitioned, yx_partitioned
from repro.engines.analysis import analyze_network
from repro.errors import DataflowError, HardwareError
from repro.hardware.accelerator import Accelerator
from repro.hetero import (
    SubAccelerator,
    analyze_heterogeneous,
    split_accelerator,
)
from repro.model.zoo import build


@pytest.fixture(scope="module")
def network():
    return build("mobilenet_v2")


@pytest.fixture(scope="module")
def subs():
    return [
        SubAccelerator("dla", Accelerator(num_pes=128), kc_partitioned(c_tile=16)),
        SubAccelerator("shi", Accelerator(num_pes=128), yx_partitioned()),
    ]


class TestSequential:
    def test_covers_every_layer(self, network, subs):
        result = analyze_heterogeneous(network, subs)
        assert len(result.assignments) == len(network.layers)
        assert sum(result.histogram().values()) == len(network.layers)

    def test_uses_both_partitions(self, network, subs):
        result = analyze_heterogeneous(network, subs)
        assert set(result.histogram()) == {"dla", "shi"}

    def test_beats_either_homogeneous_half(self, network, subs):
        result = analyze_heterogeneous(network, subs)
        for sub in subs:
            single = analyze_network(network, sub.dataflow, sub.accelerator)
            assert result.runtime <= single.runtime * 1.0001

    def test_layerwise_optimal(self, network, subs):
        from repro.engines.analysis import analyze_layer

        result = analyze_heterogeneous(network, subs)
        first = result.assignments[0]
        layer = network.layer(first.layer_name)
        for sub in subs:
            report = analyze_layer(layer, sub.dataflow, sub.accelerator)
            assert first.report.runtime <= report.runtime * 1.0001


class TestPipelined:
    def test_bottleneck_is_max_load(self, network, subs):
        result = analyze_heterogeneous(network, subs, mode="pipelined")
        loads = {}
        for assignment in result.assignments:
            loads[assignment.sub_accelerator] = (
                loads.get(assignment.sub_accelerator, 0.0)
                + assignment.report.runtime
            )
        assert result.runtime == max(loads.values())

    def test_pipelining_beats_sequential_interval(self, network, subs):
        sequential = analyze_heterogeneous(network, subs, mode="sequential")
        pipelined = analyze_heterogeneous(network, subs, mode="pipelined")
        assert pipelined.runtime < sequential.runtime

    def test_utilization_normalized(self, network, subs):
        result = analyze_heterogeneous(network, subs, mode="pipelined")
        utilization = result.utilization_by_partition()
        assert max(utilization.values()) == pytest.approx(1.0)
        assert all(0 < value <= 1.0 for value in utilization.values())


class TestValidation:
    def test_requires_sub_accelerators(self, network):
        with pytest.raises(HardwareError):
            analyze_heterogeneous(network, [])

    def test_unique_names(self, network, subs):
        with pytest.raises(HardwareError):
            analyze_heterogeneous(network, [subs[0], subs[0]])

    def test_unknown_mode(self, network, subs):
        with pytest.raises(ValueError):
            analyze_heterogeneous(network, subs, mode="batch")

    def test_unbindable_everywhere_raises(self, network):
        subs = [
            SubAccelerator(
                "tiny", Accelerator(num_pes=8), kc_partitioned(c_tile=64)
            )
        ]
        with pytest.raises(DataflowError):
            analyze_heterogeneous(network, subs)


class TestSplit:
    def test_shares_partition_pes(self):
        chip = Accelerator(num_pes=256)
        subs = split_accelerator(
            chip,
            {"a": (0.5, kc_partitioned(c_tile=16)), "b": (0.5, yr_partitioned())},
        )
        assert [sub.accelerator.num_pes for sub in subs] == [128, 128]

    def test_over_allocation_rejected(self):
        chip = Accelerator(num_pes=256)
        with pytest.raises(HardwareError):
            split_accelerator(
                chip,
                {"a": (0.7, kc_partitioned()), "b": (0.5, yr_partitioned())},
            )
