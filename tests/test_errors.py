"""Error-path coverage: every failure mode raises the right exception."""

import pytest

from repro.dataflow.dataflow import dataflow
from repro.dataflow.directives import spatial_map, temporal_map
from repro.dataflow.library import kc_partitioned
from repro.engines.binding import bind_dataflow
from repro.errors import (
    BindingError,
    DataflowError,
    DataflowParseError,
    HardwareError,
    LayerError,
    ReproError,
)
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.tensors import dims as D


class TestHierarchy:
    """Everything the package raises derives from ReproError."""

    @pytest.mark.parametrize(
        "exc",
        [BindingError, DataflowError, DataflowParseError, HardwareError, LayerError],
    )
    def test_subclasses(self, exc):
        assert issubclass(exc, ReproError)

    def test_binding_error_is_dataflow_error(self):
        assert issubclass(BindingError, DataflowError)


class TestBindingErrors:
    def test_cluster_exceeds_pes(self):
        layer = conv2d("l", k=8, c=8, y=10, x=10, r=3, s=3)
        with pytest.raises(BindingError) as excinfo:
            bind_dataflow(kc_partitioned(c_tile=64), layer, Accelerator(num_pes=8))
        assert "64 PEs" in str(excinfo.value)

    def test_messages_name_the_layer_and_dataflow(self):
        layer = conv2d("my_layer", k=8, c=8, y=10, x=10, r=3, s=3)
        flow = dataflow(
            "my_flow", temporal_map(1, 1, D.K), temporal_map(2, 2, D.K)
        )
        with pytest.raises(BindingError) as excinfo:
            bind_dataflow(flow, layer, Accelerator(num_pes=4))
        message = str(excinfo.value)
        assert "my_flow" in message and "my_layer" in message

    def test_output_coordinate_dataflow_on_mismatched_axis(self):
        """Mapping X' while also mapping X must fail at construction."""
        with pytest.raises(DataflowError):
            dataflow("bad", spatial_map(1, 1, D.XP), temporal_map(1, 1, D.X))


class TestCaughtByCallers:
    """Search tools must skip, not crash on, unbindable candidates."""

    def test_dse_skips_unbindable(self):
        from repro.dse import explore
        from repro.dse.space import DesignSpace, kc_partitioned_variants

        layer = conv2d("l", k=8, c=8, y=10, x=10, r=3, s=3)
        space = DesignSpace(
            pe_counts=[8],  # KC-P/c64 cannot bind on 8 PEs
            noc_bandwidths=[8],
            dataflow_variants=kc_partitioned_variants(
                c_tiles=(64,), spatial_tiles=((1, 1),)
            ),
        )
        result = explore(layer, space, area_budget=1e9, power_budget=1e9)
        assert result.statistics.evaluated == 0
        assert result.throughput_optimal is None

    def test_adaptive_raises_when_nothing_binds(self):
        from repro.adaptive import adaptive_analysis
        from repro.model.network import Network

        layer = conv2d("l", k=8, c=8, y=10, x=10, r=3, s=3)
        network = Network(name="n", layers=(layer,))
        with pytest.raises(DataflowError):
            adaptive_analysis(
                network, {"KC-P": kc_partitioned(c_tile=64)},
                Accelerator(num_pes=8),
            )


class TestHardwareErrors:
    def test_messages_are_actionable(self):
        with pytest.raises(HardwareError) as excinfo:
            NoC(bandwidth=-3)
        assert "-3" in str(excinfo.value)

    def test_frozen_configs(self):
        accelerator = Accelerator()
        with pytest.raises(Exception):
            accelerator.num_pes = 128  # type: ignore[misc]


class TestLayerErrors:
    def test_kernel_message_names_dimension(self):
        with pytest.raises(LayerError) as excinfo:
            conv2d("bad", k=1, c=1, y=2, x=9, r=3, s=3)
        assert "Y" in str(excinfo.value)
