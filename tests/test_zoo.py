"""Tests for the model zoo: structure and known op counts."""

import pytest

from repro.model.taxonomy import OperatorClass, classify_layer
from repro.model.zoo import MODELS, build
from repro.tensors import dims as D


class TestVGG16:
    def test_thirteen_convs_three_fcs(self, vgg16):
        convs = [l for l in vgg16 if l.name.startswith("CONV")]
        fcs = [l for l in vgg16 if l.name.startswith("FC")]
        assert len(convs) == 13
        assert len(fcs) == 3

    def test_total_macs_about_15_5G(self, vgg16):
        """VGG16 is famously ~15.3-15.5 GMACs of convolution."""
        conv_ops = sum(l.total_ops() for l in vgg16.conv_layers())
        assert 1.4e10 < conv_ops < 1.6e10

    def test_conv2_shape(self, vgg16):
        layer = vgg16.layer("CONV2")
        assert layer.dims[D.K] == 64
        assert layer.dims[D.C] == 64
        assert layer.out_y == 224

    def test_conv11_is_late_layer(self, vgg16):
        assert classify_layer(vgg16.layer("CONV11")) is OperatorClass.LATE_CONV

    def test_conv1_is_early_layer(self, vgg16):
        assert classify_layer(vgg16.layer("CONV1")) is OperatorClass.EARLY_CONV

    def test_fc1_input_is_flattened_pool5(self, vgg16):
        assert vgg16.layer("FC1").dims[D.C] == 512 * 7 * 7


class TestAlexNet:
    def test_conv1_output_is_55(self, alexnet):
        assert alexnet.layer("CONV1").out_y == 55

    def test_grouped_layers(self, alexnet):
        assert alexnet.layer("CONV2").groups == 2
        assert alexnet.layer("CONV3").groups == 1

    def test_total_macs_about_700M(self, alexnet):
        conv_ops = sum(l.total_ops() for l in alexnet.conv_layers())
        assert 6e8 < conv_ops < 8e8


class TestResNet50:
    def test_total_macs_about_4G(self):
        net = build("resnet50")
        assert 3.5e9 < net.total_ops() < 4.5e9

    def test_has_bottleneck_structure(self):
        net = build("resnet50")
        block = [l for l in net if l.name.startswith("CONV2_1")]
        suffixes = {l.name.split("CONV2_1")[1] for l in block}
        assert {"a", "b", "c", "_shortcut", "_add"} <= suffixes

    def test_residual_adds_are_elementwise(self):
        net = build("resnet50")
        add = net.layer("CONV2_1_add")
        assert classify_layer(add) is OperatorClass.RESIDUAL

    def test_stage_extents(self):
        net = build("resnet50")
        assert net.layer("CONV5_3c").out_y == 7


class TestResNeXt50:
    def test_grouped_3x3(self):
        net = build("resnext50")
        conv = net.layer("CONV2_1b")
        assert conv.groups == 32
        # 32x4d: stage-2 bottleneck width 128, 4 channels per group.
        assert conv.dims[D.C] == 4

    def test_more_ops_than_resnet_in_3x3(self):
        resnet = build("resnet50").layer("CONV2_1b").total_ops()
        resnext = build("resnext50").layer("CONV2_1b").total_ops()
        assert resnext != resnet


class TestMobileNetV2:
    def test_depthwise_and_pointwise_present(self, mobilenet_v2):
        classes = {classify_layer(l) for l in mobilenet_v2}
        assert OperatorClass.DEPTHWISE in classes
        assert OperatorClass.POINTWISE in classes
        assert OperatorClass.RESIDUAL in classes

    def test_total_macs_about_300M(self, mobilenet_v2):
        assert 2.5e8 < mobilenet_v2.total_ops() < 3.5e8

    def test_first_block_no_expand(self, mobilenet_v2):
        names = [l.name for l in mobilenet_v2]
        assert "BN1_1_dw" in names
        assert "BN1_1_expand" not in names

    def test_stride_two_blocks_shrink(self, mobilenet_v2):
        assert mobilenet_v2.layer("BN2_1_dw").out_y == 56


class TestUNet:
    def test_contracting_path_extents(self):
        net = build("unet")
        assert net.layer("DOWN1_1").out_y == 570
        assert net.layer("DOWN5_2").out_y == 28

    def test_upconv_doubles(self):
        net = build("unet")
        assert net.layer("UPCONV1").out_y == 56

    def test_final_output_388(self):
        net = build("unet")
        assert net.layer("FINAL").out_y == 388

    def test_transposed_layers_have_structured_sparsity(self):
        net = build("unet")
        assert net.layer("UPCONV2").density("I") < 1.0


class TestDCGAN:
    def test_generator_reaches_64(self):
        net = build("dcgan")
        assert net.layer("CONV4").out_y == 64

    def test_all_convs_transposed(self):
        net = build("dcgan")
        for layer in net.conv_layers():
            assert layer.operator.name == "TRCONV"


class TestRegistry:
    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            build("lenet")

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_all_models_build(self, name):
        net = build(name)
        assert len(net.layers) > 0
        assert net.total_ops() > 0
