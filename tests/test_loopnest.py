"""Tests for the loop-nest to data-centric conversion (Figure 4(b)->(c))."""

import pytest

from repro.dataflow.loopnest import Loop, infer_trip_count, loopnest_to_dataflow
from repro.engines.analysis import analyze_layer
from repro.errors import DataflowError
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.tensors import dims as D


class TestLoop:
    def test_offset_defaults_to_size(self):
        assert Loop(D.X, size=3).offset == 3

    def test_sliding_window_step(self):
        assert Loop(D.Y, size=3, step=1).offset == 1

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            Loop("Q")


class TestConversion:
    def test_sequential_loops_become_temporal_maps(self):
        flow = loopnest_to_dataflow([Loop(D.K, 2), Loop(D.C, 4)])
        maps = flow.map_directives()
        assert [(m.dim, m.size, m.spatial) for m in maps] == [
            (D.K, 2, False), (D.C, 4, False)
        ]

    def test_first_parallel_is_top_spatial(self):
        flow = loopnest_to_dataflow([Loop(D.K, 1, parallel=True), Loop(D.C, 1)])
        assert flow.map_directives()[0].spatial
        assert len(flow.levels()) == 1

    def test_figure4_two_parallel_loops(self):
        """Figure 4(b)'s nest: par_for over X' tiles, then inner par_for.

        for (x'2) par_for(s2) ... par_for(x'1) for(s1) ...
        Our reduced version: outer sequential X' tiles, parallel X'
        chunks, then an inner parallel S level of 3 PEs.
        """
        flow = loopnest_to_dataflow(
            [
                Loop(D.S, size=3),                      # s outer tile
                Loop(D.XP, size=2, parallel=True),      # across PE clusters
                Loop(D.S, size=1, parallel=True, trip_count=3),  # in-cluster
            ],
            name="fig4",
        )
        levels = flow.levels()
        assert len(levels) == 2
        assert levels[0].cluster_size == 3
        assert levels[0].maps[-1].spatial  # X' across clusters
        assert levels[1].maps[0].spatial   # S inside clusters

    def test_second_parallel_requires_trip_count(self):
        with pytest.raises(DataflowError):
            loopnest_to_dataflow(
                [Loop(D.K, parallel=True), Loop(D.C, parallel=True)]
            )

    def test_empty_nest_rejected(self):
        with pytest.raises(DataflowError):
            loopnest_to_dataflow([])

    def test_converted_dataflow_analyzes(self):
        layer = conv2d("l", k=16, c=16, y=12, x=12, r=3, s=3)
        flow = loopnest_to_dataflow(
            [
                Loop(D.K, 1, parallel=True),
                Loop(D.C, 4),
                Loop(D.Y, size=3, step=1),
                Loop(D.X, size=3, step=1),
            ]
        )
        report = analyze_layer(layer, flow, Accelerator(num_pes=16))
        assert report.total_ops == layer.total_ops()

    def test_equivalent_to_hand_written(self):
        """The conversion of a KC-P-like nest matches the library flow."""
        from repro.dataflow.library import kc_partitioned
        from repro.dataflow.directives import Sz

        layer = conv2d("l", k=32, c=32, y=16, x=16, r=3, s=3)
        nest = loopnest_to_dataflow(
            [
                Loop(D.K, 1, parallel=True),
                Loop(D.C, 8),
                Loop(D.R, Sz(D.R)),
                Loop(D.S, Sz(D.S)),
                Loop(D.Y, size=Sz(D.R), step=1),
                Loop(D.X, size=Sz(D.S), step=1),
                Loop(D.C, 1, parallel=True, trip_count=8),
            ]
        )
        acc = Accelerator(num_pes=64)
        converted = analyze_layer(layer, nest, acc)
        library = analyze_layer(layer, kc_partitioned(c_tile=8), acc)
        assert converted.runtime == pytest.approx(library.runtime, rel=0.01)
        assert converted.l2_reads["I"] == pytest.approx(
            library.l2_reads["I"], rel=0.01
        )


class TestTripCount:
    def test_exact_tiling(self):
        assert infer_trip_count(12, 3, 3) == 4

    def test_sliding(self):
        assert infer_trip_count(12, 3, 1) == 10

    def test_oversized(self):
        assert infer_trip_count(4, 8, 8) == 1
