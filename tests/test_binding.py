"""Tests for the cluster-analysis engine (dataflow binding)."""

import pytest

from repro.dataflow.dataflow import dataflow
from repro.dataflow.directives import St, Sz, spatial_map, temporal_map
from repro.dataflow.library import kc_partitioned, yr_partitioned, yx_partitioned
from repro.engines.binding import bind_dataflow
from repro.errors import BindingError
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.tensors import dims as D


@pytest.fixture
def layer():
    return conv2d("l", k=16, c=8, y=18, x=18, r=3, s=3)


class TestWidths:
    def test_single_level_width_is_num_pes(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K), temporal_map(1, 1, D.C))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=64))
        assert bound.num_levels == 1
        assert bound.levels[0].width == 64

    def test_two_level_widths(self, layer):
        bound = bind_dataflow(kc_partitioned(c_tile=8), layer, Accelerator(num_pes=64))
        assert bound.levels[0].width == 8  # 64 / Cluster(8)
        assert bound.levels[1].width == 8

    def test_cluster_larger_than_pes_rejected(self, layer):
        with pytest.raises(BindingError):
            bind_dataflow(kc_partitioned(c_tile=64), layer, Accelerator(num_pes=32))

    def test_non_divisible_pes_leaves_idle(self, layer):
        bound = bind_dataflow(kc_partitioned(c_tile=8), layer, Accelerator(num_pes=60))
        assert bound.levels[0].width == 7
        assert bound.used_pes == 56

    def test_symbolic_cluster_size(self, layer):
        bound = bind_dataflow(yr_partitioned(), layer, Accelerator(num_pes=63))
        assert bound.levels[1].width == 3  # Cluster(Sz(R))
        assert bound.levels[0].width == 21


class TestDirectiveBinding:
    def test_symbolic_sizes_resolve(self, layer):
        flow = dataflow(
            "f",
            spatial_map(1, 1, D.K),
            temporal_map(Sz(D.R), Sz(D.R), D.R),
        )
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        assert bound.levels[0].directive_for(D.R).size == 3

    def test_size_clamped_to_local(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K), temporal_map(64, 64, D.C))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        # C is only 8 in the layer.
        assert bound.levels[0].directive_for(D.C).size == 8
        assert bound.levels[0].directive_for(D.C).steps == 1

    def test_temporal_steps_counted(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K), temporal_map(2, 2, D.C))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        assert bound.levels[0].directive_for(D.C).steps == 4

    def test_missing_dims_inferred_single_step(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        level = bound.levels[0]
        assert level.directive_for(D.C).steps == 1
        assert level.directive_for(D.C).size == 8
        assert level.directive_for(D.Y).size == 18

    def test_duplicate_dim_rejected(self, layer):
        flow = dataflow("f", temporal_map(1, 1, D.K), temporal_map(2, 2, D.K))
        with pytest.raises(BindingError):
            bind_dataflow(flow, layer, Accelerator(num_pes=4))

    def test_local_sizes_flow_to_inner_level(self, layer):
        bound = bind_dataflow(kc_partitioned(c_tile=8), layer, Accelerator(num_pes=64))
        assert bound.levels[1].local_sizes[D.C] == 8
        assert bound.levels[1].local_sizes[D.K] == 1


class TestSpatialFolding:
    def test_folds_when_chunks_exceed_width(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K))  # 16 chunks
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        level = bound.levels[0]
        assert level.spatial_chunks == 16
        assert level.folds == 4
        assert level.directive_for(D.K).steps == 4

    def test_partial_last_fold_average_activity(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.C))  # 8 chunks on 6 PEs
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=6))
        level = bound.levels[0]
        assert level.folds == 2
        assert level.avg_active == pytest.approx(4.0)

    def test_under_filled_array(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.C))  # 8 chunks on 64 PEs
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=64))
        assert bound.levels[0].avg_active == pytest.approx(8.0)

    def test_no_spatial_map_means_one_active(self, layer):
        flow = dataflow("f", temporal_map(1, 1, D.K))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=16))
        assert bound.levels[0].avg_active == 1.0

    def test_joint_spatial_maps_fold_together(self, layer):
        bound = bind_dataflow(yr_partitioned(), layer, Accelerator(num_pes=9))
        inner = bound.levels[1]
        assert inner.folds == 1
        assert inner.spatial_offsets[D.Y] == 1
        assert inner.spatial_offsets[D.R] == 1


class TestStrideHandling:
    def test_explicit_st_offset_advances_one_output_row(self):
        layer = conv2d("s", k=4, c=4, y=227, x=227, r=11, s=11, stride=4)
        flow = dataflow(
            "f", spatial_map(Sz(D.R), St(D.Y), D.Y), temporal_map(1, 1, D.K)
        )
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=8))
        directive = bound.levels[0].directive_for(D.Y)
        assert directive.offset == 4
        # chunks = output rows = 55
        assert directive.chunks == 55

    def test_literal_offsets_stay_in_input_units(self):
        # Offsets are never scaled implicitly: a literal 1 on Y advances
        # one *input* row even on a strided layer (the diagonal-walk
        # spelling YR-P's inner cluster relies on).
        layer = conv2d("s", k=4, c=4, y=227, x=227, r=11, s=11, stride=4)
        flow = dataflow("f", spatial_map(Sz(D.R), 1, D.Y), temporal_map(1, 1, D.K))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=8))
        assert bound.levels[0].directive_for(D.Y).offset == 1

    def test_output_dim_offsets_unscaled(self):
        layer = conv2d("s", k=4, c=4, y=227, x=227, r=11, s=11, stride=4)
        flow = dataflow("f", spatial_map(1, 1, D.YP), temporal_map(1, 1, D.K))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=8))
        assert bound.levels[0].directive_for(D.YP).offset == 1


class TestRepresentation:
    def test_input_representation_detected(self, layer):
        bound = bind_dataflow(kc_partitioned(c_tile=8), layer, Accelerator(num_pes=64))
        assert bound.row_rep == "input"
        assert bound.col_rep == "input"

    def test_output_representation_detected(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.XP), temporal_map(1, 1, D.S))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        assert bound.col_rep == "output"
        assert bound.row_rep == "input"


class TestSweepCounts:
    def test_sweep_steps_product(self, layer):
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),  # 16 steps
            temporal_map(2, 2, D.C),  # 4 steps
            spatial_map(1, 1, D.YP),  # 16 chunks / 8 PEs = 2 folds
        )
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=8))
        assert bound.levels[0].sweep_steps == 16 * 4 * 2

    def test_utilization_accounts_for_folds(self, layer):
        bound = bind_dataflow(yx_partitioned(), layer, Accelerator(num_pes=64))
        assert 0 < bound.average_utilization() <= 1
