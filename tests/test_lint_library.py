"""Golden lint check: every stock mapping the library ships must be
diagnostic-error-free against every model in the zoo, and its warning
profile must stay inside a reviewed golden set."""

import pytest

from repro.dataflow.library import (
    fig5_playground,
    output_stationary_1level,
    row_stationary_fig6,
    table3_dataflows,
    weight_stationary_1level,
)
from repro.hardware.accelerator import Accelerator
from repro.lint import lint_dataflow
from repro.model.zoo import MODELS, build

ACCELERATOR = Accelerator(num_pes=256)


def stock_mappings():
    flows = dict(table3_dataflows())
    flows.update({f"fig5-{key}": flow for key, flow in fig5_playground().items()})
    flows["RS"] = row_stationary_fig6()
    flows["WS-K"] = weight_stationary_1level()
    flows["OS-YX"] = output_stationary_1level()
    return flows


#: Reviewed non-error codes each stock mapping may emit somewhere in the
#: zoo. DF009 (under-utilization) and DF018 (idle level) are expected:
#: small layers cannot fill 256 PEs. DF008 fires for RS/YR-P/fig5-F whose
#: cluster sizes track Sz(R), which rarely divides 256. The fig5 flows
#: deliberately map only a subset of dims (DF006). DF102 is the coverage
#: verifier's proven-covered INFO and fires on every sound mapping.
#: DF303 fires for the sliding-window flows whose input forwarding chain
#: outgrows a 16-PE row on large layers; RS adds DF302 on 1x1-kernel
#: layers where its joint SpatialMap over R degenerates to one chunk.
#: The equivalence analyzer adds DF400 wherever a flow spells an
#: explicit whole-extent TemporalMap (all stock flows except fig5-C/D/E
#: do, for readability), DF401 for RS/YR-P whose spatial slots are not
#: in canonical (dim, size, offset) order, and DF403 everywhere: on
#: small zoo layers some *other* stock flow certifiably dominates.
#: The capacity analyzer adds DF504 (certified bandwidth-bound, INFO)
#: on every flow that maps all dims: some zoo layer's communication
#: floor exceeds its compute floor at the default NoC bandwidth. The
#: fig5-C/D/E teaching flows replicate so much data that their compute
#: floor (schedule states x chunk delay) always dominates instead.
GOLDEN_WARNINGS = {
    "C-P": {"DF009", "DF018", "DF102", "DF400", "DF403", "DF504"},
    "X-P": {"DF009", "DF018", "DF102", "DF303", "DF400", "DF403", "DF504"},
    "YX-P": {"DF009", "DF018", "DF102", "DF303", "DF400", "DF403", "DF504"},
    "YR-P": {
        "DF008", "DF009", "DF018", "DF102", "DF303", "DF400", "DF401",
        "DF403", "DF504",
    },
    "KC-P": {"DF009", "DF018", "DF102", "DF400", "DF403", "DF504"},
    "RS": {
        "DF008", "DF009", "DF018", "DF101", "DF102", "DF302", "DF303",
        "DF400", "DF401", "DF403", "DF504",
    },
    "WS-K": {"DF009", "DF018", "DF102", "DF400", "DF403", "DF504"},
    "OS-YX": {"DF009", "DF018", "DF102", "DF303", "DF400", "DF403", "DF504"},
    "fig5-A": {"DF006", "DF009", "DF018", "DF102", "DF400", "DF403", "DF504"},
    "fig5-B": {"DF006", "DF009", "DF018", "DF102", "DF400", "DF403", "DF504"},
    "fig5-C": {"DF006", "DF009", "DF018", "DF102", "DF403"},
    "fig5-D": {"DF006", "DF009", "DF018", "DF102", "DF403"},
    "fig5-E": {"DF006", "DF009", "DF018", "DF102", "DF403"},
    "fig5-F": {
        "DF006", "DF008", "DF009", "DF018", "DF102", "DF303", "DF400",
        "DF403", "DF504",
    },
}

#: Latent coverage gaps the iteration-space verifier (repro.verify)
#: uncovered in the stock library, confirmed by brute-force execution
#: of the binding semantics. Each mapping is sound only inside its
#: design envelope; outside it, DF101 (a *proven* error) may fire:
#:
#: * RS hardcodes Figure 6's 3x3 tile sizes, so kernels other than 3x3
#:   are mis-tiled.
#:
#: YR-P used to carry a stride envelope here: the binding scaled Y/X
#: offsets by the layer stride at *every* cluster level, so the inner
#: diagonal (Y, R) walk advanced ``stride`` input rows per PE and
#: skipped output rows on all strided zoo layers. Offsets are now pure
#: input-unit quantities (library mappings spell ``St(Y)``/``St(X)``
#: explicitly where a walk advances output positions), which also
#: removed the stride clause from RS's envelope — strided 3x3 layers
#: are proven.
#:
#: ``envelope(layer) == True`` means the layer is inside the mapping's
#: design envelope and DF101 must NOT fire. Outside the envelope the
#: mapping may still cover degenerate layers, so only the implication
#: "DF101 => outside envelope" is asserted.
KNOWN_COVERAGE_GAPS = {
    "RS": lambda layer: (
        layer.dim_size("R") == 3 and layer.dim_size("S") == 3
    ),
}


def test_golden_covers_every_stock_mapping():
    assert set(GOLDEN_WARNINGS) == set(stock_mappings())


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("flow_name", sorted(GOLDEN_WARNINGS))
def test_library_mapping_is_error_free(model_name, flow_name):
    flow = stock_mappings()[flow_name]
    network = build(model_name)
    envelope = KNOWN_COVERAGE_GAPS.get(flow_name)
    observed = set()
    for layer in network.layers:
        report = lint_dataflow(flow, layer, ACCELERATOR)
        unexpected_errors = [
            d
            for d in report.errors
            if not (d.code == "DF101" and envelope is not None and not envelope(layer))
        ]
        assert not unexpected_errors, (
            f"{flow_name} on {model_name}/{layer.name}: "
            f"{[d.headline() for d in unexpected_errors]}"
        )
        observed |= set(report.codes())
    unexpected = observed - GOLDEN_WARNINGS[flow_name]
    assert not unexpected, (
        f"{flow_name} on {model_name} emits codes outside the golden set: "
        f"{sorted(unexpected)}"
    )
