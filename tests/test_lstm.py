"""Tests for LSTM layers (abstract: "convolutions, LSTMs, FC layers")."""

from repro.dataflow.library import kc_partitioned, table3_dataflows
from repro.engines.analysis import analyze_layer, analyze_network
from repro.hardware.accelerator import Accelerator
from repro.model.lstm import lstm_cell_layers, lstm_network


class TestCell:
    def test_fused_cell_structure(self):
        layers = lstm_cell_layers("cell", input_size=256, hidden_size=512)
        names = [layer.name for layer in layers]
        assert names == ["cell_x", "cell_h", "cell_gates"]
        assert layers[0].dims["K"] == 4 * 512
        assert layers[0].dims["C"] == 256
        assert layers[1].dims["C"] == 512

    def test_unfused_cell_has_eight_gemms(self):
        layers = lstm_cell_layers("cell", 256, 512, fused=False)
        gemms = [l for l in layers if l.operator.name == "FC"]
        assert len(gemms) == 8

    def test_fused_equals_unfused_total_macs(self):
        fused = lstm_cell_layers("a", 256, 512, fused=True)
        unfused = lstm_cell_layers("b", 256, 512, fused=False)
        fused_macs = sum(l.total_ops() for l in fused if l.operator.name == "FC")
        unfused_macs = sum(l.total_ops() for l in unfused if l.operator.name == "FC")
        assert fused_macs == unfused_macs

    def test_cell_mac_count(self):
        layers = lstm_cell_layers("cell", 128, 128, batch=2)
        gemm_macs = sum(l.total_ops() for l in layers if l.operator.name == "FC")
        assert gemm_macs == 2 * (4 * 128 * 128 + 4 * 128 * 128)


class TestNetwork:
    def test_unrolled_structure(self):
        network = lstm_network(num_layers=2, seq_len=3, hidden_size=64, input_size=32)
        assert len(network.layers) == 3 * 2 * 3  # steps x layers x (x,h,gates)
        # Layer 1 at every step consumes the hidden size, not the input.
        assert network.layer("T0_L1_x").dims["C"] == 64
        assert network.layer("T0_L0_x").dims["C"] == 32

    def test_analyzes_under_every_table3_dataflow(self):
        network = lstm_network(num_layers=1, seq_len=1, hidden_size=128, input_size=128)
        accelerator = Accelerator(num_pes=64)
        for name, flow in table3_dataflows().items():
            result = analyze_network(network, flow, accelerator)
            assert result.runtime > 0, name

    def test_gemm_heavy_profile(self):
        """An LSTM is >99% GEMM compute (the hidden-layer GEMMs)."""
        network = lstm_network()
        gemm = sum(
            l.total_ops() for l in network.layers if l.operator.name == "FC"
        )
        assert gemm / network.total_ops() > 0.99

    def test_gemms_are_weight_bandwidth_bound(self):
        """Batch-1 GEMMs reuse no weights: throughput tracks the NoC.

        Every MAC consumes a fresh weight, so sustained MACs/cycle is
        capped near the NoC bandwidth in elements/cycle — and doubling
        the bandwidth roughly doubles the throughput.
        """
        from repro.hardware.accelerator import NoC

        layer = lstm_network(seq_len=1, num_layers=1).layer("T0_L0_h")
        narrow = Accelerator(num_pes=256, noc=NoC(bandwidth=16))
        wide = Accelerator(num_pes=256, noc=NoC(bandwidth=64))
        flow = kc_partitioned(c_tile=64)
        narrow_report = analyze_layer(layer, flow, narrow)
        wide_report = analyze_layer(layer, flow, wide)
        assert narrow_report.throughput <= 2.5 * narrow.noc.bandwidth
        assert wide_report.throughput > 1.5 * narrow_report.throughput
