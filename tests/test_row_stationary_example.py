"""Reproduction of Figure 6: the extended row-stationary example.

Figure 6 maps the Figure 1 convolution (N=2? the figure uses a 6-PE
slice; we use the layer as drawn: K=4, C=6, 8x8 inputs, 3x3 filters)
onto six PEs in two clusters of three and observes:

- filter weights are reused across time (weight-stationary in unit
  steps, horizontal reuse direction);
- input activations are reused diagonally (the same rows appear in
  both clusters, shifted);
- all PEs in a cluster produce partial sums for the same outputs
  (vertical accumulation — spatial reduction).
"""

import pytest

from repro.dataflow.library import row_stationary_fig6
from repro.engines.analysis import analyze_layer
from repro.engines.binding import bind_dataflow
from repro.engines.insight import summarize_reuse
from repro.engines.reuse import analyze_level_reuse
from repro.engines.tensor_analysis import analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.tensors import dims as D


@pytest.fixture(scope="module")
def layer():
    # Figure 1's example convolution.
    return conv2d("fig1", n=2, k=4, c=6, y=8, x=8, r=3, s=3)


@pytest.fixture(scope="module")
def accelerator():
    return Accelerator(num_pes=6)


@pytest.fixture(scope="module")
def flow():
    return row_stationary_fig6()


class TestStructure:
    def test_two_clusters_of_three(self, layer, accelerator, flow):
        bound = bind_dataflow(flow, layer, accelerator)
        assert bound.levels[0].width == 2
        assert bound.levels[1].width == 3

    def test_inner_level_joint_yr_distribution(self, layer, accelerator, flow):
        bound = bind_dataflow(flow, layer, accelerator)
        inner = bound.levels[1]
        assert inner.spatial_offsets[D.Y] == 1
        assert inner.spatial_offsets[D.R] == 1
        assert inner.folds == 1


class TestReuseDirections:
    def test_weights_temporally_reused(self, layer, accelerator, flow):
        """Horizontal direction: same weights across the X time steps
        (the paper: "weight values are replicated over two time steps
        within the same PE ... weight stationary in unit time steps")."""
        result = summarize_reuse(layer, flow, accelerator)
        assert "W" in result.levels[0].temporally_stationary

    def test_outputs_spatially_reduced_in_cluster(self, layer, accelerator, flow):
        """Vertical direction: PEs in a cluster accumulate the same outputs."""
        result = summarize_reuse(layer, flow, accelerator)
        assert result.levels[1].spatial_reduction

    def test_inputs_shared_diagonally_across_clusters(self, layer, accelerator, flow):
        """Diagonal direction: adjacent clusters overlap on 2 of 3 rows."""
        bound = bind_dataflow(flow, layer, accelerator)
        tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
        reuse = analyze_level_reuse(bound.levels[0], tensors)
        init = reuse.init.traffic["I"]
        # Per-cluster chunk is 3 rows; two clusters shifted by one row
        # cover 4 unique rows: unique < 2x per-cluster volume.
        assert init.unique < 2 * init.fetch
        assert init.unique == pytest.approx(init.fetch / 3 * 4)

    def test_weights_multicast_across_clusters(self, layer, accelerator, flow):
        """Figure 6(d): both clusters hold identical weight sets."""
        bound = bind_dataflow(flow, layer, accelerator)
        tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
        reuse = analyze_level_reuse(bound.levels[0], tensors)
        assert "W" in reuse.multicast_tensors


class TestEndToEnd:
    def test_analyzes(self, layer, accelerator, flow):
        report = analyze_layer(layer, flow, accelerator)
        assert report.total_ops == layer.total_ops()
        assert report.runtime > 0

    def test_matches_reference_simulator(self, layer, accelerator, flow):
        from repro.simulator import simulate_layer

        report = analyze_layer(layer, flow, accelerator)
        sim = simulate_layer(layer, flow, accelerator)
        assert report.runtime == pytest.approx(sim.runtime, rel=0.10)
