"""Tests for adaptive (per-layer best) dataflow selection."""

import pytest

from repro.adaptive import METRICS, adaptive_analysis
from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_network
from repro.hardware.accelerator import Accelerator


@pytest.fixture(scope="module")
def accelerator():
    return Accelerator(num_pes=256)


@pytest.fixture(scope="module")
def network(request):
    from repro.model.zoo import build

    return build("mobilenet_v2")


@pytest.fixture(scope="module")
def adaptive(network, accelerator):
    return adaptive_analysis(network, table3_dataflows(), accelerator, metric="runtime")


class TestAdaptive:
    def test_covers_every_layer(self, adaptive, network):
        assert len(adaptive.choices) == len(network.layers)

    def test_beats_or_matches_every_single_dataflow(self, adaptive, network, accelerator):
        for name, flow in table3_dataflows().items():
            single = analyze_network(network, flow, accelerator)
            assert adaptive.runtime <= single.runtime * 1.0001

    def test_choice_is_layerwise_optimal(self, adaptive, network, accelerator):
        """Spot-check: no other dataflow beats the winner on its layer."""
        from repro.engines.analysis import analyze_layer

        choice = adaptive.choices[0]
        layer = network.layer(choice.layer_name)
        for name, flow in table3_dataflows().items():
            report = analyze_layer(layer, flow, accelerator)
            assert choice.report.runtime <= report.runtime * 1.0001

    def test_histogram_sums_to_layer_count(self, adaptive, network):
        assert sum(adaptive.dataflow_histogram().values()) == len(network.layers)

    def test_meaningful_runtime_reduction(self, adaptive, network, accelerator):
        """The paper's Figure 10(f): adaptive cuts runtime noticeably."""
        best_single = min(
            analyze_network(network, flow, accelerator).runtime
            for flow in table3_dataflows().values()
        )
        assert adaptive.runtime < best_single * 0.9

    def test_energy_metric(self, network, accelerator):
        by_energy = adaptive_analysis(
            network, table3_dataflows(), accelerator, metric="energy"
        )
        by_runtime = adaptive_analysis(
            network, table3_dataflows(), accelerator, metric="runtime"
        )
        assert by_energy.energy_total <= by_runtime.energy_total * 1.0001

    def test_unknown_metric_rejected(self, network, accelerator):
        with pytest.raises(KeyError):
            adaptive_analysis(network, table3_dataflows(), accelerator, metric="area")

    def test_metrics_registry(self):
        assert set(METRICS) == {"runtime", "energy", "edp"}
