"""Tests for the spatial communication analyzer (repro.comm) and its
integrations: classification goldens, the DF300-DF303 lint rules,
``explain_rule``, hardware capability fields, search-loop pruning, and
the CLI surface."""

import json

import pytest

from repro.cli import main
from repro.comm import (
    CommPattern,
    classify_dataflow,
    reduction_demand,
    render_comm_summary,
    render_comm_table,
)
from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import St, Sz, spatial_map, temporal_map
from repro.dataflow.library import (
    kc_partitioned,
    output_stationary_1level,
    row_stationary_fig6,
    table3_dataflows,
    weight_stationary_1level,
)
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.topologies import (
    Bus,
    Crossbar,
    HierarchicalBus,
    Mesh2D,
    SystolicChain,
)
from repro.lint import RULES, SYMBOLIC_RULES, explain_rule, lint_dataflow
from repro.model.layer import conv2d
from repro.model.zoo import build
from repro.tensors import dims as D


@pytest.fixture(scope="module")
def layer():
    return conv2d("comm-layer", k=8, c=8, y=18, x=18, r=3, s=3)


def patterns(analysis, level):
    return {t.tensor: t.pattern for t in analysis.levels[level].tensors}


class TestClassificationGoldens:
    def test_kcp_nvdla_golden(self, layer):
        """The NVDLA-like KC-P flow: input multicast across the K level,
        output reduction fan-in across the inner C cluster."""
        analysis = classify_dataflow(kc_partitioned(), layer)
        assert patterns(analysis, 0) == {
            "W": CommPattern.UNICAST,
            "I": CommPattern.MULTICAST,
            "O": CommPattern.UNICAST,
        }
        assert patterns(analysis, 1) == {
            "W": CommPattern.UNICAST,
            "I": CommPattern.UNICAST,
            "O": CommPattern.REDUCTION,
        }
        assert analysis.requires_spatial_reduction
        assert analysis.requires_multicast
        output = analysis.levels[1].output_comm
        assert output.exact_overlap
        assert output.fan_in == min(
            analysis.levels[1].width, analysis.levels[1].spatial_chunks
        )

    def test_weight_stationary_input_multicast(self, layer):
        analysis = classify_dataflow(weight_stationary_1level(), layer)
        assert patterns(analysis, 0)["I"] is CommPattern.MULTICAST
        assert patterns(analysis, 0)["W"] is CommPattern.UNICAST
        assert not analysis.requires_spatial_reduction

    def test_output_stationary_forwarding(self, layer):
        """OS-YX spatially slides Y: weights identical (multicast),
        overlapping input rows forward between neighbors, outputs stay
        private."""
        analysis = classify_dataflow(output_stationary_1level(), layer)
        got = patterns(analysis, 0)
        assert got["W"] is CommPattern.MULTICAST
        assert got["I"] is CommPattern.FORWARDING
        assert got["O"] is CommPattern.UNICAST
        # Sliding window Sz(R)=3, offset St(Y)=1: 3 neighbors share a row.
        forwarding = next(
            t for t in analysis.levels[0].tensors if t.tensor == "I"
        )
        assert forwarding.degree == 3

    def test_row_stationary_inner_reduction(self, layer):
        analysis = classify_dataflow(row_stationary_fig6(), layer)
        outer = patterns(analysis, 0)
        assert outer["W"] is CommPattern.MULTICAST
        assert outer["I"] is CommPattern.FORWARDING
        inner = analysis.levels[1]
        assert inner.output_comm.pattern is CommPattern.REDUCTION
        assert inner.output_comm.fan_in == 3

    def test_every_library_flow_classifies(self, layer):
        flows = dict(table3_dataflows())
        flows["RS"] = row_stationary_fig6()
        flows["WS"] = weight_stationary_1level()
        flows["OS"] = output_stationary_1level()
        for name, flow in flows.items():
            analysis = classify_dataflow(flow, layer)
            assert analysis.levels, name
            for level in analysis.levels:
                for tensor in level.tensors:
                    assert tensor.provenance.startswith("static:"), name
                    assert tensor.degree_formula, name

    def test_to_dict_and_render(self, layer):
        analysis = classify_dataflow(kc_partitioned(), layer)
        payload = analysis.to_dict()
        assert payload["requires_spatial_reduction"] is True
        assert payload["pattern_counts"]["multicast"] >= 1
        json.dumps(payload)  # must be JSON-serializable
        table = render_comm_table(analysis)
        assert "multicast" in table and "reduction" in table
        assert "needs reduction tree" in render_comm_summary(analysis)

    def test_reduction_demand_kcp(self, layer):
        demand = reduction_demand(kc_partitioned(), layer)
        assert demand.inner  # the C cluster races at any PE count
        assert demand.races_on(demand.required_pes)
        assert demand.races_on(4 * demand.required_pes)

    def test_reduction_demand_top_only(self, layer):
        demand = reduction_demand(output_stationary_1level(), layer)
        assert not demand.inner
        assert not demand.races_on(demand.required_pes)


class TestCommRules:
    def racy_hw(self, **kwargs):
        return Accelerator(num_pes=256, spatial_reduction=False, **kwargs)

    def test_df300_fires_without_reduction_support(self, layer):
        report = lint_dataflow(kc_partitioned(), layer, self.racy_hw())
        found = [d for d in report.diagnostics if d.code == "DF300"]
        assert len(found) == 1
        assert found[0].is_error
        assert "write-write race" in found[0].message
        assert found[0].fixit is not None
        assert "TemporalMap" in found[0].fixit.description

    def test_df300_silent_on_capable_hardware(self, layer):
        report = lint_dataflow(
            kc_partitioned(), layer, Accelerator(num_pes=256)
        )
        assert not [d for d in report.diagnostics if d.code == "DF300"]

    def test_df301_reports_duplication_factor(self, layer):
        accelerator = Accelerator(num_pes=256).with_noc(multicast=False)
        report = lint_dataflow(kc_partitioned(), layer, accelerator)
        found = [d for d in report.diagnostics if d.code == "DF301"]
        assert found and "I x4" in found[0].message

    def test_df301_silent_with_multicast(self, layer):
        report = lint_dataflow(
            kc_partitioned(), layer, Accelerator(num_pes=256)
        )
        assert not [d for d in report.diagnostics if d.code == "DF301"]

    def test_df302_degenerate_joint_spatial(self):
        layer = conv2d("deg", k=8, c=1, y=12, x=12, r=3, s=3)
        flow = Dataflow(
            name="joint",
            directives=(
                temporal_map(1, 1, D.N),
                spatial_map(1, 1, D.K),
                spatial_map(1, 1, D.C),  # C extent 1: single chunk
                temporal_map(Sz(D.R), St(D.Y), D.Y),
                temporal_map(Sz(D.S), St(D.X), D.X),
                temporal_map(Sz(D.R), Sz(D.R), D.R),
                temporal_map(Sz(D.S), Sz(D.S), D.S),
            ),
        )
        report = lint_dataflow(flow, layer, Accelerator(num_pes=64))
        found = [d for d in report.diagnostics if d.code == "DF302"]
        assert found and "SpatialMap on C" in found[0].message
        assert found[0].fixit.replacement == "TemporalMap(1,1) C"

    def test_df303_chain_longer_than_row(self):
        layer = conv2d("chain", k=4, c=4, y=18, x=18, r=3, s=3)
        report = lint_dataflow(
            output_stationary_1level(), layer, Accelerator(num_pes=4)
        )
        found = [d for d in report.diagnostics if d.code == "DF303"]
        assert found and "forwards I" in found[0].message

    def test_df303_silent_when_chain_fits(self):
        layer = conv2d("chain", k=4, c=4, y=18, x=18, r=3, s=3)
        report = lint_dataflow(
            output_stationary_1level(), layer, Accelerator(num_pes=1024)
        )
        assert not [d for d in report.diagnostics if d.code == "DF303"]


class TestExplain:
    @pytest.mark.parametrize(
        "code", sorted(set(RULES) | set(SYMBOLIC_RULES))
    )
    def test_every_rule_explains(self, code):
        text = explain_rule(code)
        assert text.startswith(code)
        assert "severity:" in text
        assert "provenance:" in text
        # every registered check carries a real docstring
        assert len(text.splitlines()) > 5, f"{code} has no documentation"

    def test_case_insensitive(self):
        assert explain_rule("df300") == explain_rule("DF300")

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError, match="DF300"):
            explain_rule("DF999")


class TestCapabilities:
    def test_defaults(self):
        accelerator = Accelerator(num_pes=64)
        assert accelerator.reduction_support
        assert accelerator.multicast_support
        assert accelerator.capabilities() == {
            "reduction_support": True,
            "multicast_support": True,
        }

    def test_single_source_of_truth(self):
        accelerator = Accelerator(
            num_pes=64,
            spatial_reduction=False,
            noc=NoC(bandwidth=32, multicast=False),
        )
        assert not accelerator.reduction_support
        assert not accelerator.multicast_support
        flipped = accelerator.with_noc(multicast=True)
        assert flipped.multicast_support
        assert not flipped.reduction_support

    @pytest.mark.parametrize(
        "topology,expected",
        [
            (Bus(8), False),
            (HierarchicalBus(8), True),
            (Crossbar(8), False),
            (Mesh2D(4, 4), False),
            (SystolicChain(16), True),
        ],
    )
    def test_topology_presets(self, topology, expected):
        assert topology.supports_reduction() is expected
        accelerator = topology.as_accelerator(64)
        assert accelerator.reduction_support is expected
        assert accelerator.capabilities()["reduction_support"] is expected

    def test_topology_override(self):
        accelerator = Bus(8).as_accelerator(64, spatial_reduction=True)
        assert accelerator.reduction_support


class TestSearchPruning:
    @pytest.fixture(scope="class")
    def space(self):
        from repro.dse.space import (
            DesignSpace,
            default_bandwidths,
            kc_partitioned_variants,
        )

        return DesignSpace(
            pe_counts=(32, 64, 128),
            noc_bandwidths=default_bandwidths(64),
            dataflow_variants=kc_partitioned_variants(),
        )

    def test_dse_bit_identical_on_capable_hardware(self, space):
        from repro.dse import explore

        layer = build("vgg16").layer("CONV11")
        plain = explore(layer, space, area_budget=16.0, power_budget=450.0)
        pruned = explore(
            layer, space, area_budget=16.0, power_budget=450.0, comm_prune=True
        )
        assert pruned.statistics.comm_rejects == 0
        assert pruned.throughput_optimal == plain.throughput_optimal
        assert pruned.energy_optimal == plain.energy_optimal
        assert pruned.edp_optimal == plain.edp_optimal

    def test_dse_prunes_races_on_reduction_free_hardware(self, space):
        from repro.dse import explore

        layer = build("vgg16").layer("CONV11")
        result = explore(
            layer,
            space,
            area_budget=16.0,
            power_budget=450.0,
            spatial_reduction=False,
            comm_prune=True,
        )
        # every KC-P variant spatially reduces C, so everything not
        # already lint-rejected is a proven write-race
        stats = result.statistics
        assert stats.comm_rejects > 0
        assert stats.cost_model_calls == 0
        assert stats.evaluated == 0

    def test_tuner_identical_on_capable_hardware(self):
        from repro.tuner import tune_layer

        layer = conv2d("tune", k=16, c=8, y=12, x=12, r=3, s=3)
        accelerator = Accelerator(num_pes=64)
        plain = tune_layer(layer, accelerator, strategy="random", budget=30)
        pruned = tune_layer(
            layer, accelerator, strategy="random", budget=30, comm_prune=True
        )
        assert pruned.comm_rejected == 0
        assert pruned.best.spec == plain.best.spec
        assert pruned.best.score == plain.best.score

    def test_tuner_screens_races(self):
        from repro.tuner import tune_layer

        layer = conv2d("tune", k=16, c=8, y=12, x=12, r=3, s=3)
        accelerator = Accelerator(num_pes=64, spatial_reduction=False)
        result = tune_layer(
            layer, accelerator, strategy="random", budget=30, comm_prune=True
        )
        assert result.comm_rejected > 0
        # every survivor is certified race-free on this hardware
        for candidate in result.top:
            analysis = classify_dataflow(candidate.dataflow, layer, accelerator)
            assert not analysis.requires_spatial_reduction


class TestCommCLI:
    def test_lint_explain(self, capsys):
        assert main(["lint", "--explain", "DF300"]) == 0
        out = capsys.readouterr().out
        assert "DF300" in out and "reduction tree" in out

    def test_lint_explain_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown lint rule"):
            main(["lint", "--explain", "DF999"])

    def test_lint_requires_target_or_explain(self):
        with pytest.raises(SystemExit, match="--explain"):
            main(["lint"])

    def test_lint_comm_view(self, capsys):
        code = main(
            ["lint", "KC-P", "--model", "vgg16", "--comm",
             "--no-spatial-reduction"]
        )
        assert code == 1  # DF300 is an error
        out = capsys.readouterr().out
        assert "DF300" in out
        assert "communication: KC-P" in out

    def test_analyze_comm_json(self, capsys):
        code = main(
            ["analyze", "--model", "vgg16", "--layer", "CONV1",
             "--dataflow", "KC-P", "--comm", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["requires_spatial_reduction"] is True

    def test_analyze_comm_symbolic_conflict(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                ["analyze", "--model", "vgg16", "--dataflow", "KC-P",
                 "--comm", "--symbolic"]
            )

    def test_verify_comm(self, capsys):
        assert main(["verify", "--comm", "KC-P", "OS-YX"]) == 0
        out = capsys.readouterr().out
        assert "AGREE" in out and "DISAGREE" not in out

    def test_dse_comm_prune_flags(self, capsys):
        code = main(
            ["dse", "--model", "vgg16", "--layer", "CONV13",
             "--dataflow", "KC-P", "--max-pes", "64", "--pe-step", "32",
             "--no-spatial-reduction", "--comm-prune"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "comm-race pruned" in out

    def test_tune_comm_prune_flags(self, capsys):
        code = main(
            ["tune", "--model", "vgg16", "--layer", "CONV13", "--pes", "64",
             "--strategy", "random", "--budget", "20",
             "--no-spatial-reduction", "--comm-prune"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "comm-race screened" in out
