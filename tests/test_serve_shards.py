"""Sharded sweep correctness: partitioning, parity, cancellation."""

from __future__ import annotations

import threading

import pytest

from repro.dse.explorer import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
)
from repro.exec import AnalysisCache
from repro.serve.shards import (
    ShardUpdate,
    SweepCancelled,
    merge_shard_results,
    shard_pe_counts,
    shard_spaces,
    sharded_explore,
)


AREA, POWER = 16.0, 450.0


@pytest.fixture(scope="module")
def small_space():
    return DesignSpace(
        pe_counts=default_pe_counts(max_pes=64, step=16),
        noc_bandwidths=default_bandwidths(16),
        dataflow_variants=kc_partitioned_variants(),
    )


@pytest.fixture(scope="module")
def conv_layer(vgg16):
    return vgg16.layer("CONV1")


class TestPartitioning:
    def test_blocks_are_contiguous_and_complete(self):
        counts = list(range(8, 264, 8))
        blocks = shard_pe_counts(counts, 5)
        assert [pe for block in blocks for pe in block] == counts
        assert len(blocks) == 5
        sizes = [len(block) for block in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_points_collapses(self):
        blocks = shard_pe_counts([8, 16], 16)
        assert blocks == [[8], [16]]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_pe_counts([8], 0)

    def test_shard_spaces_keep_other_axes(self, small_space):
        spaces = shard_spaces(small_space, 3)
        assert len(spaces) == 3
        for shard in spaces:
            assert shard.noc_bandwidths == small_space.noc_bandwidths
            assert shard.dataflow_variants == small_space.dataflow_variants
        assert sum(s.size for s in spaces) == small_space.size


class TestParity:
    """The tentpole invariant: sharded == whole-space, bit for bit."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_front_and_optima_bit_identical(self, conv_layer, small_space, shards):
        direct = explore(conv_layer, small_space, AREA, POWER, cache=False)
        sharded = sharded_explore(
            conv_layer,
            small_space,
            area_budget=AREA,
            power_budget=POWER,
            shards=shards,
            cache=False,
        )
        assert sharded.points == direct.points
        assert sharded.pareto() == direct.pareto()
        assert sharded.throughput_optimal == direct.throughput_optimal
        assert sharded.energy_optimal == direct.energy_optimal
        assert sharded.edp_optimal == direct.edp_optimal
        stats, direct_stats = sharded.statistics, direct.statistics
        assert stats.explored == direct_stats.explored == small_space.size
        assert stats.valid == direct_stats.valid

    def test_shared_cache_across_shards(self, conv_layer, small_space):
        cache = AnalysisCache(max_entries=4096)
        first = sharded_explore(
            conv_layer,
            small_space,
            area_budget=AREA,
            power_budget=POWER,
            shards=2,
            cache=cache,
        )
        second = sharded_explore(
            conv_layer,
            small_space,
            area_budget=AREA,
            power_budget=POWER,
            shards=3,
            cache=cache,
        )
        assert second.pareto() == first.pareto()
        # The second sweep re-used the first sweep's outcomes entirely.
        assert second.statistics.cache_hits == second.statistics.cost_model_calls

    def test_merge_preserves_executor_label(self, conv_layer, small_space):
        result = sharded_explore(
            conv_layer,
            small_space,
            area_budget=AREA,
            power_budget=POWER,
            shards=2,
            cache=False,
        )
        assert result.statistics.executor.startswith("sharded[2]/")


class TestAnytimeUpdates:
    def test_updates_cover_all_shards(self, conv_layer, small_space):
        updates = []
        result = sharded_explore(
            conv_layer,
            small_space,
            area_budget=AREA,
            power_budget=POWER,
            shards=3,
            cache=False,
            on_update=updates.append,
        )
        assert [u.shards_done for u in updates] == [1, 2, 3]
        assert all(isinstance(u, ShardUpdate) for u in updates)
        assert all(u.shards_total == 3 for u in updates)
        # Explored counts are monotone and end at the full space.
        explored = [u.points_explored for u in updates]
        assert explored == sorted(explored)
        assert explored[-1] == small_space.size
        # The last anytime front is the final front.
        assert list(updates[-1].front) == result.pareto()

    def test_single_shard_still_reports(self, conv_layer, small_space):
        updates = []
        sharded_explore(
            conv_layer,
            small_space,
            area_budget=AREA,
            power_budget=POWER,
            shards=1,
            cache=False,
            on_update=updates.append,
        )
        assert len(updates) == 1
        assert updates[0].shards_done == updates[0].shards_total == 1


class TestCancellation:
    def test_pre_set_cancel_aborts_immediately(self, conv_layer, small_space):
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(SweepCancelled):
            sharded_explore(
                conv_layer,
                small_space,
                area_budget=AREA,
                power_budget=POWER,
                shards=2,
                cache=False,
                cancel=cancel,
            )

    def test_cancel_after_first_shard(self, conv_layer, small_space):
        cancel = threading.Event()

        def cancel_on_first(update: ShardUpdate) -> None:
            cancel.set()

        with pytest.raises(SweepCancelled):
            sharded_explore(
                conv_layer,
                small_space,
                area_budget=AREA,
                power_budget=POWER,
                shards=4,
                cache=False,
                on_update=cancel_on_first,
                cancel=cancel,
            )


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        merge_shard_results([], 0.0)
