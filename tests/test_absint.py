"""The symbolic abstract interpreter: interval domain algebra, point-box
exactness against the concrete cost model, Hypothesis-driven interval
soundness over random shape boxes, the DF2xx range-certificate lints,
the differential cross-check, and the branch-and-bound DSE/tuner
equivalence guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.absint import (
    AbstractDomainError,
    HardwareBox,
    IntervalFloat,
    IntervalInt,
    ShapeBox,
    abstract_analyze,
    abstract_bind,
)
from repro.absint.interval import (
    i_ceil_div,
    i_max,
    i_min,
    i_num_chunks,
    tri_all,
    tri_any,
    tri_gt,
    tri_not,
)
from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.errors import BindingError, DataflowError, LayerError
from repro.hardware.accelerator import Accelerator, NoC
from repro.lint import Severity, lint_symbolic
from repro.lint.symbolic import PROVEN_FOR_RANGE, SYMBOLIC_RULES
from repro.model.layer import conv2d
from repro.tensors import dims as D
from repro.tuner.templates import SCHEDULES, SPATIAL_DIMS, CandidateSpec
from repro.verify import crosscheck_abstract

LAYER = conv2d("absint-layer", k=64, c=32, y=18, x=18, r=3, s=3)

#: Quantities every soundness check compares (concrete attr == abstract attr).
QUANTITIES = (
    "runtime",
    "total_ops",
    "utilization",
    "throughput",
    "l1_buffer_req",
    "l2_buffer_req",
    "noc_bw_req_elems",
    "energy_total",
    "edp",
)

#: Relative slack for float comparisons: corner evaluation replays the
#: same IEEE-754 operation trees, so only representation noise remains.
REL_TOL = 1e-9


def assert_contained(concrete, abstract):
    for name in QUANTITIES:
        value = getattr(concrete, name)
        interval = getattr(abstract, name)
        slack = REL_TOL * max(abs(float(interval.lo)), abs(float(interval.hi)), 1.0)
        assert interval.lo - slack <= value <= interval.hi + slack, (
            f"{name} = {value} escapes [{interval.lo}, {interval.hi}]"
        )


# ----------------------------------------------------------------------
# Interval domain algebra
# ----------------------------------------------------------------------
def test_interval_int_basic_algebra():
    a = IntervalInt(2, 5)
    b = IntervalInt(-1, 3)
    assert a + b == IntervalInt(1, 8)
    assert a - b == IntervalInt(-1, 6)
    assert a * b == IntervalInt(-5, 15)
    assert 2 * a == IntervalInt(4, 10)
    assert (1 + a) == IntervalInt(3, 6)
    assert a.hull(b) == IntervalInt(-1, 5)
    assert a.contains(3) and not a.contains(6)
    assert IntervalInt.point(7).is_point


def test_interval_validation_and_errors():
    with pytest.raises(AbstractDomainError):
        IntervalInt(3, 2)
    with pytest.raises(AbstractDomainError):
        IntervalFloat(1.0, 2.0) / IntervalFloat(0.0, 1.0)  # divisor spans 0
    with pytest.raises(AbstractDomainError):
        IntervalInt(1, 2) * True  # bools are not sizes


def test_ceil_div_and_num_chunks_corner_soundness():
    num = IntervalInt(7, 23)
    den = IntervalInt(2, 5)
    result = i_ceil_div(num, den)
    for n in range(num.lo, num.hi + 1):
        for d in range(den.lo, den.hi + 1):
            assert result.contains(-(-n // d))
    total = IntervalInt(5, 12)
    size = IntervalInt(2, 4)
    offset = IntervalInt(1, 3)
    chunks = i_num_chunks(total, size, offset)
    from repro.engines.binding import num_chunks

    for t in range(total.lo, total.hi + 1):
        for s in range(size.lo, size.hi + 1):
            for o in range(offset.lo, offset.hi + 1):
                assert chunks.contains(num_chunks(t, s, o))


def test_min_max_and_tribool_helpers():
    a, b = IntervalInt(2, 6), IntervalInt(4, 9)
    assert i_min(a, b) == IntervalInt(2, 6)
    assert i_max(a, b) == IntervalInt(4, 9)
    assert tri_gt(IntervalInt(5, 9), 4) is True
    assert tri_gt(IntervalInt(1, 3), 4) is False
    assert tri_gt(IntervalInt(3, 5), 4) is None
    assert tri_not(None) is None and tri_not(True) is False
    assert tri_any((False, None)) is None
    assert tri_any((True, None)) is True
    assert tri_all((True, None)) is None
    assert tri_all((True, True)) is True


# ----------------------------------------------------------------------
# ShapeBox construction and concretization
# ----------------------------------------------------------------------
def test_shape_box_out_extents_and_containment():
    box = ShapeBox.from_layer(LAYER, ranges={D.Y: (10, 34), D.R: (1, 3)})
    assert box.out_y.lo == (10 - 3) // 1 + 1
    assert box.out_y.hi == 34
    member = box.concretize(
        {D.N: 1, D.K: 64, D.C: 32, D.Y: 20, D.X: 18, D.R: 3, D.S: 3}
    )
    assert box.contains(member)
    assert not box.contains(conv2d("other", k=64, c=32, y=40, x=18, r=3, s=3))
    with pytest.raises(LayerError):
        box.concretize({D.N: 1, D.K: 64, D.C: 32, D.Y: 99, D.X: 18, D.R: 3, D.S: 3})


def test_shape_box_rejects_impossible_family():
    with pytest.raises(LayerError):
        ShapeBox.from_layer(LAYER, ranges={D.Y: (1, 2), D.R: (3, 3)})


def test_corner_layers_are_valid_members():
    box = ShapeBox.from_layer(LAYER, ranges={D.K: (32, 128), D.C: (16, 64)})
    corners = list(box.corner_layers())
    assert len(corners) == 4
    assert all(box.contains(layer) for layer in corners)


# ----------------------------------------------------------------------
# Point boxes reproduce the concrete model exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(table3_dataflows()))
def test_point_box_is_exact(name):
    dataflow = table3_dataflows()[name]
    accelerator = Accelerator(num_pes=64, noc=NoC(bandwidth=32))
    concrete = analyze_layer(LAYER, dataflow, accelerator)
    abstract = abstract_analyze(
        ShapeBox.from_layer(LAYER),
        dataflow,
        HardwareBox.from_accelerator(accelerator),
    )
    assert not abstract.caveats
    assert_contained(concrete, abstract)
    # And the envelope collapses: a one-member family has exact answers.
    assert abstract.runtime.lo == pytest.approx(abstract.runtime.hi)
    assert abstract.runtime.lo == pytest.approx(concrete.runtime)
    assert abstract.l1_buffer_req.is_point
    assert abstract.l1_buffer_req.lo == concrete.l1_buffer_req


# ----------------------------------------------------------------------
# Hypothesis: interval soundness over random boxes and members
# ----------------------------------------------------------------------
specs = st.builds(
    lambda outer_spatial, schedule, c_tile, k_tile, y_tile, x_tile, cluster: (
        CandidateSpec(
            outer_spatial=outer_spatial,
            schedule=schedule,
            c_tile=c_tile,
            k_tile=k_tile,
            y_tile=y_tile,
            x_tile=x_tile,
            cluster_size=cluster,
            inner_spatial=(
                None if cluster is None else (D.C if outer_spatial != D.C else D.K)
            ),
        )
    ),
    outer_spatial=st.sampled_from(SPATIAL_DIMS),
    schedule=st.sampled_from(SCHEDULES),
    c_tile=st.sampled_from([1, 2, 4]),
    k_tile=st.sampled_from([1, 2, 4]),
    y_tile=st.sampled_from([1, 2]),
    x_tile=st.sampled_from([1, 2]),
    cluster=st.sampled_from([None, 2, 4]),
)

dim_boxes = st.fixed_dictionaries(
    {
        D.K: st.tuples(st.integers(1, 16), st.integers(1, 4)),
        D.C: st.tuples(st.integers(1, 16), st.integers(1, 4)),
        D.Y: st.tuples(st.integers(6, 20), st.integers(1, 2)),
        D.X: st.tuples(st.integers(6, 20), st.integers(1, 2)),
        D.R: st.tuples(st.integers(1, 3), st.integers(1, 2)),
        D.S: st.tuples(st.integers(1, 3), st.integers(1, 2)),
    }
)


@settings(max_examples=60, deadline=None)
@given(
    spec=specs,
    dims=dim_boxes,
    pes=st.sampled_from([4, 16, 64]),
    pes_widen=st.sampled_from([1, 2]),
    bw=st.sampled_from([4, 32]),
    bw_widen=st.sampled_from([1, 2]),
    data=st.data(),
)
def test_concrete_member_inside_abstract_interval(
    spec, dims, pes, pes_widen, bw, bw_widen, data
):
    """For any concrete (layer, accelerator) inside the (box, hardware)
    family, every cost-model quantity lies in the abstract interval —
    and a definite abstract binding failure implies the concrete model
    fails too."""
    try:
        flow = spec.build()
    except (BindingError, DataflowError):
        return
    ranges = {dim: (lo, lo * widen) for dim, (lo, widen) in dims.items()}
    # Keep the activation plane at least as large as the kernel window.
    r_hi, s_hi = ranges[D.R][1], ranges[D.S][1]
    ranges[D.Y] = (max(ranges[D.Y][0], r_hi), max(ranges[D.Y][1], r_hi))
    ranges[D.X] = (max(ranges[D.X][0], s_hi), max(ranges[D.X][1], s_hi))
    base = conv2d(
        "prop",
        k=ranges[D.K][1],
        c=ranges[D.C][1],
        y=ranges[D.Y][1],
        x=ranges[D.X][1],
        r=ranges[D.R][0],
        s=ranges[D.S][0],
    )
    box = ShapeBox.from_layer(base, ranges=ranges)
    hw = HardwareBox(
        num_pes=IntervalInt(pes, pes * pes_widen),
        bandwidth=IntervalInt(bw, bw * bw_widen),
    )

    # A concrete member: each dimension drawn inside its interval, the
    # window constraint respected by construction of the box.
    sizes = {D.N: 1}
    for dim, iv in box.dims.items():
        if dim == D.N:
            continue
        sizes[dim] = data.draw(st.integers(iv.lo, iv.hi), label=f"size[{dim}]")
    sizes[D.Y] = max(sizes[D.Y], sizes[D.R])
    sizes[D.X] = max(sizes[D.X], sizes[D.S])
    layer = box.concretize(sizes)
    accelerator = Accelerator(
        num_pes=data.draw(st.integers(hw.num_pes.lo, hw.num_pes.hi), label="pes"),
        noc=NoC(
            bandwidth=data.draw(
                st.integers(hw.bandwidth.lo, hw.bandwidth.hi), label="bw"
            )
        ),
    )

    try:
        abstract = abstract_analyze(box, flow, hw)
    except (BindingError, DataflowError):
        # Definite failure: *every* member must fail concretely too.
        with pytest.raises((BindingError, DataflowError)):
            analyze_layer(layer, flow, accelerator)
        return
    try:
        concrete = analyze_layer(layer, flow, accelerator)
    except (BindingError, DataflowError):
        return  # partial-range failure: intervals only cover bindable members
    assert_contained(concrete, abstract)


@settings(max_examples=40, deadline=None)
@given(
    spec=specs,
    pes=st.sampled_from([4, 16, 64]),
    bw=st.sampled_from([4, 32]),
)
def test_abstract_bind_point_hardware_matches_concrete(spec, pes, bw):
    """On a point box + point hardware, abstract_bind fails exactly when
    concrete binding fails."""
    try:
        flow = spec.build()
    except (BindingError, DataflowError):
        return
    from repro.engines.binding import bind_dataflow

    accelerator = Accelerator(num_pes=pes, noc=NoC(bandwidth=bw))
    box = ShapeBox.from_layer(LAYER)
    try:
        bind_dataflow(flow, LAYER, accelerator)
        concrete_ok = True
    except (BindingError, DataflowError):
        concrete_ok = False
    try:
        bound = abstract_bind(flow, box, IntervalInt.point(pes))
        abstract_ok = not bound.caveats
    except (BindingError, DataflowError):
        abstract_ok = False
    assert abstract_ok == concrete_ok


# ----------------------------------------------------------------------
# DF2xx symbolic lint certificates
# ----------------------------------------------------------------------
def box_with_k_range():
    return ShapeBox.from_layer(LAYER, ranges={D.K: (64, 2048)})


def test_df201_error_info_and_straddle():
    flow = table3_dataflows()["KC-P"]
    box = box_with_k_range()

    def verdict(l1_size):
        hw = HardwareBox(
            num_pes=IntervalInt.point(64),
            bandwidth=IntervalInt.point(32),
            l1_size=l1_size,
        )
        report = lint_symbolic(flow, box, hw)
        return [d for d in report.diagnostics if d.code == "DF201"]

    errors = verdict(16)
    assert errors and errors[0].severity is Severity.ERROR
    assert errors[0].provenance == PROVEN_FOR_RANGE
    assert "every shape in the range" in errors[0].message

    certificates = verdict(4096)
    assert certificates and certificates[0].severity is Severity.INFO
    assert certificates[0].provenance == PROVEN_FOR_RANGE

    assert verdict(None) == []  # no capacity -> nothing to certify


def test_df202_underutilization_proven_for_range():
    # 64 PEs spatial over C=32: at most half the array can ever be busy.
    # Point box: over wide ranges utilization decorrelates (ops.lo pairs
    # with runtime.hi) and the under-utilization proof obligation fails.
    flow = table3_dataflows()["C-P"]
    box = ShapeBox.from_layer(LAYER)
    hw = HardwareBox(num_pes=IntervalInt.point(64), bandwidth=IntervalInt.point(32))
    report = lint_symbolic(flow, box, hw)
    found = [d for d in report.diagnostics if d.code == "DF202"]
    assert found and found[0].severity is Severity.WARNING
    assert found[0].provenance == PROVEN_FOR_RANGE


def test_df203_bandwidth_certificate_on_point_box():
    flow = table3_dataflows()["C-P"]
    box = ShapeBox.from_layer(LAYER)
    hw = HardwareBox(num_pes=IntervalInt.point(32), bandwidth=IntervalInt.point(32))
    report = lint_symbolic(flow, box, hw)
    found = [d for d in report.diagnostics if d.code == "DF203"]
    assert found and found[0].severity is Severity.INFO
    assert "fits the provisioned" in found[0].message


def test_df200_definitely_unbindable_range():
    flow = table3_dataflows()["KC-P"]  # needs a 64-PE cluster hierarchy
    box = ShapeBox.from_layer(LAYER)
    hw = HardwareBox(num_pes=IntervalInt.point(32), bandwidth=IntervalInt.point(32))
    report = lint_symbolic(flow, box, hw)
    assert report.has_errors
    codes = {d.code for d in report.diagnostics}
    assert codes == {"DF200"}


def test_symbolic_registry_is_df2xx():
    assert set(SYMBOLIC_RULES) == {"DF200", "DF201", "DF202", "DF203"}
    assert all(code.startswith("DF2") for code in SYMBOLIC_RULES)


# ----------------------------------------------------------------------
# Differential cross-check
# ----------------------------------------------------------------------
def test_crosscheck_passes_on_library_dataflows():
    box = ShapeBox.from_layer(LAYER, ranges={D.K: (32, 256), D.C: (16, 64)})
    hw = HardwareBox(num_pes=IntervalInt(32, 128), bandwidth=IntervalInt(16, 64))
    for name, flow in table3_dataflows().items():
        report = crosscheck_abstract(box, flow, hw)
        assert report.ok, f"{name}: {[v.describe() for v in report.violations]}"
        assert report.samples > 0


def test_crosscheck_rejects_foreign_sample():
    box = ShapeBox.from_layer(LAYER)
    hw = HardwareBox(num_pes=IntervalInt.point(64), bandwidth=IntervalInt.point(32))
    outsider = conv2d("outsider", k=999, c=32, y=18, x=18, r=3, s=3)
    with pytest.raises(ValueError):
        crosscheck_abstract(
            box, table3_dataflows()["C-P"], hw, layers=[outsider]
        )


# ----------------------------------------------------------------------
# Branch-and-bound DSE: bit-identical optima, fewer cost-model calls
# ----------------------------------------------------------------------
def test_dse_symbolic_prune_matches_exhaustive_optima():
    """Figure-13 grid: the pruned sweep returns the same three optima
    while skipping at least 30% of cost-model calls."""
    from repro.dse.explorer import explore
    from repro.dse.space import (
        DesignSpace,
        default_bandwidths,
        kc_partitioned_variants,
    )

    space = DesignSpace(
        pe_counts=list(range(8, 257, 8)),
        noc_bandwidths=default_bandwidths(128),
        dataflow_variants=kc_partitioned_variants(),
    )
    exhaustive = explore(
        LAYER, space, area_budget=16.0, power_budget=450.0, cache=False
    )
    pruned = explore(
        LAYER,
        space,
        area_budget=16.0,
        power_budget=450.0,
        cache=False,
        symbolic_prune=True,
    )
    assert pruned.throughput_optimal == exhaustive.throughput_optimal
    assert pruned.energy_optimal == exhaustive.energy_optimal
    assert pruned.edp_optimal == exhaustive.edp_optimal
    assert pruned.statistics.explored == exhaustive.statistics.explored
    skipped = (
        pruned.statistics.symbolic_rejects + pruned.statistics.bnb_pruned
    )
    assert skipped >= 0.30 * exhaustive.statistics.cost_model_calls
    assert (
        pruned.statistics.cost_model_calls + skipped
        == exhaustive.statistics.cost_model_calls
    )
    # Every valid pruned point also exists in the exhaustive sweep.
    exhaustive_points = set(exhaustive.points)
    assert all(point in exhaustive_points for point in pruned.points)


def test_dse_symbolic_prune_infeasible_regions_keep_valid_set():
    """A tiny budget makes whole regions infeasible; the valid set (not
    just the optima) must survive identically, because infeasibility
    pruning only drops points the budget check would reject anyway."""
    from repro.dse.explorer import explore
    from repro.dse.space import DesignSpace, kc_partitioned_variants

    space = DesignSpace(
        pe_counts=[16, 32, 64, 128, 256],
        noc_bandwidths=[16, 32],
        dataflow_variants=kc_partitioned_variants(
            c_tiles=(8,), spatial_tiles=((1, 1),)
        ),
    )
    exhaustive = explore(LAYER, space, area_budget=4.0, power_budget=120.0, cache=False)
    pruned = explore(
        LAYER,
        space,
        area_budget=4.0,
        power_budget=120.0,
        cache=False,
        symbolic_prune=True,
        symbolic_block=2,
    )
    assert pruned.throughput_optimal == exhaustive.throughput_optimal
    assert pruned.energy_optimal == exhaustive.energy_optimal
    assert pruned.edp_optimal == exhaustive.edp_optimal


def test_tuner_symbolic_prune_same_winner_and_rejects():
    from repro.tuner.search import tune_layer

    accelerator = Accelerator(num_pes=64)
    base = tune_layer(
        LAYER, accelerator, objective="edp", max_l1_bytes=256, cache=False
    )
    pruned = tune_layer(
        LAYER,
        accelerator,
        objective="edp",
        max_l1_bytes=256,
        symbolic_prune=True,
        cache=False,
    )
    assert pruned.best.spec == base.best.spec
    assert pruned.best.score == base.best.score
    assert pruned.rejected == base.rejected
    assert pruned.symbolic_rejected > 0
    assert pruned.cost_model_calls < base.cost_model_calls
