"""Tests for the reference simulator: regions, pipeline, agreement."""

import pytest

from repro.dataflow.library import (
    fig5_playground,
    kc_partitioned,
    table3_dataflows,
    yx_partitioned,
)
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.simulator import simulate_layer
from repro.simulator.regions import Box, Interval, axis_interval
from repro.simulator.simulator import _Pipeline
from repro.tensors import dims as D
from repro.tensors.axes import ConvOutputAxis, PlainAxis, SlidingInputAxis


class TestInterval:
    def test_length(self):
        assert Interval(2, 7).length == 5
        assert Interval(5, 5).length == 0
        assert Interval(7, 2).length == 0

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)).length == 2
        assert Interval(0, 3).intersect(Interval(5, 9)).length == 0


class TestBox:
    def test_volume(self):
        box = Box((Interval(0, 3), Interval(0, 4)))
        assert box.volume() == 12

    def test_new_volume_none(self):
        box = Box((Interval(0, 3),))
        assert box.new_volume_vs(None) == 3

    def test_new_volume_partial_overlap(self):
        a = Box((Interval(0, 4), Interval(0, 4)))
        b = Box((Interval(2, 6), Interval(0, 4)))
        assert b.new_volume_vs(a) == 8

    def test_new_volume_disjoint(self):
        a = Box((Interval(0, 4),))
        b = Box((Interval(10, 14),))
        assert b.new_volume_vs(a) == 4


class TestAxisInterval:
    def test_plain(self):
        interval = axis_interval(PlainAxis(D.K), {D.K: 5}, {D.K: 3})
        assert (interval.start, interval.stop) == (5, 8)

    def test_sliding_input(self):
        axis = SlidingInputAxis(D.YP, D.R, stride=2)
        interval = axis_interval(axis, {D.YP: 3, D.R: 0}, {D.YP: 2, D.R: 3})
        # outputs 3..4 at stride 2 with kernel rows 0..2: inputs 6..10.
        assert (interval.start, interval.stop) == (6, 11)

    def test_conv_output_complete_windows(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        interval = axis_interval(axis, {D.Y: 0, D.R: 0}, {D.Y: 5, D.R: 3})
        # 5 input rows, 3-row kernel: complete windows at y' = 0, 1, 2.
        assert (interval.start, interval.stop) == (0, 3)

    def test_conv_output_window_slides_with_kernel(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        interval = axis_interval(axis, {D.Y: 4, D.R: 1}, {D.Y: 5, D.R: 2})
        # rows 4..8, kernel rows 1..2: y' with y'+1 >= 4 and y'+2 <= 8.
        assert (interval.start, interval.stop) == (3, 7)


class TestPipeline:
    def test_serial_first_step(self):
        pipe = _Pipeline()
        pipe.step(5, 7, 2)
        assert pipe.elapsed == 14

    def test_double_buffering_overlaps_fetch(self):
        pipe = _Pipeline()
        pipe.step(5, 7, 0)
        pipe.step(5, 7, 0)
        # Second fetch overlaps first compute: 5 + 7 + 7 = 19.
        assert pipe.compute_done == 19

    def test_fetch_bound_pipeline(self):
        pipe = _Pipeline()
        for _ in range(10):
            pipe.step(10, 2, 1)
        # Steady state increments by the fetch time.
        assert 10 * 10 <= pipe.elapsed <= 10 * 10 + 13

    def test_run_fast_forward_matches_exact(self):
        exact = _Pipeline()
        for _ in range(50):
            exact.step(3, 7, 2)
        fast = _Pipeline()
        fast.run(50, 3, 7, 2)
        assert fast.elapsed == pytest.approx(exact.elapsed, rel=0.02)


class TestAgreementWithModel:
    """The Figure 9 claim: model within a few % of the reference."""

    @pytest.mark.parametrize("name,flow", list(table3_dataflows().items()))
    def test_small_conv_agreement(self, name, flow):
        layer = conv2d("s", k=16, c=16, y=18, x=18, r=3, s=3)
        acc = Accelerator(num_pes=64, noc=NoC(bandwidth=16))
        sim = simulate_layer(layer, flow, acc)
        ana = analyze_layer(layer, flow, acc)
        assert ana.runtime == pytest.approx(sim.runtime, rel=0.15)

    def test_playground_agreement(self):
        layer = conv2d("conv1d", k=1, c=1, y=1, x=17, r=1, s=6)
        for key, flow in fig5_playground().items():
            acc = Accelerator(num_pes=6 if key == "F" else 3)
            sim = simulate_layer(layer, flow, acc)
            ana = analyze_layer(layer, flow, acc)
            assert ana.runtime == pytest.approx(sim.runtime, rel=0.35), key

    def test_model_is_much_faster(self):
        """The headline speedup: analytical beats step-by-step execution."""
        import time

        layer = conv2d("m", k=32, c=32, y=34, x=34, r=3, s=3)
        acc = Accelerator(num_pes=64)
        flow = yx_partitioned()
        start = time.perf_counter()
        analyze_layer(layer, flow, acc)
        analytical_time = time.perf_counter() - start
        start = time.perf_counter()
        simulate_layer(layer, flow, acc)
        simulator_time = time.perf_counter() - start
        assert simulator_time > analytical_time


class TestSimulatorMechanics:
    def test_extrapolation_flag(self):
        layer = conv2d("big", k=64, c=64, y=58, x=58, r=3, s=3)
        result = simulate_layer(
            layer, kc_partitioned(c_tile=16), Accelerator(num_pes=64),
            max_outer_states=10,
        )
        assert result.extrapolated
        assert result.runtime > 0

    def test_traffic_positive(self, small_conv, accelerator):
        result = simulate_layer(small_conv, yx_partitioned(), accelerator)
        assert result.l2_ingress > 0
        assert result.l2_egress > 0

    def test_ingress_at_least_working_set(self, small_conv, accelerator):
        result = simulate_layer(small_conv, yx_partitioned(), accelerator)
        volume = small_conv.tensor_volume("W") + small_conv.tensor_volume("I")
        assert result.l2_ingress >= volume * 0.5  # union-diff, lower bound

    def test_groups_scale_runtime(self):
        plain = conv2d("p", k=16, c=16, y=14, x=14, r=3, s=3)
        grouped = conv2d("g", k=16, c=16, y=14, x=14, r=3, s=3, groups=2)
        acc = Accelerator(num_pes=16)
        flow = yx_partitioned()
        plain_result = simulate_layer(plain, flow, acc)
        grouped_result = simulate_layer(grouped, flow, acc)
        assert grouped_result.runtime != plain_result.runtime
