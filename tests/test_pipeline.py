"""Tests for end-to-end network scheduling with activation residency."""

import pytest

from repro.dataflow.library import kc_partitioned, table3_dataflows, yx_partitioned
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d, fc
from repro.model.network import Network
from repro.model.zoo import build
from repro.pipeline import schedule_network


@pytest.fixture(scope="module")
def tiny_net():
    return Network(
        name="tiny",
        layers=(
            conv2d("c1", k=8, c=3, y=18, x=18, r=3, s=3),
            conv2d("c2", k=8, c=8, y=16, x=16, r=3, s=3),
            fc("f1", k=10, c=8 * 14 * 14),
        ),
    )


class TestResidency:
    def test_unconstrained_l2_keeps_everything_resident(self, tiny_net):
        schedule = schedule_network(
            tiny_net, yx_partitioned(), Accelerator(num_pes=16)
        )
        assert schedule.resident_fraction == 1.0
        assert schedule.energy_total < schedule.raw_energy

    def test_tiny_l2_spills_everything(self, tiny_net):
        schedule = schedule_network(
            tiny_net, yx_partitioned(), Accelerator(num_pes=16, l2_size=64)
        )
        assert schedule.resident_fraction == 0.0
        assert schedule.energy_total == pytest.approx(schedule.raw_energy)

    def test_savings_bounded_by_intermediate_volumes(self, tiny_net):
        schedule = schedule_network(
            tiny_net, yx_partitioned(), Accelerator(num_pes=16)
        )
        upper = 2 * sum(
            layer.tensor_volume("O") for layer in tiny_net.layers[:-1]
        )
        total_saved = sum(entry.dram_bytes_saved for entry in schedule.layers)
        assert 0 < total_saved <= upper

    def test_first_layer_never_resident(self, tiny_net):
        schedule = schedule_network(
            tiny_net, yx_partitioned(), Accelerator(num_pes=16)
        )
        assert not schedule.layers[0].input_resident

    def test_larger_l2_never_saves_less(self, tiny_net):
        small = schedule_network(
            tiny_net, yx_partitioned(), Accelerator(num_pes=16, l2_size=4 << 10)
        )
        large = schedule_network(
            tiny_net, yx_partitioned(), Accelerator(num_pes=16, l2_size=4 << 20)
        )
        assert large.dram_energy_saved >= small.dram_energy_saved


class TestSelection:
    def test_adaptive_candidates(self, tiny_net):
        schedule = schedule_network(
            tiny_net, table3_dataflows(), Accelerator(num_pes=64)
        )
        names = {entry.dataflow_name for entry in schedule.layers}
        assert names <= set(table3_dataflows())
        fixed = schedule_network(
            tiny_net, kc_partitioned(c_tile=8), Accelerator(num_pes=64)
        )
        assert schedule.runtime <= fixed.runtime * 1.0001

    def test_unknown_metric(self, tiny_net):
        with pytest.raises(KeyError):
            schedule_network(
                tiny_net, yx_partitioned(), Accelerator(num_pes=16), metric="area"
            )


class TestRealNetwork:
    def test_mobilenet_end_to_end(self):
        network = build("mobilenet_v2")
        schedule = schedule_network(
            network, kc_partitioned(c_tile=16),
            Accelerator(num_pes=256, l2_size=1 << 20),
        )
        assert len(schedule.layers) == len(network.layers)
        assert 0.0 < schedule.resident_fraction <= 1.0
        assert schedule.energy_total < schedule.raw_energy

    def test_lstm_network_schedules(self):
        network = build("lstm")
        schedule = schedule_network(
            network, kc_partitioned(c_tile=16), Accelerator(num_pes=64)
        )
        assert schedule.runtime > 0
