"""Tests for the iteration-space coverage verifier (repro.verify).

The core contract: ``verify_dataflow`` must PROVE every sound library
mapping, REFUTE every seeded mutant with a concrete counterexample that
the independent brute-force executor confirms, and never disagree with
brute force about a verdict.
"""

import pytest

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import spatial_map, temporal_map
from repro.dataflow.library import (
    fig5_playground,
    output_stationary_1level,
    row_stationary_fig6,
    table3_dataflows,
    weight_stationary_1level,
)
from repro.dataflow.loopnest import Loop, loopnest_to_dataflow
from repro.errors import DataflowError
from repro.model.layer import conv2d, fc
from repro.tensors import dims as D
from repro.verify import (
    REFERENCE_DIMS,
    RuleAudit,
    Verdict,
    audit_rules,
    brute_force_counts,
    total_cells,
    verify_dataflow,
)


def reference_count_at(counts, coordinate):
    key = tuple(coordinate.get(dim, 0) for dim in REFERENCE_DIMS)
    return counts.get(key, 0)


def assert_reference_all_ones(flow, layer):
    counts = brute_force_counts(flow, layer)
    assert len(counts) == total_cells(layer)
    assert all(count == 1 for count in counts.values())


# ----------------------------------------------------------------------
# The library is proven covered exactly once
# ----------------------------------------------------------------------
class TestLibraryProven:
    @pytest.mark.parametrize("name", sorted(table3_dataflows()))
    def test_table3(self, name, small_conv):
        result = verify_dataflow(table3_dataflows()[name], small_conv)
        assert result.verdict is Verdict.PROVEN, result.render()

    @pytest.mark.parametrize(
        "factory",
        [weight_stationary_1level, output_stationary_1level, row_stationary_fig6],
    )
    def test_single_level_stationary(self, factory, small_conv):
        result = verify_dataflow(factory(), small_conv)
        assert result.verdict is Verdict.PROVEN, result.render()

    @pytest.mark.parametrize("key", sorted(fig5_playground()))
    def test_fig5_on_conv1d(self, key, conv1d_layer):
        result = verify_dataflow(fig5_playground()[key], conv1d_layer)
        assert result.verdict is Verdict.PROVEN, result.render()

    def test_proven_agrees_with_brute_force(self, small_conv):
        for flow in (
            table3_dataflows()["KC-P"],
            table3_dataflows()["YR-P"],
            row_stationary_fig6(),
        ):
            assert verify_dataflow(flow, small_conv).proven
            assert_reference_all_ones(flow, small_conv)

    def test_fc_layer(self):
        layer = fc("fc", k=16, c=32)
        result = verify_dataflow(table3_dataflows()["KC-P"], layer)
        assert result.verdict is Verdict.PROVEN, result.render()


# ----------------------------------------------------------------------
# Seeded mutants are refuted with reference-confirmed counterexamples
# ----------------------------------------------------------------------
MUTANTS = {
    "double-K": (temporal_map(2, 1, D.K), spatial_map(1, 1, D.C)),
    "missed-C": (spatial_map(1, 1, D.K), temporal_map(1, 2, D.C)),
    "missed-Y-gap": (temporal_map(1, 1, D.K), temporal_map(3, 4, D.YP)),
    "double-Y-overlap": (temporal_map(1, 1, D.K), spatial_map(4, 3, D.YP)),
}


class TestMutantsRefuted:
    @pytest.mark.parametrize("label", sorted(MUTANTS))
    def test_refuted_with_concrete_counterexample(self, label, small_conv):
        flow = Dataflow(name=label, directives=MUTANTS[label])
        result = verify_dataflow(flow, small_conv)
        assert result.verdict is Verdict.REFUTED, result.render()
        counterexample = result.counterexample
        assert counterexample is not None
        counts = brute_force_counts(flow, small_conv)
        actual = reference_count_at(counts, counterexample.coordinate)
        assert actual == counterexample.count
        if counterexample.kind == "missed":
            assert actual == 0
        else:
            assert counterexample.kind == "double"
            assert actual >= 2

    def test_kernel_shorter_than_span_is_refuted(self, small_conv):
        # Sliding lattice's complete subcase: innermost input tile is
        # narrower than the kernel span, so (out=0, every tap) is missed.
        flow = Dataflow(
            name="short-window",
            directives=(temporal_map(1, 1, D.K), temporal_map(2, 2, D.X)),
        )
        result = verify_dataflow(flow, small_conv)
        assert result.verdict is Verdict.REFUTED
        counts = brute_force_counts(flow, small_conv)
        actual = reference_count_at(counts, result.counterexample.coordinate)
        assert actual == result.counterexample.count


# ----------------------------------------------------------------------
# Library defects the verifier discovered (true positives)
# ----------------------------------------------------------------------
class TestKnownLibraryGaps:
    def test_yrp_strided_proven_after_offset_fix(self):
        """YR-P's inner diagonal row walk used to be stride-scaled at
        every level and skipped input rows on strided layers. Offsets
        are input-unit quantities now (the outer walk spells St(Y)
        explicitly), so strided layers are proven — and the brute-force
        reference agrees: every MAC exactly once."""
        layer = conv2d("strided", k=2, c=2, y=13, x=13, r=3, s=3, stride=2)
        flow = table3_dataflows()["YR-P"]
        result = verify_dataflow(flow, layer)
        assert result.verdict is Verdict.PROVEN
        counts = brute_force_counts(flow, layer)
        assert set(counts.values()) == {1}

    def test_rs_fig6_strided_3x3_proven_after_offset_fix(self):
        """RS shares YR-P's diagonal walk; inside its 3x3 envelope the
        stride no longer refutes it."""
        layer = conv2d("strided3", k=2, c=3, y=13, x=13, r=3, s=3, stride=2)
        result = verify_dataflow(row_stationary_fig6(), layer)
        assert result.verdict is Verdict.PROVEN

    def test_rs_fig6_wrong_kernel_size(self):
        """RS hardcodes Figure 6's 3x3 tiles; a 5x5 kernel both misses
        and double-counts MACs."""
        layer = conv2d("r5", k=2, c=2, y=11, x=11, r=5, s=5)
        result = verify_dataflow(row_stationary_fig6(), layer)
        assert result.verdict is Verdict.REFUTED
        counts = brute_force_counts(row_stationary_fig6(), layer)
        actual = reference_count_at(counts, result.counterexample.coordinate)
        assert actual == result.counterexample.count


# ----------------------------------------------------------------------
# Verdict plumbing: INVALID, UNDECIDED, method agreement, serialization
# ----------------------------------------------------------------------
class TestVerdicts:
    def test_unbindable_mapping_is_invalid(self, small_conv):
        flow = Dataflow(
            name="bad-expr",
            directives=(temporal_map("1+", 1, D.K), spatial_map(1, 1, D.C)),
        )
        result = verify_dataflow(flow, small_conv)
        assert result.verdict is Verdict.INVALID
        assert "does not bind" in result.message

    def test_tiny_budget_is_undecided(self, small_conv):
        result = verify_dataflow(row_stationary_fig6(), small_conv, budget=10)
        assert result.verdict is Verdict.UNDECIDED

    def test_forced_enumeration_agrees_with_auto(self, small_conv):
        for name, flow in table3_dataflows().items():
            auto = verify_dataflow(flow, small_conv)
            enum = verify_dataflow(flow, small_conv, method="enumeration")
            assert auto.verdict == enum.verdict == Verdict.PROVEN, name

    def test_unknown_method_rejected(self, small_conv):
        with pytest.raises(ValueError):
            verify_dataflow(table3_dataflows()["KC-P"], small_conv, method="magic")

    def test_render_and_to_dict(self, small_conv):
        result = verify_dataflow(table3_dataflows()["KC-P"], small_conv)
        text = result.render()
        assert "PROVEN" in text
        payload = result.to_dict()
        assert payload["verdict"] == "proven"
        assert payload["total_macs"] == small_conv.total_ops()
        assert payload["groups"]

        mutant = Dataflow(name="m", directives=MUTANTS["double-K"])
        refuted = verify_dataflow(mutant, small_conv)
        payload = refuted.to_dict()
        assert payload["counterexample"]["kind"] == "double"
        assert "is executed" in refuted.counterexample.describe()


# ----------------------------------------------------------------------
# Loopnest round-trip coverage check
# ----------------------------------------------------------------------
class TestLoopnestVerification:
    def test_sound_nest_passes(self, small_conv):
        flow = loopnest_to_dataflow(
            [Loop(D.K, 2), Loop(D.C, 4, parallel=True)],
            verify_against=small_conv,
        )
        assert flow.name == "from-loopnest"

    def test_gapped_nest_raises_with_counterexample(self, small_conv):
        with pytest.raises(DataflowError) as excinfo:
            loopnest_to_dataflow(
                [Loop(D.K, 1, step=2), Loop(D.C, 4, parallel=True)],
                name="gapped",
                verify_against=small_conv,
            )
        assert "exactly once" in str(excinfo.value)
        assert "MAC" in str(excinfo.value)

    def test_no_layer_skips_verification(self):
        # Without verify_against the (gapped) nest still converts.
        flow = loopnest_to_dataflow([Loop(D.K, 1, step=2)])
        assert flow.directives[0].offset == 2


# ----------------------------------------------------------------------
# Rule audit
# ----------------------------------------------------------------------
class TestAudit:
    def test_audit_covers_every_rule(self):
        from repro.lint.rules import RULES

        audits = audit_rules()
        assert set(audits) == set(RULES)
        assert all(isinstance(audit, RuleAudit) for audit in audits.values())

    def test_categories(self):
        audits = audit_rules()
        by_category = {}
        for audit in audits.values():
            by_category.setdefault(audit.category, set()).add(audit.code)
        assert by_category["construction-sound"] == {"DF001", "DF002", "DF003", "DF004"}
        assert by_category["binding-sound"] == {"DF005", "DF007", "DF011", "DF012"}
        assert by_category["coverage-refutable"] == {"DF010", "DF017"}
        assert by_category["verifier"] == {"DF101", "DF102", "DF103"}

    def test_coverage_rules_are_certified_by_corpus(self):
        audits = audit_rules()
        for code in ("DF010", "DF017"):
            audit = audits[code]
            assert audit.certified, audit.evidence
            assert any("refuted" in line for line in audit.evidence)
        # ... and the benign inner-level variant shows DF010 must stay
        # a heuristic warning rather than a proven error.
        assert any("proven" in line for line in audits["DF010"].evidence)

    def test_to_dict(self):
        audit = next(iter(audit_rules().values()))
        payload = audit.to_dict()
        assert set(payload) == {"code", "title", "category", "certified", "evidence"}
