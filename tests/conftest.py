"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.model.zoo import build


@pytest.fixture(scope="session")
def vgg16():
    return build("vgg16")


@pytest.fixture(scope="session")
def alexnet():
    return build("alexnet")


@pytest.fixture(scope="session")
def mobilenet_v2():
    return build("mobilenet_v2")


@pytest.fixture
def small_conv():
    """A small convolution layer that analyzes and simulates quickly."""
    return conv2d("small", k=8, c=4, y=12, x=12, r=3, s=3)


@pytest.fixture
def conv1d_layer():
    """The Figure 4 1-D convolution: X' = 12 outputs, S = 6 taps."""
    return conv2d("conv1d", k=1, c=1, y=1, x=17, r=1, s=6)


@pytest.fixture
def accelerator():
    return Accelerator(num_pes=64, noc=NoC(bandwidth=32, avg_latency=2))


@pytest.fixture
def accelerator_256():
    return Accelerator(num_pes=256, noc=NoC(bandwidth=32, avg_latency=2))
