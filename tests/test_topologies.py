"""Tests for the NoC topology models."""

import pytest

from repro.errors import HardwareError
from repro.hardware.topologies import (
    Bus,
    Crossbar,
    HierarchicalBus,
    Mesh2D,
    SystolicChain,
    eyeriss_like_noc,
    mesh_noc,
)


class TestBus:
    def test_pipe_parameters(self):
        noc = Bus(width=8).as_noc()
        assert noc.bandwidth == 8
        assert noc.avg_latency == 2
        assert noc.multicast

    def test_validation(self):
        with pytest.raises(HardwareError):
            Bus(width=0)


class TestHierarchicalBus:
    def test_eyeriss_3x_rule(self):
        """The paper: dedicated channels per tensor give 3x bandwidth."""
        noc = HierarchicalBus(channel_width=4).as_noc()
        assert noc.bandwidth == 12
        assert noc.avg_latency == 2

    def test_helper(self):
        assert eyeriss_like_noc(channel_width=4).bandwidth == 12


class TestCrossbar:
    def test_bandwidth_scales_with_ports(self):
        assert Crossbar(ports=16).as_noc().bandwidth == 16
        assert Crossbar(ports=16, port_width=2).as_noc().bandwidth == 32


class TestMesh2D:
    def test_bisection_and_latency(self):
        """The paper's example: N x N mesh, corner injection -> (N, N)."""
        noc = Mesh2D(side=8).as_noc()
        assert noc.bandwidth == 8
        assert noc.avg_latency == 8

    def test_mesh_noc_helper_rounds_up(self):
        noc = mesh_noc(num_pes=60)
        assert noc.bandwidth == 8  # ceil(sqrt(60)) = 8
        noc = mesh_noc(num_pes=64)
        assert noc.bandwidth == 8

    def test_wider_channels(self):
        assert Mesh2D(side=4, channel_width=2).as_noc().bandwidth == 8


class TestSystolicChain:
    def test_store_and_forward(self):
        noc = SystolicChain(length=16).as_noc()
        assert noc.bandwidth == 1
        assert noc.avg_latency == 8
        assert noc.multicast  # temporal multicast via forwarding


class TestEndToEnd:
    def test_topologies_plug_into_analysis(self):
        from repro.dataflow.library import yx_partitioned
        from repro.engines.analysis import analyze_layer
        from repro.hardware.accelerator import Accelerator
        from repro.model.layer import conv2d

        layer = conv2d("t", k=16, c=16, y=14, x=14, r=3, s=3)
        runtimes = {}
        for name, topology in (
            ("bus", Bus(width=8)),
            ("mesh", Mesh2D(side=8)),
            ("xbar", Crossbar(ports=32)),
        ):
            accelerator = Accelerator(num_pes=64, noc=topology.as_noc())
            runtimes[name] = analyze_layer(layer, yx_partitioned(), accelerator).runtime
        # The fat crossbar is never slower than the narrow bus.
        assert runtimes["xbar"] <= runtimes["bus"]
