"""Golden coverage check, mirroring the `verify-golden` CI job: every
stock library mapping and every shipped example dataflow file must be
proven covered exactly once on the default verification workload."""

from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = sorted(
    str(path) for path in Path("examples/dataflows").glob("*.df")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 4


def test_library_all_proven(capsys):
    assert main(["verify", "--library"]) == 0
    out = capsys.readouterr().out
    assert "proven covered exactly once" in out
    assert "REFUTED" not in out


def test_example_files_all_proven(capsys):
    assert main(["verify", *EXAMPLES]) == 0
    out = capsys.readouterr().out
    assert "REFUTED" not in out


def test_previously_refuted_yrp_strided_pair_now_proven(capsys):
    # The YR-P stride gap the verifier exposed (PR 3) is fixed: offsets
    # are input-unit quantities, so the strided AlexNet CONV1 pair that
    # used to refute with a skipped output row now proves.
    assert main(["verify", "YR-P", "--model", "alexnet", "--layer", "CONV1"]) == 0
    out = capsys.readouterr().out
    assert "PROVEN" in out


def test_refuted_pair_exits_nonzero(capsys):
    # RS outside its 3x3 design envelope: the golden job would catch any
    # library regression the same way.
    assert main(["verify", "RS", "--model", "alexnet", "--layer", "CONV2"]) == 1
    out = capsys.readouterr().out
    assert "counterexample" in out


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_audit_renders(fmt, capsys):
    assert main(["verify", "--audit", "--format", fmt]) == 0
    out = capsys.readouterr().out
    assert "DF101" in out
