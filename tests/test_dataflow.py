"""Tests for the Dataflow container: levels, validation, helpers."""

import pytest

from repro.dataflow.dataflow import Dataflow, dataflow
from repro.dataflow.directives import ClusterDirective, spatial_map, temporal_map
from repro.dataflow.library import (
    fig5_playground,
    kc_partitioned,
    row_stationary_fig6,
    table3_dataflows,
    yr_partitioned,
)
from repro.errors import DataflowError
from repro.tensors import dims as D


class TestLevels:
    def test_single_level(self):
        flow = dataflow("f", temporal_map(1, 1, D.K), spatial_map(1, 1, D.C))
        levels = flow.levels()
        assert len(levels) == 1
        assert levels[0].cluster_size is None
        assert len(levels[0].maps) == 2

    def test_two_levels(self):
        flow = kc_partitioned()
        levels = flow.levels()
        assert len(levels) == 2
        assert levels[0].cluster_size == 64
        assert levels[1].cluster_size is None
        assert levels[1].maps[0].dim == D.C

    def test_fig6_row_stationary_two_levels(self):
        levels = row_stationary_fig6().levels()
        assert len(levels) == 2
        inner_spatial = [m.dim for m in levels[1].maps if m.spatial]
        assert inner_spatial == [D.Y, D.R]


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(DataflowError):
            Dataflow(name="bad", directives=())

    def test_trailing_cluster_rejected(self):
        with pytest.raises(DataflowError):
            dataflow("bad", temporal_map(1, 1, D.K), ClusterDirective(4))

    def test_mixed_row_coordinates_rejected(self):
        with pytest.raises(DataflowError):
            dataflow("bad", temporal_map(1, 1, D.Y), temporal_map(1, 1, D.YP))

    def test_mixed_col_coordinates_rejected(self):
        with pytest.raises(DataflowError):
            dataflow("bad", spatial_map(1, 1, D.X), temporal_map(1, 1, D.XP))

    def test_same_axis_same_coordinate_ok(self):
        flow = dataflow(
            "ok", spatial_map(3, 1, D.Y), temporal_map(3, 1, D.X)
        )
        assert not flow.uses_output_coordinates("row")


class TestHelpers:
    def test_uses_output_coordinates(self):
        playground = fig5_playground()
        assert playground["A"].uses_output_coordinates("col")
        assert not kc_partitioned().uses_output_coordinates("col")

    def test_map_directives_excludes_clusters(self):
        flow = yr_partitioned()
        assert all(not isinstance(d, ClusterDirective) for d in flow.map_directives())

    def test_describe_mentions_every_directive(self):
        flow = kc_partitioned()
        text = flow.describe()
        assert "SpatialMap(1,1) K" in text
        assert "Cluster(64)" in text

    def test_table3_names(self):
        assert set(table3_dataflows()) == {"C-P", "X-P", "YX-P", "YR-P", "KC-P"}

    def test_playground_has_six(self):
        assert set(fig5_playground()) == set("ABCDEF")
