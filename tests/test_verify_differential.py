"""Differential property tests: verifier verdict vs brute-force execution.

For randomly generated small layers and mappings — including mutated
library mappings — the verifier's verdict must agree exactly with the
independent brute-force executor:

* ``PROVEN``  => brute force visits every compute-space cell once;
* ``REFUTED`` => brute force confirms the counterexample's exact count;
* forcing ``method="enumeration"`` never changes a decided verdict.
"""

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import MapDirective, spatial_map, temporal_map
from repro.dataflow.library import table3_dataflows
from repro.errors import ReproError
from repro.model.layer import conv2d
from repro.tensors import dims as D
from repro.verify import (
    REFERENCE_DIMS,
    Verdict,
    brute_force_counts,
    total_cells,
    verify_dataflow,
)

BUDGET = 500_000


def check_agreement(flow, layer):
    """The single differential invariant, shared by every property."""
    result = verify_dataflow(flow, layer, budget=BUDGET)
    if result.verdict is Verdict.INVALID:
        return  # nothing to execute
    try:
        counts = brute_force_counts(flow, layer)
    except ReproError:
        assert result.verdict is Verdict.INVALID
        return
    if result.verdict is Verdict.PROVEN:
        assert len(counts) == total_cells(layer), result.render()
        assert all(count == 1 for count in counts.values()), result.render()
    elif result.verdict is Verdict.REFUTED:
        counterexample = result.counterexample
        assert counterexample is not None
        key = tuple(counterexample.coordinate.get(dim, 0) for dim in REFERENCE_DIMS)
        assert counts.get(key, 0) == counterexample.count, result.render()
        assert counterexample.count != 1
    # UNDECIDED makes no claim — but the forced-enumeration cross-check
    # below must then agree with brute force directly.
    forced = verify_dataflow(flow, layer, budget=BUDGET, method="enumeration")
    if (
        forced.verdict in (Verdict.PROVEN, Verdict.REFUTED)
        and result.verdict in (Verdict.PROVEN, Verdict.REFUTED)
    ):
        assert forced.verdict == result.verdict


tiny_layers = st.builds(
    lambda k, c, y_extra, x_extra, r, s, stride: conv2d(
        "prop",
        k=k,
        c=c,
        y=(r - 1) + y_extra,
        x=(s - 1) + x_extra,
        r=r,
        s=s,
        stride=stride,
    ),
    k=st.integers(1, 3),
    c=st.integers(1, 3),
    y_extra=st.integers(1, 6),
    x_extra=st.integers(1, 6),
    r=st.integers(1, 3),
    s=st.integers(1, 3),
    stride=st.integers(1, 2),
)

#: Output-coordinate plain mappings: no sliding-window subtlety, so the
#: plain-axis lattice and enumeration both get exercised heavily.
plain_directives = st.lists(
    st.tuples(
        st.sampled_from([D.K, D.C, D.YP, D.XP]),
        st.integers(1, 4),  # size
        st.integers(1, 4),  # offset
        st.booleans(),  # spatial?
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda t: t[0],
)


def build_flow(spec):
    directives = []
    for dim, size, offset, spatial in spec:
        factory = spatial_map if spatial else temporal_map
        directives.append(factory(size, offset, dim))
    return Dataflow(name="prop", directives=tuple(directives))


class TestRandomPlainMappings:
    @settings(max_examples=60, deadline=None)
    @given(layer=tiny_layers, spec=plain_directives)
    def test_verdict_matches_brute_force(self, layer, spec):
        check_agreement(build_flow(spec), layer)


class TestRandomSlidingMappings:
    @settings(max_examples=60, deadline=None)
    @given(
        layer=tiny_layers,
        x_size=st.integers(1, 5),
        x_offset=st.integers(1, 4),
        k_size=st.integers(1, 3),
    )
    def test_input_centric_x_tiling(self, layer, x_size, x_offset, k_size):
        flow = Dataflow(
            name="prop-x",
            directives=(
                temporal_map(k_size, k_size, D.K),
                temporal_map(x_size, x_offset, D.X),
            ),
        )
        check_agreement(flow, layer)


class TestMutatedLibraryMappings:
    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(sorted(table3_dataflows())),
        index=st.integers(0, 20),
        delta=st.sampled_from([-1, 1]),
        field=st.sampled_from(["size", "offset"]),
    )
    def test_perturbed_library_flow(self, name, index, delta, field):
        layer = conv2d("mut", k=4, c=4, y=8, x=8, r=3, s=3)
        flow = table3_dataflows()[name]
        directives = list(flow.directives)
        # Perturb one integer size/offset by +-1 (skip expressions).
        targets = [
            i
            for i, d in enumerate(directives)
            if isinstance(d, MapDirective)
            and isinstance(getattr(d, field), int)
        ]
        if not targets:
            return
        position = targets[index % len(targets)]
        directive = directives[position]
        value = getattr(directive, field) + delta
        if value < 1:
            return
        directives[position] = dataclasses.replace(directive, **{field: value})
        try:
            mutated = Dataflow(name=f"{name}-mut", directives=tuple(directives))
        except ReproError:
            return  # construction-rejected mutants are out of scope
        check_agreement(mutated, layer)
