"""Tests for operator templates: coupling, compute domain, volumes."""

import pytest

from repro.tensors import dims as D
from repro.tensors.operators import (
    CONV2D,
    DWCONV,
    ELEMENTWISE,
    FC,
    OPERATORS,
    POOL,
    PWCONV,
    TRCONV,
    TensorRole,
)

DIMS = {
    D.N: 2, D.K: 4, D.C: 6, D.Y: 8, D.X: 8, D.R: 3, D.S: 3,
    D.YP: 6, D.XP: 6,
}


class TestCoupling:
    """The paper's Figure 1(b) tensor/index coupling table."""

    def test_conv2d_weight_coupling(self):
        assert CONV2D.coupled_dims("W") == {D.K, D.C, D.R, D.S}

    def test_conv2d_input_coupling(self):
        assert CONV2D.coupled_dims("I") == {D.N, D.C, D.Y, D.X}

    def test_conv2d_output_coupling(self):
        assert CONV2D.coupled_dims("O") == {D.N, D.K, D.Y, D.X}

    def test_depthwise_output_couples_input_channel(self):
        """Section 4.1: depthwise output couples to C, not K."""
        assert D.C in DWCONV.coupled_dims("O")
        assert D.K not in DWCONV.coupled_dims("O")

    def test_depthwise_weight_has_no_k(self):
        assert DWCONV.coupled_dims("W") == {D.C, D.R, D.S}

    def test_fc_coupling(self):
        assert FC.coupled_dims("W") == {D.K, D.C}
        assert FC.coupled_dims("I") == {D.N, D.C}
        assert FC.coupled_dims("O") == {D.N, D.K}

    def test_elementwise_two_inputs(self):
        names = [t.name for t in ELEMENTWISE.input_tensors]
        assert names == ["A", "B"]


class TestReductionDims:
    def test_conv2d(self):
        assert CONV2D.reduction_dims == {D.C, D.R, D.S}

    def test_depthwise_no_channel_reduction(self):
        assert DWCONV.reduction_dims == {D.R, D.S}

    def test_fc(self):
        assert FC.reduction_dims == {D.C}

    def test_pool(self):
        assert POOL.reduction_dims == {D.R, D.S}

    def test_elementwise_none(self):
        assert ELEMENTWISE.reduction_dims == frozenset()


class TestTotalOps:
    def test_conv2d_is_figure1_example(self):
        """Figure 1: N=2, K=4, C=6, 8x8 input, 3x3 filter -> 6x6 output."""
        assert CONV2D.total_ops(DIMS) == 2 * 4 * 6 * 6 * 6 * 3 * 3

    def test_fc(self):
        assert FC.total_ops(DIMS) == 2 * 4 * 6

    def test_depthwise_drops_k(self):
        assert DWCONV.total_ops(DIMS) == 2 * 6 * 6 * 6 * 3 * 3

    def test_pool(self):
        assert POOL.total_ops(DIMS) == 2 * 6 * 6 * 6 * 3 * 3

    def test_elementwise(self):
        assert ELEMENTWISE.total_ops(DIMS) == 2 * 6 * 6 * 6


class TestTensorVolume:
    def test_weight(self):
        assert CONV2D.tensor_volume("W", DIMS) == 4 * 6 * 3 * 3

    def test_input(self):
        assert CONV2D.tensor_volume("I", DIMS) == 2 * 6 * 8 * 8

    def test_output(self):
        assert CONV2D.tensor_volume("O", DIMS) == 2 * 4 * 6 * 6

    def test_unknown_tensor_raises(self):
        with pytest.raises(KeyError):
            CONV2D.tensor_volume("Z", DIMS)


class TestStructure:
    def test_registry_contains_all(self):
        assert set(OPERATORS) == {
            "CONV2D", "PWCONV", "DWCONV", "TRCONV", "FC", "POOL", "ELEMENTWISE"
        }

    def test_exactly_one_output_each(self):
        for operator in OPERATORS.values():
            outputs = [t for t in operator.tensors if t.is_output]
            assert len(outputs) == 1

    def test_output_role(self):
        assert CONV2D.output_tensor.role is TensorRole.OUTPUT

    def test_pwconv_mirrors_conv2d_structure(self):
        assert PWCONV.reduction_dims == CONV2D.reduction_dims
        assert PWCONV.coupled_dims("W") == CONV2D.coupled_dims("W")

    def test_trconv_mirrors_conv2d_structure(self):
        assert TRCONV.reduction_dims == CONV2D.reduction_dims


class TestResolveAxes:
    def test_input_rep_plain_input_axis(self):
        axes = CONV2D.resolve_axes(
            CONV2D.tensor("I").axis_templates, "input", "input", (1, 1)
        )
        names = [type(a).__name__ for a in axes]
        assert names == ["PlainAxis", "PlainAxis", "PlainAxis", "PlainAxis"]

    def test_output_rep_sliding_input_axis(self):
        axes = CONV2D.resolve_axes(
            CONV2D.tensor("I").axis_templates, "output", "output", (2, 2)
        )
        names = [type(a).__name__ for a in axes]
        assert names[2:] == ["SlidingInputAxis", "SlidingInputAxis"]
        assert axes[2].stride == 2

    def test_input_rep_conv_output_axis(self):
        axes = CONV2D.resolve_axes(
            CONV2D.tensor("O").axis_templates, "input", "input", (1, 1)
        )
        assert type(axes[2]).__name__ == "ConvOutputAxis"

    def test_mixed_representation(self):
        axes = CONV2D.resolve_axes(
            CONV2D.tensor("O").axis_templates, "input", "output", (1, 1)
        )
        assert type(axes[2]).__name__ == "ConvOutputAxis"
        assert type(axes[3]).__name__ == "PlainAxis"
