"""Tests for the statistical sparsity models."""

import pytest

from repro.dataflow.library import kc_partitioned, yx_partitioned
from repro.engines.analysis import analyze_layer
from repro.errors import LayerError
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.sparsity import (
    BlockSparsity,
    ChannelPruning,
    UniformSparsity,
    load_imbalance_factor,
    sparse_layer,
    sparse_report,
)
from repro.tensors import dims as D


@pytest.fixture
def layer():
    return conv2d("s", k=32, c=32, y=16, x=16, r=3, s=3, padding=1)


@pytest.fixture
def accelerator():
    return Accelerator(num_pes=64)


class TestModels:
    def test_uniform_density(self):
        assert UniformSparsity(0.5).density() == 0.5
        assert UniformSparsity(0.5).independent_draws(100) == 100

    def test_channel_pruning_is_structured(self):
        model = ChannelPruning(0.5)
        assert model.density() == 0.5
        assert model.independent_draws(100) == float("inf")

    def test_block_sparsity_fewer_draws(self):
        model = BlockSparsity(0.5, block=4)
        assert model.independent_draws(100) == 25

    def test_validation(self):
        with pytest.raises(LayerError):
            UniformSparsity(0.0)
        with pytest.raises(LayerError):
            UniformSparsity(1.5)
        with pytest.raises(LayerError):
            ChannelPruning(0.0)
        with pytest.raises(LayerError):
            BlockSparsity(0.5, block=0)


class TestImbalance:
    def test_dense_has_no_imbalance(self):
        assert load_imbalance_factor(UniformSparsity(1.0), 1000, 64) == 1.0

    def test_structured_has_no_imbalance(self):
        assert load_imbalance_factor(ChannelPruning(0.5), 1000, 64) == 1.0

    def test_single_pe_has_no_imbalance(self):
        assert load_imbalance_factor(UniformSparsity(0.5), 1000, 1) == 1.0

    def test_random_sparsity_penalized(self):
        factor = load_imbalance_factor(UniformSparsity(0.5), 1000, 64)
        assert factor > 1.0

    def test_blocks_worse_than_uniform(self):
        uniform = load_imbalance_factor(UniformSparsity(0.5), 1000, 64)
        blocked = load_imbalance_factor(BlockSparsity(0.5, block=16), 1000, 64)
        assert blocked > uniform

    def test_more_work_less_imbalance(self):
        small = load_imbalance_factor(UniformSparsity(0.5), 100, 64)
        large = load_imbalance_factor(UniformSparsity(0.5), 100_000, 64)
        assert large < small

    def test_more_pes_more_imbalance(self):
        few = load_imbalance_factor(UniformSparsity(0.5), 1000, 4)
        many = load_imbalance_factor(UniformSparsity(0.5), 1000, 1024)
        assert many > few


class TestSparseLayer:
    def test_uniform_sets_density(self, layer):
        adjusted = sparse_layer(layer, {"W": UniformSparsity(0.25)})
        assert adjusted.density("W") == 0.25
        assert adjusted.dims[D.C] == layer.dims[D.C]

    def test_channel_pruning_shrinks_c(self, layer):
        adjusted = sparse_layer(layer, {"I": ChannelPruning(0.5)})
        assert adjusted.dims[D.C] == 16
        assert adjusted.density("I") == 1.0

    def test_unknown_tensor_rejected(self, layer):
        with pytest.raises(KeyError):
            sparse_layer(layer, {"Z": UniformSparsity(0.5)})


class TestSparseReport:
    def test_random_sparsity_buys_less_than_density(self, layer, accelerator):
        """Random 50% sparsity speeds up by less than 2x (imbalance)."""
        flow = yx_partitioned()
        dense = analyze_layer(layer, flow, accelerator)
        sparse = sparse_report(
            layer, {"W": UniformSparsity(0.5)}, flow, accelerator
        )
        assert sparse.runtime < dense.runtime
        assert sparse.runtime > dense.runtime * 0.5
        assert sparse.imbalance > 1.0

    def test_structured_sparsity_buys_full_density(self, layer, accelerator):
        flow = kc_partitioned(c_tile=16)
        dense = analyze_layer(layer, flow, accelerator)
        pruned = sparse_report(
            layer, {"I": ChannelPruning(0.5)}, flow, accelerator
        )
        assert pruned.imbalance == 1.0
        assert pruned.runtime <= dense.runtime * 0.75

    def test_energy_reflects_reduced_traffic(self, layer, accelerator):
        flow = yx_partitioned()
        dense = analyze_layer(layer, flow, accelerator)
        sparse = sparse_report(
            layer, {"W": UniformSparsity(0.5), "I": UniformSparsity(0.5)},
            flow, accelerator,
        )
        assert sparse.energy_total < dense.energy_total
