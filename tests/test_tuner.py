"""Tests for the dataflow auto-tuner."""

import pytest

from repro.dataflow.library import table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.errors import DataflowError
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.tensors import dims as D
from repro.tuner import CandidateSpec, enumerate_candidates, tune_layer, tune_network
from repro.tuner.search import OBJECTIVES


@pytest.fixture(scope="module")
def layer():
    return conv2d("t", k=32, c=32, y=16, x=16, r=3, s=3, padding=1)


@pytest.fixture(scope="module")
def accelerator():
    return Accelerator(num_pes=64)


SMALL_GRID = list(
    enumerate_candidates(
        c_tiles=(1, 8), k_tiles=(1, 4), plane_tiles=(1,), cluster_sizes=(8,)
    )
)


class TestCandidateSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateSpec(outer_spatial="Q", schedule="reduction_inner")
        with pytest.raises(ValueError):
            CandidateSpec(outer_spatial=D.K, schedule="bogus")
        with pytest.raises(ValueError):
            CandidateSpec(outer_spatial=D.K, schedule="reduction_inner", cluster_size=8)
        with pytest.raises(ValueError):
            CandidateSpec(
                outer_spatial=D.K, schedule="reduction_inner",
                cluster_size=8, inner_spatial=D.K,
            )

    def test_build_single_level(self):
        spec = CandidateSpec(outer_spatial=D.K, schedule="activation_inner", c_tile=4)
        flow = spec.build()
        assert flow.map_directives()[0].spatial
        assert flow.map_directives()[0].dim == D.K
        assert len(flow.levels()) == 1

    def test_build_two_level(self):
        spec = CandidateSpec(
            outer_spatial=D.K, schedule="reduction_inner",
            cluster_size=8, inner_spatial=D.C,
        )
        flow = spec.build()
        levels = flow.levels()
        assert len(levels) == 2
        assert levels[1].maps[0].dim == D.C

    def test_names_unique(self):
        names = [spec.name for spec in SMALL_GRID]
        assert len(names) == len(set(names))

    def test_all_candidates_build(self):
        for spec in SMALL_GRID:
            flow = spec.build()
            assert flow.directives

    def test_schedules_differ(self, layer, accelerator):
        reduction = CandidateSpec(outer_spatial=D.K, schedule="reduction_inner")
        activation = CandidateSpec(outer_spatial=D.K, schedule="activation_inner")
        r1 = analyze_layer(layer, reduction.build(), accelerator)
        r2 = analyze_layer(layer, activation.build(), accelerator)
        assert r1.l2_reads != r2.l2_reads


class TestTuneLayer:
    def test_best_is_minimum(self, layer, accelerator):
        result = tune_layer(layer, accelerator, candidates=SMALL_GRID)
        assert result.best.score == min(c.score for c in result.top)
        assert result.evaluated + result.rejected == len(SMALL_GRID)

    def test_top_k_sorted(self, layer, accelerator):
        result = tune_layer(layer, accelerator, candidates=SMALL_GRID, top_k=4)
        scores = [c.score for c in result.top]
        assert scores == sorted(scores)
        assert len(result.top) == 4

    def test_beats_or_matches_table3(self, layer, accelerator):
        """The tuner should find something at least as good as the
        library dataflows that live inside its template space."""
        result = tune_layer(layer, accelerator)
        baseline = min(
            analyze_layer(layer, flow, accelerator).runtime
            for flow in table3_dataflows().values()
        )
        assert result.best_report.runtime <= baseline * 1.05

    def test_objectives(self, layer, accelerator):
        by_runtime = tune_layer(layer, accelerator, "runtime", candidates=SMALL_GRID)
        by_energy = tune_layer(layer, accelerator, "energy", candidates=SMALL_GRID)
        assert by_energy.best_report.energy_total <= by_runtime.best_report.energy_total

    def test_unknown_objective(self, layer, accelerator):
        with pytest.raises(KeyError):
            tune_layer(layer, accelerator, "area")

    def test_buffer_constraints_reject(self, layer, accelerator):
        # An impossible L2 budget rejects every candidate.
        with pytest.raises(DataflowError):
            tune_layer(
                layer, accelerator, candidates=SMALL_GRID, max_l2_bytes=1
            )
        # A generous budget changes nothing.
        loose = tune_layer(
            layer, accelerator, candidates=SMALL_GRID, max_l1_bytes=10**9
        )
        unconstrained = tune_layer(layer, accelerator, candidates=SMALL_GRID)
        assert loose.best.spec == unconstrained.best.spec

    def test_random_strategy_budget(self, layer, accelerator):
        result = tune_layer(
            layer, accelerator, candidates=SMALL_GRID, strategy="random", budget=5
        )
        assert result.evaluated + result.rejected == 5

    def test_random_strategy_deterministic(self, layer, accelerator):
        a = tune_layer(layer, accelerator, candidates=SMALL_GRID,
                       strategy="random", budget=6, seed=3)
        b = tune_layer(layer, accelerator, candidates=SMALL_GRID,
                       strategy="random", budget=6, seed=3)
        assert a.best.spec == b.best.spec

    def test_unknown_strategy(self, layer, accelerator):
        with pytest.raises(ValueError):
            tune_layer(layer, accelerator, candidates=SMALL_GRID, strategy="annealing")


class TestStaticLint:
    def test_static_rejects_counted_and_best_unchanged(self, layer):
        # On 4 PEs every cluster_size=8 candidate is statically invalid.
        small = Accelerator(num_pes=4)
        linted = tune_layer(layer, small, candidates=SMALL_GRID)
        brute = tune_layer(layer, small, candidates=SMALL_GRID, static_lint=False)
        assert linted.statically_rejected > 0
        assert brute.statically_rejected == 0
        assert linted.rejected == brute.rejected
        assert linted.evaluated == brute.evaluated
        assert linted.best.spec == brute.best.spec
        assert linted.evaluated + linted.rejected == len(SMALL_GRID)

    def test_no_static_rejects_when_everything_binds(self, layer, accelerator):
        result = tune_layer(layer, accelerator, candidates=SMALL_GRID)
        assert result.statically_rejected == 0


class TestTuneNetwork:
    def test_per_layer_results(self, accelerator):
        from repro.model.network import Network
        from repro.model.layer import fc

        network = Network(
            name="tiny",
            layers=(
                conv2d("c1", k=8, c=8, y=10, x=10, r=3, s=3),
                fc("f1", k=16, c=512),
            ),
        )
        results = tune_network(
            network, accelerator, candidates=SMALL_GRID
        )
        assert set(results) == {"c1", "f1"}
        for result in results.values():
            assert result.best_report.runtime > 0


def test_objectives_registry():
    assert set(OBJECTIVES) == {"runtime", "energy", "edp"}
