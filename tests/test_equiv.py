"""Canonical forms, symmetry quotienting, dominance, and equiv pruning.

Unit tests pin the three canonicalization theorems on hand-built
spellings and the DF400-DF403 lints on mappings that trip them;
Hypothesis properties fuzz idempotence, transposition invariance, and
cache-key collision of symmetric twins over the tuner template space;
parity tests prove ``equiv_prune`` bit-identical in both search loops.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import ClusterDirective, MapDirective
from repro.dataflow.library import kc_partitioned
from repro.dse import explore
from repro.dse.space import DesignSpace, kc_partitioned_variants
from repro.equiv import (
    canonical_dataflow,
    canonical_key,
    canonicalize,
    crosscheck_corpus,
    dominance_certificate,
    integral_active,
    layer_symmetries,
    library_flows,
    orbit_key,
    transpose_dataflow,
)
from repro.absint import HardwareBox
from repro.exec import dataflow_cache_payload
from repro.hardware.accelerator import Accelerator, NoC
from repro.lint import lint_dataflow
from repro.model.layer import conv2d
from repro.model.zoo import build
from repro.tuner import tune_layer
from repro.tuner.templates import SCHEDULES, SPATIAL_DIMS, CandidateSpec

SQUARE = conv2d("square", k=16, c=16, y=12, x=12, r=3, s=3)
SEQUENTIAL_K = Dataflow(
    name="sequential-K",
    directives=(MapDirective(dim="K", size=1, offset=1, spatial=False),),
)


def codes(report):
    return {diagnostic.code for diagnostic in report.diagnostics}


class TestCanonicalForm:
    def test_single_chunk_temporal_elided(self):
        # KC-P spells TemporalMap(Sz(R)) R / TemporalMap(Sz(S)) S: one
        # chunk each, provably inert.
        form = canonicalize(kc_partitioned(c_tile=8), SQUARE)
        assert not form.fallback
        assert len(form.elided) >= 2

    def test_redundant_spelling_shares_key(self):
        flow = kc_partitioned(c_tile=8)
        slimmed = Dataflow(
            name="KC-P-slim",
            directives=tuple(
                d
                for d in flow.directives
                if not (
                    isinstance(d, MapDirective) and not d.spatial and d.dim == "R"
                )
            ),
        )
        assert canonical_key(flow, SQUARE) == canonical_key(slimmed, SQUARE)

    def test_spatial_slot_order_shares_key(self):
        def flow(first, second):
            return Dataflow(
                name="two-spatial",
                directives=(
                    MapDirective(dim=first, size=1, offset=1, spatial=True),
                    MapDirective(dim=second, size=1, offset=1, spatial=True),
                    ClusterDirective(4),
                    MapDirective(dim="C", size=1, offset=1, spatial=True),
                ),
            )

        key_kc = canonical_key(flow("K", "Y"), SQUARE)
        key_ck = canonical_key(flow("Y", "K"), SQUARE)
        assert key_kc == key_ck
        assert key_kc[0] == "canon"

    def test_distinct_mappings_keep_distinct_keys(self):
        assert canonical_key(kc_partitioned(c_tile=8), SQUARE) != canonical_key(
            kc_partitioned(c_tile=16), SQUARE
        )

    def test_duplicate_dim_falls_back(self):
        # Binding raises for a twice-mapped dim; canonicalization must
        # refuse to certify it rather than guess.
        form = canonicalize(
            Dataflow(
                name="dup",
                directives=(
                    MapDirective(dim="K", size=2, offset=2, spatial=False),
                    MapDirective(dim="K", size=4, offset=4, spatial=False),
                ),
            ),
            SQUARE,
        )
        assert form.fallback
        assert form.key[0] == "raw"

    def test_canonical_dataflow_realizes(self):
        flow = kc_partitioned(c_tile=8)
        canonical = canonical_dataflow(flow, SQUARE)
        assert canonical.name == flow.name
        assert len(canonical.directives) < len(flow.directives)


class TestSymmetry:
    def test_square_layer_has_transpose_symmetry(self):
        assert layer_symmetries(SQUARE)
        # Non-square activation: no transposition symmetry.
        assert not layer_symmetries(
            conv2d("rect", k=16, c=16, y=24, x=12, r=3, s=3)
        )

    def test_transposed_twin_shares_orbit(self):
        flow = kc_partitioned(c_tile=8)
        twin = transpose_dataflow(flow)
        symmetries = layer_symmetries(SQUARE)
        assert canonical_key(flow, SQUARE) != canonical_key(twin, SQUARE)
        assert orbit_key(canonical_key(flow, SQUARE), symmetries) == orbit_key(
            canonical_key(twin, SQUARE), symmetries
        )

    def test_integral_active_rejects_fractional_folds(self):
        # K=3 chunks over 2 PEs fold as 2 + 1: avg_active 1.5.
        flow = Dataflow(
            name="three-over-two",
            directives=(MapDirective(dim="K", size=1, offset=1, spatial=True),),
        )
        layer = conv2d("tiny", k=3, c=2, y=4, x=4, r=1, s=1)
        form = canonicalize(flow, layer)
        assert integral_active(form, 2) is False
        assert integral_active(form, 3) is True


class TestDominance:
    HW = HardwareBox.from_accelerator(Accelerator(num_pes=256))

    def test_library_flow_dominates_sequential(self):
        layer = build("vgg16").layer("CONV3")
        flow = library_flows(include_playground=False)["KC-P"]
        certificate = dominance_certificate(flow, SEQUENTIAL_K, layer, self.HW)
        assert certificate is not None
        assert certificate.dominator == "KC-P"
        assert "dominates sequential-K" in certificate.describe()
        for _, worst, best in certificate.bounds:
            assert worst <= best

    def test_no_self_dominance(self):
        layer = build("vgg16").layer("CONV3")
        assert (
            dominance_certificate(SEQUENTIAL_K, SEQUENTIAL_K, layer, self.HW)
            is None
        )


class TestLints:
    ACCELERATOR = Accelerator(num_pes=256)

    def test_df400_fires_on_inert_temporal(self):
        report = lint_dataflow(kc_partitioned(c_tile=8), SQUARE)
        assert "DF400" in codes(report)

    def test_df401_fires_on_unsorted_spatial_slots(self):
        flow = Dataflow(
            name="unsorted",
            directives=(
                MapDirective(dim="Y", size=1, offset=1, spatial=True),
                MapDirective(dim="K", size=1, offset=1, spatial=True),
            ),
        )
        report = lint_dataflow(flow, SQUARE)
        assert "DF401" in codes(report)
        fixits = [d.fixit for d in report.diagnostics if d.code == "DF401"]
        assert fixits and fixits[0].replacement is not None

    def test_df402_fires_on_transposed_library_twin(self):
        report = lint_dataflow(transpose_dataflow(kc_partitioned()), SQUARE)
        assert "DF402" in codes(report)

    def test_df403_fires_on_dominated_mapping(self):
        layer = build("vgg16").layer("CONV3")
        report = lint_dataflow(SEQUENTIAL_K, layer, self.ACCELERATOR)
        assert "DF403" in codes(report)

    def test_clean_mapping_stays_clean(self):
        report = lint_dataflow(
            canonical_dataflow(kc_partitioned(c_tile=8), SQUARE), SQUARE
        )
        assert {"DF400", "DF401"}.isdisjoint(codes(report))


class TestCrosscheck:
    def test_library_on_one_layer_bit_identical(self):
        layer = build("vgg16").layer("CONV3")
        pairs = [
            (layer, flow) for _, flow in sorted(library_flows().items())
        ]
        report = crosscheck_corpus(pairs, Accelerator(num_pes=256))
        assert report.ok, report.mismatches
        assert report.pairs_checked == len(pairs)
        assert report.canonical_changed > 0
        assert report.transposed_checked > 0


def enriched_space():
    base = kc_partitioned_variants(c_tiles=(8, 16), spatial_tiles=((1, 1), (1, 4)))
    variants = list(base)
    for label, flow in base:
        variants.append((f"{label}~T", transpose_dataflow(flow)))
    return DesignSpace(
        pe_counts=(64, 256),
        noc_bandwidths=(32,),
        dataflow_variants=variants,
    )


class TestEquivPruneParity:
    def test_dse_bit_identical_with_fewer_calls(self):
        layer = conv2d("sq", k=16, c=16, y=12, x=12, r=3, s=3)
        space = enriched_space()
        plain = explore(
            layer, space, area_budget=16.0, power_budget=450.0, cache=False
        )
        pruned = explore(
            layer, space, area_budget=16.0, power_budget=450.0, cache=False,
            equiv_prune=True,
        )
        assert pruned.points == plain.points
        assert pruned.throughput_optimal == plain.throughput_optimal
        assert pruned.energy_optimal == plain.energy_optimal
        assert pruned.edp_optimal == plain.edp_optimal
        assert pruned.statistics.equiv_replays > 0
        assert (
            pruned.statistics.cost_model_calls < plain.statistics.cost_model_calls
        )

    def test_tuner_bit_identical_with_fewer_calls(self):
        layer = conv2d("sq", k=8, c=8, y=10, x=10, r=3, s=3)
        accelerator = Accelerator(num_pes=16, noc=NoC(bandwidth=8))
        plain = tune_layer(layer, accelerator, cache=False)
        pruned = tune_layer(layer, accelerator, cache=False, equiv_prune=True)
        assert [(c.spec.name, c.score) for c in pruned.top] == [
            (c.spec.name, c.score) for c in plain.top
        ]
        assert [c.report for c in pruned.top] == [c.report for c in plain.top]
        assert pruned.equiv_replayed > 0
        assert pruned.cost_model_calls < plain.cost_model_calls


layers = st.builds(
    lambda k, c, yx, rs: conv2d(
        "prop", k=k, c=c, y=max(yx, rs + 1), x=max(yx, rs + 1), r=rs, s=rs
    ),
    k=st.integers(2, 16),
    c=st.integers(2, 16),
    yx=st.sampled_from([6, 8, 12]),
    rs=st.sampled_from([1, 3]),
)

specs = st.builds(
    CandidateSpec,
    outer_spatial=st.sampled_from(SPATIAL_DIMS),
    schedule=st.sampled_from(SCHEDULES),
    c_tile=st.sampled_from([1, 2, 4]),
    k_tile=st.sampled_from([1, 2, 4]),
    y_tile=st.sampled_from([1, 2]),
    x_tile=st.sampled_from([1, 2]),
)


@settings(max_examples=50, deadline=None)
@given(layer=layers, spec=specs)
def test_canonicalization_is_idempotent(layer, spec):
    flow = spec.build()
    form = canonicalize(flow, layer)
    again = canonicalize(canonical_dataflow(flow, layer), layer)
    assert again.key == form.key
    if not form.fallback:
        assert not again.changed


@settings(max_examples=50, deadline=None)
@given(layer=layers, spec=specs)
def test_transposition_preserves_orbit(layer, spec):
    symmetries = layer_symmetries(layer)
    assume(symmetries)
    flow = spec.build()
    form = canonicalize(flow, layer)
    twin_form = canonicalize(transpose_dataflow(flow), layer)
    assume(not form.fallback and not twin_form.fallback)
    assert orbit_key(form.key, symmetries) == orbit_key(
        twin_form.key, symmetries
    )


@settings(max_examples=50, deadline=None)
@given(layer=layers, spec=specs, num_pes=st.sampled_from([16, 64, 256]))
def test_symmetric_twins_collide_in_cache(layer, spec, num_pes):
    symmetries = layer_symmetries(layer)
    assume(symmetries)
    flow = spec.build()
    form = canonicalize(flow, layer)
    assume(not form.fallback)
    assume(integral_active(form, num_pes))
    twin = transpose_dataflow(flow)
    assert dataflow_cache_payload(flow, layer, num_pes) == dataflow_cache_payload(
        twin, layer, num_pes
    )
    # The exact tier merges redundant spellings unconditionally.
    respelled = canonical_dataflow(flow, layer, name=flow.name)
    assert dataflow_cache_payload(
        respelled, layer, num_pes
    ) == dataflow_cache_payload(flow, layer, num_pes)


@settings(max_examples=25, deadline=None)
@given(layer=layers, spec=specs)
def test_canonical_twin_analyzes_bit_identically(layer, spec):
    """The exactness claim itself, fuzzed over the template space."""
    from repro.engines.analysis import analyze_layer

    flow = spec.build()
    form = canonicalize(flow, layer)
    assume(not form.fallback and form.changed)
    accelerator = Accelerator(num_pes=16, noc=NoC(bandwidth=8))
    original = analyze_layer(layer, flow, accelerator)
    canonical = analyze_layer(layer, canonical_dataflow(flow, layer), accelerator)
    assert canonical.runtime == original.runtime
    assert canonical.energy_total == original.energy_total
    assert canonical.l2_reads == original.l2_reads
    assert canonical.reuse_factors == original.reuse_factors


def test_unknown_explain_rule_lists_families():
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--explain", "DF999"])
    message = str(excinfo.value)
    assert message.startswith("error: unknown lint rule 'DF999'")
    assert "DF4" in message
