"""Tests for the hardware models: NoC, accelerator, energy, area."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.area import AreaModel
from repro.hardware.energy import EnergyModel


class TestNoC:
    def test_delay_pipe_model(self):
        noc = NoC(bandwidth=32, avg_latency=2)
        assert noc.delay(64) == 4
        assert noc.delay(65) == 5

    def test_zero_volume_free(self):
        assert NoC(bandwidth=32, avg_latency=5).delay(0) == 0

    def test_validation(self):
        with pytest.raises(HardwareError):
            NoC(bandwidth=0)
        with pytest.raises(HardwareError):
            NoC(avg_latency=-1)

    @given(st.integers(1, 10**6), st.integers(1, 256), st.integers(0, 16))
    def test_delay_monotone_in_volume(self, volume, bandwidth, latency):
        noc = NoC(bandwidth=bandwidth, avg_latency=latency)
        assert noc.delay(volume) >= noc.delay(max(0, volume - 1))


class TestAccelerator:
    def test_defaults(self):
        acc = Accelerator()
        assert acc.num_pes == 256
        assert acc.l1_size is None

    def test_validation(self):
        with pytest.raises(HardwareError):
            Accelerator(num_pes=0)
        with pytest.raises(HardwareError):
            Accelerator(vector_width=0)
        with pytest.raises(HardwareError):
            Accelerator(l1_size=-1)
        with pytest.raises(HardwareError):
            Accelerator(clock_ghz=0)

    def test_with_noc(self):
        acc = Accelerator().with_noc(multicast=False, bandwidth=8)
        assert not acc.noc.multicast
        assert acc.noc.bandwidth == 8
        assert acc.num_pes == 256

    def test_gbps_conversion(self):
        acc = Accelerator(noc=NoC(bandwidth=16), element_bytes=2, clock_ghz=1.0)
        assert acc.noc_gbps() == 32.0


class TestEnergyModel:
    def test_sram_energy_grows_with_capacity(self):
        model = EnergyModel()
        assert model.sram_access(2048) < model.sram_access(1 << 20)

    def test_calibration_anchors(self):
        model = EnergyModel()
        assert model.sram_access(2048) == pytest.approx(1.2, rel=0.05)
        assert model.sram_access(1 << 20) == pytest.approx(18.0, rel=0.05)

    def test_dram_dominates(self):
        model = EnergyModel()
        assert model.dram > model.sram_access(1 << 20)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EnergyModel().sram_access(0)

    def test_write_factor(self):
        model = EnergyModel(sram_write_factor=1.5)
        assert model.sram_write(2048) == pytest.approx(model.sram_access(2048) * 1.5)


class TestAreaModel:
    def make(self, pes=64, l1=2048, l2=1 << 20, bw=32):
        return Accelerator(num_pes=pes, l1_size=l1, l2_size=l2, noc=NoC(bandwidth=bw))

    def test_area_monotone_in_everything(self):
        model = AreaModel()
        base = model.area(self.make())
        assert model.area(self.make(pes=128)) > base
        assert model.area(self.make(l1=4096)) > base
        assert model.area(self.make(l2=2 << 20)) > base
        assert model.area(self.make(bw=64)) > base

    def test_power_monotone(self):
        model = AreaModel()
        base = model.power(self.make())
        assert model.power(self.make(pes=128)) > base
        assert model.power(self.make(bw=64)) > base

    def test_requires_concrete_buffers(self):
        model = AreaModel()
        with pytest.raises(ValueError):
            model.area(Accelerator(num_pes=4))

    def test_min_bounds_are_lower_bounds(self):
        model = AreaModel()
        acc = self.make()
        assert model.min_area(64, 32) <= model.area(acc)
        assert model.min_power(64, 32) <= model.power(acc)

    def test_eyeriss_class_design_fits_paper_budget(self):
        """168 PEs + ~200KB SRAM should land near 16 mm^2 / 450 mW."""
        model = AreaModel()
        acc = Accelerator(
            num_pes=168, l1_size=512, l2_size=128 << 10, noc=NoC(bandwidth=16)
        )
        assert model.area(acc) < 20.0
        assert model.power(acc) < 550.0

    @given(st.integers(1, 2048), st.integers(1, 256))
    def test_min_area_quadratic_in_pes(self, pes, bw):
        model = AreaModel()
        assert model.min_area(pes, bw) > 0
        assert model.min_area(2 * pes, bw) > 2 * model.min_area(pes, bw) * 0.99
