"""Differential parity: vectorized whole-grid engine vs scalar pipeline.

Sweeps every structurally-distinct layer in the model zoo against every
library dataflow (the same matrix the lint-coverage suite uses,
including its ``KNOWN_COVERAGE_GAPS`` envelopes) on a hardware grid
that includes infeasible PE counts, and requires bit-identical results
— zero tolerance, including int-vs-float type drift and rejection
messages. A Hypothesis fuzz case widens the layer-shape space; the
weekly CI lane re-runs it with ``REPRO_VECTOR_FUZZ_EXAMPLES=500``.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.analysis import analyze_layer
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.model.zoo import MODELS, build
from repro.vector import VectorLoweringError, crosscheck_vector
from tests.test_lint_library import KNOWN_COVERAGE_GAPS, stock_mappings

# Small but representative: power-of-two PEs spanning infeasible-to-
# ample, crossed with a slow and a fast NoC.
GRID = [
    Accelerator(num_pes=pes, noc=NoC(bandwidth=bw))
    for pes in (2, 16, 128, 1024)
    for bw in (1, 32)
]


def _zoo_layers():
    """One exemplar per distinct (dim sizes, operator) structure."""
    seen = {}
    for model_name in MODELS:
        for layer in build(model_name).layers:
            signature = (
                tuple(sorted(layer.all_dim_sizes().items())),
                layer.operator,
            )
            seen.setdefault(signature, (f"{model_name}:{layer.name}", layer))
    return list(seen.values())


ZOO_LAYERS = _zoo_layers()
FLOWS = stock_mappings()


def _assert_parity(layer, dataflow, grid, sample=None):
    """Crosscheck, treating a lowering refusal as valid only if honest.

    ``VectorLoweringError`` is the fallback contract: the batch backend
    would run those points through the scalar engines, so parity holds
    by construction — but only if the scalar pipeline genuinely rejects
    grid-independently (otherwise the lowering refused work it should
    have expressed, which we flag as a coverage loss, not a soundness
    bug — asserted here to keep the expressible set from silently
    shrinking).
    """
    try:
        report = crosscheck_vector(layer, dataflow, grid, rtol=0.0, sample=sample)
    except VectorLoweringError:
        for accelerator in grid[:2]:
            with pytest.raises((BindingError, DataflowError)):
                analyze_layer(layer, dataflow, accelerator)
        return None
    assert not report.mismatches, report.mismatches[0]
    return report


@pytest.mark.parametrize("flow_name", sorted(FLOWS), ids=lambda name: name.replace(" ", "_"))
def test_parity_across_zoo_layers(flow_name):
    dataflow = FLOWS[flow_name]
    gap = KNOWN_COVERAGE_GAPS.get(flow_name)
    checked = 0
    gap_cases = 0
    for label, layer in ZOO_LAYERS:
        if gap is not None and not gap(layer):
            # Outside the mapping's declared envelope: the scalar
            # pipeline may reject or produce an un-proven result —
            # either way the vector engine must agree exactly.
            gap_cases += 1
        report = _assert_parity(layer, dataflow, GRID, sample=2)
        if report is not None:
            checked += report.points_checked
    assert checked > 0 or gap_cases > 0
    if gap is not None:
        assert gap_cases > 0, "envelope gap never exercised"


def test_parity_full_grid_no_sampling(small_conv):
    """Every grid point scalar-checked, not a sample, on one layer."""
    for name, dataflow in FLOWS.items():
        report = _assert_parity(small_conv, dataflow, GRID)
        if report is not None:
            assert report.points_checked == len(GRID)


def test_parity_under_hardware_feature_toggles(small_conv):
    """Template fields (not just the grid axes) all reach the lowering."""
    toggled = [
        Accelerator(num_pes=64, noc=NoC(bandwidth=8, multicast=False)),
        Accelerator(num_pes=64, noc=NoC(bandwidth=8, avg_latency=0)),
        Accelerator(num_pes=64, noc=NoC(bandwidth=8), spatial_reduction=False),
        Accelerator(num_pes=64, noc=NoC(bandwidth=8), double_buffered=False),
        Accelerator(num_pes=64, noc=NoC(bandwidth=8), l1_size=256, l2_size=4096),
        Accelerator(num_pes=64, noc=NoC(bandwidth=8), vector_width=4),
        Accelerator(num_pes=128, noc=NoC(bandwidth=8), dram_bandwidth=16.0),
    ]
    for variant in toggled:
        grid = [
            Accelerator(
                num_pes=pes,
                noc=variant.noc,
                l1_size=variant.l1_size,
                l2_size=variant.l2_size,
                spatial_reduction=variant.spatial_reduction,
                double_buffered=variant.double_buffered,
                vector_width=variant.vector_width,
                dram_bandwidth=variant.dram_bandwidth,
            )
            for pes in (8, 64, 512)
        ]
        for dataflow in FLOWS.values():
            _assert_parity(small_conv, dataflow, grid)


@settings(
    max_examples=int(os.environ.get("REPRO_VECTOR_FUZZ_EXAMPLES", "25")),
    deadline=None,
)
@given(
    k=st.integers(min_value=1, max_value=96),
    c=st.integers(min_value=1, max_value=96),
    y=st.integers(min_value=3, max_value=48),
    x=st.integers(min_value=3, max_value=48),
    r=st.sampled_from([1, 3, 5, 7]),
    s=st.sampled_from([1, 3, 5, 7]),
    stride=st.sampled_from([1, 2]),
    flow_name=st.sampled_from(sorted(FLOWS)),
    pes=st.sampled_from([4, 32, 256, 2048]),
    bandwidth=st.sampled_from([1, 8, 64]),
)
def test_parity_fuzz(k, c, y, x, r, s, stride, flow_name, pes, bandwidth):
    if r > y or s > x:
        return
    layer = conv2d("fuzz", k=k, c=c, y=y, x=x, r=r, s=s, stride=stride)
    grid = [
        Accelerator(num_pes=p, noc=NoC(bandwidth=b))
        for p in (pes, pes * 2)
        for b in (bandwidth, bandwidth * 2)
    ]
    _assert_parity(layer, FLOWS[flow_name], grid)
