"""Integration of the coverage verifier with lint, DSE, tuner, and the
simulator.

Soundness contracts under test:

* with coverage pruning on, DSE/tuner optima are bit-identical when all
  candidates are sound, and only provably-wrong mutants get pruned;
* lint's DF101 fires exactly on refuted mappings (provenance "proven"),
  DF102 on proven ones;
* the simulator's dense ``macs_issued`` equals ``layer.total_ops()``
  for proven mappings on edge-free configurations — a third independent
  executor agreeing with the verifier.
"""

import pytest

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import spatial_map, temporal_map
from repro.dataflow.library import table3_dataflows
from repro.dse import explore
from repro.dse.space import DesignSpace, kc_partitioned_variants
from repro.hardware.accelerator import Accelerator, NoC
from repro.lint import lint_dataflow
from repro.model.layer import conv2d
from repro.tensors import dims as D
from repro.tuner import tune_layer
from repro.verify import Verdict, verify_dataflow


MUTANT = Dataflow(
    name="mutant-missed-C",
    directives=(spatial_map(1, 1, D.K), temporal_map(1, 2, D.C)),
)


@pytest.fixture(scope="module")
def layer():
    return conv2d("itg", k=16, c=16, y=12, x=12, r=3, s=3)


# ----------------------------------------------------------------------
# DSE: sound pruning
# ----------------------------------------------------------------------
class TestDSECoveragePruning:
    def test_optima_bit_identical_when_all_sound(self, layer):
        space = DesignSpace(
            pe_counts=[16, 64],
            noc_bandwidths=[4, 32],
            dataflow_variants=kc_partitioned_variants(
                c_tiles=(8, 16), spatial_tiles=((1, 1), (4, 4))
            ),
        )
        plain = explore(layer, space, area_budget=16.0, power_budget=450.0)
        checked = explore(
            layer,
            space,
            area_budget=16.0,
            power_budget=450.0,
            verify_coverage=True,
        )
        assert checked.statistics.coverage_rejects == 0
        assert checked.points == plain.points
        assert checked.throughput_optimal == plain.throughput_optimal
        assert checked.energy_optimal == plain.energy_optimal
        assert checked.edp_optimal == plain.edp_optimal

    def test_mutant_variant_is_pruned(self, layer):
        variants = kc_partitioned_variants(c_tiles=(8,), spatial_tiles=((1, 1),))
        variants.append(("mutant", MUTANT))
        space = DesignSpace(
            pe_counts=[16, 64],
            noc_bandwidths=[4],
            dataflow_variants=variants,
        )
        result = explore(
            layer,
            space,
            area_budget=16.0,
            power_budget=450.0,
            verify_coverage=True,
        )
        # One refuted variant x every surviving grid point.
        assert result.statistics.coverage_rejects == 2
        assert all(point.tile_label != "mutant" for point in result.points)
        # Without pruning the mutant evaluates and lands in the space.
        unchecked = explore(layer, space, area_budget=16.0, power_budget=450.0)
        assert any(point.tile_label == "mutant" for point in unchecked.points)
        assert unchecked.statistics.coverage_rejects == 0


# ----------------------------------------------------------------------
# Tuner: sound pruning
# ----------------------------------------------------------------------
class TestTunerCoveragePruning:
    def test_best_candidate_unchanged(self, layer):
        accelerator = Accelerator(num_pes=64, noc=NoC(bandwidth=32, avg_latency=2))
        plain = tune_layer(
            layer, accelerator, strategy="random", budget=24, seed=3
        )
        checked = tune_layer(
            layer,
            accelerator,
            strategy="random",
            budget=24,
            seed=3,
            verify_coverage=True,
        )
        assert checked.best.spec == plain.best.spec
        assert checked.best.score == plain.best.score
        assert [c.spec for c in checked.top] == [c.spec for c in plain.top]


# ----------------------------------------------------------------------
# Lint: DF101/DF102/DF103 provenance-carrying diagnostics
# ----------------------------------------------------------------------
class TestLintIntegration:
    def test_df102_on_proven_mapping(self, layer):
        report = lint_dataflow(table3_dataflows()["KC-P"], layer)
        infos = {d.code: d for d in report.infos}
        assert "DF102" in infos
        assert infos["DF102"].provenance == "proven"
        assert "DF101" not in report.codes()

    def test_df101_on_refuted_mapping(self, layer):
        report = lint_dataflow(MUTANT, layer)
        errors = {d.code: d for d in report.errors}
        assert "DF101" in errors
        diagnostic = errors["DF101"]
        assert diagnostic.provenance == "proven"
        assert "MAC" in diagnostic.message
        assert diagnostic.fixit is not None
        # Rendered reports surface the provenance note.
        assert "provenance: proven" in report.render()

    def test_no_coverage_codes_without_layer(self):
        report = lint_dataflow(MUTANT, layer=None)
        assert not {"DF101", "DF102", "DF103"} & set(report.codes())

    def test_provenance_in_json(self, layer):
        report = lint_dataflow(MUTANT, layer)
        payload = report.to_dict()
        by_code = {d["code"]: d for d in payload["diagnostics"]}
        assert by_code["DF101"]["provenance"] == "proven"


# ----------------------------------------------------------------------
# Simulator: third independent executor
# ----------------------------------------------------------------------
class TestSimulatorMACs:
    #: (flow name, layer) pairs whose bound schedules have no edge
    #: tiles, so the steady-tile dense count must be exact.
    EDGE_FREE_FLOWS = ["C-P", "X-P", "YR-P", "KC-P"]

    @pytest.mark.parametrize("name", EDGE_FREE_FLOWS)
    def test_macs_issued_matches_total_ops(self, name, small_conv, accelerator):
        from repro.simulator import simulate_layer

        flow = table3_dataflows()[name]
        assert verify_dataflow(flow, small_conv).verdict is Verdict.PROVEN
        sim = simulate_layer(small_conv, flow, accelerator)
        assert sim.macs_issued == small_conv.total_ops()

    def test_mutant_undercounts(self, small_conv, accelerator):
        from repro.simulator import simulate_layer

        # The missed-C mutant walks only every other input channel, so
        # the schedule provably issues fewer MACs than the layer needs.
        sim = simulate_layer(small_conv, MUTANT, accelerator)
        assert sim.macs_issued < small_conv.total_ops()
