"""Unit and property tests for repro.util.intmath."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import ceil_div, clamp, num_chunks, prod


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_dividend(self):
        assert ceil_div(0, 7) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == -(-a // b)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_bound_property(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a or a == 0
        assert q * b >= a


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-3, 0, 10) == 0

    def test_above(self):
        assert clamp(42, 0, 10) == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 4)

    @given(st.integers(), st.integers(), st.integers())
    def test_result_in_range(self, value, a, b):
        low, high = min(a, b), max(a, b)
        assert low <= clamp(value, low, high) <= high


class TestNumChunks:
    def test_single_chunk_when_size_covers(self):
        assert num_chunks(10, 10, 1) == 1
        assert num_chunks(10, 12, 3) == 1

    def test_non_overlapping(self):
        assert num_chunks(12, 3, 3) == 4

    def test_overlapping_sliding_window(self):
        # A 3-wide window sliding by 1 over 12: 10 chunks.
        assert num_chunks(12, 3, 1) == 10

    def test_partial_tail_chunk(self):
        # size 4 offset 3 over 10: starts 0,3,6 -> 3 chunks.
        assert num_chunks(10, 4, 3) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            num_chunks(0, 1, 1)
        with pytest.raises(ValueError):
            num_chunks(10, 0, 1)
        with pytest.raises(ValueError):
            num_chunks(10, 1, 0)

    @given(
        st.integers(1, 10_000), st.integers(1, 10_000), st.integers(1, 10_000)
    )
    def test_coverage_property(self, total, size, offset):
        """Chunks tile the dimension: last chunk start covers the end."""
        chunks = num_chunks(total, size, offset)
        assert chunks >= 1
        if size >= total:
            assert chunks == 1
        else:
            last_start = (chunks - 1) * offset
            assert last_start + size >= total  # covered
            assert (chunks - 2) * offset + size < total  # minimal


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_values(self):
        assert prod([2, 3, 4]) == 24

    @given(st.lists(st.integers(-50, 50), max_size=8))
    def test_matches_manual(self, values):
        expected = 1
        for v in values:
            expected *= v
        assert prod(values) == expected
