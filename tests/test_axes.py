"""Tests for the axis machinery (extent / delta / shift / unique)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensors import dims as D
from repro.tensors.axes import ConvOutputAxis, PlainAxis, SlidingInputAxis


class TestPlainAxis:
    def test_extent(self):
        axis = PlainAxis(D.K)
        assert axis.extent({D.K: 7}) == 7

    def test_delta_on_own_dim(self):
        axis = PlainAxis(D.K)
        assert axis.delta(D.K, 3, {D.K: 7}) == 3

    def test_delta_capped_at_extent(self):
        axis = PlainAxis(D.K)
        assert axis.delta(D.K, 100, {D.K: 7}) == 7

    def test_delta_other_dim_zero(self):
        axis = PlainAxis(D.K)
        assert axis.delta(D.C, 3, {D.K: 7}) == 0

    def test_shift(self):
        axis = PlainAxis(D.C)
        assert axis.shift({D.C: 2}) == 2.0
        assert axis.shift({D.K: 2}) == 0.0


class TestSlidingInputAxis:
    def test_extent_stride1(self):
        # 4 output positions, 3-wide kernel, stride 1: 6 input positions.
        axis = SlidingInputAxis(D.YP, D.R, stride=1)
        assert axis.extent({D.YP: 4, D.R: 3}) == 6

    def test_extent_stride2(self):
        # 4 outputs at stride 2 span (4-1)*2 + 3 = 9 inputs.
        axis = SlidingInputAxis(D.YP, D.R, stride=2)
        assert axis.extent({D.YP: 4, D.R: 3}) == 9

    def test_extent_dilation(self):
        axis = SlidingInputAxis(D.YP, D.R, stride=1, dilation=2)
        assert axis.extent({D.YP: 1, D.R: 3}) == 5

    def test_delta_output_advance(self):
        axis = SlidingInputAxis(D.YP, D.R, stride=2)
        # Advancing output by 1 slides the window by the stride.
        assert axis.delta(D.YP, 1, {D.YP: 4, D.R: 3}) == 2

    def test_delta_kernel_advance(self):
        axis = SlidingInputAxis(D.YP, D.R, stride=1)
        assert axis.delta(D.R, 1, {D.YP: 4, D.R: 3}) == 1

    def test_shift_combines_both_dims(self):
        axis = SlidingInputAxis(D.YP, D.R, stride=2, dilation=1)
        assert axis.shift({D.YP: 1, D.R: 1}) == 3.0

    @given(
        st.integers(1, 32), st.integers(1, 7), st.integers(1, 4), st.integers(1, 3)
    )
    def test_delta_never_exceeds_extent(self, out, kernel, stride, offset):
        axis = SlidingInputAxis(D.YP, D.R, stride=stride)
        sizes = {D.YP: out, D.R: kernel}
        assert axis.delta(D.YP, offset, sizes) <= axis.extent(sizes)


class TestConvOutputAxis:
    def test_extent_full_kernel(self):
        # 5 input rows, 3-wide kernel chunk, stride 1 -> 3 complete windows.
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        assert axis.extent({D.Y: 5, D.R: 3}) == 3

    def test_extent_stride(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=2)
        assert axis.extent({D.Y: 7, D.R: 3}) == 3

    def test_extent_zero_when_window_does_not_fit(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        assert axis.extent({D.Y: 2, D.R: 3}) == 0

    def test_delta_input_advance(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        assert axis.delta(D.Y, 1, {D.Y: 5, D.R: 3}) == 1

    def test_delta_input_advance_stride2_rounds_up(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=2)
        assert axis.delta(D.Y, 1, {D.Y: 7, D.R: 3}) == 1
        assert axis.delta(D.Y, 4, {D.Y: 7, D.R: 3}) == 2

    def test_diagonal_shift_cancels(self):
        """The Eyeriss diagonal: Y and R both shift by 1 -> outputs fixed."""
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        assert axis.shift({D.Y: 1, D.R: 1}) == 0.0

    def test_shift_sign(self):
        axis = ConvOutputAxis(D.Y, D.R, stride=1)
        assert axis.shift({D.R: 1}) == -1.0

    @given(st.integers(1, 64), st.integers(1, 7), st.integers(1, 4))
    def test_inverse_of_sliding(self, out, kernel, stride):
        """Sliding then conv-out recovers the output count."""
        sliding = SlidingInputAxis(D.YP, D.R, stride=stride)
        conv = ConvOutputAxis(D.Y, D.R, stride=stride)
        in_extent = sliding.extent({D.YP: out, D.R: kernel})
        assert conv.extent({D.Y: in_extent, D.R: kernel}) == out


class TestUniqueAcross:
    def test_zero_shift_is_multicast(self):
        axis = PlainAxis(D.K)
        assert axis.unique_across({D.K: 4}, {D.C: 1}, count=10) == 4

    def test_halo_overlap(self):
        # 3-wide chunks shifted by 1 across 4 units: 3 + 3 = 6 unique.
        axis = PlainAxis(D.Y)
        assert axis.unique_across({D.Y: 3}, {D.Y: 1}, count=4) == 6

    def test_disjoint_chunks(self):
        axis = PlainAxis(D.Y)
        assert axis.unique_across({D.Y: 3}, {D.Y: 3}, count=4) == 12

    def test_shift_beyond_extent_caps_at_extent(self):
        axis = PlainAxis(D.Y)
        # Shift 10 > extent 3: disjoint, still 3 per unit.
        assert axis.unique_across({D.Y: 3}, {D.Y: 10}, count=4) == 12

    def test_count_must_be_positive(self):
        axis = PlainAxis(D.Y)
        with pytest.raises(ValueError):
            axis.unique_across({D.Y: 3}, {D.Y: 1}, count=0)

    @given(st.integers(1, 20), st.integers(0, 25), st.integers(1, 16))
    def test_bounds(self, extent, shift, count):
        axis = PlainAxis(D.Y)
        unique = axis.unique_across({D.Y: extent}, {D.Y: shift}, count=count)
        assert extent <= unique <= extent * count
