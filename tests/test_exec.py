"""Tests for the batch-evaluation backend (executors + memoization).

The load-bearing property: every executor/cache combination returns
results *bit-identical* to the serial uncached loop — dataclass
equality, float bits, and dict iteration order included — so the sweep
consumers can treat ``executor``/``jobs``/``cache`` as pure performance
knobs.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    evaluate_size,
    spatial_map,
    temporal_map,
)
from repro.dse import explore
from repro.dse.space import DesignSpace, kc_partitioned_variants
from repro.exec import (
    AnalysisCache,
    BatchEvaluator,
    EvalPoint,
    analysis_from_dict,
    analysis_to_dict,
    cache_key,
    canonical_point_payload,
    dataflow_cache_payload,
    evaluate_batch,
    model_version_salt,
    resolve_cache,
)
from repro.exec.cache import canonical_directives
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.energy import DEFAULT_ENERGY_MODEL
from repro.hetero import SubAccelerator, analyze_heterogeneous
from repro.model.layer import conv2d
from repro.model.network import Network
from repro.tensors import dims as D
from repro.tuner.search import tune_layer
from repro.tuner.templates import SCHEDULES, SPATIAL_DIMS, CandidateSpec


@pytest.fixture(scope="module")
def layer():
    return conv2d("exec-t", k=16, c=16, y=12, x=12, r=3, s=3)


@pytest.fixture(scope="module")
def points(layer):
    from repro.dataflow.library import kc_partitioned, yr_partitioned

    flows = [kc_partitioned(c_tile=8), yr_partitioned()]
    return [
        EvalPoint(layer, flow, Accelerator(num_pes=pes, noc=NoC(bandwidth=bw)))
        for flow in flows
        for pes in (16, 64)
        for bw in (4, 32)
    ]


def assert_reports_bit_identical(left, right):
    assert left == right
    # Dataclass equality compares mappings by content; iteration order
    # is part of the backend's contract, so check it explicitly.
    for field in (
        "l2_reads",
        "l2_writes",
        "l1_reads",
        "l1_writes",
        "dram_reads",
        "dram_writes",
        "reuse_factors",
        "max_reuse_factors",
        "energy_breakdown",
    ):
        assert list(getattr(left, field)) == list(getattr(right, field))


class TestExecutorEquivalence:
    def test_process_matches_serial(self, points):
        serial = evaluate_batch(points, executor="serial", cache=False)
        process = evaluate_batch(points, executor="process", jobs=2, cache=False)
        assert serial.stats.executor == "serial"
        assert process.stats.executor == "process"
        assert len(serial) == len(process) == len(points)
        for a, b in zip(serial, process):
            assert a.ok == b.ok
            if a.ok:
                assert_reports_bit_identical(a.report, b.report)

    def test_cold_and_warm_cache_match_serial(self, points):
        reference = evaluate_batch(points, executor="serial", cache=False)
        cache = AnalysisCache()
        cold = evaluate_batch(points, executor="serial", cache=cache)
        warm = evaluate_batch(points, executor="process", jobs=2, cache=cache)
        assert cold.stats.cache_hits == 0
        assert cold.stats.evaluated == len(points)
        assert warm.stats.cache_hits == len(points)
        assert warm.stats.evaluated == 0
        # A fully warm batch never needs workers.
        assert warm.stats.executor == "serial"
        for ref, c, w in zip(reference, cold, warm):
            assert_reports_bit_identical(ref.report, c.report)
            assert_reports_bit_identical(ref.report, w.report)
            assert not c.cached and w.cached

    def test_auto_stays_serial_for_small_batches(self, points):
        result = evaluate_batch(points, executor="auto", jobs=4, cache=False)
        assert result.stats.executor == "serial"

    def test_rejections_become_outcomes_and_are_cached(self, layer):
        too_wide = Dataflow(
            name="too-wide",
            directives=(
                spatial_map(1, 1, D.K),
                ClusterDirective(4096),  # no 4-PE array holds this
                spatial_map(1, 1, D.C),
            ),
        )
        point = EvalPoint(layer, too_wide, Accelerator(num_pes=4))
        cache = AnalysisCache()
        cold = evaluate_batch([point], cache=cache)
        warm = evaluate_batch([point], cache=cache)
        for result in (cold, warm):
            (outcome,) = result.outcomes
            assert not outcome.ok
            assert outcome.error_type == "BindingError"
            assert "4096" in outcome.error_message
        assert warm.stats.cache_hits == 1
        assert warm.outcomes[0].cached

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            BatchEvaluator(executor="threads")
        with pytest.raises(ValueError):
            BatchEvaluator(jobs=0)

    def test_empty_batch(self):
        result = evaluate_batch([], cache=False)
        assert len(result) == 0
        assert result.stats.submitted == 0

    def test_points_are_picklable(self, points):
        clone = pickle.loads(pickle.dumps(points[0]))
        assert clone.layer == points[0].layer
        assert clone.dataflow == points[0].dataflow
        assert clone.key() == points[0].key()


class TestCache:
    def test_lru_eviction(self, layer, points):
        cache = AnalysisCache(max_entries=4)
        evaluate_batch(points, cache=cache)
        assert len(cache) == 4
        assert cache.evictions == len(points) - 4

    def test_disk_roundtrip_bit_identical(self, tmp_path, points):
        reference = evaluate_batch(points, cache=False)
        writer = AnalysisCache(disk_dir=tmp_path)
        evaluate_batch(points, cache=writer)
        # Fresh memory tier: every hit must come from the JSON files.
        reader = AnalysisCache(disk_dir=tmp_path)
        replayed = evaluate_batch(points, cache=reader)
        assert reader.disk_hits == len(points)
        assert replayed.stats.cache_hits == len(points)
        for ref, hit in zip(reference, replayed):
            assert_reports_bit_identical(ref.report, hit.report)

    def test_disk_layout_sharded_by_salt(self, tmp_path, points):
        cache = AnalysisCache(disk_dir=tmp_path)
        evaluate_batch(points[:1], cache=cache)
        files = list(tmp_path.rglob("*.json"))
        assert len(files) == 1
        assert files[0].parent.parent.name == model_version_salt()

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, points):
        cache = AnalysisCache(disk_dir=tmp_path)
        evaluate_batch(points[:1], cache=cache)
        (path,) = list(tmp_path.rglob("*.json"))
        path.write_text("{not json")
        reader = AnalysisCache(disk_dir=tmp_path)
        result = evaluate_batch(points[:1], cache=reader)
        assert result.stats.cache_hits == 0
        assert result.outcomes[0].ok

    def test_corrupt_entry_is_counted_logged_deleted_and_rewritten(
        self, tmp_path, points, caplog
    ):
        import logging

        cache = AnalysisCache(disk_dir=tmp_path)
        evaluate_batch(points[:1], cache=cache)
        (path,) = list(tmp_path.rglob("*.json"))
        path.write_text('{"report": {"layer_na')  # an interrupted writer
        reader = AnalysisCache(disk_dir=tmp_path)
        key = points[0].key()
        with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
            assert reader.get(key) is None  # corrupt = miss, not a crash
        assert reader.corrupt_entries == 1
        assert not path.exists()  # the bad file is dropped
        assert any("corrupt cache entry" in r.message for r in caplog.records)
        # The recompute rewrites a good entry at the same path.
        result = evaluate_batch(points[:1], cache=reader)
        assert result.outcomes[0].ok
        fresh = AnalysisCache(disk_dir=tmp_path)
        assert fresh.get(key) is not None
        assert fresh.corrupt_entries == 0

    def test_corrupt_entry_increments_the_obs_counter(self, tmp_path, points):
        from repro import obs

        cache = AnalysisCache(disk_dir=tmp_path)
        evaluate_batch(points[:1], cache=cache)
        (path,) = list(tmp_path.rglob("*.json"))
        path.write_text("not json at all")
        reader = AnalysisCache(disk_dir=tmp_path)
        obs.configure(enabled=True, reset=True)
        try:
            assert reader.get(points[0].key()) is None
            assert obs.counter_value("cache.corrupt_entries") == 1
            assert obs.counter_value("cache.misses") == 1
        finally:
            obs.configure(enabled=False, reset=True)

    def test_resolve_cache(self):
        assert resolve_cache(False) is None
        assert resolve_cache(None) is None
        instance = AnalysisCache()
        assert resolve_cache(instance) is instance
        assert resolve_cache(True) is resolve_cache(True)  # shared singleton
        with pytest.raises(TypeError):
            resolve_cache("yes")

    def test_analysis_dict_roundtrip(self, points):
        report = evaluate_batch(points[:1], cache=False).outcomes[0].report
        clone = analysis_from_dict(analysis_to_dict(report))
        assert_reports_bit_identical(report, clone)


# ----------------------------------------------------------------------
# Cache-key properties: injective on distinct canonical mappings, stable
# across the spelling-equivalent forms PR 1 proved bind identically.
# ----------------------------------------------------------------------
key_layers = st.builds(
    lambda k, c, yx, rs: conv2d("key-prop", k=k, c=c, y=max(yx, rs), x=max(yx, rs), r=rs, s=rs),
    k=st.integers(1, 16),
    c=st.integers(1, 16),
    yx=st.integers(4, 12),
    rs=st.integers(1, 3),
)

key_specs = st.builds(
    CandidateSpec,
    outer_spatial=st.sampled_from(SPATIAL_DIMS),
    schedule=st.sampled_from(SCHEDULES),
    c_tile=st.sampled_from([1, 2, 4]),
    k_tile=st.sampled_from([1, 2]),
    y_tile=st.sampled_from([1, 2]),
    x_tile=st.sampled_from([1, 2]),
)

_KEY_HW = Accelerator(num_pes=16, noc=NoC(bandwidth=8))


def _renamed(dataflow, name):
    return Dataflow(name=name, directives=dataflow.directives)


def _concrete_spelling(dataflow, layer):
    """Rewrite every symbolic size/offset as its concrete integer."""
    sizes = layer.all_dim_sizes()
    strides = {D.Y: layer.stride[0], D.X: layer.stride[1]}
    directives = []
    for directive in dataflow.directives:
        if isinstance(directive, ClusterDirective):
            directives.append(ClusterDirective(evaluate_size(directive.size, sizes, strides)))
        else:
            build = spatial_map if directive.spatial else temporal_map
            directives.append(
                build(
                    evaluate_size(directive.size, sizes, strides),
                    evaluate_size(directive.offset, sizes, strides),
                    directive.dim,
                )
            )
    return Dataflow(name=dataflow.name, directives=tuple(directives))


class TestCacheKeyProperties:
    @settings(max_examples=40, deadline=None)
    @given(layer=key_layers, spec_a=key_specs, spec_b=key_specs)
    def test_injective_on_distinct_canonical_mappings(self, layer, spec_a, spec_b):
        flow_a = _renamed(spec_a.build(), "same-name")
        flow_b = _renamed(spec_b.build(), "same-name")
        key_a = cache_key(layer, flow_a, _KEY_HW, DEFAULT_ENERGY_MODEL)
        key_b = cache_key(layer, flow_b, _KEY_HW, DEFAULT_ENERGY_MODEL)
        payload_a = dataflow_cache_payload(flow_a, layer, _KEY_HW.num_pes)
        payload_b = dataflow_cache_payload(flow_b, layer, _KEY_HW.num_pes)
        if payload_a != payload_b:
            assert key_a != key_b
        else:
            assert key_a == key_b
        # The quotient only ever merges what the raw spelling tier kept
        # apart, never the reverse: identical evaluated spellings (same
        # name) must still share a key.
        if canonical_directives(flow_a, layer) == canonical_directives(flow_b, layer):
            assert key_a == key_b

    @settings(max_examples=40, deadline=None)
    @given(layer=key_layers, spec=key_specs)
    def test_stable_across_spelling_equivalent_forms(self, layer, spec):
        symbolic = spec.build()
        concrete = _concrete_spelling(symbolic, layer)
        assert cache_key(layer, symbolic, _KEY_HW, DEFAULT_ENERGY_MODEL) == cache_key(
            layer, concrete, _KEY_HW, DEFAULT_ENERGY_MODEL
        )

    def test_key_distinguishes_hardware_and_energy(self, layer):
        from repro.dataflow.library import kc_partitioned
        from repro.hardware.energy import EnergyModel

        flow = kc_partitioned(c_tile=8)
        base = cache_key(layer, flow, _KEY_HW, DEFAULT_ENERGY_MODEL)
        other_hw = cache_key(
            layer, flow, Accelerator(num_pes=32, noc=NoC(bandwidth=8)), DEFAULT_ENERGY_MODEL
        )
        other_energy = cache_key(layer, flow, _KEY_HW, EnergyModel(dram=100.0))
        assert len({base, other_hw, other_energy}) == 3

    def test_payload_carries_model_version_salt(self, layer):
        from repro.dataflow.library import kc_partitioned

        payload = canonical_point_payload(
            layer, kc_partitioned(c_tile=8), _KEY_HW, DEFAULT_ENERGY_MODEL
        )
        assert payload["salt"] == model_version_salt()
        assert len(model_version_salt()) == 12


# ----------------------------------------------------------------------
# Sweep consumers through the backend.
# ----------------------------------------------------------------------
class TestExploreThroughBackend:
    @pytest.fixture(scope="class")
    def space(self):
        return DesignSpace(
            pe_counts=[16, 32, 64],
            noc_bandwidths=[4, 32],
            dataflow_variants=kc_partitioned_variants(
                c_tiles=(8, 64), spatial_tiles=((1, 1), (4, 4))
            ),
        )

    def test_serial_process_cold_warm_all_identical(self, layer, space):
        reference = explore(
            layer, space, area_budget=16.0, power_budget=450.0,
            executor="serial", cache=False,
        )
        process = explore(
            layer, space, area_budget=16.0, power_budget=450.0,
            executor="process", jobs=2, cache=False,
        )
        shared = AnalysisCache()
        cold = explore(
            layer, space, area_budget=16.0, power_budget=450.0,
            executor="serial", cache=shared,
        )
        warm = explore(
            layer, space, area_budget=16.0, power_budget=450.0,
            executor="process", jobs=2, cache=shared,
        )
        assert warm.statistics.cache_hits == warm.statistics.cost_model_calls > 0
        for other in (process, cold, warm):
            assert other.points == reference.points  # order included
            assert other.throughput_optimal == reference.throughput_optimal
            assert other.energy_optimal == reference.energy_optimal
            assert other.edp_optimal == reference.edp_optimal
            for field in ("explored", "evaluated", "valid", "pruned",
                          "static_rejects", "cost_model_calls"):
                assert getattr(other.statistics, field) == getattr(
                    reference.statistics, field
                )

    def test_statistics_partition_the_grid(self, layer, space):
        # With the lint disabled, binding failures surface as cost-model
        # failures; the partition invariant must hold either way.
        for static_lint in (True, False):
            result = explore(
                layer, space, area_budget=16.0, power_budget=450.0,
                static_lint=static_lint, cache=False,
            )
            stats = result.statistics
            failures = stats.cost_model_calls - stats.evaluated
            assert stats.explored == space.size
            assert stats.cost_model_calls + stats.pruned == stats.explored
            assert stats.evaluated + failures + stats.pruned == stats.explored
        assert failures > 0  # the space contains unbindable variants


class TestTunerThroughBackend:
    @pytest.fixture(scope="class")
    def specs(self):
        from repro.tuner.templates import enumerate_candidates

        return list(enumerate_candidates(c_tiles=(1, 4), k_tiles=(1,), cluster_sizes=(8,)))

    def test_equivalent_across_backends(self, layer, specs):
        accelerator = Accelerator(num_pes=32, noc=NoC(bandwidth=16))
        reference = tune_layer(
            layer, accelerator, candidates=specs, executor="serial", cache=False
        )
        shared = AnalysisCache()
        process = tune_layer(
            layer, accelerator, candidates=specs,
            executor="process", jobs=2, cache=shared,
        )
        warm = tune_layer(
            layer, accelerator, candidates=specs, executor="serial", cache=shared
        )
        assert warm.cache_hits > 0
        for other in (process, warm):
            assert other.best.spec == reference.best.spec
            assert other.best.report == reference.best.report
            assert [c.spec for c in other.top] == [c.spec for c in reference.top]
            assert other.evaluated == reference.evaluated
            assert other.rejected == reference.rejected
            assert other.statically_rejected == reference.statically_rejected


class TestHeteroThroughBackend:
    def test_equivalent_across_backends(self):
        from repro.dataflow.library import kc_partitioned, yr_partitioned

        network = Network(
            name="pair",
            layers=(
                conv2d("early", k=16, c=8, y=14, x=14, r=3, s=3),
                conv2d("late", k=32, c=16, y=7, x=7, r=3, s=3),
            ),
        )
        subs = [
            SubAccelerator("kc", Accelerator(num_pes=32), kc_partitioned(c_tile=8)),
            SubAccelerator("yr", Accelerator(num_pes=32), yr_partitioned()),
        ]
        for mode in ("sequential", "pipelined"):
            reference = analyze_heterogeneous(
                network, subs, mode=mode, executor="serial", cache=False
            )
            shared = AnalysisCache()
            cold = analyze_heterogeneous(
                network, subs, mode=mode, executor="process", jobs=2, cache=shared
            )
            warm = analyze_heterogeneous(
                network, subs, mode=mode, executor="serial", cache=shared
            )
            for other in (cold, warm):
                assert other.assignments == reference.assignments
                assert other.runtime == reference.runtime
                assert other.energy_total == reference.energy_total


class TestSingleFlight:
    """Within-batch dedup: one leader computes, followers replay."""

    def test_duplicates_share_one_evaluation(self, layer, points):
        cache = AnalysisCache()
        duplicated = points + points  # every point appears twice
        batch = evaluate_batch(duplicated, executor="serial", cache=cache)
        stats = batch.stats
        assert stats.submitted == len(duplicated)
        assert stats.evaluated == len(points)  # leaders only
        assert stats.singleflight_hits == len(points)
        assert stats.cache_hits == 0  # dedup happened in-flight, not via cache
        for leader, follower in zip(batch.outcomes, batch.outcomes[len(points):]):
            assert follower.ok == leader.ok
            if leader.ok:
                assert_reports_bit_identical(leader.report, follower.report)

    def test_follower_outcomes_bit_identical_to_unique_batch(self, points):
        reference = evaluate_batch(points, executor="serial", cache=False)
        batch = evaluate_batch(
            points + points, executor="serial", cache=AnalysisCache()
        )
        for index, ref in enumerate(reference):
            for outcome in (batch.outcomes[index], batch.outcomes[index + len(points)]):
                assert outcome.ok == ref.ok
                if ref.ok:
                    assert_reports_bit_identical(ref.report, outcome.report)

    def test_equivalent_spelling_follower_keeps_its_name(self, layer):
        from dataclasses import replace as dc_replace

        from repro.dataflow.library import kc_partitioned

        flow = kc_partitioned(c_tile=8)
        twin = dc_replace(flow, name=flow.name + "-twin")
        accelerator = Accelerator(num_pes=32, noc=NoC(bandwidth=16))
        batch = evaluate_batch(
            [
                EvalPoint(layer, flow, accelerator),
                EvalPoint(layer, twin, accelerator),
            ],
            executor="serial",
            cache=AnalysisCache(),
        )
        leader, follower = batch.outcomes
        assert batch.stats.singleflight_hits == 1
        assert leader.report.dataflow_name == flow.name
        assert follower.report.dataflow_name == twin.name
        left = dc_replace(leader.report, dataflow_name="")
        right = dc_replace(follower.report, dataflow_name="")
        assert_reports_bit_identical(left, right)

    def test_no_dedup_without_cache(self, points):
        batch = evaluate_batch(points + points, executor="serial", cache=False)
        assert batch.stats.singleflight_hits == 0
        assert batch.stats.evaluated == 2 * len(points)

    def test_counter_reaches_obs(self, layer, points):
        from repro import obs
        from repro.obs.metrics import counter_value

        obs.configure(enabled=True, reset=True)
        try:
            evaluate_batch(
                points + points, executor="serial", cache=AnalysisCache()
            )
            assert counter_value("exec.cache.singleflight_hits") == len(points)
        finally:
            obs.configure(enabled=False, reset=True)
