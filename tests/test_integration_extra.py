"""Additional cross-module integration tests."""

import pytest

from repro.dataflow.library import (
    kc_partitioned,
    table3_dataflows,
    x_partitioned,
    yr_partitioned,
    yx_partitioned,
)
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d, pwconv
from repro.simulator import simulate_layer


class TestPointwiseBinding:
    """Pointwise layers degenerate kernel dims; every flow must cope."""

    @pytest.fixture
    def layer(self):
        return pwconv("pw", k=32, c=64, y=14, x=14)

    @pytest.mark.parametrize("name,flow", list(table3_dataflows().items()))
    def test_all_table3_bind(self, layer, name, flow):
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        assert report.total_ops == layer.total_ops()

    def test_yr_p_cluster_collapses_to_one(self, layer):
        """YR-P's Cluster(Sz(R)) is Cluster(1) on a 1x1 kernel."""
        from repro.engines.binding import bind_dataflow

        bound = bind_dataflow(yr_partitioned(), layer, Accelerator(num_pes=64))
        assert bound.levels[1].width == 1
        assert bound.levels[0].width == 64


class TestConfiguredCapacities:
    def test_bigger_configured_l2_costs_more_energy(self):
        layer = conv2d("c", k=16, c=16, y=14, x=14, r=3, s=3)
        flow = yx_partitioned()
        small = analyze_layer(
            layer, flow, Accelerator(num_pes=16, l1_size=512, l2_size=32 << 10)
        )
        large = analyze_layer(
            layer, flow, Accelerator(num_pes=16, l1_size=512, l2_size=4 << 20)
        )
        assert large.energy_total > small.energy_total
        assert large.runtime == small.runtime

    def test_undersized_l2_triggers_dram_streaming(self):
        layer = conv2d("c", k=64, c=64, y=30, x=30, r=3, s=3)
        flow = x_partitioned()
        fits = analyze_layer(layer, flow, Accelerator(num_pes=64))
        tiny = analyze_layer(
            layer, flow, Accelerator(num_pes=64, l1_size=512, l2_size=16)
        )
        assert sum(tiny.dram_reads.values()) >= sum(fits.dram_reads.values())


class TestSimulatorPsumReadback:
    def test_revisited_outputs_slow_the_pipeline(self):
        """X-P revisits outputs per input channel; the simulator's
        readback tracking must charge the extra fetch traffic."""
        layer = conv2d("c", k=4, c=4, y=12, x=12, r=3, s=3)
        acc = Accelerator(num_pes=16, noc=NoC(bandwidth=2))
        sim = simulate_layer(layer, x_partitioned(), acc)
        ana = analyze_layer(layer, x_partitioned(), acc)
        assert ana.runtime == pytest.approx(sim.runtime, rel=0.25)


class TestZooRelations:
    def test_resnext_matches_resnet_budget(self):
        """ResNeXt50-32x4d is designed to match ResNet50's FLOPs ~1:1."""
        from repro.model.zoo import build

        resnet = build("resnet50").total_ops()
        resnext = build("resnext50").total_ops()
        assert 0.8 < resnext / resnet < 1.3

    def test_mobilenet_cheaper_than_vgg(self):
        from repro.model.zoo import build

        assert build("mobilenet_v2").total_ops() < build("vgg16").total_ops() / 20


class TestKcTileVariants:
    @pytest.mark.parametrize("c_tile", [8, 16, 32, 64])
    def test_all_cluster_sizes_bind_on_256(self, c_tile):
        layer = conv2d("c", k=64, c=64, y=16, x=16, r=3, s=3)
        report = analyze_layer(
            layer, kc_partitioned(c_tile=c_tile), Accelerator(num_pes=256)
        )
        assert report.total_ops == layer.total_ops()

    def test_bigger_tiles_trade_l1_for_l2_traffic(self):
        layer = conv2d("c", k=64, c=64, y=16, x=16, r=3, s=3)
        acc = Accelerator(num_pes=256)
        small = analyze_layer(layer, kc_partitioned(c_tile=16, y_tile=1), acc)
        large = analyze_layer(layer, kc_partitioned(c_tile=16, y_tile=8), acc)
        assert large.l1_buffer_req > small.l1_buffer_req
        assert large.l2_reads["I"] < small.l2_reads["I"]
