"""Differential validation of the communication classifier.

Golden suite: every stock library mapping and every example DSL file
must classify identically to both independent oracles (the reuse
engine and brute-force PE access-set enumeration). Property suite:
Hypothesis builds randomized small mappings (<= 64 PEs) and the
closed-form fan-in/fan-out degrees must equal the literal per-element
maxima of the enumerated access sets.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    bind_for_comm,
    brute_force_level,
    classify_bound,
    crosscheck_comm,
)
from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import St, Sz, spatial_map, temporal_map
from repro.dataflow.parser import parse_dataflow
from repro.model.layer import conv2d
from repro.tensors import dims as D

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples" / "dataflows").glob("*.df")
)

LAYERS = [
    conv2d("verify-default", k=8, c=8, y=18, x=18, r=3, s=3),
    conv2d("verify-strided", k=8, c=8, y=19, x=19, r=3, s=3, stride=2),
]


def _stock_catalog():
    from repro.cli import _stock_catalog

    return _stock_catalog()


@pytest.mark.parametrize("name", sorted(_stock_catalog()))
@pytest.mark.parametrize("layer", LAYERS, ids=lambda layer: layer.name)
def test_library_golden_crosscheck(name, layer):
    report = crosscheck_comm(_stock_catalog()[name], layer)
    assert report.ok, report.render()
    assert report.levels_checked >= 1


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
@pytest.mark.parametrize("layer", LAYERS, ids=lambda layer: layer.name)
def test_example_golden_crosscheck(path, layer):
    flow = parse_dataflow(path.read_text(), name=path.stem)
    report = crosscheck_comm(flow, layer)
    assert report.ok, report.render()


def test_goldens_actually_compare_degrees():
    """The suite must not pass vacuously: the stock catalog exercises
    brute-forced levels and exact degree comparisons."""
    brute_forced = degrees = 0
    for flow in _stock_catalog().values():
        report = crosscheck_comm(flow, LAYERS[0])
        brute_forced += report.brute_forced_levels
        degrees += report.degrees_compared
    assert brute_forced >= 10
    assert degrees >= 30


# --- randomized mappings -------------------------------------------------
#
# One spatial level over a stride-1 conv layer. The spatial dimension,
# chunk size, and offset vary; offsets <= sizes keep chunks coverage-
# friendly, and offset < size produces overlap (forwarding/reduction).

channel_spatial = st.builds(
    lambda dim, size, offset: (dim, size, offset),
    dim=st.sampled_from([D.K, D.C]),
    size=st.integers(1, 3),
    offset=st.integers(1, 3),
).filter(lambda t: t[2] <= t[1])

def _window_choice(dim, n, m):
    kernel = D.R if dim == D.Y else D.S
    if n == 1:
        size = Sz(kernel)
    else:
        size = f"({n}-1)*St({dim})+Sz({kernel})"
    return (dim, size, f"{m}*St({dim})")


window_spatial = st.builds(
    _window_choice,
    dim=st.sampled_from([D.Y, D.X]),
    n=st.integers(1, 3),
    m=st.integers(1, 3),
)

spatial_choices = st.one_of(channel_spatial, window_spatial)

layers = st.builds(
    lambda k, c, yx, rs: conv2d(
        "prop", k=k, c=c, y=max(yx, rs + 1), x=max(yx, rs + 1), r=rs, s=rs
    ),
    k=st.integers(2, 12),
    c=st.integers(2, 12),
    yx=st.integers(6, 14),
    rs=st.integers(2, 3),
)


def _build_mapping(spatial):
    """A full 7-dim mapping with one spatial directive at the top level."""
    dim, size, offset = spatial
    directives = [temporal_map(1, 1, D.N)]
    for d in (D.K, D.C):
        if d == dim:
            directives.append(spatial_map(size, offset, d))
        else:
            directives.append(temporal_map(1, 1, d))
    for d, kernel in ((D.Y, D.R), (D.X, D.S)):
        if d == dim:
            directives.append(spatial_map(size, offset, d))
        else:
            directives.append(temporal_map(Sz(kernel), St(d), d))
    directives.append(temporal_map(Sz(D.R), Sz(D.R), D.R))
    directives.append(temporal_map(Sz(D.S), Sz(D.S), D.S))
    return Dataflow(name="prop-comm", directives=tuple(directives))


@settings(max_examples=80, deadline=None)
@given(layer=layers, spatial=spatial_choices)
def test_random_mapping_crosschecks(layer, spatial):
    """Both oracles agree with the classifier on random small mappings."""
    flow = _build_mapping(spatial)
    report = crosscheck_comm(flow, layer, max_units=64)
    assert report.ok, report.render()


@settings(max_examples=80, deadline=None)
@given(layer=layers, spatial=spatial_choices)
def test_random_degrees_match_enumeration(layer, spatial):
    """Closed-form fan-in/fan-out equals the literal per-element maximum
    on every brute-forceable level with integral shifts (stride is 1
    here, so sliding windows are contiguous and degrees are exact)."""
    from repro.engines.tensor_analysis import analyze_tensors

    flow = _build_mapping(spatial)
    bound = bind_for_comm(flow, layer, max_width=64)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    analysis = classify_bound(bound, tensors)
    for level, level_comm in zip(bound.levels, analysis.levels):
        if level_comm.degenerate:
            continue
        truth = brute_force_level(level, tensors, max_units=64)
        if truth is None:
            continue
        for comm in level_comm.tensors:
            assert comm.pattern is truth[comm.tensor].pattern, comm
            if not comm.integral_shifts:
                continue
            assert comm.degree == truth[comm.tensor].degree, comm
            expected_fan = truth[comm.tensor].degree
            if comm.is_output:
                assert comm.fan_in == expected_fan and comm.fan_out == 1
            else:
                assert comm.fan_out == expected_fan and comm.fan_in == 1
