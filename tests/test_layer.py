"""Tests for Layer construction, validation, and derived quantities."""

import pytest

from repro.errors import LayerError
from repro.model.layer import (
    Layer,
    conv2d,
    dwconv,
    elementwise,
    fc,
    pool,
    pwconv,
    trconv,
)
from repro.tensors import dims as D
from repro.tensors.operators import CONV2D, FC


class TestConstruction:
    def test_padding_is_folded_into_input_extent(self):
        layer = conv2d("c", k=8, c=4, y=14, x=14, r=3, s=3, padding=1)
        assert layer.dims[D.Y] == 16
        assert layer.out_y == 14

    def test_output_extent_stride(self):
        layer = conv2d("c", k=8, c=4, y=227, x=227, r=11, s=11, stride=4)
        assert layer.out_y == 55

    def test_dim_size_output_aliases(self):
        layer = conv2d("c", k=8, c=4, y=12, x=10, r=3, s=3)
        assert layer.dim_size(D.YP) == 10
        assert layer.dim_size(D.XP) == 8
        assert layer.dim_size(D.K) == 8

    def test_all_dim_sizes_has_nine_entries(self):
        layer = conv2d("c", k=8, c=4, y=12, x=12, r=3, s=3)
        sizes = layer.all_dim_sizes()
        assert set(sizes) == set(D.CANONICAL_DIMS) | {D.YP, D.XP}

    def test_pointwise_uses_pwconv_operator(self):
        assert pwconv("p", k=8, c=4, y=12, x=12).operator.name == "PWCONV"

    def test_conv_1x1_kernel_becomes_pwconv(self):
        assert conv2d("c", k=8, c=4, y=12, x=12, r=1, s=1).operator.name == "PWCONV"


class TestValidation:
    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(LayerError):
            conv2d("bad", k=1, c=1, y=2, x=8, r=3, s=3)

    def test_rejects_unknown_dim(self):
        with pytest.raises(LayerError):
            Layer(name="bad", operator=CONV2D, dims={"Q": 4})

    def test_rejects_non_positive_dim(self):
        with pytest.raises(LayerError):
            Layer(name="bad", operator=CONV2D, dims={D.K: 0})

    def test_rejects_unused_dim(self):
        with pytest.raises(LayerError):
            Layer(name="bad", operator=FC, dims={D.K: 4, D.C: 4, D.Y: 7})

    def test_rejects_bad_density(self):
        with pytest.raises(LayerError):
            conv2d("bad", k=1, c=1, y=8, x=8, r=3, s=3, densities={"W": 0.0})
        with pytest.raises(LayerError):
            conv2d("bad", k=1, c=1, y=8, x=8, r=3, s=3, densities={"W": 1.5})

    def test_rejects_unknown_density_tensor(self):
        with pytest.raises(KeyError):
            conv2d("bad", k=1, c=1, y=8, x=8, r=3, s=3, densities={"Z": 0.5})

    def test_rejects_bad_groups(self):
        with pytest.raises(LayerError):
            Layer(name="bad", operator=CONV2D, dims={D.Y: 8, D.X: 8}, groups=0)


class TestCounts:
    def test_total_ops_vgg_conv2(self):
        layer = conv2d("CONV2", k=64, c=64, y=224, x=224, r=3, s=3, padding=1)
        assert layer.total_ops() == 64 * 64 * 224 * 224 * 9

    def test_grouped_conv_ops(self):
        plain = conv2d("a", k=64, c=64, y=14, x=14, r=3, s=3, padding=1)
        grouped = conv2d("b", k=64, c=64, y=14, x=14, r=3, s=3, padding=1, groups=2)
        assert grouped.total_ops() == plain.total_ops() // 2

    def test_effective_ops_scales_with_input_densities(self):
        layer = conv2d(
            "s", k=8, c=8, y=12, x=12, r=3, s=3,
            densities={"W": 0.5, "I": 0.5},
        )
        assert layer.effective_ops() == pytest.approx(layer.total_ops() * 0.25)

    def test_tensor_volume(self):
        layer = conv2d("c", k=8, c=4, y=12, x=12, r=3, s=3)
        assert layer.tensor_volume("W") == 8 * 4 * 9
        assert layer.tensor_volume("I") == 4 * 144
        assert layer.tensor_volume("O") == 8 * 100


class TestTransposedConv:
    def test_unet_upconv_doubles_extent(self):
        layer = trconv("up", k=512, c=1024, y=28, x=28, r=2, s=2, upscale=2)
        assert layer.out_y == 56

    def test_dcgan_conv_doubles_extent(self):
        layer = trconv("g", k=512, c=1024, y=4, x=4, r=4, s=4, upscale=2, padding=1)
        assert layer.out_y == 8

    def test_structured_input_sparsity_recorded(self):
        layer = trconv("up", k=8, c=8, y=10, x=10, r=2, s=2, upscale=2)
        assert 0 < layer.density("I") < 1

    def test_rejects_excess_padding(self):
        with pytest.raises(LayerError):
            trconv("bad", k=1, c=1, y=4, x=4, r=2, s=2, upscale=2, padding=3)


class TestOtherConstructors:
    def test_pool_defaults_stride_to_window(self):
        layer = pool("p", c=8, y=8, x=8, window=2)
        assert layer.stride == (2, 2)
        assert layer.out_y == 4

    def test_dwconv_has_no_k(self):
        layer = dwconv("d", c=32, y=14, x=14, r=3, s=3, padding=1)
        assert layer.dims[D.K] == 1
        assert layer.operator.name == "DWCONV"

    def test_fc_shape(self):
        layer = fc("f", k=1000, c=4096)
        assert layer.total_ops() == 1000 * 4096

    def test_elementwise_ops(self):
        layer = elementwise("e", c=8, y=4, x=4)
        assert layer.total_ops() == 8 * 16
