"""Tests for directives and the symbolic size-expression language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataflow.directives import (
    ClusterDirective,
    Sz,
    evaluate_size,
    spatial_map,
    temporal_map,
)
from repro.errors import DataflowError, DataflowParseError

SIZES = {"R": 3, "S": 5, "K": 64, "C": 32, "Y": 14, "X": 14, "Y'": 12, "X'": 10}


class TestSizeExpr:
    def test_plain_int(self):
        assert evaluate_size(7, SIZES) == 7

    def test_sz(self):
        assert Sz("R").evaluate(SIZES) == 3

    def test_sz_output_alias(self):
        assert Sz("X'").evaluate(SIZES) == 10

    def test_string_expression(self):
        assert evaluate_size("8+Sz(S)-1", SIZES) == 12

    def test_multiplication_precedence(self):
        assert evaluate_size("2+3*Sz(R)", SIZES) == 11

    def test_parentheses(self):
        assert evaluate_size("(2+3)*Sz(R)", SIZES) == 15

    def test_nested_sz_products(self):
        assert evaluate_size("Sz(R)*Sz(S)", SIZES) == 15

    def test_subtraction_chain(self):
        assert evaluate_size("10-2-3", SIZES) == 5  # left associative

    def test_unknown_dim_rejected(self):
        with pytest.raises((DataflowParseError, ValueError)):
            evaluate_size("Sz(Q)", SIZES)

    def test_unbound_dim_rejected(self):
        with pytest.raises(DataflowParseError):
            evaluate_size("Sz(R)", {})

    def test_garbage_rejected(self):
        with pytest.raises(DataflowParseError):
            evaluate_size("Sz(R", SIZES)
        with pytest.raises(DataflowParseError):
            evaluate_size("3 +", SIZES)
        with pytest.raises(DataflowParseError):
            evaluate_size("hello", SIZES)

    def test_bool_rejected(self):
        with pytest.raises(DataflowError):
            evaluate_size(True, SIZES)

    @given(st.integers(0, 999), st.integers(0, 999))
    def test_addition_property(self, a, b):
        assert evaluate_size(f"{a}+{b}", SIZES) == a + b

    @given(st.integers(0, 99), st.integers(0, 99), st.integers(0, 99))
    def test_precedence_property(self, a, b, c):
        assert evaluate_size(f"{a}+{b}*{c}", SIZES) == a + b * c


class TestDirectives:
    def test_temporal_map_str(self):
        directive = temporal_map(3, 1, "Y")
        assert "TemporalMap(3,1) Y" == str(directive)
        assert not directive.spatial

    def test_spatial_map(self):
        directive = spatial_map(Sz("R"), 1, "Y")
        assert directive.spatial
        assert directive.kind == "SpatialMap"

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            temporal_map(1, 1, "Z")

    def test_cluster_str(self):
        assert str(ClusterDirective(8)) == "Cluster(8)"
