"""Reproduction of Figure 5: the six 1-D convolution dataflows.

Each sub-figure's "Temporal Reuse" and "Spatial Reuse" annotations are
asserted against the reuse classifier.
"""

import pytest

from repro.dataflow.library import fig5_playground
from repro.engines.analysis import analyze_layer
from repro.engines.insight import summarize_reuse
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d


@pytest.fixture(scope="module")
def layer():
    # Figure 4's 1-D convolution: X' = 12 outputs, S = 6 taps.
    return conv2d("conv1d", k=1, c=1, y=1, x=17, r=1, s=6)


@pytest.fixture(scope="module")
def flows():
    return fig5_playground()


def summary(layer, flow, pes):
    return summarize_reuse(layer, flow, Accelerator(num_pes=pes)).innermost


class TestFig5A:
    """A: SpatialMap X', TemporalMap S — output-stationary."""

    def test_output_stationary(self, layer, flows):
        level = summary(layer, flows["A"], 3)
        assert "O" in level.temporally_stationary
        assert "output-stationary" in level.informal_style

    def test_weights_spatially_multicast(self, layer, flows):
        level = summary(layer, flows["A"], 3)
        assert "W" in level.spatial_multicast

    def test_no_spatial_reduction(self, layer, flows):
        assert not summary(layer, flows["A"], 3).spatial_reduction


class TestFig5B:
    """B: order interchanged — weight-stationary."""

    def test_weight_stationary(self, layer, flows):
        level = summary(layer, flows["B"], 3)
        assert "W" in level.temporally_stationary
        assert "weight-stationary" in level.informal_style

    def test_order_change_flips_stationarity(self, layer, flows):
        a = summary(layer, flows["A"], 3)
        b = summary(layer, flows["B"], 3)
        assert "O" in a.temporally_stationary and "O" not in b.temporally_stationary
        assert "W" in b.temporally_stationary and "W" not in a.temporally_stationary


class TestFig5C:
    """C: SpatialMap S, TemporalMap X' — collaborative (reduction)."""

    def test_spatial_reduction(self, layer, flows):
        assert summary(layer, flows["C"], 3).spatial_reduction

    def test_weight_stationary_per_pe(self, layer, flows):
        assert "W" in summary(layer, flows["C"], 3).temporally_stationary


class TestFig5D:
    """D: TemporalMap X', SpatialMap S — collaborative output-stationary."""

    def test_spatial_reduction(self, layer, flows):
        assert summary(layer, flows["D"], 3).spatial_reduction

    def test_output_stationary(self, layer, flows):
        assert "O" in summary(layer, flows["D"], 3).temporally_stationary


class TestFig5E:
    """E: SpatialMap(2,2) S — partial temporal reuse of inputs."""

    def test_partial_input_reuse(self, layer, flows):
        level = summary(layer, flows["E"], 3)
        assert "I" in level.partial_temporal_reuse

    def test_fewer_input_fetches_than_D(self, layer, flows):
        acc = Accelerator(num_pes=3)
        d_reads = analyze_layer(layer, flows["D"], acc).l2_reads["I"]
        e_reads = analyze_layer(layer, flows["E"], acc).l2_reads["I"]
        assert e_reads < d_reads


class TestFig5F:
    """F: two cluster levels, spatial reduction inside each cluster."""

    def test_two_levels(self, layer, flows):
        result = summarize_reuse(layer, flows["F"], Accelerator(num_pes=6))
        assert len(result.levels) == 2

    def test_inner_cluster_reduces(self, layer, flows):
        result = summarize_reuse(layer, flows["F"], Accelerator(num_pes=6))
        assert result.levels[1].spatial_reduction

    def test_outer_weight_stationary(self, layer, flows):
        result = summarize_reuse(layer, flows["F"], Accelerator(num_pes=6))
        assert "W" in result.levels[0].temporally_stationary


class TestQuantitative:
    def test_weight_stationary_minimizes_weight_traffic(self, layer, flows):
        """B/C (weight-stationary) fetch each weight exactly once."""
        acc = Accelerator(num_pes=3)
        for key in ("B", "C"):
            report = analyze_layer(layer, flows[key], acc)
            assert report.l2_reads["W"] == pytest.approx(
                layer.tensor_volume("W"), rel=0.01
            )

    def test_output_stationary_minimizes_output_traffic(self, layer, flows):
        acc = Accelerator(num_pes=3)
        for key in ("A", "D"):
            report = analyze_layer(layer, flows[key], acc)
            assert report.l2_writes["O"] == pytest.approx(
                layer.tensor_volume("O"), rel=0.01
            )

    def test_all_six_compute_the_same_macs(self, layer, flows):
        for key, flow in flows.items():
            acc = Accelerator(num_pes=6 if key == "F" else 3)
            report = analyze_layer(layer, flow, acc)
            assert report.total_ops == 12 * 6
