"""Reproduction of Table 1: reuse opportunities per mapped dimension.

Table 1 states, for every spatially mapped dimension (with everything
else temporally unit-mapped), which tensor gains which *spatial* reuse
opportunity, and, for every innermost temporally mapped dimension,
which tensor gains which *temporal* reuse opportunity:

Spatial map on:   K -> I multicast;  C -> O reduction;
                  R/S -> I + O multicast...(I halo, O partial);
                  X/Y -> W multicast.
Innermost temporal: C -> O temporal reduction (stationary outputs),
                  K -> I temporally reused (stationary inputs), etc. —
a tensor is temporally reusable exactly when it is *decoupled* from the
innermost temporally mapped dimension.
"""

import pytest

from repro.dataflow.dataflow import dataflow
from repro.dataflow.directives import spatial_map, temporal_map
from repro.engines.binding import bind_dataflow
from repro.engines.reuse import analyze_level_reuse
from repro.engines.tensor_analysis import analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.tensors import dims as D


@pytest.fixture
def layer():
    return conv2d("t", k=8, c=8, y=12, x=12, r=3, s=3)


def spatial_reuse(layer, dim, num_pes=4):
    """Bind 'SpatialMap(1,1) dim' alone and report the spatial reuse."""
    flow = dataflow("probe", spatial_map(1, 1, dim), temporal_map(1, 1, D.C if dim != D.C else D.K))
    bound = bind_dataflow(flow, layer, Accelerator(num_pes=num_pes))
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    return analyze_level_reuse(bound.levels[0], tensors)


class TestSpatialOpportunities:
    """Table 1, left half: spatially mapped dimension -> reuse."""

    def test_spatial_k_multicasts_inputs(self, layer):
        reuse = spatial_reuse(layer, D.K)
        assert "I" in reuse.multicast_tensors
        assert not reuse.output_spatially_reduced

    def test_spatial_c_reduces_outputs(self, layer):
        reuse = spatial_reuse(layer, D.C)
        assert reuse.output_spatially_reduced
        assert "I" not in reuse.multicast_tensors
        assert "W" not in reuse.multicast_tensors

    def test_spatial_x_multicasts_weights(self, layer):
        reuse = spatial_reuse(layer, D.X)
        assert "W" in reuse.multicast_tensors

    def test_spatial_y_multicasts_weights(self, layer):
        reuse = spatial_reuse(layer, D.Y)
        assert "W" in reuse.multicast_tensors

    def test_spatial_r_multicasts_inputs_shifts_outputs(self, layer):
        """Input-centric R spatial: all PEs share the same input rows
        (each applies a different kernel row — the row-stationary trick),
        while weights differ per PE and output windows shift by one."""
        reuse = spatial_reuse(layer, D.R)
        assert "I" in reuse.multicast_tensors
        assert "W" not in reuse.multicast_tensors
        assert not reuse.output_spatially_reduced


def innermost_temporal_reuse(layer, dim):
    """Bind with `dim` as the innermost temporal map; report stationarity."""
    other = D.K if dim != D.K else D.C
    flow = dataflow(
        "probe",
        spatial_map(1, 1, other),
        temporal_map(1, 1, dim),
    )
    bound = bind_dataflow(flow, layer, Accelerator(num_pes=2))
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    reuse = analyze_level_reuse(bound.levels[0], tensors)
    cls = next(c for c in reuse.classes if dim in c.label)
    return {name: traffic.stationary for name, traffic in cls.traffic.items()}


class TestTemporalOpportunities:
    """Table 1, right half: innermost temporal dimension -> stationarity.

    A tensor is temporally reusable (stationary) exactly when it is
    decoupled from the advancing dimension.
    """

    def test_innermost_c_keeps_outputs_stationary(self, layer):
        stationary = innermost_temporal_reuse(layer, D.C)
        assert stationary["O"]          # temporal reduction of outputs
        assert not stationary["W"]
        assert not stationary["I"]

    def test_innermost_k_keeps_inputs_stationary(self, layer):
        stationary = innermost_temporal_reuse(layer, D.K)
        assert stationary["I"]          # temporal multicast of inputs
        assert not stationary["W"]
        assert not stationary["O"]

    def test_innermost_x_keeps_weights_stationary(self, layer):
        stationary = innermost_temporal_reuse(layer, D.X)
        assert stationary["W"]          # temporal multicast of weights
        assert not stationary["I"]
        assert not stationary["O"]

    def test_innermost_r_keeps_inputs_stationary(self, layer):
        """Input-centric view: advancing the kernel row re-reads the same
        input rows — convolutional (temporal) reuse of inputs."""
        stationary = innermost_temporal_reuse(layer, D.R)
        assert not stationary["W"]
        assert stationary["I"]
