"""Tests for the textual dataflow DSL parser."""

import pytest

from repro.dataflow.directives import ClusterDirective
from repro.dataflow.parser import parse_dataflow
from repro.errors import DataflowParseError

KC_P_TEXT = """
// KC-Partitioned (NVDLA-like), Table 3
SpatialMap(1,1) K
TemporalMap(64,64) C
TemporalMap(Sz(R),Sz(R)) R
TemporalMap(Sz(S),Sz(S)) S
TemporalMap(Sz(R),1) Y
TemporalMap(Sz(S),1) X
Cluster(64)
SpatialMap(1,1) C
"""


class TestParsing:
    def test_table3_kc_p(self):
        dataflow = parse_dataflow(KC_P_TEXT, name="KC-P")
        maps = dataflow.map_directives()
        assert len(maps) == 7
        assert maps[0].spatial and maps[0].dim == "K"
        clusters = [d for d in dataflow.directives if isinstance(d, ClusterDirective)]
        assert len(clusters) == 1

    def test_symbolic_offset_with_parens(self):
        dataflow = parse_dataflow("TemporalMap(Sz(R),Sz(R)) R")
        directive = dataflow.map_directives()[0]
        assert str(directive.size) == "Sz(R)"
        assert str(directive.offset) == "Sz(R)"

    def test_arithmetic_size(self):
        dataflow = parse_dataflow("TemporalMap(8+Sz(S)-1,8) X")
        directive = dataflow.map_directives()[0]
        assert directive.size.evaluate({"S": 3}) == 10

    def test_output_coordinate_dim(self):
        dataflow = parse_dataflow("SpatialMap(1,1) X'\nTemporalMap(1,1) S")
        assert dataflow.map_directives()[0].dim == "X'"

    def test_comments_and_blanks_ignored(self):
        text = """
        # hash comment
        // slash comment
        TemporalMap(1,1) K  // trailing comment

        SpatialMap(1,1) C
        """
        dataflow = parse_dataflow(text)
        assert len(dataflow.map_directives()) == 2

    def test_whitespace_tolerance(self):
        dataflow = parse_dataflow("  TemporalMap( 4 , 2 )  K ")
        directive = dataflow.map_directives()[0]
        assert directive.size == 4
        assert directive.offset == 2

    def test_integer_sizes_parse_as_int(self):
        dataflow = parse_dataflow("TemporalMap(64,64) C")
        assert dataflow.map_directives()[0].size == 64

    def test_stride_expression(self):
        dataflow = parse_dataflow("TemporalMap((4-1)*St(Y)+Sz(R),4) Y")
        directive = dataflow.map_directives()[0]
        assert directive.size.evaluate({"R": 3}, strides={"Y": 2}) == 9
        assert directive.size.evaluate({"R": 3}) == 6  # stride defaults to 1


class TestErrors:
    def test_unknown_dimension(self):
        with pytest.raises(DataflowParseError):
            parse_dataflow("TemporalMap(1,1) Q")

    def test_missing_offset(self):
        with pytest.raises(DataflowParseError):
            parse_dataflow("TemporalMap(1) K")

    def test_garbage_line(self):
        with pytest.raises(DataflowParseError) as excinfo:
            parse_dataflow("TemporalMap(1,1) K\nfor x in range(3):")
        assert "line 2" in str(excinfo.value)

    def test_empty_input(self):
        with pytest.raises(DataflowParseError):
            parse_dataflow("// only a comment\n")


class TestRoundTrip:
    def test_library_dataflows_reparse(self):
        """describe() output of library dataflows parses back (modulo indentation)."""
        from repro.dataflow.library import table3_dataflows

        for name, dataflow in table3_dataflows().items():
            lines = [str(d) for d in dataflow.directives]
            reparsed = parse_dataflow("\n".join(lines), name=name)
            assert len(reparsed.directives) == len(dataflow.directives)
            for original, parsed in zip(
                dataflow.map_directives(), reparsed.map_directives()
            ):
                assert original.dim == parsed.dim
                assert original.spatial == parsed.spatial
