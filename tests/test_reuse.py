"""Tests for the reuse-analysis engine: transition classes and volumes."""

import pytest

from repro.dataflow.dataflow import dataflow
from repro.dataflow.directives import Sz, spatial_map, temporal_map
from repro.engines.binding import bind_dataflow
from repro.engines.reuse import analyze_level_reuse, build_odometer
from repro.engines.tensor_analysis import analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.model.layer import conv2d
from repro.tensors import dims as D


def analyze(flow, layer, num_pes):
    bound = bind_dataflow(flow, layer, Accelerator(num_pes=num_pes))
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    return [analyze_level_reuse(level, tensors) for level in bound.levels], bound


@pytest.fixture
def layer():
    return conv2d("l", k=16, c=8, y=18, x=18, r=3, s=3)


class TestOdometer:
    def test_counts_sum_to_total_transitions(self, layer):
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),
            temporal_map(2, 2, D.C),
            spatial_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
        )
        reuses, bound = analyze(flow, layer, 8)
        reuse = reuses[0]
        total = bound.levels[0].sweep_steps
        assert 1 + sum(cls.count for cls in reuse.classes) == total

    def test_spatial_directives_share_one_fold_entry(self, layer):
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),
            spatial_map(1, 1, D.Y),
            spatial_map(1, 1, D.R),
        )
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        entries = build_odometer(bound.levels[0])
        folds = [e for e in entries if e.is_fold]
        assert len(folds) == 1
        assert set(folds[0].advancing_offsets) == {D.Y, D.R}

    def test_fold_offsets_scaled_by_width(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K))
        bound = bind_dataflow(flow, layer, Accelerator(num_pes=4))
        entries = build_odometer(bound.levels[0])
        assert entries[-1].advancing_offsets[D.K] == 4

    def test_single_step_directives_skipped(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K), temporal_map(Sz(D.R), Sz(D.R), D.R))
        reuses, _ = analyze(flow, layer, 16)
        labels = [cls.label for cls in reuses[0].classes]
        assert all("R" not in label for label in labels)


class TestStationarity:
    def test_weight_stationary_under_activation_sweep(self, layer):
        """K outer, X inner: W is stationary across X transitions."""
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),
            spatial_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
        )
        reuses, _ = analyze(flow, layer, 16)
        x_class = next(c for c in reuses[0].classes if c.label == "X")
        assert x_class.traffic["W"].stationary
        assert not x_class.traffic["I"].stationary

    def test_output_stationary_under_reduction_sweep(self, layer):
        """C innermost: outputs are stationary across C transitions."""
        flow = dataflow(
            "f",
            spatial_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
            temporal_map(1, 1, D.C),
        )
        reuses, _ = analyze(flow, layer, 16)
        c_class = next(c for c in reuses[0].classes if c.label == "C")
        assert c_class.traffic["O"].stationary
        assert not c_class.outputs_advance

    def test_halo_delta_on_sliding_window(self, layer):
        """X advance with offset 1 fetches only the new input column."""
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),
            temporal_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
        )
        reuses, _ = analyze(flow, layer, 1)
        x_class = next(c for c in reuses[0].classes if c.label == "X")
        traffic = x_class.traffic["I"]
        # 1 new column x 3 rows x 8 channels.
        assert traffic.fetch == pytest.approx(1 * 3 * 8)

    def test_inner_reset_forces_full_refetch(self, layer):
        """Y advance with X sweeping inside refetches the whole chunk.

        The retained halo along Y is stale because the PE's buffer holds
        the end of the previous X sweep (the bug exposed by the
        reference simulator during validation).
        """
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),
            temporal_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
        )
        reuses, _ = analyze(flow, layer, 1)
        y_class = next(c for c in reuses[0].classes if c.label == "Y")
        traffic = y_class.traffic["I"]
        # Full chunk: 3 rows x 3 cols x 8 channels, not just one new row.
        assert traffic.fetch == pytest.approx(3 * 3 * 8)


class TestSpatialUniqueness:
    def test_multicast_tensor_unique_equals_fetch(self, layer):
        """Spatial K: inputs identical on all PEs (multicast)."""
        flow = dataflow("f", spatial_map(1, 1, D.K), temporal_map(1, 1, D.C))
        reuses, _ = analyze(flow, layer, 16)
        reuse = reuses[0]
        assert "I" in reuse.multicast_tensors
        c_class = next(c for c in reuse.classes if c.label == "C")
        assert c_class.traffic["I"].unique == pytest.approx(
            c_class.traffic["I"].fetch
        )
        assert c_class.traffic["I"].delivered == pytest.approx(
            c_class.traffic["I"].fetch * 16
        )

    def test_halo_overlap_across_pes(self, layer):
        """Spatial Y with offset 1 and size 3: adjacent PEs share 2 rows."""
        flow = dataflow(
            "f", spatial_map(Sz(D.R), 1, D.Y), temporal_map(1, 1, D.K)
        )
        reuses, _ = analyze(flow, layer, 16)
        init = reuses[0].init
        # 16 PEs, 3-row chunks shifted by 1: 3 + 15 = 18 unique rows.
        per_pe = init.traffic["I"].fetch
        assert init.traffic["I"].unique == pytest.approx(per_pe / 3 * 18)


class TestPsumFactor:
    def test_reduction_outside_output_sweep(self, layer):
        """C outer of the output sweep: every output revisited per C step."""
        flow = dataflow(
            "f",
            temporal_map(2, 2, D.C),  # 4 steps, outer
            spatial_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
        )
        reuses, _ = analyze(flow, layer, 16)
        assert reuses[0].psum_factor == 4

    def test_reduction_inside_output_sweep(self, layer):
        """C innermost: outputs finish before moving on."""
        flow = dataflow(
            "f",
            spatial_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
            temporal_map(2, 2, D.C),
        )
        reuses, _ = analyze(flow, layer, 16)
        assert reuses[0].psum_factor == 1

    def test_egress_volumes(self, layer):
        flow = dataflow(
            "f",
            temporal_map(2, 2, D.C),
            spatial_map(Sz(D.R), 1, D.Y),
            temporal_map(Sz(D.S), 1, D.X),
        )
        reuses, _ = analyze(flow, layer, 16)
        reuse = reuses[0]
        outputs = reuse.outputs_per_sweep
        assert reuse.egress_per_sweep == pytest.approx(outputs * 4)
        assert reuse.psum_readback_per_sweep == pytest.approx(outputs * 3)


class TestSpatialReduction:
    def test_spatial_c_exposes_reduction(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.C), temporal_map(1, 1, D.K))
        reuses, _ = analyze(flow, layer, 8)
        assert reuses[0].output_spatially_reduced

    def test_spatial_k_does_not(self, layer):
        flow = dataflow("f", spatial_map(1, 1, D.K), temporal_map(1, 1, D.C))
        reuses, _ = analyze(flow, layer, 8)
        assert not reuses[0].output_spatially_reduced

    def test_diagonal_yr_exposes_reduction(self, layer):
        """Joint Y+R spatial maps: output shift cancels (Eyeriss diagonal)."""
        flow = dataflow(
            "f",
            temporal_map(1, 1, D.K),
            spatial_map(1, 1, D.Y),
            spatial_map(1, 1, D.R),
        )
        reuses, _ = analyze(flow, layer, 3)
        assert reuses[0].output_spatially_reduced
