"""Property-based end-to-end tests over random layers and dataflows.

Hypothesis generates small random convolution layers and tuner-template
dataflows; every combination must satisfy the cost model's global
invariants, and the analytical runtime must track the independent
reference simulator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.simulator import simulate_layer
from repro.tuner.templates import SCHEDULES, SPATIAL_DIMS, CandidateSpec

layers = st.builds(
    lambda k, c, yx, rs, stride: conv2d(
        "prop", k=k, c=c, y=max(yx, rs + stride), x=max(yx, rs + stride),
        r=rs, s=rs, stride=stride,
    ),
    k=st.integers(1, 32),
    c=st.integers(1, 32),
    yx=st.integers(4, 20),
    rs=st.integers(1, 5),
    stride=st.integers(1, 2),
)

specs = st.builds(
    CandidateSpec,
    outer_spatial=st.sampled_from(SPATIAL_DIMS),
    schedule=st.sampled_from(SCHEDULES),
    c_tile=st.sampled_from([1, 2, 4]),
    k_tile=st.sampled_from([1, 2, 4]),
    y_tile=st.sampled_from([1, 2]),
    x_tile=st.sampled_from([1, 2]),
)

accelerators = st.builds(
    lambda pes, bw: Accelerator(num_pes=pes, noc=NoC(bandwidth=bw)),
    pes=st.sampled_from([4, 16, 64]),
    bw=st.sampled_from([4, 32]),
)


@settings(max_examples=60, deadline=None)
@given(layer=layers, spec=specs, accelerator=accelerators)
def test_global_invariants(layer, spec, accelerator):
    report = analyze_layer(layer, spec.build(), accelerator)

    # Exact compute count and a physical runtime lower bound.
    assert report.total_ops == layer.total_ops()
    ideal = layer.total_ops() / (accelerator.num_pes * accelerator.vector_width)
    assert report.runtime >= ideal * 0.999
    assert 0 < report.utilization <= 1.0

    # Traffic lower bounds: every *algorithmically touched* element
    # crosses each boundary at least once. At stride > kernel parts of
    # the input are legitimately skipped, so gate the input bound.
    assert report.l2_reads["W"] >= layer.tensor_volume("W") * 0.999
    assert report.l1_writes["W"] >= layer.tensor_volume("W") * 0.999
    if layer.stride == (1, 1):
        assert report.l2_reads["I"] >= layer.tensor_volume("I") * 0.999
        assert report.l1_writes["I"] >= layer.tensor_volume("I") * 0.999
    assert report.l2_writes["O"] >= layer.tensor_volume("O") * 0.999

    # Reuse factors bounded by the algorithmic maximum.
    for tensor, factor in report.reuse_factors.items():
        assert factor <= report.max_reuse_factors[tensor] * 1.001

    # Energy accounting is positive and MAC-consistent.
    assert report.energy_breakdown["MAC"] == pytest.approx(report.total_ops)
    assert report.energy_total > report.total_ops

    # Buffer requirements are positive and L2 holds at least one PE's L1.
    assert report.l1_buffer_req > 0
    assert report.l2_buffer_req > 0


@settings(max_examples=15, deadline=None)
@given(
    layer=st.builds(
        lambda k, c, yx: conv2d("prop", k=k, c=c, y=yx, x=yx, r=3, s=3),
        k=st.sampled_from([4, 8]),
        c=st.sampled_from([4, 8]),
        yx=st.sampled_from([8, 12]),
    ),
    spec=specs,
)
def test_model_tracks_simulator(layer, spec):
    """The Figure 9 property, fuzzed over the template space."""
    accelerator = Accelerator(num_pes=16, noc=NoC(bandwidth=8))
    flow = spec.build()
    report = analyze_layer(layer, flow, accelerator)
    sim = simulate_layer(layer, flow, accelerator)
    assert report.runtime == pytest.approx(sim.runtime, rel=0.30)


@settings(max_examples=40, deadline=None)
@given(layer=layers, spec=specs)
def test_bandwidth_monotonicity(layer, spec):
    """More NoC bandwidth never slows a dataflow down."""
    flow = spec.build()
    slow = analyze_layer(layer, flow, Accelerator(num_pes=16, noc=NoC(bandwidth=2)))
    fast = analyze_layer(layer, flow, Accelerator(num_pes=16, noc=NoC(bandwidth=64)))
    assert fast.runtime <= slow.runtime * 1.0001
