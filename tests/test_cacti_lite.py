"""Tests for the CACTI-lite SRAM scaling model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hardware.cacti_lite import DEFAULT_CACTI_LITE, CactiLite, SramConfig
from repro.hardware.energy import DEFAULT_ENERGY_MODEL


class TestConfig:
    def test_validation(self):
        with pytest.raises(HardwareError):
            SramConfig(capacity_bytes=0)
        with pytest.raises(HardwareError):
            SramConfig(capacity_bytes=64, ports=0)
        with pytest.raises(HardwareError):
            SramConfig(capacity_bytes=4, banks=8)


class TestEnergy:
    def test_calibration_anchors(self):
        model = DEFAULT_CACTI_LITE
        assert model.read_energy(SramConfig(2048)) == pytest.approx(1.2, rel=0.05)
        assert model.read_energy(SramConfig(1 << 20)) == pytest.approx(18.0, rel=0.05)

    def test_matches_default_energy_model(self):
        """The embedded EnergyModel is this curve at one port."""
        model = DEFAULT_CACTI_LITE
        for capacity in (256, 2048, 1 << 16, 1 << 20):
            assert model.read_energy(SramConfig(capacity)) == pytest.approx(
                DEFAULT_ENERGY_MODEL.sram_access(capacity)
            )

    def test_ports_cost_energy(self):
        model = DEFAULT_CACTI_LITE
        one = model.read_energy(SramConfig(4096, ports=1))
        two = model.read_energy(SramConfig(4096, ports=2))
        assert two > one

    def test_banking_saves_energy(self):
        model = DEFAULT_CACTI_LITE
        flat = model.read_energy(SramConfig(1 << 20, banks=1))
        banked = model.read_energy(SramConfig(1 << 20, banks=16))
        assert banked < flat

    @given(st.integers(1, 1 << 22))
    def test_energy_monotone_in_capacity(self, capacity):
        model = DEFAULT_CACTI_LITE
        assert model.read_energy(SramConfig(capacity + 1)) >= model.read_energy(
            SramConfig(capacity)
        )


class TestAreaAndTime:
    def test_area_roughly_linear_in_capacity(self):
        model = DEFAULT_CACTI_LITE
        small = model.area(SramConfig(64 << 10))
        large = model.area(SramConfig(128 << 10))
        assert 1.8 < large / small < 2.2

    def test_ports_cost_area(self):
        model = DEFAULT_CACTI_LITE
        assert model.area(SramConfig(4096, ports=2)) > 1.5 * model.area(
            SramConfig(4096)
        )

    def test_access_time_grows(self):
        model = DEFAULT_CACTI_LITE
        assert model.access_time_ns(SramConfig(1 << 20)) > model.access_time_ns(
            SramConfig(2048)
        )

    def test_access_cycles(self):
        model = DEFAULT_CACTI_LITE
        assert model.access_cycles(SramConfig(2048), clock_ghz=1.0) == 1
        assert model.access_cycles(SramConfig(1 << 20), clock_ghz=4.0) >= 2


class TestEnergyModelFactory:
    def test_generates_usable_model(self):
        from repro.engines.analysis import analyze_layer
        from repro.dataflow.library import yx_partitioned
        from repro.hardware.accelerator import Accelerator
        from repro.model.layer import conv2d

        custom = CactiLite(energy_per_sqrt_byte=0.03).energy_model(dram=100.0)
        layer = conv2d("c", k=8, c=8, y=12, x=12, r=3, s=3)
        report = analyze_layer(
            layer, yx_partitioned(), Accelerator(num_pes=16), custom
        )
        baseline = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=16))
        assert report.energy_total != baseline.energy_total
