"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "dataflow_playground.py",
    "custom_dataflow_dsl.py",
    "operators_and_sparsity.py",
    "autotune.py",
    "network_scheduling.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_slow_examples_exist():
    """The heavier examples are exercised by the benchmark harness."""
    for script in ("dataflow_comparison.py", "design_space_exploration.py",
                   "adaptive_dataflow.py"):
        assert (EXAMPLES_DIR / script).exists()
