"""Tests for the observability subsystem (repro.obs).

Covers the tracing core (nesting, the disabled no-op path, cross-process
re-parenting), the metrics registry (counters, gauges, histograms,
snapshot/merge), the exporters (Perfetto structure, the Prometheus
round trip), and the wiring: the five engine phases recorded under
``analyze_layer``, worker spans adopted across a real process pool, and
the CLI surface (``profile``, ``--trace-out``/``--metrics-out``, the
always-on digest line).
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.dataflow.library import kc_partitioned, yr_partitioned
from repro.engines.analysis import analyze_layer
from repro.exec import BatchEvaluator, EvalPoint
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.exporters import (
    metrics_table,
    parse_prometheus,
    prometheus_name,
    span_summary,
    span_summary_table,
    span_tree,
    to_perfetto,
    to_prometheus,
)
from repro.obs.profile import (
    ENGINE_PHASES,
    digest_line,
    phase_timings,
    write_metrics,
    write_trace,
)


@pytest.fixture(autouse=True)
def obs_disabled_after():
    """Every test leaves the process-global registry off and empty."""
    yield
    obs.configure(enabled=False, reset=True)


@pytest.fixture
def enabled():
    obs.configure(enabled=True, reset=True)


@pytest.fixture
def layer():
    return conv2d("obs-t", k=16, c=16, y=12, x=12, r=3, s=3)


@pytest.fixture
def accel():
    return Accelerator(num_pes=64, noc=NoC(bandwidth=32, avg_latency=2))


class TestTraceCore:
    def test_disabled_by_default_records_nothing(self):
        assert not obs.is_enabled()
        with obs.span("never", k=1):
            pass
        assert obs.spans() == []

    def test_disabled_span_is_the_shared_noop_singleton(self):
        assert obs.span("a") is obs.NOOP_SPAN
        assert obs.span("b", x=1) is obs.NOOP_SPAN
        assert obs.NOOP_SPAN.set(x=2) is obs.NOOP_SPAN

    def test_nesting_builds_the_parent_chain(self, enabled):
        with obs.span("outer"):
            with obs.span("inner"):
                assert obs.current_span_id() is not None
        assert obs.current_span_id() is None
        inner, outer = obs.spans()  # finish order: inner first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.dur_ns >= inner.dur_ns >= 0
        assert outer.cpu_ns >= 0

    def test_attrs_and_set(self, enabled):
        with obs.span("s", layer="CONV1") as live:
            live.set(extra=3)
        (record,) = obs.spans()
        assert record.attrs == {"layer": "CONV1", "extra": 3}

    def test_exception_still_records_and_unwinds(self, enabled):
        with pytest.raises(RuntimeError):
            with obs.span("broken"):
                raise RuntimeError("boom")
        (record,) = obs.spans()
        assert record.name == "broken"
        assert obs.current_span_id() is None

    def test_configure_reset_clears_both_registries(self, enabled):
        with obs.span("s"):
            obs.inc("c")
        obs.configure(enabled=True, reset=True)
        assert obs.spans() == []
        assert obs.counter_value("c") == 0

    def test_record_dict_roundtrip(self, enabled):
        with obs.span("s", k=1):
            pass
        (record,) = obs.spans()
        assert obs.SpanRecord.from_dict(record.to_dict()) == record


class TestAdoptSpans:
    def test_remaps_ids_and_reparents_roots(self, enabled):
        # A fake worker export with its own (colliding) id space.
        worker = [
            {"span_id": 1, "parent_id": None, "name": "w.root", "start_ns": 10,
             "dur_ns": 5, "pid": 999},
            {"span_id": 2, "parent_id": 1, "name": "w.child", "start_ns": 11,
             "dur_ns": 3, "pid": 999},
        ]
        with obs.span("driver.pool") as live:
            assert obs.adopt_spans(worker) == 2
            driver_id = live.record.span_id
        by_name = {record.name: record for record in obs.spans()}
        root, child = by_name["w.root"], by_name["w.child"]
        assert root.parent_id == driver_id  # re-parented under the driver
        assert child.parent_id == root.span_id  # internal edge remapped
        ids = {record.span_id for record in obs.spans()}
        assert len(ids) == 3  # fresh ids, no collisions

    def test_explicit_parent_wins(self, enabled):
        worker = [{"span_id": 7, "parent_id": None, "name": "w", "start_ns": 0}]
        obs.adopt_spans(worker, parent_id=42)
        (record,) = obs.spans()
        assert record.parent_id == 42


class TestMetrics:
    def test_counters_add_and_default_to_zero(self, enabled):
        assert obs.counter_value("c") == 0
        obs.inc("c")
        obs.inc("c", 4)
        assert obs.counter_value("c") == 5

    def test_disabled_writers_are_noops(self):
        obs.inc("c")
        obs.set_gauge("g", 2.0)
        obs.observe("h", 0.5)
        snap = obs.metrics_snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_gauges_last_writer_wins(self, enabled):
        obs.set_gauge("g", 3.0)
        obs.set_gauge("g", 1.0)
        assert obs.gauge_value("g") == 1.0

    def test_histogram_buckets_are_le_inclusive(self, enabled):
        obs.observe("h", 1e-3)  # exactly a bound: falls in that bucket
        obs.observe("h", 5e-3)
        obs.observe("h", 99.0)  # above every bound: +Inf slot
        hist = obs.metrics_snapshot()["histograms"]["h"]
        bounds = hist["buckets"]
        assert hist["counts"][bounds.index(1e-3)] == 1
        assert hist["counts"][bounds.index(1e-2)] == 1
        assert hist["counts"][-1] == 1
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(1e-3 + 5e-3 + 99.0)

    def test_merge_folds_a_worker_snapshot(self, enabled):
        obs.inc("c", 2)
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.5)
        worker = {
            "counters": {"c": 3, "new": 1},
            "gauges": {"g": 9.0},
            "histograms": {
                "h": {
                    "buckets": list(obs_metrics.DEFAULT_BUCKETS),
                    "counts": [0] * len(obs_metrics.DEFAULT_BUCKETS) + [1],
                    "sum": 50.0,
                    "count": 1,
                }
            },
        }
        obs.merge_metrics(worker)
        assert obs.counter_value("c") == 5
        assert obs.counter_value("new") == 1
        assert obs.gauge_value("g") == 9.0
        hist = obs.metrics_snapshot()["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(50.5)


class TestExporters:
    def test_perfetto_structure(self, enabled):
        with obs.span("engine.reuse", layer="CONV1"):
            pass
        payload = to_perfetto(obs.spans())
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "engine.reuse"
        assert event["cat"] == "engine"
        assert event["args"]["layer"] == "CONV1"
        assert event["dur"] >= 0
        json.dumps(payload)  # loadable = serializable

    def test_prometheus_round_trip(self, enabled):
        obs.inc("cache.hits", 7)
        obs.set_gauge("exec.chunk_queue_depth", 3.0)
        obs.observe("eval.seconds", 2e-3)
        obs.observe("eval.seconds", 42.0)
        text = to_prometheus(obs.metrics_snapshot())
        parsed = parse_prometheus(text)
        assert parsed["counters"][prometheus_name("cache.hits")] == 7
        assert parsed["gauges"][prometheus_name("exec.chunk_queue_depth")] == 3.0
        hist = parsed["histograms"][prometheus_name("eval.seconds")]
        original = obs.metrics_snapshot()["histograms"]["eval.seconds"]
        assert hist["buckets"] == original["buckets"]
        assert hist["counts"] == original["counts"]
        assert hist["count"] == original["count"]
        assert hist["sum"] == pytest.approx(original["sum"])

    def test_prometheus_name_sanitizes(self):
        assert prometheus_name("dse.mappings-evaluated") == (
            "repro_dse_mappings_evaluated"
        )

    def test_span_summary_self_time_excludes_children(self):
        spans = [
            {"span_id": 2, "parent_id": 1, "name": "child", "start_ns": 0,
             "dur_ns": 30, "cpu_ns": 0},
            {"span_id": 1, "parent_id": None, "name": "parent", "start_ns": 0,
             "dur_ns": 100, "cpu_ns": 0},
        ]
        summary = span_summary(spans)
        assert summary["parent"]["self_ns"] == 70
        assert summary["parent"]["total_ns"] == 100
        assert summary["child"]["self_ns"] == 30

    def test_text_renderers_smoke(self, enabled):
        with obs.span("outer", k=1):
            with obs.span("inner"):
                pass
        obs.inc("c")
        obs.observe("h", 0.1)
        assert "outer" in span_summary_table(obs.spans())
        tree = span_tree(obs.spans())
        assert tree.index("outer") < tree.index("  inner")
        assert "c" in metrics_table(obs.metrics_snapshot())


class TestProfileHelpers:
    def test_write_trace_and_metrics(self, enabled, tmp_path):
        with obs.span("s"):
            obs.inc("c")
        trace_path = write_trace(tmp_path / "t.json")
        loaded = json.loads(trace_path.read_text())
        assert loaded["traceEvents"][0]["name"] == "s"
        metrics_path = write_metrics(tmp_path / "m.prom")
        assert parse_prometheus(metrics_path.read_text())["counters"] == {
            prometheus_name("c"): 1
        }

    def test_phase_timings_shares_sum_to_one(self, enabled, layer, accel):
        analyze_layer(layer, kc_partitioned(c_tile=8), accel)
        report = phase_timings()
        assert set(report) == set(ENGINE_PHASES)
        assert all(entry["count"] == 1 for entry in report.values())
        assert sum(entry["share"] for entry in report.values()) == pytest.approx(1.0)

    def test_digest_line_format(self):
        line = digest_line(
            evaluated=10, cost_model_calls=20, cache_hits=5,
            pruned_lint=3, pruned_verify=1, wall_seconds=0.5,
        )
        assert line == (
            "metrics: evaluated=10 cache-hit=25.0% "
            "pruned-by-lint=3 pruned-by-verify=1 wall=0.50s"
        )
        assert "cache-hit=0.0%" in digest_line(
            evaluated=0, cost_model_calls=0, cache_hits=0,
            pruned_lint=0, pruned_verify=0, wall_seconds=0.0,
        )


class TestEngineInstrumentation:
    def test_analyze_layer_records_all_five_phases(self, enabled, layer, accel):
        analyze_layer(layer, kc_partitioned(c_tile=8), accel)
        names = [record.name for record in obs.spans()]
        assert list(ENGINE_PHASES) == [n for n in names if n in ENGINE_PHASES]
        assert obs.counter_value("engine.layers_analyzed") == 1
        assert obs.counter_value("binding.dataflows_bound") >= 1
        assert obs.counter_value("reuse.levels_analyzed") >= 1

    def test_results_bit_identical_enabled_vs_disabled(self, layer, accel):
        flow = yr_partitioned()
        baseline = analyze_layer(layer, flow, accel)
        obs.configure(enabled=True, reset=True)
        traced = analyze_layer(layer, flow, accel)
        assert traced == baseline


class TestProcessPoolReparenting:
    def test_worker_spans_adopted_into_the_driver_trace(self, layer, accel):
        points = [
            EvalPoint(layer, flow, accel)
            for flow in (kc_partitioned(c_tile=8), yr_partitioned())
            for _ in range(2)
        ]
        obs.configure(enabled=True, reset=True)
        result = BatchEvaluator(executor="process", jobs=2, cache=False).evaluate(
            points
        )
        assert all(outcome.ok for outcome in result)
        records = obs.spans()
        by_name = {}
        for record in records:
            by_name.setdefault(record.name, []).append(record)
        (pool,) = by_name["exec.process_pool"]
        worker_chunks = by_name["exec.worker_chunk"]
        assert worker_chunks  # spans crossed the process boundary
        driver_pid = pool.pid
        for chunk in worker_chunks:
            # Re-parented under the driver's pool span despite the
            # foreign pid and remapped ids.
            assert chunk.parent_id == pool.span_id
            assert chunk.pid != driver_pid
        # The workers' engine-phase spans came along and stayed nested.
        chunk_ids = {chunk.span_id for chunk in worker_chunks}
        worker_pids = {chunk.pid for chunk in worker_chunks}
        engine_spans = [
            record for record in records
            if record.name == "engine.binding" and record.pid in worker_pids
        ]
        assert engine_spans
        ids = {record.span_id for record in records}
        assert len(ids) == len(records)  # no id collisions after adoption
        assert chunk_ids <= ids
        # Worker metrics merged into the driver registry.
        assert obs.counter_value("engine.layers_analyzed") == len(points)
        assert obs.counter_value("exec.chunks_submitted") == len(worker_chunks)


class TestCli:
    def test_profile_smoke(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main([
            "profile", "--model", "alexnet", "--layer", "CONV2",
            "--dataflow", "KC-P", "--repeat", "2",
            "--trace-out", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        for phase in ENGINE_PHASES:
            assert phase in out
        assert "engine.layers_analyzed" in out
        payload = json.loads(trace_path.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert set(ENGINE_PHASES) <= names

    def test_dse_trace_and_metrics_out(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "dse", "--model", "vgg16", "--layer", "CONV1",
            "--max-pes", "64", "--pe-step", "32", "--executor", "serial",
            "--no-cache",
            "--trace-out", str(trace_path), "--metrics-out", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics: evaluated=" in out
        assert "ui.perfetto.dev" in out
        names = {
            event["name"]
            for event in json.loads(trace_path.read_text())["traceEvents"]
        }
        assert set(ENGINE_PHASES) <= names
        assert "dse.enumerate" in names and "exec.evaluate" in names
        parsed = parse_prometheus(metrics_path.read_text())
        assert parsed["counters"][prometheus_name("dse.mappings_evaluated")] > 0

    def test_tune_digest_line_without_flags(self, capsys):
        assert main([
            "tune", "--model", "vgg16", "--layer", "CONV1",
            "--strategy", "random", "--budget", "10", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics: evaluated=" in out
        assert "pruned-by-lint=" in out and "wall=" in out
        # The digest comes from sweep statistics, not the obs registry:
        # tracing stayed off.
        assert not obs.is_enabled()
        assert obs_trace.spans() == []
