"""Tests for the report renderer and edge-case engine inputs."""

import pytest

from repro.dataflow.library import kc_partitioned, yr_partitioned, yx_partitioned
from repro.engines.analysis import analyze_layer, analyze_network
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer, conv2d
from repro.model.zoo import build
from repro.report import layer_report, network_report
from repro.tensors import dims as D
from repro.tensors.operators import CONV2D


class TestLayerReport:
    @pytest.fixture(scope="class")
    def analysis(self):
        layer = build("vgg16").layer("CONV2")
        return analyze_layer(layer, yr_partitioned(), Accelerator(num_pes=256))

    def test_contains_all_sections(self, analysis):
        text = layer_report(analysis)
        for marker in (
            "runtime", "per-level performance", "traffic",
            "reuse (uses per L2 fetch)", "buffer requirements",
            "energy breakdown",
        ):
            assert marker in text, marker

    def test_mentions_every_tensor(self, analysis):
        text = layer_report(analysis)
        for tensor in ("W", "I", "O"):
            assert tensor in text

    def test_intermediate_buffers_labeled_with_level_depth(self, analysis):
        text = layer_report(analysis)
        assert "cluster buffer (level 0/1 chunk, per depth-1 sub-cluster)" in text


class TestNetworkReport:
    def test_summary(self):
        network = build("alexnet")
        result = analyze_network(
            network, yx_partitioned(), Accelerator(num_pes=64)
        )
        text = network_report(result, top=3)
        assert "total runtime" in text
        assert "top 3 layers" in text
        assert "energy breakdown" in text


class TestDramBandwidth:
    def test_dram_roofline_binds_streaming_layers(self):
        """A weight-streaming FC is limited by DRAM bandwidth."""
        from repro.model.layer import fc

        layer = fc("f", k=4096, c=4096)
        flow = kc_partitioned(c_tile=64)
        unbounded = analyze_layer(layer, flow, Accelerator(num_pes=256))
        bounded = analyze_layer(
            layer, flow, Accelerator(num_pes=256, dram_bandwidth=1)
        )
        assert bounded.runtime > unbounded.runtime
        # Streaming 16.7M weights at 1 elem/cycle needs >= 16.7M cycles.
        assert bounded.runtime >= layer.tensor_volume("W")

    def test_unbounded_default_unchanged(self):
        layer = conv2d("c", k=8, c=8, y=12, x=12, r=3, s=3)
        flow = yx_partitioned()
        a = analyze_layer(layer, flow, Accelerator(num_pes=16))
        b = analyze_layer(layer, flow, Accelerator(num_pes=16, dram_bandwidth=10**9))
        assert a.runtime == b.runtime


class TestEngineEdgeCases:
    def test_batch_greater_than_one(self):
        layer = conv2d("b", n=4, k=8, c=8, y=12, x=12, r=3, s=3)
        report = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=16))
        single = conv2d("s", n=1, k=8, c=8, y=12, x=12, r=3, s=3)
        single_report = analyze_layer(single, yx_partitioned(), Accelerator(num_pes=16))
        assert report.total_ops == 4 * single_report.total_ops
        assert report.runtime > single_report.runtime

    def test_asymmetric_stride(self):
        layer = Layer(
            name="asym",
            operator=CONV2D,
            dims={D.K: 4, D.C: 4, D.Y: 17, D.X: 33, D.R: 3, D.S: 3},
            stride=(2, 4),
        )
        assert layer.out_y == 8
        assert layer.out_x == 8
        report = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=16))
        assert report.total_ops == layer.total_ops()

    def test_dilated_convolution(self):
        layer = Layer(
            name="dilated",
            operator=CONV2D,
            dims={D.K: 4, D.C: 4, D.Y: 16, D.X: 16, D.R: 3, D.S: 3},
            dilation=(2, 2),
        )
        assert layer.out_y == 12
        report = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=16))
        assert report.total_ops == layer.total_ops()
        assert report.utilization <= 1.0

    def test_single_pe(self):
        layer = conv2d("one", k=4, c=4, y=8, x=8, r=3, s=3)
        report = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=8))
        assert report.runtime >= layer.total_ops() / 8

    def test_kernel_equals_input(self):
        layer = conv2d("full", k=4, c=4, y=5, x=5, r=5, s=5)
        assert layer.out_y == 1
        report = analyze_layer(layer, kc_partitioned(c_tile=4), Accelerator(num_pes=8))
        assert report.total_ops == layer.total_ops()
