"""End-to-end tests for the analysis server over real sockets."""

from __future__ import annotations

import json
import threading

import pytest

from repro.dse.explorer import explore
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ThreadedServer,
    protocol,
)

#: A DSE job small enough for test latency, shaped like Fig. 13.
DSE_JOB = dict(
    model="vgg16",
    layer="CONV1",
    dataflow="KC-P",
    max_pes=64,
    pe_step=16,
    max_bandwidth=16,
)


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(
        ServeConfig(port=0, max_concurrency=2, allow_shutdown=True)
    ) as threaded:
        yield threaded


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(port=server.port, timeout=300.0)


class TestIntrospection:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs_active"] >= 0
        assert health["uptime_seconds"] >= 0

    def test_metrics_prometheus_text(self, client):
        client.healthz()  # guarantee at least one counted request
        text = client.metrics()
        assert "serve_requests" in text
        assert "serve_uptime_seconds" in text
        # Valid exposition format: every non-comment line is name value.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert len(line.split()) == 2, line

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._json("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._json("POST", "/healthz", {})
        assert excinfo.value.status == 405

    def test_jobs_table(self, client):
        client.lint(dataflow="KC-P")
        jobs = client.jobs()["jobs"]
        assert any(job["kind"] == "lint" for job in jobs)


class TestValidation:
    def test_unknown_model_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.analyze(model="nope", layer="x", dataflow="KC-P")
        assert excinfo.value.status == 400

    def test_unknown_field_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.analyze(
                model="vgg16", layer="CONV1", dataflow="KC-P", bogus=1
            )
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.message

    def test_malformed_body_400(self, server):
        import socket

        raw = b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot-json!"
        with socket.create_connection(("127.0.0.1", server.port), 10) as sock:
            sock.sendall(raw)
            reply = sock.makefile("rb").read()
        assert b"400" in reply.split(b"\r\n", 1)[0]

    def test_unparseable_dataflow_422(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.lint(dataflow_text="TemporalMap(")
        assert excinfo.value.status == 422

    def test_lint_gate_rejects_with_diagnostics(self, client):
        # A mapping that binds nothing is refuted before any work runs.
        with pytest.raises(ServeError) as excinfo:
            client.analyze(
                model="vgg16",
                layer="CONV1",
                dataflow_text="TemporalMap(1,1) R;",
            )
        assert excinfo.value.status in (400, 422)


class TestAnalyze:
    def test_round_trip_matches_direct(self, client, vgg16):
        from repro.dataflow.library import table3_dataflows
        from repro.engines.analysis import analyze_layer
        from repro.exec.serialize import analysis_to_dict
        from repro.hardware.accelerator import Accelerator, NoC

        result = client.analyze(model="vgg16", layer="CONV1", dataflow="KC-P")
        entry = result["layers"][0]
        assert entry["ok"]
        direct = analyze_layer(
            vgg16.layer("CONV1"),
            table3_dataflows()["KC-P"],
            Accelerator(num_pes=256, noc=NoC(bandwidth=32, avg_latency=2)),
        )
        assert entry["report"] == analysis_to_dict(direct)

    def test_repeat_is_cache_hit(self, client):
        job = dict(model="vgg16", layer="CONV2", dataflow="KC-P")
        client.analyze(**job)
        repeat = client.analyze(**job)
        assert repeat["layers"][0]["cached"]
        assert repeat["stats"]["evaluated"] == 0

    def test_verify_endpoint(self, client):
        result = client.verify(dataflow="KC-P")
        assert result["all_proven"] is True

    def test_lint_endpoint(self, client):
        result = client.lint(dataflow="KC-P")
        assert result["ok"] is True
        assert "report" in result


class TestDSE:
    def test_stream_parity_with_in_process_explorer(self, client):
        events = list(client.dse_stream(**DSE_JOB, shards=3))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        assert kinds.count("front") == 3
        final = events[-1]

        norm = protocol.validate("dse", dict(DSE_JOB))
        layer, space, kwargs = protocol.dse_inputs(norm)
        direct = explore(layer, space, **kwargs)
        assert final["front"] == [
            protocol.design_point_dict(p) for p in direct.pareto()
        ]
        assert final["statistics"]["explored"] == space.size
        for name in ("throughput", "energy", "edp"):
            optimum = final["optima"][name]
            direct_point = getattr(direct, f"{name}_optimal")
            assert optimum == protocol.design_point_dict(direct_point)

    def test_anytime_fronts_converge(self, client):
        events = list(client.dse_stream(**DSE_JOB, shards=2))
        fronts = [e for e in events if e["event"] == "front"]
        assert fronts[-1]["shards_done"] == fronts[-1]["shards_total"] == 2
        final = events[-1]
        assert fronts[-1]["front"] == final["front"]

    def test_unary_json_mode(self, client):
        result = client.dse(**DSE_JOB)
        assert result["front"]
        assert result["statistics"]["explored"] > 0

    def test_single_flight_concurrent_submissions(self, client):
        job = dict(DSE_JOB, layer="CONV3", shards=2)
        results = [None, None]

        def submit(slot):
            results[slot] = client.dse(**job)

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results[0]["job_id"] == results[1]["job_id"]
        assert results[0]["front"] == results[1]["front"]


class TestLifecycle:
    def test_queue_limit_503(self):
        # queue_limit bounds jobs *waiting* for a slot; zero means no
        # job may ever wait, so every submission is rejected busy while
        # introspection endpoints keep answering.
        config = ServeConfig(port=0, max_concurrency=1, queue_limit=0)
        with ThreadedServer(config) as threaded:
            tight = ServeClient(port=threaded.port, timeout=60.0)
            with pytest.raises(ServeError) as excinfo:
                tight.analyze(model="vgg16", layer="CONV1", dataflow="KC-P")
            assert excinfo.value.status == 503
            assert "queue full" in excinfo.value.message
            assert tight.healthz()["status"] == "ok"

    def test_shutdown_drains(self):
        config = ServeConfig(port=0, allow_shutdown=True)
        with ThreadedServer(config) as threaded:
            brief = ServeClient(port=threaded.port, timeout=60.0)
            assert brief.healthz()["status"] == "ok"
            assert brief.shutdown()["status"] == "draining"

    def test_shutdown_disabled_404(self, client):
        config = ServeConfig(port=0, allow_shutdown=False)
        with ThreadedServer(config) as threaded:
            locked = ServeClient(port=threaded.port, timeout=60.0)
            with pytest.raises(ServeError) as excinfo:
                locked.shutdown()
            assert excinfo.value.status == 404


class TestProtocolUnits:
    def test_job_key_is_canonical(self):
        first = protocol.validate("dse", dict(DSE_JOB))
        second = protocol.validate(
            "dse", dict(DSE_JOB, stream=False, area=16.0)
        )
        assert protocol.job_key("dse", first) == protocol.job_key(
            "dse", second
        )

    def test_job_key_differs_across_kinds(self):
        norm = protocol.validate("dse", dict(DSE_JOB))
        assert protocol.job_key("dse", norm) != protocol.job_key("tune", norm)

    def test_normalized_docs_are_json(self):
        norm = protocol.validate("dse", dict(DSE_JOB))
        json.dumps(norm)  # must not raise
