"""Tests for the static capacity analyzer (repro.capacity).

Covers the four certified claims the subsystem makes:

- the closed-form occupancy bounds reproduce the cost engine's buffer
  sizing bit-for-bit (engine parity);
- the bounds are monotone in the mapping's tile sizes (Hypothesis);
- the roofline floors never exceed the engine's modeled runtime;
- capacity-based search pruning is sound — DSE and tuner results are
  bit-identical with and without the screen.

Plus the DF5xx lint rules and the ``nearest_rule`` suggestion helper.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.capacity import (
    CAPACITY_PROVENANCE,
    classify_roofline,
    compute_capacity_bounds,
    crosscheck_capacity,
)
from repro.dataflow.library import kc_partitioned, table3_dataflows
from repro.engines.analysis import analyze_layer
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.model.zoo import build


@pytest.fixture(scope="module")
def layer():
    return build("vgg16").layer("CONV11")


@pytest.fixture(scope="module")
def accelerator():
    return Accelerator(num_pes=64)


class TestEngineParity:
    """The bounds reproduce the engine's buffer sizing bit-for-bit."""

    @pytest.mark.parametrize("flow_name", sorted(table3_dataflows()))
    def test_table3_flows_match_engine(self, layer, accelerator, flow_name):
        flow = table3_dataflows()[flow_name]
        bounds = compute_capacity_bounds(flow, layer, accelerator)
        report = analyze_layer(layer, flow, accelerator)
        assert bounds.l1.peak_bytes == report.l1_buffer_req
        assert bounds.l2.peak_bytes == report.l2_buffer_req
        assert tuple(lvl.peak_bytes for lvl in bounds.intermediates) == tuple(
            report.intermediate_buffer_reqs
        )

    def test_single_buffered_halves_peak(self, layer):
        flow = kc_partitioned()
        double = compute_capacity_bounds(flow, layer, Accelerator(num_pes=64))
        single = compute_capacity_bounds(
            flow, layer, Accelerator(num_pes=64, double_buffered=False)
        )
        assert double.l1.peak_bytes == 2 * single.l1.peak_bytes
        assert double.l2.peak_bytes == 2 * single.l2.peak_bytes

    def test_capacity_verdicts_respect_declared_sizes(self, layer):
        sized = Accelerator(num_pes=64, l1_size=16)
        bounds = compute_capacity_bounds(kc_partitioned(), layer, sized)
        assert not bounds.l1.fits
        assert not bounds.feasible
        roomy = Accelerator(num_pes=64, l1_size=1 << 20, l2_size=1 << 24)
        bounds = compute_capacity_bounds(kc_partitioned(), layer, roomy)
        assert bounds.feasible


class TestMonotonicity:
    """Peak bounds never shrink when a temporal tile dimension grows.

    Only the activation tiles (``y_tile``/``x_tile``) carry a
    monotonicity guarantee: they grow every level's chunk without
    changing the cluster structure. The cluster size ``c_tile`` does
    *not* — it trades K-parallelism for C-parallelism across the
    array, so the shared-L2 footprint can go either way.
    """

    TILES = st.tuples(
        st.sampled_from([2, 4, 8, 16, 32, 64]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
    )

    @settings(max_examples=40, deadline=None)
    @given(small=TILES, grow=st.tuples(st.booleans(), st.booleans()))
    def test_bounds_monotone_in_activation_tiles(self, small, grow):
        layer = conv2d("mono", k=64, c=64, y=16, x=16, r=3, s=3, padding=1)
        accelerator = Accelerator(num_pes=128)
        c_tile, y_tile, x_tile = small
        big = (
            c_tile,
            y_tile * 2 if grow[0] else y_tile,
            x_tile * 2 if grow[1] else x_tile,
        )
        assume(big != small)

        def bounds_for(tiles):
            flow = kc_partitioned(
                c_tile=tiles[0], y_tile=tiles[1], x_tile=tiles[2]
            )
            try:
                return compute_capacity_bounds(flow, layer, accelerator)
            except Exception:
                return None

        lo, hi = bounds_for(small), bounds_for(big)
        assume(lo is not None and hi is not None)
        assert lo.l1.peak_bytes <= hi.l1.peak_bytes
        assert lo.l2.peak_bytes <= hi.l2.peak_bytes
        for lo_level, hi_level in zip(lo.intermediates, hi.intermediates):
            assert lo_level.peak_bytes <= hi_level.peak_bytes


class TestRoofline:
    """Floors are sound and the crossover bandwidth is consistent."""

    def test_floors_below_engine_runtime(self, layer, accelerator):
        for name, flow in sorted(table3_dataflows().items()):
            certificate = classify_roofline(flow, layer, accelerator)
            report = analyze_layer(layer, flow, accelerator)
            sweep = report.level_stats[0].runtime_sweep
            assert certificate.compute_floor_cycles <= sweep * (1 + 1e-9), name
            assert certificate.comm_floor_cycles <= sweep * (1 + 1e-9), name

    def test_bandwidth_bound_below_crossover(self, layer):
        flow = kc_partitioned()
        starved = Accelerator(num_pes=64, noc=NoC(bandwidth=1))
        certificate = classify_roofline(flow, layer, starved)
        assert certificate.verdict == "bandwidth-bound"
        assert certificate.crossover_bandwidth > 1
        rich = Accelerator(
            num_pes=64, noc=NoC(bandwidth=certificate.crossover_bandwidth)
        )
        assert classify_roofline(flow, layer, rich).verdict == "compute-bound"

    def test_infeasible_dominates(self, layer):
        tiny = Accelerator(num_pes=64, l1_size=16)
        certificate = classify_roofline(kc_partitioned(), layer, tiny)
        assert certificate.verdict == "capacity-infeasible"


class TestCrosscheck:
    """Differential verification against engine + occupancy simulation."""

    @pytest.mark.parametrize("flow_name", sorted(table3_dataflows()))
    def test_zoo_sample_agrees(self, layer, flow_name):
        flow = table3_dataflows()[flow_name]
        report = crosscheck_capacity(flow, layer)
        assert report.ok, report.render()
        assert report.engine_exact

    def test_render_mentions_verdict(self, layer):
        report = crosscheck_capacity(kc_partitioned(), layer)
        assert "AGREE" in report.render()
        assert report.to_dict()["ok"] is True


class TestDsePruning:
    """dse --capacity-prune: bit-identical results, fewer cost-model calls."""

    @pytest.fixture(scope="class")
    def space(self):
        from repro.dse.space import DesignSpace, kc_partitioned_variants

        return DesignSpace(
            pe_counts=[16, 32, 64, 128, 256],
            noc_bandwidths=[4, 16, 64],
            dataflow_variants=kc_partitioned_variants(
                c_tiles=(8, 16), spatial_tiles=((1, 1), (4, 4))
            ),
        )

    def test_bit_identical_under_tight_budget(self, layer, space):
        from repro.dse import explore

        base = explore(layer, space, area_budget=3.0, power_budget=1e9)
        pruned = explore(
            layer, space, area_budget=3.0, power_budget=1e9, capacity_prune=True
        )
        assert base.points == pruned.points
        assert base.throughput_optimal == pruned.throughput_optimal
        assert base.energy_optimal == pruned.energy_optimal
        assert base.edp_optimal == pruned.edp_optimal
        assert pruned.statistics.capacity_rejects > 0
        assert (
            pruned.statistics.cost_model_calls
            == base.statistics.cost_model_calls
            - pruned.statistics.capacity_rejects
        )

    def test_noop_without_flag(self, layer, space):
        from repro.dse import explore

        result = explore(layer, space, area_budget=3.0, power_budget=1e9)
        assert result.statistics.capacity_rejects == 0


class TestTunerPruning:
    """tune --capacity-prune: pre-empts the buffer-cap filter exactly."""

    def test_bit_identical_with_caps(self, layer, accelerator):
        from repro.tuner import tune_layer

        kwargs = dict(max_l1_bytes=2000, max_l2_bytes=2_000_000)
        base = tune_layer(layer, accelerator, **kwargs)
        pruned = tune_layer(layer, accelerator, capacity_prune=True, **kwargs)
        assert base.best.dataflow.name == pruned.best.dataflow.name
        assert base.best.score == pruned.best.score
        assert [(c.dataflow.name, c.score) for c in base.top] == [
            (c.dataflow.name, c.score) for c in pruned.top
        ]
        assert base.evaluated == pruned.evaluated
        assert base.rejected == pruned.rejected
        assert pruned.capacity_rejected > 0
        assert (
            pruned.cost_model_calls
            == base.cost_model_calls - pruned.capacity_rejected
        )

    def test_screen_idle_without_caps(self, layer, accelerator):
        from repro.tuner import tune_layer

        result = tune_layer(layer, accelerator, capacity_prune=True)
        assert result.capacity_rejected == 0


class TestLintRules:
    """DF500-DF504 fire with the right severities and fix-its."""

    def _codes(self, accelerator, layer):
        from repro.lint import lint_dataflow

        report = lint_dataflow(kc_partitioned(), layer, accelerator)
        return {d.code: d for d in report.diagnostics}

    def test_df500_l1_overflow(self, layer):
        codes = self._codes(Accelerator(num_pes=64, l1_size=16), layer)
        assert "DF500" in codes
        diagnostic = codes["DF500"]
        assert diagnostic.is_error
        assert diagnostic.fixit is not None
        assert diagnostic.provenance == CAPACITY_PROVENANCE

    def test_df501_l2_overflow(self, layer):
        codes = self._codes(
            Accelerator(num_pes=64, l1_size=100_000, l2_size=2048), layer
        )
        assert "DF501" in codes
        assert not codes["DF501"].is_error

    def test_df502_double_buffering_infeasible(self, layer):
        # steady fits (38 B) but the double-buffered peak (76 B) does not.
        codes = self._codes(Accelerator(num_pes=64, l1_size=50), layer)
        assert "DF502" in codes
        assert codes["DF502"].is_error
        assert "double_buffered=False" in codes["DF502"].fixit.description
        assert "DF500" not in codes

    def test_df503_low_utilization(self, layer):
        codes = self._codes(
            Accelerator(num_pes=64, l1_size=100_000, l2_size=1 << 24), layer
        )
        assert "DF503" in codes

    def test_df504_bandwidth_bound(self, layer):
        codes = self._codes(Accelerator(num_pes=64, noc=NoC(bandwidth=1)), layer)
        assert "DF504" in codes
        assert "break-even" in codes["DF504"].message

    def test_silent_when_unsized_and_compute_bound(self, layer):
        codes = self._codes(Accelerator(num_pes=64), layer)
        assert not {"DF500", "DF501", "DF502", "DF504"} & set(codes)


class TestExplainAndSuggest:
    """lint --explain knows DF5xx; typos get a nearest-rule hint."""

    def test_explain_df500(self):
        from repro.lint import explain_rule

        text = explain_rule("DF500")
        assert "DF500" in text
        assert "capacity" in text.lower()

    def test_nearest_rule_prefers_family(self):
        from repro.lint import nearest_rule

        assert nearest_rule("DF599") in {
            "DF500",
            "DF501",
            "DF502",
            "DF503",
            "DF504",
        }

    def test_unknown_rule_suggests(self):
        from repro.lint import explain_rule

        with pytest.raises(KeyError, match="did you mean"):
            explain_rule("DF501x")

    def test_wildly_wrong_code_no_suggestion(self):
        from repro.lint import nearest_rule

        assert nearest_rule("ZZZZZZZZZZ") is None
