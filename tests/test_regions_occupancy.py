"""Double-buffer occupancy accounting of the simulator's region arithmetic.

The reference simulator derives per-step data footprints from interval
arithmetic (:mod:`repro.simulator.regions`). These tests walk the joint
odometer of every Figure-9 configuration and assert the double-buffering
capacity claims:

- **L1 (per PE)**: at every step, twice the innermost chunk footprint —
  and the sum of any two consecutive steps' footprints (the two live
  double-buffer slots) — stays within the analytical model's
  ``l1_buffer_req``.
- **L2 (shared)**: at every step, the array-wide union footprint stays
  within the capacity provisioned from the steady (step-0) union box;
  that capacity itself stays within a few percent of the analytical
  ``l2_buffer_req`` (the small gap is the sliding-window halo overlap
  the closed-form unique-volume accounting elides).

The walk uses the same joint-odometer construction as
``simulate_layer``, so edge tiles and offset wraparound are exercised,
not just the steady state.
"""

import itertools
import random

import pytest

from repro.dataflow.library import kc_partitioned, yr_partitioned, yx_partitioned
from repro.engines.analysis import analyze_layer
from repro.engines.binding import bind_dataflow
from repro.engines.reuse import build_odometer
from repro.engines.tensor_analysis import analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.model.zoo import build
from repro.simulator.regions import (
    Box,
    Interval,
    array_union_box,
    axis_interval,
    tensor_box,
)
from repro.util.intmath import prod

#: The Figure-9 validation grid: (model, PEs, dataflow, layers).
FIG9_CONFIGS = [
    ("vgg16", 64, "KC-P", kc_partitioned, ["CONV1", "CONV5", "CONV11"]),
    ("vgg16", 64, "YX-P", yx_partitioned, ["CONV1", "CONV5", "CONV11"]),
    ("alexnet", 168, "YR-P", yr_partitioned, ["CONV2", "CONV3", "CONV5"]),
    ("alexnet", 168, "YX-P", yx_partitioned, ["CONV2", "CONV3", "CONV5"]),
]

CASES = [
    pytest.param(model, pes, factory, layer_name, id=f"{flow_name}-{layer_name}")
    for model, pes, flow_name, factory, layer_names in FIG9_CONFIGS
    for layer_name in layer_names
]

#: The L2 capacity provisioned from the union box may exceed the
#: analytical unique-volume requirement by the sliding-window halo the
#: closed form elides — observed at most ~3% on the Figure-9 grid.
HALO_TOLERANCE = 0.05


class Walk:
    """The joint odometer walk of one bound configuration."""

    def __init__(self, layer, dataflow, accelerator):
        self.report = analyze_layer(layer, dataflow, accelerator)
        bound = bind_dataflow(dataflow, layer, accelerator)
        self.tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
        self.inner_sizes = bound.innermost().chunk_sizes()
        self.shift_sets = [
            (level.spatial_offsets, int(round(level.avg_active)))
            for level in bound.levels
            if level.width > 1
        ]
        self.entries = []
        for level in bound.levels:
            for entry in build_odometer(level):
                if entry.steps > 1:
                    self.entries.append((entry.steps, dict(entry.advancing_offsets)))
        self.total_states = prod(steps for steps, _ in self.entries)
        self.element_bytes = accelerator.element_bytes

    def starts_at(self, state):
        """Chunk start offsets for the ``state``-th odometer position."""
        digits = []
        for steps, _ in reversed(self.entries):
            digits.append(state % steps)
            state //= steps
        digits.reverse()
        acc = {dim: 0 for dim in self.inner_sizes}
        for (steps, offsets), digit in zip(self.entries, digits):
            for dim, offset in offsets.items():
                acc[dim] = acc.get(dim, 0) + digit * offset
        return acc

    def sample_states(self, sequential=128, sampled=64, seed=0):
        """The first steps (edge + steady) plus a deterministic sample."""
        states = list(range(min(self.total_states, sequential)))
        if self.total_states > sequential:
            rng = random.Random(seed)
            states += sorted(
                rng.randrange(self.total_states) for _ in range(sampled)
            )
        return states

    def l1_bytes(self, starts):
        """One PE's chunk footprint at ``starts``, in bytes."""
        return self.element_bytes * sum(
            tensor_box(info.axes, starts, self.inner_sizes).volume()
            for info in self.tensors.tensors
        )

    def l2_bytes(self, starts):
        """The whole array's union footprint at ``starts``, in bytes."""
        return self.element_bytes * sum(
            array_union_box(
                info.axes, starts, self.inner_sizes, self.shift_sets
            ).volume()
            for info in self.tensors.tensors
        )


@pytest.fixture(scope="module")
def networks():
    return {"vgg16": build("vgg16"), "alexnet": build("alexnet")}


@pytest.mark.parametrize("model,pes,factory,layer_name", CASES)
def test_occupancy_never_exceeds_configured_capacities(
    networks, model, pes, factory, layer_name
):
    layer = networks[model].layer(layer_name)
    walk = Walk(layer, factory(), Accelerator(num_pes=pes))
    l1_capacity = walk.report.l1_buffer_req
    # The L2 capacity a Figure-9 machine provisions: the steady union
    # footprint, double buffered.
    steady = walk.starts_at(0)
    l2_capacity = 2 * walk.l2_bytes(steady)

    prev_l1 = prev_l2 = None
    for state in walk.sample_states():
        starts = walk.starts_at(state)
        l1_now = walk.l1_bytes(starts)
        l2_now = walk.l2_bytes(starts)
        # Double buffering holds at most two step footprints at once;
        # every step also fits twice over (the Figure 8 "2 * max" rule).
        assert 2 * l1_now <= l1_capacity
        assert 2 * l2_now <= l2_capacity
        if prev_l1 is not None:
            assert l1_now + prev_l1 <= l1_capacity
            assert l2_now + prev_l2 <= l2_capacity
        prev_l1, prev_l2 = l1_now, l2_now


@pytest.mark.parametrize("model,pes,factory,layer_name", CASES)
def test_l2_capacity_tracks_the_analytical_requirement(
    networks, model, pes, factory, layer_name
):
    layer = networks[model].layer(layer_name)
    walk = Walk(layer, factory(), Accelerator(num_pes=pes))
    l2_capacity = 2 * walk.l2_bytes(walk.starts_at(0))
    l2_req = walk.report.l2_buffer_req
    # The provisioned capacity is never below the analytical requirement
    # and overshoots it by at most the halo tolerance.
    assert l2_req <= l2_capacity <= l2_req * (1 + HALO_TOLERANCE)


def test_steady_l1_footprint_is_exactly_half_the_requirement(networks):
    """The analytic L1 requirement is exactly 2x the steady footprint."""
    layer = networks["vgg16"].layer("CONV5")
    walk = Walk(layer, kc_partitioned(), Accelerator(num_pes=64))
    assert 2 * walk.l1_bytes(walk.starts_at(0)) == walk.report.l1_buffer_req


def _exact_union_volume(axes, starts, sizes, shift_sets):
    """The exact union volume across every sub-unit of every level.

    Brute-force reference (coordinate compression over the shifted
    axes) for the test below — :func:`array_union_box` itself only
    promises an over-approximating box.
    """
    actives = [max(1, active) for _, active in shift_sets]
    base = [axis_interval(axis, starts, sizes) for axis in axes]
    per_level_shifts = [
        [axis.shift(offsets) for offsets, _ in shift_sets] for axis in axes
    ]
    moving = [
        index
        for index, shifts in enumerate(per_level_shifts)
        if any(abs(shift) > 1e-9 for shift in shifts)
    ]
    static_volume = 1
    for index, interval in enumerate(base):
        if index not in moving:
            static_volume *= interval.length
    if not moving:
        return static_volume
    if static_volume == 0:
        return 0
    boxes = []
    for units in itertools.product(*(range(active) for active in actives)):
        box = []
        for index in moving:
            shift = int(
                round(
                    sum(
                        unit * per_level_shifts[index][level]
                        for level, unit in enumerate(units)
                    )
                )
            )
            box.append((base[index].start + shift, base[index].stop + shift))
        boxes.append(tuple(box))
    coords = [
        sorted({edge for box in boxes for edge in (box[d][0], box[d][1])})
        for d in range(len(moving))
    ]
    total = 0
    for cell in itertools.product(*(range(len(c) - 1) for c in coords)):
        if any(
            all(
                box[d][0] <= coords[d][i] and coords[d][i + 1] <= box[d][1]
                for d, i in enumerate(cell)
            )
            for box in boxes
        ):
            volume = 1
            for d, i in enumerate(cell):
                volume *= coords[d][i + 1] - coords[d][i]
            total += volume
    return total * static_volume


@pytest.mark.parametrize(
    "model,pes,factory,layer_name",
    [
        pytest.param("vgg16", 64, kc_partitioned, "CONV5", id="KC-P-CONV5"),
        pytest.param("alexnet", 168, yx_partitioned, "CONV2", id="YX-P-CONV2"),
        pytest.param("alexnet", 168, yr_partitioned, "CONV2", id="YR-P-CONV2"),
    ],
)
def test_union_box_bounds_the_exact_union(
    networks, model, pes, factory, layer_name
):
    layer = networks[model].layer(layer_name)
    walk = Walk(layer, factory(), Accelerator(num_pes=pes))
    for state in walk.sample_states(sequential=8, sampled=4):
        starts = walk.starts_at(state)
        for info in walk.tensors.tensors:
            exact = _exact_union_volume(
                info.axes, starts, walk.inner_sizes, walk.shift_sets
            )
            boxed = array_union_box(
                info.axes, starts, walk.inner_sizes, walk.shift_sets
            ).volume()
            assert exact <= boxed


class TestRegionPrimitives:
    def test_interval_length_and_intersect(self):
        assert Interval(2, 7).length == 5
        assert Interval(7, 2).length == 0
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).intersect(Interval(4, 6)).length == 0

    def test_box_volume_and_new_volume(self):
        box = Box((Interval(0, 4), Interval(0, 3)))
        assert box.volume() == 12
        shifted = Box((Interval(2, 6), Interval(0, 3)))
        assert box.intersection_volume(shifted) == 6
        assert shifted.new_volume_vs(box) == 6
        assert shifted.new_volume_vs(None) == 12
