"""Concurrent multi-process access to the shared disk cache tier.

The server promotes :class:`~repro.exec.AnalysisCache` to a
cross-request (and, via ``$REPRO_CACHE_DIR``, cross-process) tier, so
these tests exercise the properties that promotion leans on:

- many processes hammering one cache directory agree bit-for-bit and
  never crash on each other's in-flight writes (``os.replace`` makes
  entries whole-or-absent);
- corrupt or truncated entries are recomputed, counted, and repaired —
  never a crash, never a silent permanent miss;
- stray temp files from interrupted writers are inert.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.dataflow.library import table3_dataflows
from repro.exec import (
    AnalysisCache,
    EvalPoint,
    analysis_to_dict,
    evaluate_batch,
)
from repro.exec.serialize import outcome_from_json
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d


def _points():
    """A small, deterministic workload shared by every worker."""
    layers = [
        conv2d("ccA", k=8, c=4, y=12, x=12, r=3, s=3),
        conv2d("ccB", k=16, c=8, y=10, x=10, r=3, s=3),
    ]
    flows = table3_dataflows()
    accelerator = Accelerator(num_pes=64, noc=NoC(bandwidth=16, avg_latency=2))
    return [
        EvalPoint(layer=layer, dataflow=flows[name], accelerator=accelerator)
        for layer in layers
        for name in ("KC-P", "YR-P", "C-P")
    ]


def _worker(disk_dir: str):
    """Evaluate the shared workload against the shared disk directory."""
    cache = AnalysisCache(disk_dir=disk_dir)
    batch = evaluate_batch(_points(), executor="serial", cache=cache)
    return [
        json.dumps(analysis_to_dict(outcome.report), sort_keys=True)
        for outcome in batch
    ]


class TestMultiProcess:
    def test_concurrent_workers_agree_and_share(self, tmp_path):
        disk = str(tmp_path / "cache")
        with multiprocessing.Pool(4) as pool:
            reports = pool.map(_worker, [disk] * 4)
        # Every process computed (or replayed) bit-identical reports.
        assert all(run == reports[0] for run in reports[1:])

        # A fresh process-like cache serves the whole workload from disk.
        fresh = AnalysisCache(disk_dir=disk)
        for point in _points():
            outcome = fresh.get(point.key())
            assert outcome is not None and outcome.ok
        assert fresh.disk_hits == len(_points())
        assert fresh.misses == 0

    def test_disk_entries_are_wellformed_json(self, tmp_path):
        disk = tmp_path / "cache"
        _worker(str(disk))
        entries = list(disk.rglob("*.json"))
        assert len(entries) == len(_points())
        for path in entries:
            outcome_from_json(path.read_text())  # must parse whole


class TestCorruption:
    @pytest.fixture
    def populated(self, tmp_path):
        disk = tmp_path / "cache"
        _worker(str(disk))
        return disk

    def _one_entry(self, disk):
        entries = sorted(disk.rglob("*.json"))
        assert entries
        return entries[0]

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not json at all",
            b'{"truncated": ',  # interrupted writer without os.replace
            b"",
            b'{"report": {"wrong": "shape"}}',
        ],
        ids=["garbage", "truncated", "empty", "wrong-shape"],
    )
    def test_corrupt_entry_recomputed_not_crashed(self, populated, garbage):
        victim = self._one_entry(populated)
        victim.write_bytes(garbage)
        key = victim.stem

        fresh = AnalysisCache(disk_dir=str(populated))
        assert fresh.get(key) is None  # miss, not a crash
        assert fresh.corrupt_entries == 1
        assert not victim.exists()  # the bad entry was dropped

        # Recomputing repairs the disk tier for the next process.
        batch = evaluate_batch(_points(), executor="serial", cache=fresh)
        assert all(outcome.ok for outcome in batch)
        assert victim.exists()
        repaired = AnalysisCache(disk_dir=str(populated))
        assert repaired.get(key) is not None

    def test_stray_tmp_files_are_inert(self, populated):
        victim = self._one_entry(populated)
        (victim.parent / "leftover.tmp").write_bytes(b"half-written")
        fresh = AnalysisCache(disk_dir=str(populated))
        assert fresh.get(victim.stem) is not None
        assert fresh.corrupt_entries == 0


class TestAtomicity:
    def test_readers_never_observe_partial_writes(self, tmp_path):
        """One thread rewrites an entry in a loop; readers always parse.

        ``os.replace`` guarantees whole-or-absent: a reader either gets
        the previous complete entry or the new complete entry, never a
        torn one. A plain truncating write would fail this immediately.
        """
        disk = str(tmp_path / "cache")
        cache = AnalysisCache(disk_dir=disk)
        point = _points()[0]
        key = point.key()
        outcome = evaluate_batch([point], executor="serial", cache=cache)
        assert outcome.outcomes[0].ok

        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                cache.put(key, outcome.outcomes[0])

        def reader():
            probe = AnalysisCache(disk_dir=disk)
            for _ in range(300):
                probe.clear()  # force the disk tier every iteration
                result = probe.get(key)
                if result is None or not result.ok:
                    torn.append(result)
            if probe.corrupt_entries:
                torn.append(f"{probe.corrupt_entries} corrupt reads")

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        stop.set()
        writer_thread.join()
        assert torn == []


class TestSharedMemoryTier:
    def test_threaded_readers_and_writers(self, tmp_path):
        """The in-memory LRU stays consistent under thread contention."""
        cache = AnalysisCache(max_entries=8)
        point = _points()[0]
        batch = evaluate_batch([point], executor="serial", cache=cache)
        good = batch.outcomes[0]
        errors = []

        def churn(slot: int):
            try:
                for index in range(500):
                    cache.put(f"key-{slot}-{index % 16}", good)
                    cache.get(f"key-{slot}-{index % 16}")
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=churn, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 8
