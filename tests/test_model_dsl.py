"""Tests for the network description DSL."""

import pytest

from repro.errors import LayerError
from repro.model.dsl import parse_network, serialize_network
from repro.model.zoo import build
from repro.tensors import dims as D

SAMPLE = """
# a tiny network
network sample
layer CONV1 conv2d k=64 c=3 y=224 x=224 r=7 s=7 stride=2 padding=3
layer POOL1 pool c=64 y=112 x=112 window=3 stride=2
layer DW1 dwconv c=64 y=56 x=56 r=3 s=3 padding=1
layer PW1 pwconv k=128 c=64 y=56 x=56
layer UP1 trconv k=32 c=128 y=28 x=28 r=2 s=2 upscale=2
layer ADD1 elementwise c=32 y=56 x=56
layer FC1 fc k=1000 c=2048
layer SPARSE conv2d k=8 c=8 y=10 x=10 r=3 s=3 density_w=0.5
"""


class TestParse:
    def test_parses_all_layer_types(self):
        network = parse_network(SAMPLE)
        assert network.name == "sample"
        assert len(network.layers) == 8
        assert network.layer("DW1").operator.name == "DWCONV"
        assert network.layer("UP1").operator.name == "TRCONV"
        assert network.layer("ADD1").operator.name == "ELEMENTWISE"

    def test_padding_applied(self):
        network = parse_network(SAMPLE)
        assert network.layer("CONV1").dims[D.Y] == 230

    def test_density_parameter(self):
        network = parse_network(SAMPLE)
        assert network.layer("SPARSE").density("W") == 0.5

    def test_trconv_upscales(self):
        network = parse_network(SAMPLE)
        assert network.layer("UP1").out_y == 56

    def test_errors(self):
        with pytest.raises(LayerError):
            parse_network("layer X bogus k=1")
        with pytest.raises(LayerError):
            parse_network("layer X conv2d k=1 c=1 y=8 x=8 r=3 s=3 what?!")
        with pytest.raises(LayerError):
            parse_network("frobnicate")
        with pytest.raises(LayerError):
            parse_network("# nothing\n")
        with pytest.raises(LayerError):
            parse_network("layer X conv2d k=1.5 c=1 y=8 x=8 r=3 s=3")

    def test_unknown_kwarg_reported_with_line(self):
        with pytest.raises(LayerError) as excinfo:
            parse_network("layer X fc k=10 c=10 window=2")
        assert "line 1" in str(excinfo.value)


class TestRoundTrip:
    @pytest.mark.parametrize("model", ["alexnet", "mobilenet_v2", "unet"])
    def test_zoo_models_round_trip(self, model):
        original = build(model)
        text = serialize_network(original)
        parsed = parse_network(text)
        assert len(parsed.layers) == len(original.layers)
        for a, b in zip(original.layers, parsed.layers):
            assert a.name == b.name
            assert a.total_ops() == b.total_ops(), a.name
            assert a.out_y == b.out_y

    def test_sample_round_trip(self):
        network = parse_network(SAMPLE)
        reparsed = parse_network(serialize_network(network))
        for a, b in zip(network.layers, reparsed.layers):
            assert a.total_ops() == b.total_ops()
            assert abs(a.density("I") - b.density("I")) < 1e-9
