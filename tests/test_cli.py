"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_single_layer(self, capsys):
        assert main(["analyze", "--model", "vgg16", "--layer", "CONV2",
                     "--dataflow", "KC-P", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "CONV2" in out
        assert "KC-P" in out

    def test_whole_model(self, capsys):
        assert main(["analyze", "--model", "alexnet", "--dataflow", "YX-P"]) == 0
        out = capsys.readouterr().out
        assert "CONV5" in out and "FC3" in out

    def test_dataflow_file(self, tmp_path, capsys):
        path = tmp_path / "flow.df"
        path.write_text("SpatialMap(1,1) K\nTemporalMap(1,1) C\n")
        assert main(["analyze", "--model", "vgg16", "--layer", "CONV1",
                     "--dataflow", str(path)]) == 0

    def test_unknown_dataflow_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--model", "vgg16", "--dataflow", "nope"])

    def test_detail_report(self, capsys):
        assert main(["analyze", "--model", "vgg16", "--layer", "CONV13",
                     "--dataflow", "YR-P", "--pes", "64", "--detail"]) == 0
        out = capsys.readouterr().out
        assert "per-level performance" in out
        assert "energy breakdown" in out


class TestOtherCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "unet" in out

    def test_dataflows(self, capsys):
        assert main(["dataflows"]) == 0
        out = capsys.readouterr().out
        assert "KC-P" in out and "Cluster(64)" in out

    def test_validate(self, capsys):
        assert main(["validate", "--model", "alexnet", "--layer", "CONV5",
                     "--dataflow", "YX-P", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "error" in out

    def test_adaptive(self, capsys):
        assert main(["adaptive", "--model", "alexnet", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "total runtime" in out

    def test_dse_small(self, capsys):
        assert main(["dse", "--model", "vgg16", "--layer", "CONV13",
                     "--dataflow", "KC-P", "--max-pes", "64", "--pe-step", "32"]) == 0
        out = capsys.readouterr().out
        assert "explored" in out
        assert "lint-rejected" in out


class TestLint:
    BROKEN = (
        "SpatialMap(1,1) K\n"
        "TemporalMap(64,64) C\n"
        "Cluster(9999)\n"
        "SpatialMap(1,1) Q\n"
    )

    def test_broken_file_exits_1_with_locations(self, tmp_path, capsys):
        path = tmp_path / "broken.df"
        path.write_text(self.BROKEN)
        assert main(["lint", str(path), "--model", "alexnet",
                     "--layer", "CONV1"]) == 1
        out = capsys.readouterr().out
        import re
        codes = set(re.findall(r"error\[(DF\d+)\]", out))
        assert len(codes) >= 2
        assert f"--> {path}:3:1" in out  # directive location
        assert "^" in out

    def test_json_roundtrips(self, tmp_path, capsys):
        import json
        path = tmp_path / "broken.df"
        path.write_text(self.BROKEN)
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] >= 2
        assert all("code" in d for d in payload["diagnostics"])

    def test_library_flow_is_clean(self, capsys):
        assert main(["lint", "KC-P", "--model", "alexnet",
                     "--layer", "CONV1"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_layer_requires_model(self):
        with pytest.raises(SystemExit):
            main(["lint", "KC-P", "--layer", "CONV1"])

    def test_unknown_dataflow_exits(self):
        with pytest.raises(SystemExit):
            main(["lint", "definitely-not-a-dataflow"])
