"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_single_layer(self, capsys):
        assert main(["analyze", "--model", "vgg16", "--layer", "CONV2",
                     "--dataflow", "KC-P", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "CONV2" in out
        assert "KC-P" in out

    def test_whole_model(self, capsys):
        assert main(["analyze", "--model", "alexnet", "--dataflow", "YX-P"]) == 0
        out = capsys.readouterr().out
        assert "CONV5" in out and "FC3" in out

    def test_dataflow_file(self, tmp_path, capsys):
        path = tmp_path / "flow.df"
        path.write_text("SpatialMap(1,1) K\nTemporalMap(1,1) C\n")
        assert main(["analyze", "--model", "vgg16", "--layer", "CONV1",
                     "--dataflow", str(path)]) == 0

    def test_unknown_dataflow_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--model", "vgg16", "--dataflow", "nope"])

    def test_detail_report(self, capsys):
        assert main(["analyze", "--model", "vgg16", "--layer", "CONV13",
                     "--dataflow", "YR-P", "--pes", "64", "--detail"]) == 0
        out = capsys.readouterr().out
        assert "per-level performance" in out
        assert "energy breakdown" in out


class TestOtherCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "unet" in out

    def test_dataflows(self, capsys):
        assert main(["dataflows"]) == 0
        out = capsys.readouterr().out
        assert "KC-P" in out and "Cluster(64)" in out

    def test_validate(self, capsys):
        assert main(["validate", "--model", "alexnet", "--layer", "CONV5",
                     "--dataflow", "YX-P", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "error" in out

    def test_adaptive(self, capsys):
        assert main(["adaptive", "--model", "alexnet", "--pes", "64"]) == 0
        out = capsys.readouterr().out
        assert "total runtime" in out

    def test_dse_small(self, capsys):
        assert main(["dse", "--model", "vgg16", "--layer", "CONV13",
                     "--dataflow", "KC-P", "--max-pes", "64", "--pe-step", "32"]) == 0
        out = capsys.readouterr().out
        assert "explored" in out
