"""Tests for the design-space exploration tool."""

import pytest

from repro.dse import explore
from repro.dse.objectives import edp_objective, energy_objective, get_objective, throughput_objective
from repro.dse.space import (
    DesignPoint,
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
    yr_partitioned_variants,
)
from repro.errors import DSEError
from repro.hardware.area import AreaModel
from repro.model.layer import conv2d


@pytest.fixture(scope="module")
def layer():
    return conv2d("dse", k=64, c=64, y=16, x=16, r=3, s=3, padding=1)


@pytest.fixture(scope="module")
def small_space():
    return DesignSpace(
        pe_counts=[16, 32, 64, 128],
        noc_bandwidths=[4, 16, 64],
        dataflow_variants=kc_partitioned_variants(c_tiles=(8, 16), spatial_tiles=((1, 1), (4, 4))),
    )


@pytest.fixture(scope="module")
def result(layer, small_space):
    return explore(layer, small_space, area_budget=16.0, power_budget=450.0)


class TestSpace:
    def test_size(self, small_space):
        assert small_space.size == 4 * 3 * 4

    def test_rejects_empty_axes(self):
        with pytest.raises(DSEError):
            DesignSpace(pe_counts=[], noc_bandwidths=[1], dataflow_variants=kc_partitioned_variants())

    def test_rejects_non_positive(self):
        with pytest.raises(DSEError):
            DesignSpace(pe_counts=[0], noc_bandwidths=[1], dataflow_variants=kc_partitioned_variants())

    def test_default_grids(self):
        assert default_pe_counts(64, 8) == [8, 16, 24, 32, 40, 48, 56, 64]
        assert default_bandwidths(16) == [1, 2, 4, 8, 16]

    def test_variant_labels_unique(self):
        labels = [label for label, _ in kc_partitioned_variants()]
        assert len(labels) == len(set(labels))
        labels = [label for label, _ in yr_partitioned_variants()]
        assert len(labels) == len(set(labels))


class TestExplore:
    def test_every_point_within_budget(self, result):
        for point in result.points:
            assert point.area <= 16.0
            assert point.power <= 450.0

    def test_statistics_consistent(self, result, small_space):
        stats = result.statistics
        assert stats.explored == small_space.size
        assert stats.valid == len(result.points)
        assert stats.valid <= stats.evaluated <= stats.explored
        assert stats.effective_rate > 0

    def test_optima_are_actual_optima(self, result):
        throughputs = [p.throughput for p in result.points]
        energies = [p.energy for p in result.points]
        edps = [p.edp for p in result.points]
        assert result.throughput_optimal.throughput == max(throughputs)
        assert result.energy_optimal.energy == min(energies)
        assert result.edp_optimal.edp == min(edps)

    def test_buffers_sized_from_requirements(self, result):
        for point in result.points:
            assert point.l1_size >= 1
            assert point.l2_size >= 1

    def test_pareto_front_subset_and_optimal(self, result):
        front = result.pareto()
        assert set(id(p) for p in front) <= set(id(p) for p in result.points)
        best_thpt = result.throughput_optimal
        assert any(p.throughput >= best_thpt.throughput for p in front)


class TestPruningSoundness:
    def test_pruned_subspaces_truly_invalid(self, layer):
        """Pruning must never discard a design the full sweep would keep."""
        space = DesignSpace(
            pe_counts=[64, 2048],  # 2048 PEs cannot fit in 16 mm^2
            noc_bandwidths=[4],
            dataflow_variants=kc_partitioned_variants(c_tiles=(8,), spatial_tiles=((1, 1),)),
        )
        tight = explore(layer, space, area_budget=16.0, power_budget=450.0)
        assert tight.statistics.pruned >= 1
        # The generous sweep finds points only at 64 PEs anyway.
        loose = explore(layer, space, area_budget=1e9, power_budget=1e9)
        valid_pes = {p.num_pes for p in tight.points}
        assert 2048 not in valid_pes
        area_model = AreaModel()
        for point in loose.points:
            if point.num_pes == 2048:
                assert point.area > 16.0

    def test_prune_only_when_lower_bound_exceeds(self, layer):
        area_model = AreaModel()
        assert area_model.min_area(2048, 4) > 16.0
        assert area_model.min_area(64, 4) < 16.0


class TestStaticLintPruning:
    """The static mapping analyzer prunes unbindable points for free."""

    @pytest.fixture(scope="class")
    def lint_space(self):
        # KC-P's inner cluster is c_tile-wide: the c64 variant is
        # statically unbindable at 16/32 PEs; at 128 both variants bind.
        return DesignSpace(
            pe_counts=[16, 32, 128],
            noc_bandwidths=[4, 16],
            dataflow_variants=kc_partitioned_variants(
                c_tiles=(8, 64), spatial_tiles=((1, 1),)
            ),
        )

    def test_identical_optima_and_fewer_cost_model_calls(self, layer, lint_space):
        linted = explore(layer, lint_space, area_budget=16.0, power_budget=450.0)
        brute = explore(
            layer, lint_space, area_budget=16.0, power_budget=450.0,
            static_lint=False,
        )
        assert linted.statistics.static_rejects > 0
        assert (
            linted.statistics.cost_model_calls < brute.statistics.cost_model_calls
        )
        # Same surviving set, therefore identical optima.
        assert len(linted.points) == len(brute.points)
        for which in ("throughput_optimal", "energy_optimal", "edp_optimal"):
            assert getattr(linted, which) == getattr(brute, which)

    def test_static_rejects_counted_in_pruned(self, layer, lint_space):
        linted = explore(layer, lint_space, area_budget=16.0, power_budget=450.0)
        assert linted.statistics.pruned >= linted.statistics.static_rejects
        # The c64 variant cannot bind on the 16- and 32-PE rows:
        # 2 PE counts x 2 bandwidths x 1 variant.
        assert linted.statistics.static_rejects == 4
        assert linted.statistics.evaluated == linted.statistics.cost_model_calls

    def test_unlinted_sweep_unchanged(self, layer, lint_space):
        brute = explore(
            layer, lint_space, area_budget=16.0, power_budget=450.0,
            static_lint=False,
        )
        assert brute.statistics.static_rejects == 0
        assert brute.statistics.cost_model_calls == lint_space.size


class TestObjectives:
    def test_get_objective(self):
        assert get_objective("throughput") is throughput_objective
        assert get_objective("energy") is energy_objective
        assert get_objective("edp") is edp_objective
        with pytest.raises(KeyError):
            get_objective("latency")

    def test_throughput_negated(self):
        point = DesignPoint(
            num_pes=1, noc_bandwidth=1, dataflow_name="x", tile_label="x",
            l1_size=1, l2_size=1, area=1.0, power=1.0,
            throughput=10.0, runtime=5.0, energy=2.0,
        )
        assert throughput_objective(point) == -10.0
        assert edp_objective(point) == 10.0


class TestYRPSpace:
    def test_yr_p_explores(self, layer):
        space = DesignSpace(
            pe_counts=[24, 48],
            noc_bandwidths=[16],
            dataflow_variants=yr_partitioned_variants(ck_tiles=((1, 1), (2, 2)), x_tiles=(1,)),
        )
        result = explore(layer, space, area_budget=16.0, power_budget=450.0)
        assert result.points
        # YR-P's inner cluster is Sz(R)=3 wide; widths bind fine at 24/48.
        assert {p.num_pes for p in result.points} <= {24, 48}
