"""Tests for the performance/cost analysis engine."""

import pytest

from repro.dataflow.library import (
    c_partitioned,
    kc_partitioned,
    table3_dataflows,
    weight_stationary_1level,
    x_partitioned,
    yr_partitioned,
    yx_partitioned,
)
from repro.engines.analysis import analyze_layer, analyze_network
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.energy import EnergyModel
from repro.model.layer import conv2d


@pytest.fixture
def layer():
    return conv2d("l", k=32, c=16, y=30, x=30, r=3, s=3)


ALL_DATAFLOWS = list(table3_dataflows().items())


class TestBasicInvariants:
    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_runtime_at_least_ideal(self, layer, name, flow):
        acc = Accelerator(num_pes=64)
        report = analyze_layer(layer, flow, acc)
        ideal = layer.total_ops() / (acc.num_pes * acc.vector_width)
        assert report.runtime >= ideal * 0.999

    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_utilization_in_unit_interval(self, layer, name, flow):
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        assert 0 < report.utilization <= 1.0

    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_macs_exact(self, layer, name, flow):
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        assert report.total_ops == layer.total_ops()

    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_counts_non_negative(self, layer, name, flow):
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        for counter in (
            report.l1_reads, report.l1_writes, report.l2_reads,
            report.l2_writes, report.dram_reads, report.dram_writes,
        ):
            assert all(v >= 0 for v in counter.values())
        assert report.energy_total > 0

    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_reuse_factor_bounded_by_algorithmic_max(self, layer, name, flow):
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        for tensor, factor in report.reuse_factors.items():
            assert factor <= report.max_reuse_factors[tensor] * 1.001

    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_l2_reads_at_least_tensor_volume(self, layer, name, flow):
        """Every input element must cross the NoC at least once."""
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        for tensor in ("W", "I"):
            assert report.l2_reads[tensor] >= layer.tensor_volume(tensor) * 0.999

    @pytest.mark.parametrize("name,flow", ALL_DATAFLOWS)
    def test_output_writes_at_least_output_volume(self, layer, name, flow):
        report = analyze_layer(layer, flow, Accelerator(num_pes=64))
        assert report.l2_writes["O"] >= layer.tensor_volume("O") * 0.999

    def test_buffer_requirements_positive(self, layer):
        report = analyze_layer(layer, kc_partitioned(c_tile=16), Accelerator(num_pes=64))
        assert report.l1_buffer_req > 0
        assert report.l2_buffer_req > 0
        assert len(report.intermediate_buffer_reqs) == 1


class TestHardwareSensitivity:
    def test_runtime_nonincreasing_with_bandwidth(self, layer):
        flow = x_partitioned()
        runtimes = []
        for bandwidth in (1, 4, 16, 64):
            acc = Accelerator(num_pes=64, noc=NoC(bandwidth=bandwidth))
            runtimes.append(analyze_layer(layer, flow, acc).runtime)
        assert runtimes == sorted(runtimes, reverse=True)
        assert runtimes[0] > runtimes[-1]

    def test_more_pes_never_hurt_much(self, layer):
        flow = kc_partitioned(c_tile=16)
        r64 = analyze_layer(layer, flow, Accelerator(num_pes=64)).runtime
        r256 = analyze_layer(layer, flow, Accelerator(num_pes=256)).runtime
        assert r256 <= r64 * 1.001

    def test_no_multicast_increases_l2_reads(self, layer):
        """Table 5's 'No multicast' row: more expensive fetches."""
        flow = kc_partitioned(c_tile=8)
        base = Accelerator(num_pes=64)
        no_mc = base.with_noc(multicast=False)
        with_mc = analyze_layer(layer, flow, base)
        without = analyze_layer(layer, flow, no_mc)
        assert without.total(without.l2_reads) > with_mc.total(with_mc.l2_reads)
        assert without.energy_total > with_mc.energy_total

    def test_no_spatial_reduction_increases_output_traffic(self, layer):
        """Table 5's 'No Sp. reduction' row."""
        flow = c_partitioned()  # outputs spatially reduced across C
        base = Accelerator(num_pes=16)
        no_red = Accelerator(num_pes=16, spatial_reduction=False)
        with_red = analyze_layer(layer, flow, base)
        without = analyze_layer(layer, flow, no_red)
        assert without.l2_writes["O"] > with_red.l2_writes["O"]
        assert without.energy_total > with_red.energy_total

    def test_double_buffering_ablation(self, layer):
        """Serialized stages are slower; single buffering halves needs."""
        flow = x_partitioned()
        buffered = analyze_layer(layer, flow, Accelerator(num_pes=64))
        serial = analyze_layer(
            layer, flow, Accelerator(num_pes=64, double_buffered=False)
        )
        assert serial.runtime > buffered.runtime
        assert serial.l1_buffer_req == buffered.l1_buffer_req // 2

    def test_vector_width_speeds_compute_bound(self, layer):
        flow = yr_partitioned()
        slow = analyze_layer(layer, flow, Accelerator(num_pes=27))
        fast = analyze_layer(layer, flow, Accelerator(num_pes=27, vector_width=4))
        assert fast.runtime < slow.runtime


class TestSparsity:
    def test_density_scales_ops(self):
        dense = conv2d("d", k=16, c=16, y=14, x=14, r=3, s=3)
        sparse = conv2d(
            "s", k=16, c=16, y=14, x=14, r=3, s=3, densities={"W": 0.5}
        )
        acc = Accelerator(num_pes=64)
        flow = kc_partitioned(c_tile=16)
        dense_report = analyze_layer(dense, flow, acc)
        sparse_report = analyze_layer(sparse, flow, acc)
        assert sparse_report.total_ops == pytest.approx(dense_report.total_ops * 0.5)
        assert sparse_report.energy_total < dense_report.energy_total
        assert sparse_report.l2_reads["W"] == pytest.approx(
            dense_report.l2_reads["W"] * 0.5, rel=0.01
        )

    def test_density_reduces_runtime(self):
        dense = conv2d("d", k=16, c=16, y=14, x=14, r=3, s=3)
        sparse = conv2d(
            "s", k=16, c=16, y=14, x=14, r=3, s=3,
            densities={"W": 0.25, "I": 0.5},
        )
        acc = Accelerator(num_pes=64)
        flow = yx_partitioned()
        assert (
            analyze_layer(sparse, flow, acc).runtime
            < analyze_layer(dense, flow, acc).runtime
        )


class TestEnergyModel:
    def test_custom_energy_model_scales(self, layer):
        flow = weight_stationary_1level()
        acc = Accelerator(num_pes=64)
        cheap = analyze_layer(layer, flow, acc, EnergyModel(dram=0.0001))
        expensive = analyze_layer(layer, flow, acc, EnergyModel(dram=2000.0))
        assert expensive.energy_total > cheap.energy_total
        assert expensive.runtime == cheap.runtime  # energy model is orthogonal

    def test_breakdown_components_present(self, layer):
        report = analyze_layer(layer, kc_partitioned(c_tile=16), Accelerator(num_pes=64))
        assert {"MAC", "L1 read", "L1 write", "L2 read", "L2 write", "DRAM"} <= set(
            report.energy_breakdown
        )
        assert report.energy_breakdown["MAC"] == pytest.approx(report.total_ops)


class TestGroupedConvolution:
    def test_grouped_counts_scale(self):
        plain = conv2d("p", k=32, c=32, y=14, x=14, r=3, s=3)
        grouped = conv2d("g", k=32, c=32, y=14, x=14, r=3, s=3, groups=2)
        acc = Accelerator(num_pes=64)
        flow = yx_partitioned()
        plain_report = analyze_layer(plain, flow, acc)
        grouped_report = analyze_layer(grouped, flow, acc)
        assert grouped_report.total_ops == pytest.approx(plain_report.total_ops / 2)


class TestNetworkAnalysis:
    def test_aggregates_match_layer_sums(self, vgg16):
        acc = Accelerator(num_pes=64)
        result = analyze_network(
            vgg16, yx_partitioned(), acc, layers=["CONV1", "CONV2", "CONV3"]
        )
        assert len(result.layer_reports) == 3
        assert result.runtime == pytest.approx(
            sum(r.runtime for r in result.layer_reports)
        )
        assert result.energy_total == pytest.approx(
            sum(r.energy_total for r in result.layer_reports)
        )

    def test_breakdown_aggregation(self, vgg16):
        acc = Accelerator(num_pes=64)
        result = analyze_network(vgg16, yx_partitioned(), acc, layers=["CONV1"])
        breakdown = result.energy_breakdown()
        assert breakdown == dict(result.layer_reports[0].energy_breakdown)


class TestOperatorCoverage:
    """The engine must handle every operator class end-to-end."""

    @pytest.mark.parametrize(
        "layer_name",
        ["CONV1", "BN2_1_expand", "BN2_1_dw", "BN3_2_add", "FC1000"],
    )
    def test_mobilenet_layers_analyze(self, mobilenet_v2, layer_name):
        layer = mobilenet_v2.layer(layer_name)
        report = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=64))
        assert report.runtime > 0
        assert report.energy_total > 0

    def test_pooling_analyzes(self, alexnet):
        layer = alexnet.layer("POOL1")
        report = analyze_layer(layer, yx_partitioned(), Accelerator(num_pes=64))
        assert report.runtime > 0

    def test_transposed_conv_analyzes(self):
        from repro.model.zoo import build

        layer = build("dcgan").layer("CONV2")
        report = analyze_layer(layer, kc_partitioned(c_tile=16), Accelerator(num_pes=64))
        assert report.runtime > 0
