"""The static mapping analyzer: one focused test per rule code, the
report renderers, error plumbing, and the lint-accepted ⇒ analyzable
soundness property."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.dataflow import Dataflow, dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    spatial_map,
    temporal_map,
)
from repro.engines.analysis import analyze_layer
from repro.engines.binding import bind_dataflow
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator, NoC
from repro.lint import (
    RULES,
    Severity,
    lint_dataflow,
    lint_directives,
    lint_text,
    static_errors,
)
from repro.model.layer import conv2d
from repro.tensors import dims as D
from repro.tuner.templates import SCHEDULES, SPATIAL_DIMS, CandidateSpec

LAYER = conv2d("lint-layer", k=8, c=8, y=16, x=16, r=3, s=3)
ACC4 = Accelerator(num_pes=4)


def codes_of(report):
    return set(report.codes())


# ----------------------------------------------------------------------
# Construction rules surface through Dataflow with diagnostics attached
# ----------------------------------------------------------------------
def test_df001_empty_dataflow():
    with pytest.raises(DataflowError) as exc:
        Dataflow(name="empty", directives=())
    assert "at least one directive" in str(exc.value)
    assert [d.code for d in exc.value.diagnostics] == ["DF001"]


def test_df002_unexpected_directive():
    with pytest.raises(DataflowError) as exc:
        Dataflow(name="junk", directives=("not-a-directive",))
    assert "unexpected directive" in str(exc.value)
    assert "DF002" in {d.code for d in exc.value.diagnostics}


def test_df002_syntax_errors_collected_leniently():
    report = lint_text("SpatialMap(1,1) K\ngarbage line\nSpatialMap(1,1) Q\n")
    syntax = [d for d in report.diagnostics if d.code == "DF002"]
    assert len(syntax) == 2
    assert all(d.span is not None for d in syntax)
    assert {d.span.line for d in syntax} == {2, 3}


def test_dedupe_keeps_span_copy_and_stable_order():
    """Diagnostics firing identically from the construction and rule
    passes collapse to one entry: the span-carrying copy survives, at
    the position of the first occurrence."""
    from repro.lint.diagnostics import Diagnostic, SourceSpan
    from repro.lint.engine import _dedupe

    span = SourceSpan(line=2, column=1, end_column=5, source="dup line")
    first = Diagnostic(code="DF001", severity=Severity.ERROR, message="other")
    spanless = Diagnostic(code="DF002", severity=Severity.ERROR, message="dup")
    spanned = Diagnostic(
        code="DF002", severity=Severity.ERROR, message="dup", span=span
    )
    tail = Diagnostic(code="DF009", severity=Severity.WARNING, message="last")

    result = _dedupe([first, spanless, tail, spanned])
    assert [d.code for d in result] == ["DF001", "DF002", "DF009"]
    assert result[1].span is span  # span copy won, first-occurrence slot
    # Same code but different message is NOT a duplicate.
    other = Diagnostic(code="DF002", severity=Severity.ERROR, message="dup2")
    assert len(_dedupe([spanless, other])) == 2


def test_lint_text_has_no_duplicates_and_stable_order():
    text = "SpatialMap(1,1) K\ngarbage line\nSpatialMap(1,1) K\nCluster(3)\n"
    reports = [
        lint_text(text, layer=LAYER, accelerator=ACC4) for _ in range(2)
    ]
    for report in reports:
        keys = [
            (d.code, str(d.severity), d.message, d.directive_index)
            for d in report.diagnostics
        ]
        assert len(keys) == len(set(keys))
    assert [d.headline() for d in reports[0].diagnostics] == [
        d.headline() for d in reports[1].diagnostics
    ]
    errors = static_errors(
        dataflow("d", spatial_map(1, 1, D.K), temporal_map(1, 1, D.C)),
        LAYER,
        ACC4,
    )
    keys = [(d.code, d.message, d.directive_index) for d in errors]
    assert len(keys) == len(set(keys))


def test_df003_trailing_cluster():
    with pytest.raises(DataflowError) as exc:
        dataflow("t", spatial_map(1, 1, D.K), ClusterDirective(4))
    assert "must be followed by maps" in str(exc.value)
    assert "DF003" in {d.code for d in exc.value.diagnostics}


def test_df004_mixed_coordinates():
    with pytest.raises(DataflowError) as exc:
        dataflow("m", temporal_map(1, 1, D.Y), temporal_map(1, 1, D.YP))
    assert "pick one coordinate system" in str(exc.value)
    assert "DF004" in {d.code for d in exc.value.diagnostics}


# ----------------------------------------------------------------------
# Lint-time rules, one minimal offender each
# ----------------------------------------------------------------------
def test_df005_duplicate_dim_in_level():
    flow = dataflow("dup", temporal_map(2, 2, D.K), temporal_map(4, 4, D.K))
    report = lint_dataflow(flow)
    assert "DF005" in codes_of(report)
    assert report.has_errors
    # Same dim in *different* levels is fine.
    flow = dataflow(
        "ok", temporal_map(2, 2, D.K), ClusterDirective(2), temporal_map(1, 1, D.K)
    )
    assert "DF005" not in codes_of(lint_dataflow(flow))


def test_df006_unmapped_dimension():
    flow = dataflow("cov", spatial_map(1, 1, D.K))
    report = lint_dataflow(flow, LAYER)
    hits = [d for d in report.diagnostics if d.code == "DF006"]
    assert {d.message.split("dimension ")[1].split(" ")[0] for d in hits} == {
        "C", "Y", "X", "R", "S",
    }
    assert all(d.severity is Severity.INFO for d in hits)


def test_df007_cluster_exceeds_pes():
    flow = dataflow(
        "big", spatial_map(1, 1, D.K), ClusterDirective(1000), spatial_map(1, 1, D.C)
    )
    report = lint_dataflow(flow, accelerator=Accelerator(num_pes=256))
    assert "DF007" in codes_of(report)
    with pytest.raises(BindingError):
        bind_dataflow(flow, LAYER, Accelerator(num_pes=256))


def test_df008_indivisible_cluster():
    flow = dataflow(
        "odd", spatial_map(1, 1, D.K), ClusterDirective(48), spatial_map(1, 1, D.C)
    )
    report = lint_dataflow(flow, accelerator=Accelerator(num_pes=64))
    hits = [d for d in report.diagnostics if d.code == "DF008"]
    assert len(hits) == 1 and "idle" in hits[0].message
    assert "DF008" not in codes_of(
        lint_dataflow(flow, accelerator=Accelerator(num_pes=96))
    )


def test_df009_spatial_underutilization_with_fixit():
    flow = dataflow("u", spatial_map(3, 3, D.K), temporal_map(8, 8, D.C))
    report = lint_dataflow(flow, LAYER, ACC4)
    hits = [d for d in report.diagnostics if d.code == "DF009"]
    assert len(hits) == 1
    assert hits[0].fixit is not None
    assert hits[0].fixit.replacement == "SpatialMap(2,2) K"
    # The suggested size really does fill every fold.
    fixed = dataflow("u2", spatial_map(2, 2, D.K), temporal_map(8, 8, D.C))
    assert "DF009" not in codes_of(lint_dataflow(fixed, LAYER, ACC4))


def test_df010_halo_on_non_sliding_dim():
    flow = dataflow("h", spatial_map(1, 1, D.K), temporal_map(4, 2, D.C))
    report = lint_dataflow(flow, LAYER, ACC4)
    assert "DF010" in codes_of(report)
    # Halo on Y is the convolutional-reuse idiom — never flagged.
    flow = dataflow("ok", spatial_map(1, 1, D.K), temporal_map(3, 1, D.Y))
    assert "DF010" not in codes_of(lint_dataflow(flow, LAYER, ACC4))


def test_df011_non_positive_size():
    report_codes = {d.code for d in lint_directives("z", [temporal_map(0, 1, D.K)])}
    assert "DF011" in report_codes
    assert {d.code for d in lint_directives("z", [temporal_map(1, 0, D.K)])} >= {"DF011"}


def test_df012_unresolvable_expression():
    # A raw-string size dodges SizeExpr's construction-time syntax check,
    # so DF012 (and binding) are what catch it.
    flow = dataflow("e", temporal_map("1+", 1, D.K))
    report = lint_dataflow(flow, LAYER)
    assert "DF012" in codes_of(report)
    assert report.has_errors
    with pytest.raises(DataflowError):
        bind_dataflow(flow, LAYER, ACC4)


def test_df013_l1_overflow():
    flow = dataflow("b", spatial_map(1, 1, D.K), temporal_map(8, 8, D.C))
    tiny = Accelerator(num_pes=4, l1_size=4)
    report = lint_dataflow(flow, LAYER, tiny)
    hits = [d for d in report.diagnostics if d.code == "DF013"]
    assert len(hits) == 1 and hits[0].is_error
    roomy = Accelerator(num_pes=4, l1_size=1 << 20)
    assert "DF013" not in codes_of(lint_dataflow(flow, LAYER, roomy))


def test_df014_l2_overflow():
    flow = dataflow("b", spatial_map(1, 1, D.K), temporal_map(8, 8, D.C))
    tiny = Accelerator(num_pes=4, l2_size=8)
    report = lint_dataflow(flow, LAYER, tiny)
    hits = [d for d in report.diagnostics if d.code == "DF014"]
    assert len(hits) == 1 and hits[0].severity is Severity.WARNING


def test_df015_spatial_reduction_unsupported():
    flow = dataflow("r", spatial_map(1, 1, D.C), temporal_map(2, 2, D.K))
    no_reduce = Accelerator(num_pes=4, spatial_reduction=False)
    assert "DF015" in codes_of(lint_dataflow(flow, LAYER, no_reduce))
    # A K-spatial mapping has no cross-PE reduction: Table 5 says fine.
    flow = dataflow("ok", spatial_map(1, 1, D.K), temporal_map(2, 2, D.C))
    assert "DF015" not in codes_of(lint_dataflow(flow, LAYER, no_reduce))


def test_df016_multicast_unsupported():
    no_mcast = Accelerator(num_pes=4, noc=NoC(multicast=False))
    flow = dataflow("m", spatial_map(1, 1, D.K), temporal_map(2, 2, D.C))
    report = lint_dataflow(flow, LAYER, no_mcast)
    hits = [d for d in report.diagnostics if d.code == "DF016"]
    assert len(hits) == 1 and "I" in hits[0].message


def test_df017_coverage_gap():
    flow = dataflow("g", spatial_map(1, 1, D.K), temporal_map(2, 4, D.C))
    report = lint_dataflow(flow, LAYER, ACC4)
    hits = [d for d in report.diagnostics if d.code == "DF017"]
    assert len(hits) == 1
    assert hits[0].fixit.replacement == "TemporalMap(2,2) C"


def test_df018_idle_level():
    flow = dataflow("i", temporal_map(2, 2, D.K), temporal_map(2, 2, D.C))
    report = lint_dataflow(flow, LAYER, ACC4)
    hits = [d for d in report.diagnostics if d.code == "DF018"]
    assert len(hits) == 1 and "3 of them" in hits[0].message
    assert "DF018" not in codes_of(
        lint_dataflow(flow, LAYER, Accelerator(num_pes=1))
    )


# ----------------------------------------------------------------------
# Registry and report plumbing
# ----------------------------------------------------------------------
def test_rule_registry_is_complete():
    expected = [f"DF{i:03d}" for i in range(1, 19)]
    expected += ["DF101", "DF102", "DF103"]  # verifier-backed coverage codes
    expected += ["DF300", "DF301", "DF302", "DF303"]  # communication codes
    expected += ["DF400", "DF401", "DF402", "DF403"]  # equivalence/dominance
    expected += ["DF500", "DF501", "DF502", "DF503", "DF504"]  # capacity/roofline
    assert sorted(RULES) == expected
    construction = {c for c, r in RULES.items() if r.construction}
    assert construction == {"DF001", "DF002", "DF003", "DF004"}
    binding_equivalent = {c for c, r in RULES.items() if r.binding_equivalent}
    assert binding_equivalent == {"DF005", "DF007", "DF011", "DF012"}


def test_render_rustc_style():
    report = lint_text(
        "SpatialMap(1,1) K\nSpatialMap(1,1) Q\n", name="demo", source="demo.df"
    )
    text = report.render()
    assert "error[DF002]" in text
    assert "--> demo.df:2:1" in text
    assert "^" in text
    assert "error(s)" in text


def test_json_roundtrip():
    flow = dataflow("j", spatial_map(3, 3, D.K), temporal_map(4, 2, D.C))
    report = lint_dataflow(flow, LAYER, ACC4)
    payload = json.loads(report.to_json())
    assert payload["subject"] == "j"
    assert payload["warnings"] >= 1
    codes = {d["code"] for d in payload["diagnostics"]}
    assert codes == set(report.codes())
    fixits = [d["fixit"] for d in payload["diagnostics"] if d["fixit"]]
    assert all("description" in f for f in fixits)


def test_errors_carry_diagnostics_in_str():
    error = DataflowError("boom")
    assert str(error) == "boom"
    with pytest.raises(DataflowError) as exc:
        Dataflow(name="empty", directives=())
    assert "[DF001]" in str(exc.value)


def test_static_errors_subset_is_sound():
    # Statically rejected => binding raises; statically clean => binds.
    bad = dataflow("dup", temporal_map(2, 2, D.K), temporal_map(4, 4, D.K))
    assert static_errors(bad, LAYER)
    with pytest.raises(BindingError):
        bind_dataflow(bad, LAYER, ACC4)
    good = dataflow("ok", spatial_map(1, 1, D.K), temporal_map(4, 4, D.C))
    assert static_errors(good, LAYER, ACC4) == []
    bind_dataflow(good, LAYER, ACC4)


# ----------------------------------------------------------------------
# Property: linter-accepted mappings never raise in the cost model
# ----------------------------------------------------------------------
layers = st.builds(
    lambda k, c, yx, rs, stride: conv2d(
        "prop", k=k, c=c, y=max(yx, rs + stride), x=max(yx, rs + stride),
        r=rs, s=rs, stride=stride,
    ),
    k=st.integers(1, 32),
    c=st.integers(1, 32),
    yx=st.integers(4, 20),
    rs=st.integers(1, 5),
    stride=st.integers(1, 2),
)

specs = st.builds(
    lambda outer_spatial, schedule, c_tile, k_tile, y_tile, x_tile, cluster: (
        CandidateSpec(
            outer_spatial=outer_spatial,
            schedule=schedule,
            c_tile=c_tile,
            k_tile=k_tile,
            y_tile=y_tile,
            x_tile=x_tile,
            cluster_size=cluster,
            inner_spatial=(
                None if cluster is None else (D.C if outer_spatial != D.C else D.K)
            ),
        )
    ),
    outer_spatial=st.sampled_from(SPATIAL_DIMS),
    schedule=st.sampled_from(SCHEDULES),
    c_tile=st.sampled_from([1, 2, 4]),
    k_tile=st.sampled_from([1, 2, 4]),
    y_tile=st.sampled_from([1, 2]),
    x_tile=st.sampled_from([1, 2]),
    cluster=st.sampled_from([None, 2, 4, 64]),
)

accelerators = st.builds(
    lambda pes, bw: Accelerator(num_pes=pes, noc=NoC(bandwidth=bw)),
    pes=st.sampled_from([4, 16, 64]),
    bw=st.sampled_from([4, 32]),
)


@settings(max_examples=80, deadline=None)
@given(layer=layers, spec=specs, accelerator=accelerators)
def test_lint_accepted_never_raises(layer, spec, accelerator):
    try:
        flow = spec.build()
    except (BindingError, DataflowError):
        return
    report = lint_dataflow(flow, layer, accelerator)
    if report.has_errors:
        return
    analyze_layer(layer, flow, accelerator)  # must not raise


@settings(max_examples=80, deadline=None)
@given(layer=layers, spec=specs, accelerator=accelerators)
def test_static_errors_match_binding(layer, spec, accelerator):
    """static_errors is exactly the set binding rejects (both ways)."""
    try:
        flow = spec.build()
    except (BindingError, DataflowError):
        return
    errors = static_errors(flow, layer, accelerator)
    try:
        bind_dataflow(flow, layer, accelerator)
        bound = True
    except (BindingError, DataflowError):
        bound = False
    assert bound == (not errors)
