"""Tests for the vector executor backend and its CI benchmark gate.

The load-bearing property mirrors the rest of the backend suite: the
``vector`` executor is a pure performance knob — outcomes (reports,
rejection types, rejection messages, dict iteration order) are
bit-identical to the serial uncached loop, and everything it cannot
express falls back to the scalar engines, visibly counted.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import spatial_map, temporal_map
from repro.dataflow.library import kc_partitioned, yr_partitioned
from repro.exec import BatchEvaluator, BatchStats, EvalPoint
from repro.exec.backend import (
    EXECUTORS,
    VECTOR_AUTO_MIN_GROUP,
    VECTOR_MIN_GROUP,
)
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import conv2d
from repro.vector import VectorLoweringError, crosscheck_vector, group_key

REGRESSION_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"


def _load_check_regression():
    spec = importlib.util.spec_from_file_location("check_regression", REGRESSION_SCRIPT)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves the gate table's string annotations through
    # sys.modules, so the module must be registered before exec.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def layer():
    return conv2d("vec-t", k=16, c=16, y=12, x=12, r=3, s=3)


@pytest.fixture(scope="module")
def grid():
    return [
        Accelerator(num_pes=pes, noc=NoC(bandwidth=bw))
        for pes in (2, 8, 32, 64, 256)
        for bw in (1, 8, 64)
    ]


def _points(layer, flow, grid):
    return [EvalPoint(layer, flow, accelerator) for accelerator in grid]


def test_vector_is_a_known_executor():
    assert "vector" in EXECUTORS
    assert VECTOR_MIN_GROUP <= VECTOR_AUTO_MIN_GROUP


def test_vector_matches_serial_including_rejections(layer, grid):
    """Feasible points, infeasible points, and their exact messages agree."""
    points = _points(layer, kc_partitioned(c_tile=8), grid)
    serial = BatchEvaluator(executor="serial", cache=False).evaluate(points)
    vector = BatchEvaluator(executor="vector", cache=False).evaluate(points)
    assert vector.stats.executor == "vector"
    assert vector.stats.vector_points == len(points)
    assert vector.stats.vector_fallbacks == 0
    assert list(vector.outcomes) == list(serial.outcomes)
    # The grid includes PE counts below the cluster hierarchy's needs,
    # so rejection parity (type and message) is actually exercised.
    assert any(not outcome.ok for outcome in serial.outcomes)
    assert any(outcome.ok for outcome in serial.outcomes)


def test_vector_groups_by_layer_dataflow_and_template(layer, grid):
    """One batch, two dataflows, two templates -> four vectorized groups."""
    other = conv2d("vec-t2", k=8, c=8, y=10, x=10, r=3, s=3)
    flows = [kc_partitioned(c_tile=8), yr_partitioned()]
    small_l1 = [Accelerator(num_pes=a.num_pes, noc=a.noc, l1_size=512) for a in grid]
    points = []
    for flow in flows:
        points.extend(_points(layer, flow, grid))
        points.extend(_points(other, flow, small_l1))
    keys = {group_key(p.layer, p.dataflow, p.accelerator, p.energy_model) for p in points}
    assert len(keys) == 4

    serial = BatchEvaluator(executor="serial", cache=False).evaluate(points)
    vector = BatchEvaluator(executor="vector", cache=False).evaluate(points)
    assert vector.stats.vector_points == len(points)
    assert list(vector.outcomes) == list(serial.outcomes)


def _unlowerable_flow():
    """Rejected by the scalar binding independently of the grid axes,
    so ``lower_group`` wraps the ``BindingError`` into a
    ``VectorLoweringError`` and the whole group falls back."""
    return Dataflow(
        name="dup-k",
        directives=(
            temporal_map(size=4, offset=4, dim="K"),
            temporal_map(size=2, offset=2, dim="K"),
            spatial_map(size=1, offset=1, dim="C"),
        ),
    )


def test_forced_fallback_on_unlowerable_group(layer, grid):
    """A group the lowering rejects falls back point-wise to scalar."""
    bad = _unlowerable_flow()
    with pytest.raises(VectorLoweringError):
        crosscheck_vector(layer, bad, grid)

    points = _points(layer, bad, grid)
    serial = BatchEvaluator(executor="serial", cache=False).evaluate(points)
    vector = BatchEvaluator(executor="vector", cache=False).evaluate(points)
    assert vector.stats.executor == "vector"
    assert vector.stats.vector_points == 0
    assert vector.stats.vector_fallbacks == len(points)
    # The scalar fallback reproduces the binding rejections exactly.
    assert list(vector.outcomes) == list(serial.outcomes)
    assert all(not outcome.ok for outcome in vector.outcomes)


def test_small_groups_run_scalar(layer):
    accelerators = [Accelerator(num_pes=64, noc=NoC(bandwidth=b)) for b in (1, 8)]
    points = _points(layer, kc_partitioned(c_tile=8), accelerators)
    assert len(points) < VECTOR_MIN_GROUP
    result = BatchEvaluator(executor="vector", cache=False).evaluate(points)
    assert result.stats.vector_points == 0
    assert result.stats.vector_fallbacks == len(points)


def test_auto_selects_vector_for_grid_shaped_batches(layer):
    flow = kc_partitioned(c_tile=8)
    big = [
        EvalPoint(layer, flow, Accelerator(num_pes=pes, noc=NoC(bandwidth=bw)))
        for pes in range(8, 8 + VECTOR_AUTO_MIN_GROUP // 2)
        for bw in (1, 8)
    ]
    result = BatchEvaluator(executor="auto", cache=False).evaluate(big)
    assert result.stats.executor == "vector"

    small = big[: VECTOR_AUTO_MIN_GROUP - 1]
    result = BatchEvaluator(executor="auto", cache=False, jobs=1).evaluate(small)
    assert result.stats.executor == "serial"


def test_vector_composes_with_cache(layer, grid):
    from repro.exec import AnalysisCache

    cache = AnalysisCache()
    points = _points(layer, kc_partitioned(c_tile=8), grid)
    first = BatchEvaluator(executor="vector", cache=cache).evaluate(points)
    assert first.stats.vector_points == len(points)
    second = BatchEvaluator(executor="vector", cache=cache).evaluate(points)
    assert second.stats.cache_hits == len(points)
    assert second.stats.vector_points == 0
    assert [o.report for o in second.outcomes] == [o.report for o in first.outcomes]


def test_batchstats_vector_fields_default_to_zero():
    stats = BatchStats(
        submitted=1,
        cache_hits=0,
        evaluated=1,
        failures=0,
        executor="serial",
        jobs=1,
        wall_seconds=0.0,
    )
    assert stats.vector_points == 0
    assert stats.vector_fallbacks == 0


def test_obs_counts_vectorized_and_fallback_points(layer, grid):
    bad = _unlowerable_flow()
    points = _points(layer, kc_partitioned(c_tile=8), grid)
    points += _points(layer, bad, grid)
    obs.configure(enabled=True, reset=True)
    try:
        BatchEvaluator(executor="vector", cache=False).evaluate(points)
        snapshot = obs.metrics_snapshot()["counters"]
        assert snapshot["exec.vector.points_vectorized"] == len(grid)
        assert snapshot["exec.vector.points_fallback"] == len(grid)
        assert snapshot["exec.vector.lowering_failures"] == 1
        spans = obs.export_spans()
        assert any(span["name"] == "exec.vector_group" for span in spans)
    finally:
        obs.configure(enabled=False, reset=True)


# ----------------------------------------------------------------------
# check_regression.py: the --vector gate and the one-line-error contract.
# ----------------------------------------------------------------------
def _empty_bench(tmp_path: Path) -> Path:
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"benchmarks": []}))
    return path


def _vector_report(tmp_path: Path, **overrides) -> Path:
    report = {
        "sweep": "test sweep",
        "speedup": 25.0,
        "parity_violations": 0,
        "parity_points_checked": 100,
        "fallback_rate": 0.0,
    }
    report.update(overrides)
    path = tmp_path / "BENCH_vector.json"
    path.write_text(json.dumps(report))
    return path


def test_vector_gate_passes_good_report(tmp_path):
    check = _load_check_regression()
    bench = _empty_bench(tmp_path)
    report = _vector_report(tmp_path)
    assert check.main([str(bench), "--vector", str(report)]) == 0


@pytest.mark.parametrize(
    "overrides",
    [
        {"parity_violations": 3},
        {"speedup": 4.0},
        {"fallback_rate": 0.5},
    ],
)
def test_vector_gate_fails_bad_report(tmp_path, overrides):
    check = _load_check_regression()
    bench = _empty_bench(tmp_path)
    report = _vector_report(tmp_path, **overrides)
    assert check.main([str(bench), "--vector", str(report)]) == 1


def test_missing_report_fails_with_one_line_error(tmp_path):
    check = _load_check_regression()
    with pytest.raises(SystemExit) as excinfo:
        check.main([str(tmp_path / "nope.json")])
    message = str(excinfo.value.code)
    assert message.startswith("error:")
    assert "\n" not in message
    assert "nope.json" in message


def test_malformed_report_fails_with_one_line_error(tmp_path):
    check = _load_check_regression()
    bench = _empty_bench(tmp_path)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    for argv in (
        [str(bad)],
        [str(bench), "--vector", str(bad)],
        [str(bench), "--absint", str(bad.with_suffix(".missing"))],
    ):
        with pytest.raises(SystemExit) as excinfo:
            check.main(argv)
        message = str(excinfo.value.code)
        assert message.startswith("error:")
        assert "\n" not in message

    # A syntactically valid report missing required keys is also a
    # one-line error, not a KeyError stack trace.
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    with pytest.raises(SystemExit) as excinfo:
        check.main([str(bench), "--vector", str(empty)])
    assert str(excinfo.value.code).startswith("error:")
