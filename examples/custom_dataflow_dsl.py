"""Author a custom dataflow in the textual DSL and analyze it.

Run::

    python examples/custom_dataflow_dsl.py

Shows the full authoring loop: write the directives as text (exactly
the paper's notation), parse, inspect the per-level reuse the dataflow
exposes, and compare it quantitatively against a library dataflow.
"""

from repro import Accelerator, analyze_layer, parse_dataflow
from repro.dataflow.library import kc_partitioned
from repro.engines.insight import summarize_reuse
from repro.model.zoo import build

CUSTOM = """
// A two-level dataflow: output channels across 16-PE clusters,
// output rows inside each cluster, weights stationary per PE.
SpatialMap(1,1) K
TemporalMap(2,2) C
TemporalMap(Sz(R),Sz(R)) R
TemporalMap(Sz(S),Sz(S)) S
TemporalMap(Sz(S),1) X
Cluster(16)
SpatialMap(Sz(R),1) Y
"""


def main() -> None:
    dataflow = parse_dataflow(CUSTOM, name="custom-KY")
    print(dataflow.describe())
    print()

    layer = build("resnet50").layer("CONV3_1b")
    accelerator = Accelerator(num_pes=256)

    print(summarize_reuse(layer, dataflow, accelerator).describe())
    print()

    custom_report = analyze_layer(layer, dataflow, accelerator)
    reference = analyze_layer(layer, kc_partitioned(), accelerator)
    print(f"{'':14s}{'custom-KY':>14s}{'KC-P':>14s}")
    print(f"{'cycles':14s}{custom_report.runtime:14.4e}{reference.runtime:14.4e}")
    print(f"{'energy':14s}{custom_report.energy_total:14.4e}{reference.energy_total:14.4e}")
    print(f"{'utilization':14s}{custom_report.utilization:14.2%}{reference.utilization:14.2%}")
    print(f"{'BW req GB/s':14s}{custom_report.noc_bw_req_gbps:14.1f}{reference.noc_bw_req_gbps:14.1f}")


if __name__ == "__main__":
    main()
