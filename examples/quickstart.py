"""Quickstart: analyze one DNN layer under one dataflow.

Run::

    python examples/quickstart.py

This is the 60-second tour: build a model from the zoo, pick a dataflow
from the paper's Table 3, describe the hardware, and read the report.
"""

from repro import Accelerator, NoC, analyze_layer
from repro.dataflow.library import kc_partitioned
from repro.model.zoo import build


def main() -> None:
    # 1. A workload: VGG16's second convolution layer (224x224, 64->64).
    vgg16 = build("vgg16")
    layer = vgg16.layer("CONV2")

    # 2. A dataflow: NVDLA-style KC-partitioning (Table 3 of the paper).
    dataflow = kc_partitioned(c_tile=64)

    # 3. Hardware: 256 PEs, a 32 elements/cycle NoC with multicast.
    accelerator = Accelerator(
        num_pes=256,
        noc=NoC(bandwidth=32, avg_latency=2, multicast=True),
    )

    # 4. Analyze.
    report = analyze_layer(layer, dataflow, accelerator)

    print(f"layer                : {layer}")
    print(f"dataflow             : {dataflow.name}")
    print(f"runtime              : {report.runtime:,.0f} cycles")
    print(f"throughput           : {report.throughput:.1f} MACs/cycle")
    print(f"PE utilization       : {report.utilization:.1%}")
    print(f"energy (MAC units)   : {report.energy_total:,.0f}")
    print(f"L1 buffer required   : {report.l1_buffer_req} B per PE")
    print(f"L2 buffer required   : {report.l2_buffer_req} B shared")
    print(f"NoC bandwidth needed : {report.noc_bw_req_gbps:.1f} GB/s")
    print("reuse factors        :")
    for tensor, factor in report.reuse_factors.items():
        peak = report.max_reuse_factors[tensor]
        print(f"  {tensor}: {factor:10.1f}   (algorithmic max {peak:10.1f})")
    print("energy breakdown     :")
    for component, value in report.energy_breakdown.items():
        print(f"  {component:12s} {value:14,.0f}")


if __name__ == "__main__":
    main()
