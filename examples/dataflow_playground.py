"""The Figure 5 dataflow playground: six 1-D convolution dataflows.

Run::

    python examples/dataflow_playground.py

Reproduces the paper's pedagogical example: a 1-D convolution
(X' = 12 outputs, S = 6 filter taps — Figure 4) mapped onto 3 PEs
(6 for the clustered variant F) under six small dataflow variations,
showing how directive order, the spatially mapped dimension, mapping
sizes, and clustering change which reuse is exposed.
"""

from repro import Accelerator, analyze_layer
from repro.dataflow.library import fig5_playground
from repro.engines.insight import summarize_reuse
from repro.model.layer import conv2d


def conv1d(outputs: int = 12, taps: int = 6):
    """The Figure 4 workload: a 1-D convolution as a degenerate CONV2D."""
    return conv2d(
        "conv1d", k=1, c=1, y=1, x=outputs + taps - 1, r=1, s=taps
    )


EXPECTED_STYLE_NOTES = {
    "A": "output-stationary (outputs partitioned across PEs)",
    "B": "weight-stationary (order interchange of A)",
    "C": "collaborative weight-stationary (S spatially mapped)",
    "D": "collaborative output-stationary (spatial reduction)",
    "E": "partial temporal reuse of inputs (SpatialMap(2,2) S)",
    "F": "clustered: X' across clusters, S inside each cluster",
}


def main() -> None:
    layer = conv1d()
    for key, dataflow in fig5_playground().items():
        num_pes = 6 if key == "F" else 3
        accelerator = Accelerator(num_pes=num_pes)
        summary = summarize_reuse(layer, dataflow, accelerator)
        report = analyze_layer(layer, dataflow, accelerator)
        print("=" * 70)
        print(f"Figure 5 ({key}) — {EXPECTED_STYLE_NOTES[key]}")
        print(summary.describe())
        print(
            f"  runtime {report.runtime:,.0f} cycles, "
            f"L2 weight reads {report.l2_reads.get('W', 0):,.0f}, "
            f"L2 input reads {report.l2_reads.get('I', 0):,.0f}, "
            f"L2 output writes {report.l2_writes.get('O', 0):,.0f}"
        )


if __name__ == "__main__":
    main()
