"""Compare the five Table 3 dataflows across DNN models (Figure 10).

Run::

    python examples/dataflow_comparison.py [--models vgg16 unet] [--pes 256]

For each model and each dataflow (C-P, X-P, YX-P, YR-P, KC-P) this
prints total runtime and energy — the data behind the paper's Figure 10
— plus the adaptive (best-per-layer) row of Figure 10(f).
"""

import argparse

from repro import Accelerator, NoC, analyze_network
from repro.adaptive import adaptive_analysis
from repro.dataflow.library import table3_dataflows
from repro.model.zoo import MODELS, build
from repro.util.text_table import format_table

DEFAULT_MODELS = ["resnet50", "vgg16", "resnext50", "mobilenet_v2", "unet"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="*", default=DEFAULT_MODELS, choices=sorted(MODELS))
    parser.add_argument("--pes", type=int, default=256)
    parser.add_argument("--bandwidth", type=int, default=32, help="NoC elements/cycle")
    args = parser.parse_args()

    accelerator = Accelerator(num_pes=args.pes, noc=NoC(bandwidth=args.bandwidth))
    dataflows = table3_dataflows()

    for model_name in args.models:
        network = build(model_name)
        rows = []
        best_runtime = best_energy = None
        for dataflow_name, dataflow in dataflows.items():
            result = analyze_network(network, dataflow, accelerator)
            rows.append(
                [dataflow_name, f"{result.runtime:.4e}", f"{result.energy_total:.4e}"]
            )
            best_runtime = min(best_runtime or result.runtime, result.runtime)
            best_energy = min(best_energy or result.energy_total, result.energy_total)
        adaptive = adaptive_analysis(network, dataflows, accelerator, metric="runtime")
        rows.append(
            ["Adaptive", f"{adaptive.runtime:.4e}", f"{adaptive.energy_total:.4e}"]
        )
        print(
            format_table(
                ["dataflow", "runtime (cycles)", "energy (xMAC)"],
                rows,
                title=f"--- {network.name} ({network.total_ops():.3e} ops, {args.pes} PEs) ---",
            )
        )
        print(
            f"adaptive wins: {adaptive.dataflow_histogram()} "
            f"(runtime {adaptive.runtime / best_runtime:.2f}x of best single dataflow)"
        )
        print()


if __name__ == "__main__":
    main()
