"""Hardware design-space exploration case study (Figure 13, Section 5.2).

Run::

    python examples/design_space_exploration.py [--layer CONV11]

Sweeps PE count, NoC bandwidth, and dataflow tile sizes for a VGG16
layer under the paper's Eyeriss-class budget (16 mm^2, 450 mW), then
reports sweep statistics, the throughput-/energy-/EDP-optimized design
points, and the throughput-energy Pareto front — the paper's headline
that the energy-optimized design trades PEs for SRAM.
"""

import argparse

from repro.dse import explore
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
    yr_partitioned_variants,
)
from repro.model.zoo import build
from repro.util.text_table import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--layer", default="CONV11")
    parser.add_argument("--area", type=float, default=16.0)
    parser.add_argument("--power", type=float, default=450.0)
    parser.add_argument("--max-pes", type=int, default=512)
    args = parser.parse_args()

    layer = build("vgg16").layer(args.layer)

    for label, variants in (
        ("KC-P", kc_partitioned_variants()),
        ("YR-P", yr_partitioned_variants()),
    ):
        space = DesignSpace(
            pe_counts=default_pe_counts(max_pes=args.max_pes, step=8),
            noc_bandwidths=default_bandwidths(),
            dataflow_variants=variants,
        )
        result = explore(
            layer, space, area_budget=args.area, power_budget=args.power
        )
        stats = result.statistics
        print(f"=== {label} on VGG16 {args.layer} ===")
        print(
            f"explored {stats.explored}, valid {stats.valid}, pruned "
            f"{stats.pruned}, {stats.elapsed_seconds:.2f}s "
            f"({stats.effective_rate:,.0f} designs/s)"
        )
        rows = []
        for name, point in (
            ("throughput-opt", result.throughput_optimal),
            ("energy-opt", result.energy_optimal),
            ("edp-opt", result.edp_optimal),
        ):
            if point is None:
                continue
            rows.append(
                [
                    name,
                    point.tile_label,
                    point.num_pes,
                    point.noc_bandwidth,
                    point.l1_size * point.num_pes + point.l2_size,
                    f"{point.throughput:.1f}",
                    f"{point.energy:.3e}",
                    f"{point.area:.2f}",
                    f"{point.power:.0f}",
                ]
            )
        print(
            format_table(
                ["objective", "tile", "PEs", "BW", "buffer B", "MAC/cyc", "energy", "mm^2", "mW"],
                rows,
            )
        )
        front = result.pareto()
        print(f"Pareto front: {len(front)} points (of {stats.valid} valid)")
        print()


if __name__ == "__main__":
    main()
