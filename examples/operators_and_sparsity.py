"""Beyond dense CONV2D: operator classes and uniform sparsity.

Run::

    python examples/operators_and_sparsity.py

Analyzes one representative layer per Table 4 operator class (early and
late convolutions, point-wise, depth-wise, fully-connected, transposed
convolution) under one dataflow, then shows the uniform-sparsity model
(Section 4.4): scaling a layer's weight/activation densities scales
compute and traffic proportionally.
"""

from repro import Accelerator, analyze_layer
from repro.dataflow.library import kc_partitioned, yx_partitioned
from repro.model.layer import conv2d
from repro.model.taxonomy import classify_layer
from repro.model.zoo import build
from repro.util.text_table import format_table


def main() -> None:
    accelerator = Accelerator(num_pes=256)
    dataflow = kc_partitioned(c_tile=32)

    representatives = [
        build("resnet50").layer("CONV1"),          # early CONV2D
        build("vgg16").layer("CONV13"),            # late CONV2D
        build("mobilenet_v2").layer("BN2_1_expand"),   # point-wise
        build("mobilenet_v2").layer("BN2_1_dw"),       # depth-wise
        build("vgg16").layer("FC2"),               # fully-connected
        build("unet").layer("UPCONV1"),            # transposed conv
    ]
    rows = []
    for layer in representatives:
        report = analyze_layer(layer, dataflow, accelerator)
        rows.append(
            [
                layer.name,
                classify_layer(layer).value,
                f"{layer.effective_ops():.3e}",
                f"{report.runtime:.3e}",
                f"{report.utilization:.2f}",
                f"{report.noc_bw_req_gbps:.1f}",
            ]
        )
    print(
        format_table(
            ["layer", "class", "eff. ops", "cycles", "util", "BW GB/s"],
            rows,
            title="Table 4 operator classes under KC-P (256 PEs)",
        )
    )

    # Uniform sparsity: 50% dense weights, 40% dense activations.
    print("\nuniform sparsity on a VGG16-CONV11-like layer (YX-P):")
    rows = []
    for w_density, i_density in ((1.0, 1.0), (0.5, 1.0), (0.5, 0.4)):
        layer = conv2d(
            "sparse",
            k=512, c=512, y=14, x=14, r=3, s=3, padding=1,
            densities={"W": w_density, "I": i_density},
        )
        report = analyze_layer(layer, yx_partitioned(), accelerator)
        rows.append(
            [
                f"W={w_density} I={i_density}",
                f"{layer.effective_ops():.3e}",
                f"{report.runtime:.3e}",
                f"{report.energy_total:.3e}",
            ]
        )
    print(format_table(["densities", "eff. MACs", "cycles", "energy"], rows))


if __name__ == "__main__":
    main()
