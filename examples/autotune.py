"""Auto-tune a dataflow for a layer (the paper's future-work tool).

Run::

    python examples/autotune.py [--layer CONV11] [--objective runtime]

Searches a structured space of dataflow templates (spatial dims, tile
sizes, schedules, cluster sizes) with the analytical cost model in the
loop, and compares the winner against the five hand-designed Table 3
dataflows.
"""

import argparse

from repro import Accelerator, analyze_layer
from repro.dataflow.library import table3_dataflows
from repro.model.zoo import build
from repro.tuner import tune_layer
from repro.util.text_table import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="vgg16")
    parser.add_argument("--layer", default="CONV11")
    parser.add_argument("--objective", default="runtime",
                        choices=["runtime", "energy", "edp"])
    parser.add_argument("--pes", type=int, default=256)
    args = parser.parse_args()

    layer = build(args.model).layer(args.layer)
    accelerator = Accelerator(num_pes=args.pes)

    result = tune_layer(layer, accelerator, objective=args.objective)
    print(
        f"evaluated {result.evaluated} candidates "
        f"({result.rejected} rejected) for {layer.name}"
    )

    rows = []
    for candidate in result.top:
        report = candidate.report
        rows.append(
            [
                candidate.spec.name,
                f"{report.runtime:.4e}",
                f"{report.energy_total:.4e}",
                f"{report.utilization:.2f}",
            ]
        )
    for name, flow in table3_dataflows().items():
        report = analyze_layer(layer, flow, accelerator)
        rows.append(
            [
                f"(library) {name}",
                f"{report.runtime:.4e}",
                f"{report.energy_total:.4e}",
                f"{report.utilization:.2f}",
            ]
        )
    print(
        format_table(
            ["dataflow", "cycles", "energy", "utilization"],
            rows,
            title=f"top tuned candidates vs Table 3 ({args.objective}-optimized)",
        )
    )
    print("\nwinning dataflow:")
    print(result.best_dataflow.describe())


if __name__ == "__main__":
    main()
