"""End-to-end network scheduling with on-chip activation residency.

Run::

    python examples/network_scheduling.py [--model mobilenet_v2]

Per-layer cost models charge every layer a DRAM round trip for its
activations; a real accelerator keeps intermediates in the shared L2
whenever they fit. This example schedules a whole network with
per-layer adaptive dataflow selection and shows how much DRAM energy
the residency analysis recovers at different L2 capacities.
"""

import argparse

from repro import Accelerator, NoC
from repro.dataflow.library import table3_dataflows
from repro.model.zoo import MODELS, build
from repro.pipeline import schedule_network
from repro.util.text_table import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mobilenet_v2", choices=sorted(MODELS))
    parser.add_argument("--pes", type=int, default=256)
    args = parser.parse_args()

    network = build(args.model)
    dataflows = table3_dataflows()

    rows = []
    for l2_kb in (32, 128, 512, 2048):
        accelerator = Accelerator(
            num_pes=args.pes, l2_size=l2_kb << 10, noc=NoC(bandwidth=32)
        )
        schedule = schedule_network(network, dataflows, accelerator)
        rows.append(
            [
                f"{l2_kb} KB",
                f"{schedule.resident_fraction:.0%}",
                f"{schedule.raw_energy:.4e}",
                f"{schedule.dram_energy_saved:.4e}",
                f"{schedule.energy_total:.4e}",
                f"{1 - schedule.energy_total / schedule.raw_energy:.1%}",
            ]
        )
    print(
        format_table(
            ["L2 size", "inputs resident", "per-layer energy",
             "DRAM energy saved", "scheduled energy", "saving"],
            rows,
            title=f"{network.name}: activation residency vs L2 capacity ({args.pes} PEs)",
        )
    )

    accelerator = Accelerator(num_pes=args.pes, l2_size=512 << 10, noc=NoC(bandwidth=32))
    schedule = schedule_network(network, dataflows, accelerator)
    spilled = [entry.layer_name for entry in schedule.layers[1:] if not entry.input_resident]
    print(f"\nlayers spilling to DRAM at 512 KB: {spilled or 'none'}")


if __name__ == "__main__":
    main()
