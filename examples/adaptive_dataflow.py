"""Adaptive (per-layer best) dataflow selection — Figure 10(f).

Run::

    python examples/adaptive_dataflow.py [--model mobilenet_v2]

Evaluates every Table 3 dataflow on every layer, keeps the best per
layer, and compares against the best *single* dataflow — quantifying
the benefit a flexible accelerator (MAERI/FlexFlow-style) or a
heterogeneous multi-dataflow chip could harvest.
"""

import argparse

from repro import Accelerator, NoC, analyze_network
from repro.adaptive import adaptive_analysis
from repro.dataflow.library import table3_dataflows
from repro.model.taxonomy import classify_layer
from repro.model.zoo import MODELS, build
from repro.util.text_table import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="mobilenet_v2", choices=sorted(MODELS))
    parser.add_argument("--pes", type=int, default=256)
    args = parser.parse_args()

    network = build(args.model)
    accelerator = Accelerator(num_pes=args.pes, noc=NoC(bandwidth=32))
    dataflows = table3_dataflows()

    single = {
        name: analyze_network(network, dataflow, accelerator)
        for name, dataflow in dataflows.items()
    }
    best_single_name = min(single, key=lambda name: single[name].runtime)
    best_single = single[best_single_name]

    adaptive = adaptive_analysis(network, dataflows, accelerator, metric="runtime")

    rows = []
    for choice in adaptive.choices:
        layer = network.layer(choice.layer_name)
        rows.append(
            [
                choice.layer_name,
                classify_layer(layer).value,
                choice.dataflow_name,
                f"{choice.report.runtime:.3e}",
            ]
        )
    print(format_table(["layer", "operator class", "winner", "cycles"], rows))
    print()
    print(f"best single dataflow : {best_single_name} "
          f"({best_single.runtime:.4e} cycles, {best_single.energy_total:.4e} energy)")
    print(f"adaptive             : {adaptive.runtime:.4e} cycles, "
          f"{adaptive.energy_total:.4e} energy")
    print(f"runtime reduction    : {1 - adaptive.runtime / best_single.runtime:.1%}")
    print(f"dataflow usage       : {adaptive.dataflow_histogram()}")


if __name__ == "__main__":
    main()
