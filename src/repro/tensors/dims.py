"""Canonical tensor-dimension names (Figure 1 of the paper).

The seven canonical dimensions address the three CONV2D tensors:

========  ==============================  =========================
Name      Meaning                         Appears in
========  ==============================  =========================
``N``     input batch                     inputs, outputs
``K``     output channel                  weights, outputs
``C``     input channel                   weights, inputs
``Y``     input activation row            inputs
``X``     input activation column         inputs
``R``     filter row                      weights
``S``     filter column                   weights
========  ==============================  =========================

Dataflow directives may address the activation plane either through the
*input* coordinates ``Y``/``X`` (as Table 3 of the paper does) or through
the *output* coordinates ``Y'``/``X'`` (as Figure 4/5 do). The two
representations are interchangeable through the convolution window
relation ``y = y' * stride + r * dilation``; a dataflow must pick one
representation per axis and stick with it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

N = "N"
K = "K"
C = "C"
Y = "Y"
X = "X"
R = "R"
S = "S"
YP = "Y'"
XP = "X'"

#: The seven canonical (input-centric) dimensions, in conventional order.
CANONICAL_DIMS: Tuple[str, ...] = (N, K, C, Y, X, R, S)

#: Every name a dataflow directive may legally address.
ALL_DIRECTIVE_DIMS: FrozenSet[str] = frozenset(CANONICAL_DIMS) | {YP, XP}

#: Output-coordinate alias for each activation-plane input dimension.
OUTPUT_DIM_OF: Dict[str, str] = {Y: YP, X: XP}

#: Input-coordinate dimension behind each output-coordinate alias.
INPUT_DIM_OF: Dict[str, str] = {YP: Y, XP: X}

#: The kernel dimension sliding along each activation-plane axis.
KERNEL_DIM_OF_ROW = R
KERNEL_DIM_OF_COL = S


def is_output_coordinate(dim: str) -> bool:
    """True for the output-plane aliases ``Y'`` and ``X'``."""
    return dim in INPUT_DIM_OF


def base_dim(dim: str) -> str:
    """Map ``Y'``/``X'`` to ``Y``/``X``; other dims map to themselves."""
    return INPUT_DIM_OF.get(dim, dim)


def validate_dim(dim: str) -> str:
    """Return ``dim`` if it is a legal directive dimension, else raise."""
    if dim not in ALL_DIRECTIVE_DIMS:
        raise ValueError(
            f"unknown dimension {dim!r}; legal dimensions are "
            f"{sorted(ALL_DIRECTIVE_DIMS)}"
        )
    return dim
