"""DNN operator templates: tensors, dimension coupling, compute domain.

An :class:`Operator` describes the *structure* of a layer type — which
tensors it reads and writes, which dimensions each tensor is coupled to
(the basis of the paper's Table 1), which dimensions are reductions
(accumulated away into the output), and what the compute iteration domain
is. Sizes, strides, and sparsity live on :class:`repro.model.Layer`.

Axis templates use symbolic markers for the activation plane because the
concrete axis depends on (a) the layer's stride/dilation and (b) whether
the dataflow addresses the plane through input (``Y``/``X``) or output
(``Y'``/``X'``) coordinates:

- ``ROW_IN`` / ``COL_IN`` — the input tensor's row/column axis;
- ``ROW_OUT`` / ``COL_OUT`` — the output tensor's row/column axis.

:meth:`Operator.resolve_axes` turns the markers into concrete
:class:`~repro.tensors.axes.Axis` objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.tensors import dims as D
from repro.tensors.axes import Axis, ConvOutputAxis, PlainAxis, SlidingInputAxis
from repro.util.intmath import prod

ROW_IN = "@row_in"
COL_IN = "@col_in"
ROW_OUT = "@row_out"
COL_OUT = "@col_out"

_MARKERS = frozenset({ROW_IN, COL_IN, ROW_OUT, COL_OUT})


class TensorRole(enum.Enum):
    """Whether a tensor is read (INPUT) or produced (OUTPUT) by the op."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class TensorTemplate:
    """One tensor of an operator: a name, a role, and axis templates."""

    name: str
    role: TensorRole
    axis_templates: Tuple[str, ...]

    @property
    def is_output(self) -> bool:
        return self.role is TensorRole.OUTPUT


@dataclass(frozen=True)
class Operator:
    """A layer-type template; see the module docstring.

    Attributes
    ----------
    name:
        Operator type name (``CONV2D``, ``DWCONV``, ...).
    tensors:
        The tensors the operator touches, in (inputs..., output) order.
    reduction_dims:
        Dimensions accumulated away into the output (``C, R, S`` for a
        standard convolution). Iterating a reduction dim leaves outputs
        in place as partial sums.
    compute_templates:
        Axis templates whose extents multiply to the number of
        multiply-accumulates (or elementwise ops) in one mapped chunk.
    used_dims:
        Canonical dims that are meaningful for this operator; all others
        must be 1 in a layer of this type.
    """

    name: str
    tensors: Tuple[TensorTemplate, ...]
    reduction_dims: FrozenSet[str]
    compute_templates: Tuple[str, ...]
    used_dims: FrozenSet[str]

    def tensor(self, name: str) -> TensorTemplate:
        for template in self.tensors:
            if template.name == name:
                return template
        raise KeyError(f"operator {self.name} has no tensor {name!r}")

    @property
    def input_tensors(self) -> Tuple[TensorTemplate, ...]:
        return tuple(t for t in self.tensors if not t.is_output)

    @property
    def output_tensor(self) -> TensorTemplate:
        outputs = [t for t in self.tensors if t.is_output]
        if len(outputs) != 1:
            raise ValueError(f"operator {self.name} must have exactly one output")
        return outputs[0]

    def resolve_axes(
        self,
        templates: Tuple[str, ...],
        row_rep: str,
        col_rep: str,
        stride: Tuple[int, int],
        dilation: Tuple[int, int] = (1, 1),
    ) -> Tuple[Axis, ...]:
        """Materialize axis templates into concrete axes.

        ``row_rep`` / ``col_rep`` are ``"input"`` or ``"output"``: the
        coordinate system the dataflow uses on that activation axis.
        """
        resolved = []
        for template in templates:
            resolved.append(
                _resolve_one(template, row_rep, col_rep, stride, dilation)
            )
        return tuple(resolved)

    def coupled_dims(self, tensor_name: str) -> FrozenSet[str]:
        """Canonical dims the tensor is coupled to (paper Table 1 basis).

        The activation plane is reported through its input-centric dims
        (``Y``/``X``), with kernel dims included for tensors whose plane
        position depends on them (inputs and, in the input-centric view,
        outputs do not list ``R``/``S``).
        """
        template = self.tensor(tensor_name)
        coupled = set()
        for axis_template in template.axis_templates:
            if axis_template in (ROW_IN, ROW_OUT):
                coupled.add(D.Y)
            elif axis_template in (COL_IN, COL_OUT):
                coupled.add(D.X)
            else:
                coupled.add(axis_template)
        return frozenset(coupled)

    def ops_per_element(self) -> int:
        """Ops per compute-domain point (1 MAC / comparison / add)."""
        return 1

    def total_ops(self, dim_sizes: Mapping[str, int]) -> int:
        """Exact compute-domain size for full layer dims.

        ``dim_sizes`` must contain the canonical dims plus the derived
        output extents under ``Y'`` and ``X'``.
        """
        total = 1
        for template in self.compute_templates:
            if template == ROW_OUT:
                total *= dim_sizes[D.YP]
            elif template == COL_OUT:
                total *= dim_sizes[D.XP]
            elif template == ROW_IN:
                total *= dim_sizes[D.Y]
            elif template == COL_IN:
                total *= dim_sizes[D.X]
            else:
                total *= dim_sizes[template]
        return total

    def touched_tensor_volume(
        self,
        tensor_name: str,
        dim_sizes: Mapping[str, int],
        stride: Tuple[int, int],
        dilation: Tuple[int, int] = (1, 1),
    ) -> int:
        """Elements of a tensor the computation actually reads/writes.

        Differs from :meth:`tensor_volume` only on the input activation
        plane when the stride exceeds the kernel extent: the windows
        then skip input positions, so along each axis only
        ``out * min(stride, k_ext) + max(0, k_ext - stride)`` positions
        are touched.
        """
        template = self.tensor(tensor_name)
        sizes = []
        for axis_template in template.axis_templates:
            if axis_template == ROW_IN:
                sizes.append(
                    _touched_extent(
                        dim_sizes[D.Y], dim_sizes[D.YP], dim_sizes[D.R],
                        stride[0], dilation[0],
                    )
                )
            elif axis_template == COL_IN:
                sizes.append(
                    _touched_extent(
                        dim_sizes[D.X], dim_sizes[D.XP], dim_sizes[D.S],
                        stride[1], dilation[1],
                    )
                )
            elif axis_template == ROW_OUT:
                sizes.append(dim_sizes[D.YP])
            elif axis_template == COL_OUT:
                sizes.append(dim_sizes[D.XP])
            else:
                sizes.append(dim_sizes[axis_template])
        return prod(sizes)

    def tensor_volume(self, tensor_name: str, dim_sizes: Mapping[str, int]) -> int:
        """Total element count of a tensor for full layer dims."""
        template = self.tensor(tensor_name)
        sizes = []
        for axis_template in template.axis_templates:
            if axis_template == ROW_IN:
                sizes.append(dim_sizes[D.Y])
            elif axis_template == COL_IN:
                sizes.append(dim_sizes[D.X])
            elif axis_template == ROW_OUT:
                sizes.append(dim_sizes[D.YP])
            elif axis_template == COL_OUT:
                sizes.append(dim_sizes[D.XP])
            else:
                sizes.append(dim_sizes[axis_template])
        return prod(sizes)


def _touched_extent(
    in_extent: int, out_extent: int, kernel: int, stride: int, dilation: int
) -> int:
    """Input positions touched along one activation axis."""
    k_ext = (kernel - 1) * dilation + 1
    touched = out_extent * min(stride, k_ext) + max(0, k_ext - stride)
    return min(in_extent, touched)


def _resolve_one(
    template: str,
    row_rep: str,
    col_rep: str,
    stride: Tuple[int, int],
    dilation: Tuple[int, int],
) -> Axis:
    if template not in _MARKERS:
        return PlainAxis(template)
    if template == ROW_IN:
        if row_rep == "input":
            return PlainAxis(D.Y)
        return SlidingInputAxis(D.YP, D.R, stride[0], dilation[0])
    if template == COL_IN:
        if col_rep == "input":
            return PlainAxis(D.X)
        return SlidingInputAxis(D.XP, D.S, stride[1], dilation[1])
    if template == ROW_OUT:
        if row_rep == "input":
            return ConvOutputAxis(D.Y, D.R, stride[0], dilation[0])
        return PlainAxis(D.YP)
    # COL_OUT
    if col_rep == "input":
        return ConvOutputAxis(D.X, D.S, stride[1], dilation[1])
    return PlainAxis(D.XP)


def _conv_like(
    name: str,
    weight_dims: Tuple[str, ...],
    output_channel_dim: str,
    reduction: Tuple[str, ...],
    compute_channel_dims: Tuple[str, ...],
) -> Operator:
    return Operator(
        name=name,
        tensors=(
            TensorTemplate("W", TensorRole.INPUT, weight_dims),
            TensorTemplate("I", TensorRole.INPUT, (D.N, D.C, ROW_IN, COL_IN)),
            TensorTemplate(
                "O", TensorRole.OUTPUT, (D.N, output_channel_dim, ROW_OUT, COL_OUT)
            ),
        ),
        reduction_dims=frozenset(reduction),
        compute_templates=(D.N,) + compute_channel_dims + (ROW_OUT, COL_OUT, D.R, D.S),
        used_dims=frozenset({D.N, D.C, D.Y, D.X, D.R, D.S})
        | frozenset(compute_channel_dims),
    )


#: Standard multi-channel 2D convolution (Figure 1 of the paper).
CONV2D = _conv_like(
    "CONV2D",
    weight_dims=(D.K, D.C, D.R, D.S),
    output_channel_dim=D.K,
    reduction=(D.C, D.R, D.S),
    compute_channel_dims=(D.K, D.C),
)

#: Pointwise (1x1) convolution — structurally CONV2D with R = S = 1; kept
#: as a distinct name for the operator taxonomy of Table 4.
PWCONV = _conv_like(
    "PWCONV",
    weight_dims=(D.K, D.C, D.R, D.S),
    output_channel_dim=D.K,
    reduction=(D.C, D.R, D.S),
    compute_channel_dims=(D.K, D.C),
)

#: Depthwise convolution: the output couples to the *input* channel and
#: there is no cross-channel reduction (Section 4.1 of the paper).
DWCONV = _conv_like(
    "DWCONV",
    weight_dims=(D.C, D.R, D.S),
    output_channel_dim=D.C,
    reduction=(D.R, D.S),
    compute_channel_dims=(D.C,),
)

#: Transposed convolution, modeled as CONV2D over the zero-upscaled input
#: (the structured output sparsity of Table 4 becomes structured *input*
#: sparsity, captured by the layer's input density).
TRCONV = _conv_like(
    "TRCONV",
    weight_dims=(D.K, D.C, D.R, D.S),
    output_channel_dim=D.K,
    reduction=(D.C, D.R, D.S),
    compute_channel_dims=(D.K, D.C),
)

#: Fully-connected layer / GEMM: a convolution collapsed to N, K, C.
FC = Operator(
    name="FC",
    tensors=(
        TensorTemplate("W", TensorRole.INPUT, (D.K, D.C)),
        TensorTemplate("I", TensorRole.INPUT, (D.N, D.C)),
        TensorTemplate("O", TensorRole.OUTPUT, (D.N, D.K)),
    ),
    reduction_dims=frozenset({D.C}),
    compute_templates=(D.N, D.K, D.C),
    used_dims=frozenset({D.N, D.K, D.C}),
)

#: Pooling: a weight-less sliding-window reduction over R x S.
POOL = Operator(
    name="POOL",
    tensors=(
        TensorTemplate("I", TensorRole.INPUT, (D.N, D.C, ROW_IN, COL_IN)),
        TensorTemplate("O", TensorRole.OUTPUT, (D.N, D.C, ROW_OUT, COL_OUT)),
    ),
    reduction_dims=frozenset({D.R, D.S}),
    compute_templates=(D.N, D.C, ROW_OUT, COL_OUT, D.R, D.S),
    used_dims=frozenset({D.N, D.C, D.Y, D.X, D.R, D.S}),
)

#: Elementwise residual addition (skip connection): two activation reads,
#: one write, no reuse structure beyond staging (Table 4's residual row).
ELEMENTWISE = Operator(
    name="ELEMENTWISE",
    tensors=(
        TensorTemplate("A", TensorRole.INPUT, (D.N, D.C, ROW_IN, COL_IN)),
        TensorTemplate("B", TensorRole.INPUT, (D.N, D.C, ROW_IN, COL_IN)),
        TensorTemplate("O", TensorRole.OUTPUT, (D.N, D.C, ROW_OUT, COL_OUT)),
    ),
    reduction_dims=frozenset(),
    compute_templates=(D.N, D.C, ROW_OUT, COL_OUT),
    used_dims=frozenset({D.N, D.C, D.Y, D.X}),
)

#: Registry of operators by name (used by the CLI and the model DSL).
OPERATORS: Dict[str, Operator] = {
    op.name: op
    for op in (CONV2D, PWCONV, DWCONV, TRCONV, FC, POOL, ELEMENTWISE)
}
