"""Per-tensor data axes: extents, temporal deltas, and spatial shifts.

An *axis* is one addressable direction of a tensor (e.g. the row axis of
the input activation). Given the chunk sizes that a dataflow level maps
for each dimension, an axis answers three questions that together drive
the whole reuse analysis:

``extent(sizes)``
    How many elements along this axis does one mapped chunk touch?

``delta(dim, offset, sizes)``
    When directive ``dim`` advances by ``offset`` (all other dims held),
    how many *new* elements appear along this axis? ``extent - delta`` is
    the temporally reused overlap (the paper's convolutional reuse when
    ``offset < size``).

``shift(offsets)``
    When the spatially mapped dims shift by ``offsets`` between adjacent
    sub-clusters, by how much does this axis' interval shift per
    sub-cluster? A shift of zero means every sub-cluster sees identical
    data (spatial multicast for inputs, spatial reduction for outputs); a
    small non-zero shift is a halo (partial spatial reuse).

Three axis kinds cover every tensor in the modeled operator space:

- :class:`PlainAxis` — the axis follows a single dimension directly.
- :class:`SlidingInputAxis` — input rows/cols when the dataflow maps the
  *output* coordinate: ``extent = (s_out - 1) * stride + (s_k - 1) *
  dilation + 1``.
- :class:`ConvOutputAxis` — output rows/cols when the dataflow maps the
  *input* coordinate: ``extent = floor((s_in - k_ext) / stride) + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.util.intmath import ceil_div


class Axis:
    """Abstract axis interface; see the module docstring."""

    dims: Tuple[str, ...]

    def extent(self, sizes: Mapping[str, int]) -> int:
        raise NotImplementedError

    def delta(self, dim: str, offset: int, sizes: Mapping[str, int]) -> int:
        raise NotImplementedError

    def shift(self, offsets: Mapping[str, int]) -> float:
        raise NotImplementedError

    def unique_across(self, sizes: Mapping[str, int], offsets: Mapping[str, int], count: int) -> int:
        """Unique elements along this axis across ``count`` shifted chunks.

        With per-sub-cluster shift ``sigma`` and extent ``e``, consecutive
        chunks overlap by ``e - |sigma|`` elements, so the union covers
        ``e + (count - 1) * min(|sigma|, e)`` elements. ``sigma == 0``
        collapses to a single chunk (full overlap / multicast).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        e = self.extent(sizes)
        sigma = abs(self.shift(offsets))
        unique = e + (count - 1) * min(sigma, float(e))
        return int(round(unique))


@dataclass(frozen=True)
class PlainAxis(Axis):
    """An axis that follows one dimension one-to-one (e.g. W along K)."""

    dim: str

    @property
    def dims(self) -> Tuple[str, ...]:  # type: ignore[override]
        return (self.dim,)

    def extent(self, sizes: Mapping[str, int]) -> int:
        return sizes[self.dim]

    def delta(self, dim: str, offset: int, sizes: Mapping[str, int]) -> int:
        if dim != self.dim:
            return 0
        return min(offset, sizes[self.dim])

    def shift(self, offsets: Mapping[str, int]) -> float:
        return float(offsets.get(self.dim, 0))


@dataclass(frozen=True)
class SlidingInputAxis(Axis):
    """Input-plane axis when the dataflow maps the output coordinate.

    ``out_dim`` is the mapped output dimension (``Y'`` or ``X'``) and
    ``kernel_dim`` the filter dimension sliding along the same axis
    (``R`` or ``S``). The input window relation is
    ``in = out * stride + k * dilation``.
    """

    out_dim: str
    kernel_dim: str
    stride: int
    dilation: int = 1

    @property
    def dims(self) -> Tuple[str, ...]:  # type: ignore[override]
        return (self.out_dim, self.kernel_dim)

    def extent(self, sizes: Mapping[str, int]) -> int:
        s_out = sizes[self.out_dim]
        s_k = sizes[self.kernel_dim]
        return (s_out - 1) * self.stride + (s_k - 1) * self.dilation + 1

    def delta(self, dim: str, offset: int, sizes: Mapping[str, int]) -> int:
        e = self.extent(sizes)
        if dim == self.out_dim:
            return min(offset * self.stride, e)
        if dim == self.kernel_dim:
            return min(offset * self.dilation, e)
        return 0

    def shift(self, offsets: Mapping[str, int]) -> float:
        return float(
            offsets.get(self.out_dim, 0) * self.stride
            + offsets.get(self.kernel_dim, 0) * self.dilation
        )


@dataclass(frozen=True)
class ConvOutputAxis(Axis):
    """Output-plane axis when the dataflow maps the input coordinate.

    ``in_dim`` is the mapped input dimension (``Y`` or ``X``) and
    ``kernel_dim`` the filter dimension (``R`` or ``S``). A chunk of
    ``s_in`` input positions with a ``s_k``-wide kernel chunk produces
    ``floor((s_in - k_ext) / stride) + 1`` outputs, where
    ``k_ext = (s_k - 1) * dilation + 1``.
    """

    in_dim: str
    kernel_dim: str
    stride: int
    dilation: int = 1

    @property
    def dims(self) -> Tuple[str, ...]:  # type: ignore[override]
        return (self.in_dim, self.kernel_dim)

    def extent(self, sizes: Mapping[str, int]) -> int:
        s_in = sizes[self.in_dim]
        k_ext = (sizes[self.kernel_dim] - 1) * self.dilation + 1
        if s_in < k_ext:
            return 0
        return (s_in - k_ext) // self.stride + 1

    def delta(self, dim: str, offset: int, sizes: Mapping[str, int]) -> int:
        e = self.extent(sizes)
        if e == 0:
            return 0
        if dim == self.in_dim:
            return min(ceil_div(offset, self.stride), e)
        if dim == self.kernel_dim:
            # Advancing the kernel chunk slides the valid output window;
            # the newly touched outputs at the window edge.
            return min(ceil_div(offset * self.dilation, self.stride), e)
        return 0

    def shift(self, offsets: Mapping[str, int]) -> float:
        numerator = (
            offsets.get(self.in_dim, 0)
            - offsets.get(self.kernel_dim, 0) * self.dilation
        )
        return numerator / self.stride
