"""Tensor dimensions, axes, and DNN operator definitions.

This subpackage defines the vocabulary the rest of the package speaks:

- :mod:`repro.tensors.dims` — the canonical dimension names (``N, K, C,
  Y, X, R, S`` plus the output-coordinate aliases ``Y', X'``);
- :mod:`repro.tensors.axes` — per-tensor *axes*, the machinery that turns
  per-dimension mapping chunks into data extents, per-step deltas
  (temporal reuse) and per-PE shifts (spatial reuse);
- :mod:`repro.tensors.operators` — operator templates (CONV2D, depthwise,
  pointwise, FC/GEMM, transposed conv, pooling, elementwise) with their
  tensor/dimension coupling, the basis of the paper's Table 1.
"""

from repro.tensors.dims import (
    ALL_DIRECTIVE_DIMS,
    CANONICAL_DIMS,
    C,
    INPUT_DIM_OF,
    K,
    N,
    OUTPUT_DIM_OF,
    R,
    S,
    X,
    XP,
    Y,
    YP,
)
from repro.tensors.axes import Axis, ConvOutputAxis, PlainAxis, SlidingInputAxis
from repro.tensors.operators import (
    CONV2D,
    DWCONV,
    ELEMENTWISE,
    FC,
    POOL,
    PWCONV,
    TRCONV,
    Operator,
    TensorRole,
    TensorTemplate,
)

__all__ = [
    "ALL_DIRECTIVE_DIMS",
    "CANONICAL_DIMS",
    "N",
    "K",
    "C",
    "Y",
    "X",
    "R",
    "S",
    "YP",
    "XP",
    "INPUT_DIM_OF",
    "OUTPUT_DIM_OF",
    "Axis",
    "PlainAxis",
    "SlidingInputAxis",
    "ConvOutputAxis",
    "Operator",
    "TensorRole",
    "TensorTemplate",
    "CONV2D",
    "DWCONV",
    "PWCONV",
    "FC",
    "TRCONV",
    "POOL",
    "ELEMENTWISE",
]
