"""Symbolic abstract interpretation of mappings over parametric shapes.

The package lifts the whole data-centric cost model to sound interval
semantics: :mod:`~repro.absint.interval` is the abstract domain,
:class:`~repro.absint.shapes.ShapeBox` the symbolic layer,
:mod:`~repro.absint.binding` the lifted cluster analysis, and
:mod:`~repro.absint.engine` the lifted reuse/performance/cost engines.
See ``docs/symbolic-analysis.md`` for the semantics and the
monotonicity audit behind each transfer function.
"""

from repro.absint.binding import (
    AbstractBinding,
    AbstractDirective,
    AbstractLevel,
    abstract_bind,
)
from repro.absint.engine import (
    AbstractAnalysis,
    AbstractLevelReuse,
    AbstractLevelStats,
    HardwareBox,
    abstract_analyze,
)
from repro.absint.interval import (
    AbstractDomainError,
    IntervalFloat,
    IntervalInt,
    TriBool,
)
from repro.absint.shapes import ShapeBox

__all__ = [
    "AbstractAnalysis",
    "AbstractBinding",
    "AbstractDirective",
    "AbstractDomainError",
    "AbstractLevel",
    "AbstractLevelReuse",
    "AbstractLevelStats",
    "HardwareBox",
    "IntervalFloat",
    "IntervalInt",
    "ShapeBox",
    "TriBool",
    "abstract_analyze",
    "abstract_bind",
]
