"""Abstract performance analysis: the cost model lifted to intervals.

The interval counterpart of :func:`repro.engines.analyze_layer`,
parametric over *both* the layer shape (a :class:`ShapeBox`) and the
hardware point (a :class:`HardwareBox` with interval PE count and NoC
bandwidth). One engine therefore serves the two consumers the paper's
analytical framing motivates:

- **shape-range certification** (``DF2xx`` lint rules, ``analyze
  --symbolic``): concrete hardware, interval shapes — one pass proves a
  buffer-fit or bandwidth property for an entire layer family;
- **design-space pruning** (branch-and-bound in ``dse``/``tuner``):
  concrete shape, interval hardware — interval bounds on runtime /
  energy / buffer requirements discard whole grid regions before any
  concrete cost-model call.

Soundness contract (the property ``tests/test_absint.py`` fuzzes): for
every concrete ``(layer, accelerator)`` drawn from the boxes on which
:func:`~repro.engines.binding.bind_dataflow` succeeds, each quantity of
the concrete :class:`~repro.engines.analysis.LayerAnalysis` lies inside
the corresponding interval reported here. The lifting mirrors the
concrete engines statement by statement; every data-dependent branch is
taken three-valued (hulling both arms when undecided over the box), and
every scalar primitive is evaluated at its monotone corner assignments
(see the audit table in ``docs/symbolic-analysis.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.absint.binding import AbstractBinding, AbstractLevel, abstract_bind
from repro.absint.interval import (
    FLOAT_ONE,
    FLOAT_ZERO,
    INT_ONE,
    AbstractDomainError,
    IntervalFloat,
    IntervalInt,
    TriBool,
    f_max,
    f_max_many,
    f_min,
    f_sum,
    i_max,
    i_min,
    i_prod,
    i_sum,
    tri_all,
    tri_any,
    tri_f_gt,
    tri_gt,
    tri_not,
)
from repro.absint.shapes import ShapeBox
from repro.dataflow.dataflow import Dataflow
from repro.engines.tensor_analysis import TensorAnalysis, TensorInfo, analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.tensors import dims as D
from repro.tensors.axes import Axis, ConvOutputAxis, PlainAxis, SlidingInputAxis
from repro.tensors.operators import COL_IN, COL_OUT, ROW_IN, ROW_OUT
from repro.util.intmath import ceil_div

_INT_ZERO = IntervalInt(0, 0)


# ----------------------------------------------------------------------
# Hardware box
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HardwareBox:
    """An :class:`~repro.hardware.accelerator.Accelerator` family.

    ``num_pes`` and the NoC ``bandwidth`` are intervals (the two axes the
    Figure-13 DSE grids sweep); every other knob stays concrete.
    """

    num_pes: IntervalInt
    bandwidth: IntervalInt
    avg_latency: int = 2
    multicast: bool = True
    l1_size: Optional[int] = None
    l2_size: Optional[int] = None
    spatial_reduction: bool = True
    double_buffered: bool = True
    vector_width: int = 1
    element_bytes: int = 2
    clock_ghz: float = 1.0
    dram_bandwidth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_pes.lo < 1:
            raise AbstractDomainError(f"num_pes range {self.num_pes} must be >= 1")
        if self.bandwidth.lo < 1:
            raise AbstractDomainError(
                f"bandwidth range {self.bandwidth} must be >= 1"
            )

    @staticmethod
    def from_accelerator(
        accelerator: Accelerator,
        num_pes: Optional[IntervalInt] = None,
        bandwidth: Optional[IntervalInt] = None,
    ) -> "HardwareBox":
        return HardwareBox(
            num_pes=num_pes or IntervalInt.point(accelerator.num_pes),
            bandwidth=bandwidth or IntervalInt.point(accelerator.noc.bandwidth),
            avg_latency=accelerator.noc.avg_latency,
            multicast=accelerator.noc.multicast,
            l1_size=accelerator.l1_size,
            l2_size=accelerator.l2_size,
            spatial_reduction=accelerator.spatial_reduction,
            double_buffered=accelerator.double_buffered,
            vector_width=accelerator.vector_width,
            element_bytes=accelerator.element_bytes,
            clock_ghz=accelerator.clock_ghz,
            dram_bandwidth=accelerator.dram_bandwidth,
        )

    def contains(self, accelerator: Accelerator) -> bool:
        return (
            self.num_pes.contains(accelerator.num_pes)
            and self.bandwidth.contains(accelerator.noc.bandwidth)
            and self.avg_latency == accelerator.noc.avg_latency
            and self.multicast == accelerator.noc.multicast
            and self.l1_size == accelerator.l1_size
            and self.l2_size == accelerator.l2_size
            and self.spatial_reduction == accelerator.spatial_reduction
            and self.double_buffered == accelerator.double_buffered
            and self.vector_width == accelerator.vector_width
            and self.element_bytes == accelerator.element_bytes
            and self.clock_ghz == accelerator.clock_ghz
            and self.dram_bandwidth == accelerator.dram_bandwidth
        )

    def delay(self, volume: IntervalFloat) -> IntervalFloat:
        """The NoC pipe delay lifted.

        ``delay(ceil(v))`` is nondecreasing in ``v`` and nonincreasing in
        the bandwidth, so the sound corners are ``(v.lo, bw.hi)`` and
        ``(v.hi, bw.lo)`` — each evaluated with the exact scalar code of
        :meth:`repro.hardware.accelerator.NoC.delay`.
        """

        def scalar(volume_f: float, bw: int) -> float:
            v = int(math.ceil(volume_f))
            if v <= 0:
                return 0.0
            return float(ceil_div(v, bw) + self.avg_latency)

        return IntervalFloat(
            scalar(volume.lo, self.bandwidth.hi),
            scalar(volume.hi, self.bandwidth.lo),
        )


# ----------------------------------------------------------------------
# Axis lifting
# ----------------------------------------------------------------------
def _conv_out_extent(s_in: int, s_k: int, stride: int, dilation: int) -> int:
    k_ext = (s_k - 1) * dilation + 1
    if s_in < k_ext:
        return 0
    return (s_in - k_ext) // stride + 1


def axis_extent(axis: Axis, sizes: Mapping[str, IntervalInt]) -> IntervalInt:
    """``axis.extent`` lifted (exact: every kind is monotone per argument)."""
    if isinstance(axis, PlainAxis):
        return sizes[axis.dim]
    if isinstance(axis, SlidingInputAxis):
        s_out = sizes[axis.out_dim]
        s_k = sizes[axis.kernel_dim]
        return (s_out - 1) * axis.stride + (s_k - 1) * axis.dilation + 1
    if isinstance(axis, ConvOutputAxis):
        s_in = sizes[axis.in_dim]
        s_k = sizes[axis.kernel_dim]
        # Nondecreasing in the input chunk, nonincreasing in the kernel
        # chunk (incl. the zero branch), hence the two corners.
        return IntervalInt(
            _conv_out_extent(s_in.lo, s_k.hi, axis.stride, axis.dilation),
            _conv_out_extent(s_in.hi, s_k.lo, axis.stride, axis.dilation),
        )
    raise AbstractDomainError(f"unknown axis kind {type(axis).__name__}")


def axis_shift_abs(axis: Axis, offsets: Mapping[str, IntervalInt]) -> IntervalFloat:
    """``abs(axis.shift(offsets))`` lifted."""
    if isinstance(axis, PlainAxis):
        signed = offsets.get(axis.dim, _INT_ZERO).to_float()
    elif isinstance(axis, SlidingInputAxis):
        signed = (
            offsets.get(axis.out_dim, _INT_ZERO) * axis.stride
            + offsets.get(axis.kernel_dim, _INT_ZERO) * axis.dilation
        ).to_float()
    elif isinstance(axis, ConvOutputAxis):
        numerator = (
            offsets.get(axis.in_dim, _INT_ZERO)
            - offsets.get(axis.kernel_dim, _INT_ZERO) * axis.dilation
        )
        signed = IntervalFloat(
            numerator.lo / axis.stride, numerator.hi / axis.stride
        )
    else:
        raise AbstractDomainError(f"unknown axis kind {type(axis).__name__}")
    return signed.abs()


def _tri_zero(value: IntervalFloat) -> TriBool:
    """``value == 0`` for a non-negative interval, three-valued."""
    if value.hi <= 0.0:
        return True
    if value.lo > 0.0:
        return False
    return None


# ----------------------------------------------------------------------
# Reuse analysis lifted
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _AbsOdometerEntry:
    position: int
    steps: IntervalInt
    advancing_offsets: Mapping[str, IntervalInt]
    is_fold: bool


@dataclass(frozen=True)
class AbstractTraffic:
    """Interval counterpart of :class:`~repro.engines.reuse.TensorTraffic`."""

    fetch: IntervalFloat
    unique: IntervalFloat
    delivered: IntervalFloat
    stationary: TriBool


@dataclass(frozen=True)
class AbstractTransitionClass:
    label: str
    count: IntervalInt  # lo may be 0: the class may not occur for some shapes
    traffic: Mapping[str, AbstractTraffic]
    outputs_advance: TriBool


@dataclass(frozen=True)
class AbstractLevelReuse:
    """Interval counterpart of :class:`~repro.engines.reuse.LevelReuse`."""

    level: AbstractLevel
    init: AbstractTransitionClass
    classes: Tuple[AbstractTransitionClass, ...]
    output_name: str
    chunk_volumes: Mapping[str, IntervalFloat]
    unique_chunk_volumes: Mapping[str, IntervalFloat]
    outputs_per_sweep: IntervalFloat
    psum_factor: IntervalInt
    output_spatially_reduced: TriBool

    @property
    def egress_per_sweep(self) -> IntervalFloat:
        return self.outputs_per_sweep * self.psum_factor.to_float()

    @property
    def psum_readback_per_sweep(self) -> IntervalFloat:
        return self.outputs_per_sweep * (self.psum_factor - 1).to_float()


def _abs_build_odometer(level: AbstractLevel) -> List[_AbsOdometerEntry]:
    """Mirror of :func:`repro.engines.reuse.build_odometer`."""
    entries: List[_AbsOdometerEntry] = []
    fold_offsets: Dict[str, IntervalInt] = {}
    fold_position = None
    for position, directive in enumerate(level.directives):
        if directive.spatial:
            fold_offsets[directive.dim] = directive.offset * level.width
            if fold_position is None:
                fold_position = position
        else:
            entries.append(
                _AbsOdometerEntry(
                    position=position,
                    steps=directive.steps,
                    advancing_offsets={directive.dim: directive.offset},
                    is_fold=False,
                )
            )
    if fold_offsets:
        entries.append(
            _AbsOdometerEntry(
                position=fold_position if fold_position is not None else 0,
                steps=level.folds,
                advancing_offsets=fold_offsets,
                is_fold=True,
            )
        )
        entries.sort(key=lambda entry: entry.position)
    return entries


def _abs_moves_tensor(
    tensor: TensorInfo, offsets: Mapping[str, IntervalInt]
) -> TriBool:
    return tri_any(
        tri_f_gt(axis_shift_abs(axis, offsets), 0.0) for axis in tensor.axes
    )


def _abs_full_chunk_traffic(
    tensor: TensorInfo,
    sizes: Mapping[str, IntervalInt],
    spatial_offsets: Mapping[str, IntervalInt],
    active: IntervalFloat,
) -> AbstractTraffic:
    fetch = FLOAT_ONE
    unique = FLOAT_ONE
    for axis in tensor.axes:
        extent = axis_extent(axis, sizes).to_float()
        sigma = axis_shift_abs(axis, spatial_offsets)
        fetch = fetch * extent
        unique = unique * (extent + (active - 1.0) * f_min(sigma, extent))
    fetch = fetch * tensor.density
    unique = unique * tensor.density
    return AbstractTraffic(fetch, unique, fetch * active, stationary=False)


def _abs_delta_traffic(
    tensor: TensorInfo,
    sizes: Mapping[str, IntervalInt],
    spatial_offsets: Mapping[str, IntervalInt],
    active: IntervalFloat,
    advancing: Mapping[str, IntervalInt],
) -> AbstractTraffic:
    """The halo-delta branch of ``_tensor_traffic`` lifted."""
    terms: List[IntervalInt] = []
    contributes: List[TriBool] = []
    for axis in tensor.axes:
        extent = axis_extent(axis, sizes)
        coupled = any(dim in advancing for dim in axis.dims)
        if not coupled:
            terms.append(extent)
            contributes.append(False)
            continue
        shift = axis_shift_abs(axis, advancing)
        positive = tri_f_gt(shift, 0.0)
        if positive is False:
            terms.append(extent)
        else:
            delta = i_min(shift.ceil_int(), extent)
            terms.append(delta if positive is True else delta.hull(extent))
        contributes.append(positive)

    has_delta = tri_any(contributes)
    if has_delta is False:
        return AbstractTraffic(FLOAT_ZERO, FLOAT_ZERO, FLOAT_ZERO, stationary=True)

    fetch = FLOAT_ONE
    unique = FLOAT_ONE
    for axis, term in zip(tensor.axes, terms):
        term_f = term.to_float()
        sigma = axis_shift_abs(axis, spatial_offsets)
        fetch = fetch * term_f
        unique = unique * (term_f + (active - 1.0) * f_min(sigma, term_f))
    fetch = fetch * tensor.density
    unique = unique * tensor.density
    delivered = fetch * active
    if has_delta is None:
        # The stationary early-return may apply to part of the box.
        return AbstractTraffic(
            fetch.hull(FLOAT_ZERO),
            unique.hull(FLOAT_ZERO),
            delivered.hull(FLOAT_ZERO),
            stationary=None,
        )
    return AbstractTraffic(fetch, unique, delivered, stationary=False)


def _traffic_hull(a: AbstractTraffic, b: AbstractTraffic) -> AbstractTraffic:
    stationary: TriBool
    if a.stationary is b.stationary and a.stationary is not None:
        stationary = a.stationary
    else:
        stationary = None
    return AbstractTraffic(
        a.fetch.hull(b.fetch),
        a.unique.hull(b.unique),
        a.delivered.hull(b.delivered),
        stationary=stationary,
    )


def _abs_tensor_traffic(
    tensor: TensorInfo,
    sizes: Mapping[str, IntervalInt],
    spatial_offsets: Mapping[str, IntervalInt],
    active: IntervalFloat,
    advancing: Mapping[str, IntervalInt],
    inner_entries: Sequence[_AbsOdometerEntry],
) -> AbstractTraffic:
    inner_reset_moves = tri_any(
        tri_all(
            (
                tri_gt(entry.steps, 1),
                _abs_moves_tensor(tensor, entry.advancing_offsets),
            )
        )
        for entry in inner_entries
    )
    if inner_reset_moves is True:
        return _abs_full_chunk_traffic(tensor, sizes, spatial_offsets, active)
    delta = _abs_delta_traffic(
        tensor, sizes, spatial_offsets, active, advancing
    )
    if inner_reset_moves is False:
        return delta
    full = _abs_full_chunk_traffic(tensor, sizes, spatial_offsets, active)
    return _traffic_hull(full, delta)


def _abs_psum_factor(
    entries: Sequence[_AbsOdometerEntry], tensors: TensorAnalysis
) -> IntervalInt:
    """``_psum_factor`` lifted.

    The concrete function multiplies the steps of every reduction-dim
    iterator sitting outer to the *last* output-advancing iterator. Under
    intervals the last advancing position itself may be uncertain; the
    sound bounds bracket it between the last *definite* advancing entry
    (everything outer to it is definitely counted when its own condition
    definitely holds) and the last *possible* one.
    """
    output = tensors.output

    def advances(entry: _AbsOdometerEntry) -> TriBool:
        return tri_any(
            tri_f_gt(axis_shift_abs(axis, entry.advancing_offsets), 0.0)
            for axis in output.axes
        )

    adv = [advances(entry) for entry in entries]
    flags = [
        tri_all((tri_gt(entry.steps, 1), adv[index]))
        for index, entry in enumerate(entries)
    ]
    definite = [index for index, flag in enumerate(flags) if flag is True]
    possible = [index for index, flag in enumerate(flags) if flag is not False]
    if not possible:
        return INT_ONE

    def contribution(index: int) -> TriBool:
        entry = entries[index]
        if not (set(entry.advancing_offsets) & tensors.reduction_dims):
            return False
        return tri_all((tri_gt(entry.steps, 1), tri_not(adv[index])))

    lo = 1
    if definite:
        for index in range(max(definite)):
            if contribution(index) is True:
                lo *= entries[index].steps.lo
    hi = 1
    for index in range(max(possible)):
        if contribution(index) is not False:
            hi *= entries[index].steps.hi
    return IntervalInt(lo, max(lo, hi))


def abstract_level_reuse(
    level: AbstractLevel, tensors: TensorAnalysis
) -> AbstractLevelReuse:
    """Mirror of :func:`repro.engines.reuse.analyze_level_reuse`."""
    sizes = level.chunk_sizes()
    spatial_offsets = level.spatial_offsets
    active = level.avg_active
    entries = _abs_build_odometer(level)

    init_traffic = {
        t.name: _abs_full_chunk_traffic(t, sizes, spatial_offsets, active)
        for t in tensors.tensors
    }
    init = AbstractTransitionClass(
        label="init", count=INT_ONE, traffic=init_traffic, outputs_advance=False
    )

    classes: List[AbstractTransitionClass] = []
    outer_product = INT_ONE
    for index, entry in enumerate(entries):
        if entry.steps.hi > 1:
            # count = (steps - 1) * outer_product; a zero lower bound
            # soundly covers the shapes where the class does not occur.
            count = (entry.steps - 1) * outer_product
            inner_entries = entries[index + 1 :]
            traffic = {
                t.name: _abs_tensor_traffic(
                    t,
                    sizes,
                    spatial_offsets,
                    active,
                    entry.advancing_offsets,
                    inner_entries,
                )
                for t in tensors.tensors
            }
            output_name = tensors.output.name
            outputs_advance = tri_not(traffic[output_name].stationary)
            label = "+".join(sorted(entry.advancing_offsets)) + (
                " (fold)" if entry.is_fold else ""
            )
            classes.append(
                AbstractTransitionClass(
                    label=label,
                    count=count,
                    traffic=traffic,
                    outputs_advance=outputs_advance,
                )
            )
        outer_product = outer_product * entry.steps

    chunk_volumes = {
        t.name: i_prod(axis_extent(axis, sizes) for axis in t.axes).to_float()
        * t.density
        for t in tensors.tensors
    }
    unique_chunk_volumes = {
        t.name: _abs_full_chunk_traffic(t, sizes, spatial_offsets, active).unique
        for t in tensors.tensors
    }

    output = tensors.output
    outputs_per_sweep = (
        i_prod(axis_extent(axis, level.local_sizes) for axis in output.axes).to_float()
        * output.density
    )
    psum_factor = _abs_psum_factor(entries, tensors)
    output_sigma_zero = tri_all(
        _tri_zero(axis_shift_abs(axis, spatial_offsets)) for axis in output.axes
    )
    output_spatially_reduced = tri_all(
        (
            tri_gt(level.width, 1),
            tri_gt(level.spatial_chunks, 1),
            output_sigma_zero,
        )
    )

    return AbstractLevelReuse(
        level=level,
        init=init,
        classes=tuple(classes),
        output_name=output.name,
        chunk_volumes=chunk_volumes,
        unique_chunk_volumes=unique_chunk_volumes,
        outputs_per_sweep=outputs_per_sweep,
        psum_factor=psum_factor,
        output_spatially_reduced=output_spatially_reduced,
    )


def _abs_avg_step_change_ratio(
    parent_reuse: AbstractLevelReuse,
) -> Dict[str, IntervalFloat]:
    """``_avg_step_change_ratio`` lifted; each ratio stays inside [0, 1]."""
    steps = parent_reuse.level.sweep_steps.to_float()
    ratios: Dict[str, IntervalFloat] = {}
    for name, init_traffic in parent_reuse.init.traffic.items():
        full = init_traffic.fetch
        if full.hi <= 0.0:
            ratios[name] = FLOAT_ZERO
            continue
        total = f_sum(
            [full]
            + [
                cls.count.to_float() * cls.traffic[name].fetch
                for cls in parent_reuse.classes
            ]
        )
        if full.lo > 0.0:
            ratio = f_min(FLOAT_ONE, (total / steps) / full).clamp_low(0.0)
        else:
            # The zero-fetch branch may apply to part of the box; the
            # concrete ratio is min(1, nonneg) either way.
            ratio = IntervalFloat(0.0, 1.0)
        ratios[name] = ratio
    return ratios


# ----------------------------------------------------------------------
# Performance recursion lifted
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AbstractLevelStats:
    """Interval counterpart of :class:`~repro.engines.analysis.LevelStats`."""

    index: int
    runtime_sweep: IntervalFloat
    ingress_per_sweep: Mapping[str, IntervalFloat]
    delivered_per_sweep: Mapping[str, IntervalFloat]
    egress_per_sweep: IntervalFloat
    psum_readback_per_sweep: IntervalFloat
    upstream_buffer_req: IntervalInt
    peak_bw_elems_per_cycle: IntervalFloat


def _branch3(cond: TriBool, if_true: IntervalFloat, if_false: IntervalFloat) -> IntervalFloat:
    if cond is True:
        return if_true
    if cond is False:
        return if_false
    return if_true.hull(if_false)


def _abs_level_performance(
    reuse: AbstractLevelReuse,
    hw: HardwareBox,
    t_inner: IntervalFloat,
    serial_init: bool,
    init_scale: Optional[Dict[str, IntervalFloat]],
) -> AbstractLevelStats:
    """Mirror of ``analysis._analyze_level_performance``."""
    multicast = hw.multicast
    out_name = reuse.output_name

    def init_factor(name: str) -> IntervalFloat:
        if init_scale is None:
            return FLOAT_ONE
        return init_scale.get(name, FLOAT_ONE)

    def ingress_volume(traffic: Mapping[str, AbstractTraffic]) -> IntervalFloat:
        return f_sum(
            (tt.unique if multicast else tt.delivered)
            for name, tt in traffic.items()
            if name != out_name
        )

    # spatial reduction support is a concrete switch; only the
    # output_spatially_reduced predicate is three-valued.
    osr_no_hw: TriBool = (
        False if hw.spatial_reduction else reuse.output_spatially_reduced
    )

    def egress_volume(traffic: Mapping[str, AbstractTraffic]) -> IntervalFloat:
        tt = traffic[out_name]
        return _branch3(osr_no_hw, tt.delivered, tt.unique)

    ingress_sweep: Dict[str, IntervalFloat] = {}
    delivered_sweep: Dict[str, IntervalFloat] = {}
    for name, tt in reuse.init.traffic.items():
        if name == out_name:
            continue
        factor = init_factor(name)
        ingress_sweep[name] = (tt.unique if multicast else tt.delivered) * factor
        delivered_sweep[name] = tt.delivered * factor

    init_ingress = f_sum(ingress_sweep.values()) if ingress_sweep else FLOAT_ZERO
    init_delay = hw.delay(init_ingress)
    if serial_init:
        runtime = init_delay + t_inner
    else:
        runtime = f_max(init_delay, t_inner)
    total_steps = FLOAT_ONE
    comm_volume = init_ingress

    egress_hw_factor = _branch3(osr_no_hw, reuse.level.avg_active, FLOAT_ONE)
    egress_total = reuse.egress_per_sweep * egress_hw_factor
    readback_total = reuse.psum_readback_per_sweep
    readback_positive = tri_f_gt(readback_total, 0.0)

    accounted_egress = FLOAT_ZERO
    for cls in reuse.classes:
        ingress = ingress_volume(cls.traffic)
        ev = egress_volume(cls.traffic)
        egress = _branch3(cls.outputs_advance, ev, FLOAT_ZERO)
        readback = _branch3(
            tri_all((cls.outputs_advance, readback_positive)), egress, FLOAT_ZERO
        )
        ingress_delay = hw.delay(ingress + readback)
        egress_delay = hw.delay(egress)
        if hw.double_buffered:
            step_delay = f_max_many((ingress_delay, egress_delay, t_inner))
        else:
            step_delay = ingress_delay + egress_delay + t_inner
        count_f = cls.count.to_float()
        runtime = runtime + count_f * step_delay
        total_steps = total_steps + count_f
        comm_volume = comm_volume + count_f * (ingress + readback + egress)
        accounted_egress = accounted_egress + _branch3(
            cls.outputs_advance, count_f * ev, FLOAT_ZERO
        )
        for name, tt in cls.traffic.items():
            if name == out_name:
                continue
            volume = tt.unique if multicast else tt.delivered
            ingress_sweep[name] = (
                ingress_sweep.get(name, FLOAT_ZERO) + count_f * volume
            )
            delivered_sweep[name] = (
                delivered_sweep.get(name, FLOAT_ZERO) + count_f * tt.delivered
            )

    egress_unaccounted = egress_total + readback_total - accounted_egress
    peak_bw = (comm_volume + f_max(FLOAT_ZERO, egress_unaccounted)) / f_max(
        FLOAT_ONE, total_steps * t_inner
    )

    upstream_sum = f_sum(reuse.unique_chunk_volumes.values()).clamp_low(0.0)
    upstream_req = upstream_sum.floor_int() * (2 * hw.element_bytes)

    return AbstractLevelStats(
        index=reuse.level.index,
        runtime_sweep=runtime,
        ingress_per_sweep=ingress_sweep,
        delivered_per_sweep=delivered_sweep,
        egress_per_sweep=egress_total,
        psum_readback_per_sweep=readback_total,
        upstream_buffer_req=upstream_req,
        peak_bw_elems_per_cycle=peak_bw,
    )


# ----------------------------------------------------------------------
# Whole-layer analysis lifted
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AbstractAnalysis:
    """Interval counterpart of :class:`~repro.engines.analysis.LayerAnalysis`."""

    layer_name: str
    dataflow_name: str
    num_pes: IntervalInt
    runtime: IntervalFloat
    total_ops: IntervalFloat
    utilization: IntervalFloat
    level_stats: Tuple[AbstractLevelStats, ...]
    l1_buffer_req: IntervalInt
    l2_buffer_req: IntervalInt
    intermediate_buffer_reqs: Tuple[IntervalInt, ...]
    noc_bw_req_elems: IntervalFloat
    noc_bw_req_gbps: IntervalFloat
    energy_breakdown: Mapping[str, IntervalFloat]
    binding: AbstractBinding
    caveats: Tuple[str, ...]

    @property
    def throughput(self) -> IntervalFloat:
        return self.total_ops / self.runtime

    @property
    def energy_total(self) -> IntervalFloat:
        return f_sum(self.energy_breakdown.values())

    @property
    def edp(self) -> IntervalFloat:
        return self.energy_total * self.runtime


def _abs_total_ops(box: ShapeBox) -> IntervalInt:
    """``Layer.total_ops`` lifted over the box's dimension intervals."""
    sizes = box.all_dim_sizes()
    factors: List[IntervalInt] = []
    for template in box.operator.compute_templates:
        if template == ROW_OUT:
            factors.append(sizes[D.YP])
        elif template == COL_OUT:
            factors.append(sizes[D.XP])
        elif template == ROW_IN:
            factors.append(sizes[D.Y])
        elif template == COL_IN:
            factors.append(sizes[D.X])
        else:
            factors.append(sizes[template])
    return i_prod(factors) * box.groups


def _abs_touched_extent(
    in_extent: IntervalInt,
    out_extent: IntervalInt,
    kernel: IntervalInt,
    stride: int,
    dilation: int,
) -> IntervalInt:
    """``operators._touched_extent`` lifted via interval composition."""
    k_ext = (kernel - 1) * dilation + 1
    touched = out_extent * i_min(IntervalInt.point(stride), k_ext) + i_max(
        _INT_ZERO, k_ext - stride
    )
    return i_min(in_extent, touched)


def _abs_tensor_volume(box: ShapeBox, tensor_name: str, touched: bool) -> IntervalInt:
    """``Layer.tensor_volume`` / ``Layer.touched_tensor_volume`` lifted."""
    sizes = box.all_dim_sizes()
    template = box.operator.tensor(tensor_name)
    factors: List[IntervalInt] = []
    for axis_template in template.axis_templates:
        if axis_template == ROW_IN:
            if touched:
                factors.append(
                    _abs_touched_extent(
                        sizes[D.Y], sizes[D.YP], sizes[D.R],
                        box.stride[0], box.dilation[0],
                    )
                )
            else:
                factors.append(sizes[D.Y])
        elif axis_template == COL_IN:
            if touched:
                factors.append(
                    _abs_touched_extent(
                        sizes[D.X], sizes[D.XP], sizes[D.S],
                        box.stride[1], box.dilation[1],
                    )
                )
            else:
                factors.append(sizes[D.X])
        elif axis_template == ROW_OUT:
            factors.append(sizes[D.YP])
        elif axis_template == COL_OUT:
            factors.append(sizes[D.XP])
        else:
            factors.append(sizes[axis_template])
    return i_prod(factors) * box.groups


def abstract_analyze(
    box: ShapeBox,
    dataflow: Dataflow,
    hw: HardwareBox,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> AbstractAnalysis:
    """Analyze a shape family under a dataflow on a hardware family.

    Raises :class:`~repro.errors.BindingError` when binding provably
    fails for every concretization; otherwise the result covers exactly
    the concretizations on which :func:`~repro.engines.bind_dataflow`
    succeeds (partial-failure subranges are reported in ``caveats``).
    """
    bound = abstract_bind(dataflow, box, hw.num_pes)
    representative = box.representative_layer()
    tensors = analyze_tensors(representative, bound.row_rep, bound.col_rep)
    reuses = [abstract_level_reuse(level, tensors) for level in bound.levels]

    input_density = 1.0
    for info in tensors.inputs:
        input_density *= info.density

    # Performance recursion, innermost level outward.
    innermost = bound.innermost()
    ops_per_step = (
        i_prod(
            axis_extent(axis, innermost.chunk_sizes())
            for axis in tensors.compute_axes
        ).to_float()
        * input_density
    )
    compute_delay = f_max(FLOAT_ONE, ops_per_step / hw.vector_width)

    level_stats: List[AbstractLevelStats] = []
    t_inner = compute_delay
    for level, reuse in zip(reversed(bound.levels), reversed(reuses)):
        if level.index == 0:
            init_scale = None
        else:
            init_scale = _abs_avg_step_change_ratio(reuses[level.index - 1])
        stats = _abs_level_performance(
            reuse,
            hw,
            t_inner,
            serial_init=level.index == 0,
            init_scale=init_scale,
        )
        level_stats.append(stats)
        t_inner = stats.runtime_sweep
    level_stats.reverse()
    runtime = level_stats[0].runtime_sweep * box.groups

    # Activity counts (only the ones feeding energy / reported bounds).
    total_ops = _abs_total_ops(box).to_float() * input_density

    multipliers: List[IntervalFloat] = [FLOAT_ONE]
    running = FLOAT_ONE
    for level in bound.levels[:-1]:
        running = running * (level.sweep_steps.to_float() * level.avg_active)
        multipliers.append(running)
    group_factor = box.groups

    l2_reads: Dict[str, IntervalFloat] = {}
    l2_writes: Dict[str, IntervalFloat] = {}
    l1_reads: Dict[str, IntervalFloat] = {}
    l1_writes: Dict[str, IntervalFloat] = {}
    intermediate_reads = FLOAT_ZERO
    intermediate_writes = FLOAT_ZERO

    top = level_stats[0]
    out_name = tensors.output.name
    for name, volume in top.ingress_per_sweep.items():
        l2_reads[name] = volume * group_factor
    l2_reads[out_name] = (
        l2_reads.get(out_name, FLOAT_ZERO)
        + top.psum_readback_per_sweep * group_factor
    )
    l2_writes[out_name] = top.egress_per_sweep * group_factor

    bottom = level_stats[-1]
    bottom_multiplier = multipliers[-1] * group_factor
    for name, volume in bottom.delivered_per_sweep.items():
        l1_writes[name] = volume * bottom_multiplier
    has_reduction = bool(tensors.reduction_dims)
    for info in tensors.inputs:
        l1_reads[info.name] = l1_reads.get(info.name, FLOAT_ZERO) + total_ops
    l1_reads[out_name] = total_ops if has_reduction else FLOAT_ZERO
    l1_writes[out_name] = l1_writes.get(out_name, FLOAT_ZERO) + total_ops

    for depth in range(1, len(level_stats)):
        stats = level_stats[depth]
        above = level_stats[depth - 1]
        multiplier = multipliers[depth] * group_factor
        multiplier_above = multipliers[depth - 1] * group_factor
        intermediate_reads = intermediate_reads + (
            f_sum(stats.ingress_per_sweep.values())
            + stats.psum_readback_per_sweep
        ) * multiplier
        intermediate_writes = intermediate_writes + (
            f_sum(above.delivered_per_sweep.values()) * multiplier_above
        )
        intermediate_reads = intermediate_reads + stats.egress_per_sweep * multiplier
        intermediate_writes = intermediate_writes + stats.egress_per_sweep * multiplier

    # Buffer requirements (double buffering).
    element_bytes = hw.element_bytes
    buffering = 2 if hw.double_buffered else 1
    l1_req = i_sum(
        i_prod(axis_extent(axis, innermost.chunk_sizes()) for axis in info.axes)
        for info in tensors.tensors
    ) * (buffering * element_bytes)
    l2_sum = f_sum(
        reuses[0].unique_chunk_volumes[t.name] / max(t.density, 1e-12)
        for t in tensors.tensors
    ).clamp_low(0.0)
    l2_req = l2_sum.floor_int() * (buffering * element_bytes)
    intermediate_reqs = tuple(
        i_sum(
            i_prod(axis_extent(axis, level.chunk_sizes()) for axis in info.axes)
            for info in tensors.tensors
        )
        * (buffering * element_bytes)
        for level in bound.levels[:-1]
    )

    # DRAM traffic.
    dram_reads: Dict[str, IntervalFloat] = {}
    dram_writes: Dict[str, IntervalFloat] = {}
    if hw.l2_size is None:
        l2_fits: TriBool = True
    elif hw.l2_size >= l2_req.hi:
        l2_fits = True
    elif hw.l2_size < l2_req.lo:
        l2_fits = False
    else:
        l2_fits = None
    for info in tensors.inputs:
        streamed = _abs_tensor_volume(box, info.name, touched=True).to_float() * (
            info.density
        )
        spilled = f_max(streamed, l2_reads.get(info.name, FLOAT_ZERO))
        dram_reads[info.name] = _branch3(l2_fits, streamed, spilled)
    dram_writes[out_name] = (
        _abs_tensor_volume(box, out_name, touched=False).to_float()
        * tensors.output.density
    )
    for name, volume in dram_reads.items():
        l2_writes[name] = l2_writes.get(name, FLOAT_ZERO) + volume

    noc_bw_req = top.peak_bw_elems_per_cycle
    noc_bw_req_gbps = noc_bw_req * (element_bytes * hw.clock_ghz)

    # Energy.
    def sram_energies(
        size: Optional[int], req: IntervalInt
    ) -> Tuple[IntervalFloat, IntervalFloat]:
        if size is not None:
            read = IntervalFloat.point(energy_model.sram_access(size))
        else:
            capacity = i_max(INT_ONE, req)
            # sram_access grows monotonically with capacity.
            read = IntervalFloat(
                energy_model.sram_access(capacity.lo),
                energy_model.sram_access(capacity.hi),
            )
        write = read * energy_model.sram_write_factor
        return read, write

    e_l1_read, e_l1_write = sram_energies(hw.l1_size, l1_req)
    e_l2_read, e_l2_write = sram_energies(hw.l2_size, l2_req)
    noc_traffic = f_sum(l2_reads.values()) + top.egress_per_sweep * group_factor
    energy_breakdown = {
        "MAC": total_ops * energy_model.mac,
        "L1 read": f_sum(l1_reads.values()) * e_l1_read,
        "L1 write": f_sum(l1_writes.values()) * e_l1_write,
        "L2 read": f_sum(l2_reads.values()) * e_l2_read,
        "L2 write": f_sum(l2_writes.values()) * e_l2_write,
        "intermediate": (
            intermediate_reads * e_l1_read + intermediate_writes * e_l1_write
        ),
        "NoC": noc_traffic * energy_model.noc_hop,
        "DRAM": (f_sum(dram_reads.values()) + f_sum(dram_writes.values()))
        * energy_model.dram,
    }

    if hw.dram_bandwidth is not None:
        dram_traffic = f_sum(dram_reads.values()) + f_sum(dram_writes.values())
        runtime = f_max(runtime, dram_traffic / hw.dram_bandwidth)

    utilization = f_min(
        FLOAT_ONE,
        total_ops
        / (runtime * hw.num_pes.to_float() * float(hw.vector_width)),
    ).clamp_low(0.0)

    return AbstractAnalysis(
        layer_name=box.name,
        dataflow_name=dataflow.name,
        num_pes=hw.num_pes,
        runtime=runtime,
        total_ops=total_ops,
        utilization=utilization,
        level_stats=tuple(level_stats),
        l1_buffer_req=l1_req,
        l2_buffer_req=l2_req,
        intermediate_buffer_reqs=intermediate_reqs,
        noc_bw_req_elems=noc_bw_req,
        noc_bw_req_gbps=noc_bw_req_gbps,
        energy_breakdown=energy_breakdown,
        binding=bound,
        caveats=bound.caveats,
    )


__all__ = [
    "AbstractAnalysis",
    "AbstractLevelReuse",
    "AbstractLevelStats",
    "AbstractTraffic",
    "AbstractTransitionClass",
    "HardwareBox",
    "abstract_analyze",
    "abstract_level_reuse",
    "axis_extent",
    "axis_shift_abs",
]
