"""Symbolic layer shapes: an interval box over the canonical dimensions.

A :class:`ShapeBox` is the abstract counterpart of
:class:`~repro.model.Layer`: the operator, stride, dilation, groups and
densities stay concrete (they select the *structure* of the analysis —
which tensors exist and which axis classes resolve), while every
canonical dimension extent is an :class:`IntervalInt`. The box denotes
the set of **valid** layers inside it — concretizations that
:class:`~repro.model.Layer` itself rejects (an activation plane smaller
than the kernel extent) are excluded by definition, which is why the
derived output extents ``Y'``/``X'`` may soundly be clamped to ``>= 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.absint.interval import AbstractDomainError, IntervalInt, i_max
from repro.errors import LayerError
from repro.model.layer import Layer
from repro.tensors import dims as D
from repro.tensors.operators import Operator


def _derived_out(y: int, r: int, stride: int, dilation: int) -> int:
    """The scalar ``Y'`` formula, shared with :class:`Layer`."""
    k_ext = (r - 1) * dilation + 1
    return (y - k_ext) // stride + 1


@dataclass(frozen=True)
class ShapeBox:
    """A family of layers: one operator, interval dimension extents."""

    name: str
    operator: Operator
    dims: Mapping[str, IntervalInt]
    stride: Tuple[int, int] = (1, 1)
    dilation: Tuple[int, int] = (1, 1)
    groups: int = 1
    densities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ranges: Dict[str, IntervalInt] = {
            dim: IntervalInt.point(1) for dim in D.CANONICAL_DIMS
        }
        for dim, value in dict(self.dims).items():
            if dim not in ranges:
                raise LayerError(f"{self.name}: unknown dimension {dim!r}")
            if not isinstance(value, IntervalInt):
                raise LayerError(
                    f"{self.name}: dimension {dim} must be an IntervalInt, "
                    f"got {value!r}"
                )
            if value.lo < 1:
                raise LayerError(
                    f"{self.name}: dimension {dim}={value} must be >= 1"
                )
            ranges[dim] = value
        for dim, value in ranges.items():
            if value.hi > 1 and dim not in self.operator.used_dims:
                raise LayerError(
                    f"{self.name}: dimension {dim}={value} is not used by "
                    f"operator {self.operator.name}"
                )
        # The box must contain at least one valid layer: the most
        # permissive corner (largest plane, smallest kernel) must pass
        # the Layer window validation.
        for in_dim, k_dim, axis in ((D.Y, D.R, 0), (D.X, D.S, 1)):
            k_ext = (ranges[k_dim].lo - 1) * self.dilation[axis] + 1
            if ranges[in_dim].hi < k_ext:
                raise LayerError(
                    f"{self.name}: no valid layer in box — {in_dim}={ranges[in_dim]} "
                    f"is always smaller than the minimal kernel extent {k_ext} "
                    f"along {k_dim}"
                )
        object.__setattr__(self, "dims", dict(ranges))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_layer(
        layer: Layer,
        ranges: Optional[Mapping[str, Tuple[int, int]]] = None,
        widen: float = 1.0,
    ) -> "ShapeBox":
        """A box around ``layer``: each dim widened by ``widen`` (a factor
        applied down and up), with explicit per-dim ``ranges`` overriding.
        """
        if widen < 1.0:
            raise AbstractDomainError(f"widen factor must be >= 1, got {widen}")
        dims: Dict[str, IntervalInt] = {}
        for dim, size in layer.dims.items():
            if ranges is not None and dim in ranges:
                lo, hi = ranges[dim]
                dims[dim] = IntervalInt(lo, hi)
            elif size == 1:
                dims[dim] = IntervalInt.point(1)
            else:
                dims[dim] = IntervalInt(
                    max(1, int(size / widen)), max(1, int(size * widen))
                )
        return ShapeBox(
            name=layer.name,
            operator=layer.operator,
            dims=dims,
            stride=layer.stride,
            dilation=layer.dilation,
            groups=layer.groups,
            densities=dict(layer.densities),
        )

    # ------------------------------------------------------------------
    # Abstract counterparts of the Layer size API
    # ------------------------------------------------------------------
    @property
    def out_y(self) -> IntervalInt:
        """``Y'`` lifted: increasing in ``Y``, decreasing in ``R``."""
        y, r = self.dims[D.Y], self.dims[D.R]
        lo = _derived_out(y.lo, r.hi, self.stride[0], self.dilation[0])
        hi = _derived_out(y.hi, r.lo, self.stride[0], self.dilation[0])
        # Concretizations with Y < kernel extent are not valid layers;
        # every valid member has Y' >= 1, so the clamp is sound.
        return IntervalInt(max(1, lo), max(1, hi))

    @property
    def out_x(self) -> IntervalInt:
        x, s = self.dims[D.X], self.dims[D.S]
        lo = _derived_out(x.lo, s.hi, self.stride[1], self.dilation[1])
        hi = _derived_out(x.hi, s.lo, self.stride[1], self.dilation[1])
        return IntervalInt(max(1, lo), max(1, hi))

    def all_dim_sizes(self) -> Dict[str, IntervalInt]:
        """Every directive dim's extent interval, incl. ``Y'``/``X'``."""
        sizes = dict(self.dims)
        sizes[D.YP] = self.out_y
        sizes[D.XP] = self.out_x
        return sizes

    def strides_map(self) -> Dict[str, int]:
        return {D.Y: self.stride[0], D.X: self.stride[1]}

    def density(self, tensor_name: str) -> float:
        return dict(self.densities).get(tensor_name, 1.0)

    # ------------------------------------------------------------------
    # Concretization
    # ------------------------------------------------------------------
    def contains(self, layer: Layer) -> bool:
        """Whether ``layer`` is a member of this shape family."""
        if (
            layer.operator is not self.operator
            or layer.stride != self.stride
            or layer.dilation != self.dilation
            or layer.groups != self.groups
            or dict(layer.densities) != dict(self.densities)
        ):
            return False
        return all(
            self.dims[dim].contains(size) for dim, size in layer.dims.items()
        )

    def representative_layer(self) -> Layer:
        """One valid concrete member (the most permissive corner).

        Used to resolve structure-only questions — which tensors the
        operator has and which axis classes the coordinate
        representation selects — that do not depend on the extents.
        """
        return self.concretize({dim: iv.hi for dim, iv in self.dims.items()} | {
            D.R: self.dims[D.R].lo, D.S: self.dims[D.S].lo
        })

    def concretize(self, sizes: Mapping[str, int]) -> Layer:
        """The member layer with the given extents (validated by Layer)."""
        for dim, size in sizes.items():
            if dim not in self.dims or not self.dims[dim].contains(size):
                raise LayerError(
                    f"{self.name}: {dim}={size} is outside the box "
                    f"({self.dims.get(dim)})"
                )
        return Layer(
            name=self.name,
            operator=self.operator,
            dims=dict(sizes),
            stride=self.stride,
            dilation=self.dilation,
            groups=self.groups,
            densities=dict(self.densities),
        )

    def corner_layers(self) -> Iterator[Layer]:
        """The valid extreme members (lo/hi corners of the varying dims)."""
        varying = [dim for dim, iv in self.dims.items() if not iv.is_point]
        for mask in range(1 << len(varying)):
            sizes = {dim: iv.lo for dim, iv in self.dims.items()}
            for bit, dim in enumerate(varying):
                if mask & (1 << bit):
                    sizes[dim] = self.dims[dim].hi
            try:
                yield self.concretize(sizes)
            except LayerError:
                continue  # corner outside the valid-layer subfamily

    def widen_hull(self, other: "ShapeBox") -> "ShapeBox":
        """The smallest box containing both (same structure required)."""
        if self.operator is not other.operator or self.stride != other.stride:
            raise AbstractDomainError(
                "cannot hull shape boxes with different structure"
            )
        dims = {
            dim: i_max(iv, iv).hull(other.dims[dim]) for dim, iv in self.dims.items()
        }
        return ShapeBox(
            name=self.name,
            operator=self.operator,
            dims=dims,
            stride=self.stride,
            dilation=self.dilation,
            groups=self.groups,
            densities=dict(self.densities),
        )

    def __str__(self) -> str:
        spans = ", ".join(
            f"{dim}={iv}" for dim, iv in self.dims.items() if iv.hi > 1
        )
        return f"{self.name}[{self.operator.name}]({spans})"
