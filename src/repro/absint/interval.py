"""Sound interval arithmetic: the abstract domain of the interpreter.

Two interval types cover everything the analytical model computes:

- :class:`IntervalInt` — inclusive integer bounds, used for layer
  dimensions, tile sizes, chunk/step counts, and buffer byte counts.
  The arithmetic dunders (including the reflected forms) make an
  ``IntervalInt`` a drop-in value for the ``+``/``-``/``*`` closure
  trees that :class:`~repro.dataflow.directives.SizeExpr` compiles to,
  so symbolic tile-size expressions evaluate over interval dimension
  bindings without any change to the parser.
- :class:`IntervalFloat` — the continuous quantities (delays, traffic
  volumes, energies, utilizations).

Soundness contract: every operation ``op#`` on intervals satisfies
``x in X and y in Y  =>  op(x, y) in op#(X, Y)``. For monotone
primitives (``ceil_div``, ``num_chunks``, ``//``, ``min``/``max``,
``sqrt``, the NoC pipe delay) the transfer function evaluates the
*exact same scalar code* at the two monotone corner assignments, so no
precision is lost at the primitive level; composite expressions lose
only the correlation between repeated variables (standard interval
over-approximation). Floating-point corner evaluation is sound because
IEEE-754 round-to-nearest arithmetic is weakly monotone argument-wise.

Three-valued predicate helpers (``Optional[bool]``: ``True`` =
definitely, ``False`` = definitely not, ``None`` = undecided over the
interval) support the branch conditions of the lifted engines; an
undecided branch takes the hull of both arms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.util.intmath import ceil_div, num_chunks

#: Three-valued truth: True / False / None (undecided over the range).
TriBool = Optional[bool]


class AbstractDomainError(ValueError):
    """An interval operation was applied outside its sound domain."""


@dataclass(frozen=True)
class IntervalInt:
    """An inclusive integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not isinstance(self.lo, int) or not isinstance(self.hi, int):
            raise AbstractDomainError(
                f"IntervalInt bounds must be ints, got [{self.lo!r}, {self.hi!r}]"
            )
        if self.lo > self.hi:
            raise AbstractDomainError(
                f"empty integer interval [{self.lo}, {self.hi}]"
            )

    # ------------------------------------------------------------------
    # Construction / inspection
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: int) -> "IntervalInt":
        return IntervalInt(value, value)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def encloses(self, other: "IntervalInt") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    def hull(self, other: "IntervalInt") -> "IntervalInt":
        return IntervalInt(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp_low(self, floor: int) -> "IntervalInt":
        """Clamp both bounds up to at least ``floor`` (sound for values
        that the concrete code clamps identically, e.g. ``max(1, x)``)."""
        return IntervalInt(max(floor, self.lo), max(floor, self.hi))

    def to_float(self) -> "IntervalFloat":
        return IntervalFloat(float(self.lo), float(self.hi))

    def __str__(self) -> str:
        if self.is_point:
            return str(self.lo)
        return f"[{self.lo}, {self.hi}]"

    # ------------------------------------------------------------------
    # Arithmetic (the SizeExpr closure-tree operators: +, -, *)
    # ------------------------------------------------------------------
    def _coerce(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        if isinstance(other, bool):  # bool is an int; reject it loudly
            raise AbstractDomainError(f"cannot mix bool {other!r} into intervals")
        if isinstance(other, int):
            return IntervalInt.point(other)
        if isinstance(other, IntervalInt):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return IntervalInt(self.lo + rhs.lo, self.hi + rhs.hi)

    def __radd__(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        return self.__add__(other)

    def __sub__(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return IntervalInt(self.lo - rhs.hi, self.hi - rhs.lo)

    def __rsub__(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        lhs = self._coerce(other)
        if lhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return lhs.__sub__(self)

    def __mul__(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        corners = (
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        )
        return IntervalInt(min(corners), max(corners))

    def __rmul__(self, other: Union[int, "IntervalInt"]) -> "IntervalInt":
        return self.__mul__(other)


@dataclass(frozen=True)
class IntervalFloat:
    """An inclusive floating-point interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi) or self.lo > self.hi:
            raise AbstractDomainError(
                f"empty float interval [{self.lo}, {self.hi}]"
            )

    @staticmethod
    def point(value: float) -> "IntervalFloat":
        return IntervalFloat(value, value)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def hull(self, other: "IntervalFloat") -> "IntervalFloat":
        return IntervalFloat(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp_low(self, floor: float) -> "IntervalFloat":
        return IntervalFloat(max(floor, self.lo), max(floor, self.hi))

    def __str__(self) -> str:
        if self.is_point:
            return f"{self.lo:g}"
        return f"[{self.lo:g}, {self.hi:g}]"

    def _coerce(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        if isinstance(other, bool):
            raise AbstractDomainError(f"cannot mix bool {other!r} into intervals")
        if isinstance(other, (int, float)):
            return IntervalFloat.point(float(other))
        if isinstance(other, IntervalInt):
            return other.to_float()
        if isinstance(other, IntervalFloat):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return IntervalFloat(self.lo + rhs.lo, self.hi + rhs.hi)

    def __radd__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        return self.__add__(other)

    def __sub__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return IntervalFloat(self.lo - rhs.hi, self.hi - rhs.lo)

    def __rsub__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        lhs = self._coerce(other)
        if lhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return lhs.__sub__(self)

    def __mul__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        corners = (
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        )
        return IntervalFloat(min(corners), max(corners))

    def __rmul__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        return self.__mul__(other)

    def __truediv__(self, other: "Union[int, float, IntervalInt, IntervalFloat]") -> "IntervalFloat":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        if rhs.lo <= 0.0:
            raise AbstractDomainError(
                f"interval division needs a strictly positive divisor, got {rhs}"
            )
        corners = (
            self.lo / rhs.lo,
            self.lo / rhs.hi,
            self.hi / rhs.lo,
            self.hi / rhs.hi,
        )
        return IntervalFloat(min(corners), max(corners))

    def ceil_int(self) -> IntervalInt:
        """``int(math.ceil(x))`` lifted (monotone corner evaluation)."""
        return IntervalInt(int(math.ceil(self.lo)), int(math.ceil(self.hi)))

    def floor_int(self) -> IntervalInt:
        """``int(x)`` for non-negative values lifted (floor, monotone)."""
        if self.lo < 0.0:
            raise AbstractDomainError(f"floor_int needs non-negative values, got {self}")
        return IntervalInt(int(self.lo), int(self.hi))

    def abs(self) -> "IntervalFloat":
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return IntervalFloat(-self.hi, -self.lo)
        return IntervalFloat(0.0, max(-self.lo, self.hi))


FLOAT_ZERO = IntervalFloat(0.0, 0.0)
FLOAT_ONE = IntervalFloat(1.0, 1.0)
INT_ONE = IntervalInt(1, 1)


# ----------------------------------------------------------------------
# Monotone transfer functions (exact corner evaluation)
# ----------------------------------------------------------------------
def i_min(a: IntervalInt, b: IntervalInt) -> IntervalInt:
    return IntervalInt(min(a.lo, b.lo), min(a.hi, b.hi))


def i_max(a: IntervalInt, b: IntervalInt) -> IntervalInt:
    return IntervalInt(max(a.lo, b.lo), max(a.hi, b.hi))


def f_min(a: IntervalFloat, b: IntervalFloat) -> IntervalFloat:
    return IntervalFloat(min(a.lo, b.lo), min(a.hi, b.hi))


def f_max(a: IntervalFloat, b: IntervalFloat) -> IntervalFloat:
    return IntervalFloat(max(a.lo, b.lo), max(a.hi, b.hi))


def f_max_many(values: Iterable[IntervalFloat]) -> IntervalFloat:
    result: Optional[IntervalFloat] = None
    for value in values:
        result = value if result is None else f_max(result, value)
    if result is None:
        raise AbstractDomainError("f_max_many needs at least one interval")
    return result


def f_sum(values: Iterable[IntervalFloat]) -> IntervalFloat:
    total = FLOAT_ZERO
    for value in values:
        total = total + value
    return total


def i_sum(values: Iterable[IntervalInt]) -> IntervalInt:
    total = IntervalInt(0, 0)
    for value in values:
        total = total + value
    return total


def i_prod(values: Iterable[IntervalInt]) -> IntervalInt:
    total = INT_ONE
    for value in values:
        total = total * value
    return total


def f_prod(values: Iterable[IntervalFloat]) -> IntervalFloat:
    total = FLOAT_ONE
    for value in values:
        total = total * value
    return total


def i_ceil_div(num: IntervalInt, den: IntervalInt) -> IntervalInt:
    """``ceil_div`` lifted: nondecreasing in ``num``, nonincreasing in ``den``.

    Requires a non-negative numerator range and a positive denominator
    range (exactly the scalar function's domain).
    """
    if num.lo < 0 or den.lo < 1:
        raise AbstractDomainError(
            f"ceil_div domain violated: num={num}, den={den}"
        )
    return IntervalInt(ceil_div(num.lo, den.hi), ceil_div(num.hi, den.lo))


def i_floor_div(num: IntervalInt, den: IntervalInt) -> IntervalInt:
    """``//`` lifted for non-negative numerator, positive denominator."""
    if num.lo < 0 or den.lo < 1:
        raise AbstractDomainError(
            f"floor_div domain violated: num={num}, den={den}"
        )
    return IntervalInt(num.lo // den.hi, num.hi // den.lo)


def i_num_chunks(total: IntervalInt, size: IntervalInt, offset: IntervalInt) -> IntervalInt:
    """``num_chunks`` lifted by exact corner evaluation.

    Monotonicity audit of the scalar function
    ``1 if size >= total else ceil_div(total - size, offset) + 1``:
    nondecreasing in ``total`` (a larger extent needs at least as many
    chunks), nonincreasing in ``size`` and in ``offset``. The two sound
    corners are therefore ``(total.lo, size.hi, offset.hi)`` for the
    lower bound and ``(total.hi, size.lo, offset.lo)`` for the upper.
    """
    if total.lo < 1 or size.lo < 1 or offset.lo < 1:
        raise AbstractDomainError(
            f"num_chunks domain violated: total={total}, size={size}, offset={offset}"
        )
    return IntervalInt(
        num_chunks(total.lo, size.hi, offset.hi),
        num_chunks(total.hi, size.lo, offset.lo),
    )


# ----------------------------------------------------------------------
# Three-valued predicates
# ----------------------------------------------------------------------
def tri_gt(value: IntervalInt, threshold: int) -> TriBool:
    """``value > threshold`` over the whole interval, three-valued."""
    if value.lo > threshold:
        return True
    if value.hi <= threshold:
        return False
    return None


def tri_f_gt(value: IntervalFloat, threshold: float) -> TriBool:
    if value.lo > threshold:
        return True
    if value.hi <= threshold:
        return False
    return None


def tri_not(value: TriBool) -> TriBool:
    return None if value is None else (not value)


def tri_any(values: Iterable[TriBool]) -> TriBool:
    """Three-valued ``any``: True dominates, then None, then False."""
    undecided = False
    for value in values:
        if value is True:
            return True
        if value is None:
            undecided = True
    return None if undecided else False


def tri_all(values: Iterable[TriBool]) -> TriBool:
    """Three-valued ``all``: False dominates, then None, then True."""
    undecided = False
    for value in values:
        if value is False:
            return False
        if value is None:
            undecided = True
    return None if undecided else True
