"""Abstract cluster analysis: binding lifted to interval semantics.

This module mirrors :mod:`repro.engines.binding` statement by statement,
replacing every concrete integer with an :class:`IntervalInt` and every
data-dependent branch with a three-valued decision (hulling both arms
when undecided). The correspondence is deliberately 1:1 — each formula
here names its concrete counterpart — so the soundness argument reduces
to the per-primitive monotonicity audit in
:mod:`repro.absint.interval` plus standard interval composition.

Failure semantics: :func:`abstract_bind` raises
:class:`~repro.errors.BindingError` only when binding *provably* fails
for every concretization (hardware point x member shape). When binding
fails for only part of the range, the affected bound is clamped into
the succeeding subdomain and a human-readable *caveat* is recorded —
the result then soundly covers exactly the concretizations for which
:func:`~repro.engines.binding.bind_dataflow` does not raise, which is
the set every downstream consumer (lint certification, DSE pruning)
quantifies over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.absint.interval import (
    INT_ONE,
    IntervalFloat,
    IntervalInt,
    f_min,
    i_ceil_div,
    i_floor_div,
    i_max,
    i_min,
    i_num_chunks,
    i_prod,
    tri_gt,
)
from repro.absint.shapes import ShapeBox
from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import MapDirective, SizeLike, evaluate_size
from repro.errors import BindingError
from repro.tensors import dims as D


@dataclass(frozen=True)
class AbstractDirective:
    """Interval counterpart of :class:`~repro.engines.binding.BoundDirective`."""

    dim: str
    spatial: bool
    size: IntervalInt
    offset: IntervalInt
    chunks: IntervalInt
    steps: IntervalInt
    edge_size: IntervalInt


@dataclass(frozen=True)
class AbstractLevel:
    """Interval counterpart of :class:`~repro.engines.binding.BoundLevel`."""

    index: int
    width: IntervalInt
    directives: Tuple[AbstractDirective, ...]
    local_sizes: Mapping[str, IntervalInt]
    spatial_offsets: Mapping[str, IntervalInt]
    spatial_chunks: IntervalInt
    folds: IntervalInt
    avg_active: IntervalFloat
    has_spatial: bool  # structural: any SpatialMap in the level's spec

    @property
    def sweep_steps(self) -> IntervalInt:
        return i_prod(d.steps for d in self.directives)

    def chunk_sizes(self) -> Dict[str, IntervalInt]:
        return {d.dim: d.size for d in self.directives}

    def directive_for(self, dim: str) -> AbstractDirective:
        for directive in self.directives:
            if directive.dim == dim:
                return directive
        raise KeyError(f"abstract level {self.index} has no directive for {dim}")


@dataclass(frozen=True)
class AbstractBinding:
    """Interval counterpart of :class:`~repro.engines.binding.BoundDataflow`."""

    dataflow: Dataflow
    box: ShapeBox
    levels: Tuple[AbstractLevel, ...]
    row_rep: str
    col_rep: str
    used_pes: IntervalInt
    num_pes: IntervalInt
    caveats: Tuple[str, ...]

    @property
    def definite(self) -> bool:
        """Whether binding provably succeeds on the entire range."""
        return not self.caveats

    def innermost(self) -> AbstractLevel:
        return self.levels[-1]

    def total_steps(self) -> IntervalInt:
        return i_prod(level.sweep_steps for level in self.levels)

    def average_utilization(self) -> IntervalFloat:
        utilization = self.used_pes.to_float() / self.num_pes.to_float()
        for level in self.levels:
            utilization = utilization * (
                level.avg_active / level.width.to_float()
            )
        return utilization


def _abs_evaluate_size(
    size: SizeLike,
    dim_sizes: Mapping[str, IntervalInt],
    strides: "Mapping[str, int] | None" = None,
) -> IntervalInt:
    """``evaluate_size`` over interval dimension bindings.

    The :class:`~repro.dataflow.directives.SizeExpr` closure trees use
    only ``+``/``-``/``*``, so feeding them ``IntervalInt`` dimension
    values (whose dunders implement sound interval arithmetic) evaluates
    the expression in the abstract domain with zero parser changes.
    """
    value = evaluate_size(size, dim_sizes, strides)  # type: ignore[arg-type]
    if isinstance(value, IntervalInt):
        return value
    return IntervalInt.point(int(value))


def _relevant_dims(dataflow: Dataflow) -> Tuple[List[str], str, str]:
    """Mirror of ``binding._relevant_dims`` (structure only, no layer)."""
    row_rep = "output" if dataflow.uses_output_coordinates("row") else "input"
    col_rep = "output" if dataflow.uses_output_coordinates("col") else "input"
    dims = [D.N, D.K, D.C]
    dims.append(D.YP if row_rep == "output" else D.Y)
    dims.append(D.XP if col_rep == "output" else D.X)
    dims.extend([D.R, D.S])
    return dims, row_rep, col_rep


def abstract_bind(
    dataflow: Dataflow, box: ShapeBox, num_pes: IntervalInt
) -> AbstractBinding:
    """Bind ``dataflow`` to the shape family ``box`` on ``num_pes`` PEs."""
    caveats: List[str] = []
    dims, row_rep, col_rep = _relevant_dims(dataflow)
    full_sizes = box.all_dim_sizes()
    level_specs = dataflow.levels()

    cluster_sizes: List[IntervalInt] = []
    for spec in level_specs[:-1]:
        size = _abs_evaluate_size(spec.cluster_size, full_sizes)
        if size.hi < 1:
            raise BindingError(
                f"{dataflow.name} on {box.name}: cluster size {size} < 1 "
                f"for every shape in the range"
            )
        if size.lo < 1:
            caveats.append(
                f"cluster size {size} may be < 1 for part of the shape range"
            )
            size = size.clamp_low(1)
        cluster_sizes.append(size)

    pes_per_top_cluster = i_prod(cluster_sizes)
    if pes_per_top_cluster.lo > num_pes.hi:
        raise BindingError(
            f"{dataflow.name} on {box.name}: cluster hierarchy needs "
            f"{pes_per_top_cluster} PEs but only {num_pes} exist"
        )
    if pes_per_top_cluster.hi > num_pes.lo:
        caveats.append(
            f"cluster hierarchy ({pes_per_top_cluster} PEs) may exceed the "
            f"PE range {num_pes} for part of the range"
        )
    top_width = i_floor_div(num_pes, pes_per_top_cluster)
    if top_width.lo < 1:
        top_width = top_width.clamp_low(1)
    widths = [top_width] + cluster_sizes
    used_pes = top_width * pes_per_top_cluster

    strides = box.strides_map()

    local_sizes: Dict[str, IntervalInt] = {dim: full_sizes[dim] for dim in dims}
    levels: List[AbstractLevel] = []
    for index, spec in enumerate(level_specs):
        level = _abs_bind_level(
            index=index,
            spec_maps=spec.maps,
            width=widths[index],
            local_sizes=local_sizes,
            full_sizes=full_sizes,
            dims=dims,
            strides=strides,
            context=f"{dataflow.name} on {box.name}, level {index}",
            caveats=caveats,
        )
        levels.append(level)
        local_sizes = level.chunk_sizes()

    return AbstractBinding(
        dataflow=dataflow,
        box=box,
        levels=tuple(levels),
        row_rep=row_rep,
        col_rep=col_rep,
        used_pes=used_pes,
        num_pes=num_pes,
        caveats=tuple(caveats),
    )


def _abs_bind_level(
    index: int,
    spec_maps: Tuple[MapDirective, ...],
    width: IntervalInt,
    local_sizes: Mapping[str, IntervalInt],
    full_sizes: Mapping[str, IntervalInt],
    dims: List[str],
    strides: Mapping[str, int],
    context: str,
    caveats: List[str],
) -> AbstractLevel:
    bound: List[AbstractDirective] = []
    seen: Dict[str, IntervalInt] = {}
    spatial_offsets: Dict[str, IntervalInt] = {
        dim: IntervalInt.point(0) for dim in dims
    }
    spatial_chunk_counts: List[IntervalInt] = []

    for directive in spec_maps:
        if directive.dim not in dims:
            raise BindingError(
                f"{context}: dimension {directive.dim} is not part of this "
                f"binding's dimension set {dims}"
            )
        if directive.dim in seen:
            raise BindingError(
                f"{context}: dimension {directive.dim} mapped twice in one level"
            )
        local = local_sizes.get(directive.dim, INT_ONE)
        size = i_min(_abs_evaluate_size(directive.size, full_sizes, strides), local)
        offset = _abs_evaluate_size(directive.offset, full_sizes, strides)
        if size.hi < 1 or offset.hi < 1:
            raise BindingError(
                f"{context}: non-positive size/offset on {directive.dim} "
                f"(size={size}, offset={offset}) for every shape in the range"
            )
        if size.lo < 1 or offset.lo < 1:
            caveats.append(
                f"{context}: size/offset on {directive.dim} (size={size}, "
                f"offset={offset}) may be non-positive for part of the range"
            )
            size = size.clamp_low(1)
            offset = offset.clamp_low(1)
        chunks = i_num_chunks(local, size, offset)
        if directive.spatial:
            spatial_offsets[directive.dim] = offset
            spatial_chunk_counts.append(chunks)
            steps = i_ceil_div(chunks, width)
        else:
            steps = chunks
        # edge_size = local - (chunks - 1) * offset if chunks > 1 else size
        gt_one = tri_gt(chunks, 1)
        partial = local - (chunks - IntervalInt.point(1)) * offset
        if gt_one is True:
            edge = partial
        elif gt_one is False:
            edge = size
        else:
            edge = partial.hull(size)
        edge = i_max(INT_ONE, edge)  # concrete: max(1, edge_size)
        bound.append(
            AbstractDirective(
                dim=directive.dim,
                spatial=directive.spatial,
                size=size,
                offset=offset,
                chunks=chunks,
                steps=steps,
                edge_size=edge,
            )
        )
        seen[directive.dim] = size

    # Joint spatial distribution (aligned semantics): fold on the largest
    # chunk count, exactly as the concrete engine does.
    if spatial_chunk_counts:
        spatial_chunks = spatial_chunk_counts[0]
        for counts in spatial_chunk_counts[1:]:
            spatial_chunks = i_max(spatial_chunks, counts)
        folds = i_ceil_div(spatial_chunks, width)
        bound = [
            AbstractDirective(
                dim=d.dim,
                spatial=d.spatial,
                size=d.size,
                offset=d.offset,
                chunks=d.chunks,
                steps=folds if d.spatial else d.steps,
                edge_size=d.edge_size,
            )
            for d in bound
        ]
    else:
        spatial_chunks = INT_ONE
        folds = INT_ONE

    # avg_active: three-valued on ``width > 1`` (the only data branch).
    has_spatial = bool(spatial_chunk_counts)
    if has_spatial:
        # Concretely folds = ceil(chunks / width) so chunks / folds >= 1
        # always; the decorrelated interval quotient can dip below, so the
        # clamp at 1 is a sound tightening.
        active_wide = f_min(
            width.to_float(),
            (spatial_chunks.to_float() / folds.to_float()).clamp_low(1.0),
        )
    else:
        active_wide = IntervalFloat.point(1.0)
    width_gt1 = tri_gt(width, 1)
    if width_gt1 is True:
        avg_active = active_wide
    elif width_gt1 is False:
        avg_active = IntervalFloat.point(1.0)
    else:
        avg_active = active_wide.hull(IntervalFloat.point(1.0))

    inferred = [
        AbstractDirective(
            dim=dim,
            spatial=False,
            size=local_sizes.get(dim, INT_ONE),
            offset=local_sizes.get(dim, INT_ONE),
            chunks=INT_ONE,
            steps=INT_ONE,
            edge_size=local_sizes.get(dim, INT_ONE),
        )
        for dim in dims
        if dim not in seen
    ]

    return AbstractLevel(
        index=index,
        width=width,
        directives=tuple(inferred) + tuple(bound),
        local_sizes=dict(local_sizes),
        spatial_offsets=spatial_offsets,
        spatial_chunks=spatial_chunks,
        folds=folds,
        avg_active=avg_active,
        has_spatial=has_spatial,
    )
