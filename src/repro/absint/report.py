"""Shape-validity envelopes: the ``analyze --symbolic`` report payload.

One envelope summarizes what the abstract interpreter can prove about a
mapping over a whole :class:`~repro.absint.shapes.ShapeBox`: interval
bounds on every cost-model quantity, the ``DF2xx`` symbolic lint
verdicts, binding caveats, and (optionally) the differential
cross-check against sampled concrete members. The dict form is the
stable JSON surface the golden CI job diffs; the row form feeds the
CLI table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.absint.engine import HardwareBox
    from repro.absint.shapes import ShapeBox
    from repro.dataflow.dataflow import Dataflow
    from repro.hardware.energy import EnergyModel

__all__ = ["ENVELOPE_HEADERS", "envelope_row", "symbolic_envelope"]

ENVELOPE_HEADERS = [
    "layer",
    "dataflow",
    "cycles [lo, hi]",
    "util [lo, hi]",
    "L1 B [lo, hi]",
    "BW e/c [lo, hi]",
    "verdicts",
]


def _span(interval) -> List[float]:
    return [interval.lo, interval.hi]


def symbolic_envelope(
    box: "ShapeBox",
    dataflow: "Dataflow",
    hw: "HardwareBox",
    energy_model: "Optional[EnergyModel]" = None,
    crosscheck: bool = False,
) -> Dict[str, object]:
    """Analyze ``dataflow`` over ``box``/``hw`` into a JSON-ready dict."""
    from repro.absint.engine import abstract_analyze
    from repro.hardware.energy import DEFAULT_ENERGY_MODEL
    from repro.lint.symbolic import lint_symbolic

    model = energy_model if energy_model is not None else DEFAULT_ENERGY_MODEL
    payload: Dict[str, object] = {
        "layer": box.name,
        "dataflow": dataflow.name,
        "box": {dim: [iv.lo, iv.hi] for dim, iv in box.dims.items()},
        "hardware": {
            "num_pes": [hw.num_pes.lo, hw.num_pes.hi],
            "bandwidth": [hw.bandwidth.lo, hw.bandwidth.hi],
            "l1_size": hw.l1_size,
            "l2_size": hw.l2_size,
        },
    }
    lint_report = lint_symbolic(dataflow, box, hw)
    payload["diagnostics"] = [d.to_dict() for d in lint_report.diagnostics]
    try:
        analysis = abstract_analyze(box, dataflow, hw, energy_model=model)
    except Exception as error:
        payload["status"] = "unbindable"
        payload["error"] = str(error)
        return payload
    payload["status"] = "ok"
    payload["caveats"] = list(analysis.caveats)
    payload["envelope"] = {
        "runtime": _span(analysis.runtime),
        "total_ops": _span(analysis.total_ops),
        "utilization": _span(analysis.utilization),
        "throughput": _span(analysis.throughput),
        "l1_buffer_req": _span(analysis.l1_buffer_req),
        "l2_buffer_req": _span(analysis.l2_buffer_req),
        "noc_bw_req_elems": _span(analysis.noc_bw_req_elems),
        "noc_bw_req_gbps": _span(analysis.noc_bw_req_gbps),
        "energy_total": _span(analysis.energy_total),
        "edp": _span(analysis.edp),
    }
    if crosscheck:
        from repro.verify.crosscheck import crosscheck_abstract

        check = crosscheck_abstract(
            box, dataflow, hw, abstract=analysis, energy_model=model
        )
        payload["crosscheck"] = {
            "samples": check.samples,
            "bind_failures": check.bind_failures,
            "ok": check.ok,
            "violations": [v.describe() for v in check.violations],
        }
    return payload


def envelope_row(payload: Dict[str, object]) -> List[str]:
    """Render one envelope dict as a CLI table row."""
    diagnostics = payload.get("diagnostics") or []
    verdicts = " ".join(
        f"{d['code']}:{d['severity']}" for d in diagnostics  # type: ignore[index]
    )
    if payload.get("status") != "ok":
        return [
            str(payload["layer"]),
            str(payload["dataflow"]),
            "-",
            "-",
            "-",
            "-",
            verdicts or f"unbindable: {payload.get('error')}",
        ]
    envelope = payload["envelope"]
    assert isinstance(envelope, dict)
    runtime = envelope["runtime"]
    util = envelope["utilization"]
    l1 = envelope["l1_buffer_req"]
    bw = envelope["noc_bw_req_elems"]
    return [
        str(payload["layer"]),
        str(payload["dataflow"]),
        f"[{runtime[0]:.3e}, {runtime[1]:.3e}]",
        f"[{util[0]:.2f}, {util[1]:.2f}]",
        f"[{l1[0]}, {l1[1]}]",
        f"[{bw[0]:.1f}, {bw[1]:.1f}]",
        verdicts,
    ]
