"""repro — a reproduction of MAESTRO (Kwon et al., MICRO 2019).

A data-centric DNN dataflow description language and analytical cost
model: describe how a DNN layer's dimensions are mapped across PEs and
time with ``SpatialMap`` / ``TemporalMap`` / ``Cluster`` directives, and
estimate runtime, data reuse, buffer requirements, NoC bandwidth needs,
and energy for any layer/dataflow/hardware combination — fast enough to
drive design-space exploration over millions of candidate designs.

Quickstart::

    from repro import analyze_layer, Accelerator
    from repro.dataflow.library import kc_partitioned
    from repro.model.zoo import build

    vgg = build("vgg16")
    result = analyze_layer(vgg.layer("CONV2"), kc_partitioned(), Accelerator(num_pes=256))
    print(result.runtime, result.energy_total, result.reuse_factors)
"""

from repro.dataflow import Dataflow, parse_dataflow
from repro.lint import (
    Diagnostic,
    LintReport,
    Severity,
    lint_dataflow,
    lint_text,
    static_errors,
)
from repro.engines import (
    LayerAnalysis,
    NetworkAnalysis,
    analyze_layer,
    analyze_network,
    bind_dataflow,
)
from repro.hardware import Accelerator, AreaModel, EnergyModel, NoC
from repro.model import Layer, Network

__version__ = "1.0.0"

__all__ = [
    "Dataflow",
    "parse_dataflow",
    "analyze_layer",
    "analyze_network",
    "bind_dataflow",
    "LayerAnalysis",
    "NetworkAnalysis",
    "Accelerator",
    "NoC",
    "EnergyModel",
    "AreaModel",
    "Layer",
    "Network",
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_dataflow",
    "lint_text",
    "static_errors",
    "__version__",
]
