"""Batch evaluation backend: parallel executors + memoized cost model.

The paper's selling point is that the analytical model is fast enough to
sweep enormous (layer, dataflow, hardware) spaces. The sweep consumers
(:mod:`repro.dse`, :mod:`repro.tuner`, :mod:`repro.hetero`) used to walk
those spaces serially, one :func:`~repro.engines.analysis.analyze_layer`
call per point, with zero result reuse. This package decouples *what to
evaluate* from *how it is evaluated*:

- :func:`evaluate_batch` / :class:`BatchEvaluator` take an iterable of
  :class:`EvalPoint` and return one :class:`EvalOutcome` per point, in
  input order, bit-identical to a serial loop (dict iteration order of
  every report field included);
- the ``serial`` and ``process`` executors (auto-selected by workload
  size and core count) run the misses, the latter through a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
  submission;
- an :class:`AnalysisCache` memoizes outcomes under a content-addressed
  key (layer dims + canonicalized directives + hardware + energy model +
  a model-version salt), with an in-memory LRU tier and an optional
  on-disk JSON store under ``$REPRO_CACHE_DIR`` (or ``~/.cache/repro``),
  so repeated points across DSE grids, tuner restarts, and benchmark
  reruns are free;
- :class:`BatchStats` reports submitted / cache-hit / evaluated / failed
  counts and the evaluation wall time, surfaced alongside the sweep
  consumers' existing ``static_rejects`` / ``cost_model_calls`` counters.

See ``docs/evaluation-backend.md`` for the full story.
"""

from repro.exec.backend import (
    BatchEvaluator,
    BatchResult,
    BatchStats,
    EvalPoint,
    evaluate_batch,
)
from repro.exec.cache import (
    AnalysisCache,
    cache_key,
    canonical_point_payload,
    dataflow_cache_payload,
    default_cache,
    model_version_salt,
    resolve_cache,
)
from repro.exec.serialize import EvalOutcome, analysis_from_dict, analysis_to_dict

__all__ = [
    "AnalysisCache",
    "BatchEvaluator",
    "BatchResult",
    "BatchStats",
    "EvalOutcome",
    "EvalPoint",
    "analysis_from_dict",
    "analysis_to_dict",
    "cache_key",
    "canonical_point_payload",
    "dataflow_cache_payload",
    "default_cache",
    "evaluate_batch",
    "model_version_salt",
    "resolve_cache",
]
