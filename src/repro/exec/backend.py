"""The batch evaluator: cache lookup + serial/process/vector execution.

The contract that makes the backend a drop-in replacement for a serial
sweep loop: outcomes come back *in input order*, and every
:class:`~repro.engines.analysis.LayerAnalysis` is bit-identical to what
``analyze_layer`` would have returned inline — dict iteration order
included — whether it was computed serially, in a worker process, by the
vectorized whole-grid engine, or replayed from the cache.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.engines.analysis import analyze_layer
from repro import obs
from repro.dataflow.dataflow import Dataflow
from repro.errors import BindingError, DataflowError
from repro.exec.cache import AnalysisCache, cache_key, resolve_cache
from repro.exec.serialize import EvalOutcome
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.vector.engine import evaluate_grid
from repro.vector.lower import GroupKey, VectorLoweringError, group_key, lower_group

#: Executor names accepted everywhere.
EXECUTORS = ("auto", "serial", "process", "vector")

#: Below this many cache misses, ``auto`` stays serial: process start-up
#: and pickling would dominate the analytical model's microsecond scale.
AUTO_PROCESS_THRESHOLD = 256

#: Under the ``vector`` executor, groups smaller than this run through
#: the scalar engines instead: lowering + array set-up costs more than a
#: handful of point evaluations.
VECTOR_MIN_GROUP = 8

#: ``auto`` switches to the vector executor when the largest
#: same-template miss group reaches this size — the shape of a
#: grid-style sweep, where the whole-grid engine beats both the serial
#: loop and process workers by an order of magnitude.
VECTOR_AUTO_MIN_GROUP = 64


@dataclass(frozen=True)
class EvalPoint:
    """One (layer, dataflow, hardware) evaluation request."""

    layer: Layer
    dataflow: Dataflow
    accelerator: Accelerator
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL

    def key(self) -> str:
        """The point's content-addressed cache key."""
        return cache_key(self.layer, self.dataflow, self.accelerator, self.energy_model)


@dataclass(frozen=True)
class BatchStats:
    """Per-batch accounting, surfaced next to the sweep counters.

    ``vector_points`` counts misses evaluated by the whole-grid vector
    engine; ``vector_fallbacks`` counts misses that ran through the
    scalar engines while the vector executor was active (group too
    small, or the group could not be lowered). ``equiv_twin_hits``
    counts cache hits satisfied by an *equivalent* mapping's entry
    (shared canonical cache key, different mapping name) — a subset of
    ``cache_hits``. ``singleflight_hits`` counts misses that shared an
    identical in-flight computation inside the same batch (same
    canonical cache key): one leader pays the cost-model call, the
    followers replay its outcome instead of racing it through the
    executor. ``evaluated`` counts only the leaders.
    """

    submitted: int
    cache_hits: int
    evaluated: int
    failures: int
    executor: str
    jobs: int
    wall_seconds: float
    vector_points: int = 0
    vector_fallbacks: int = 0
    equiv_twin_hits: int = 0
    singleflight_hits: int = 0


@dataclass(frozen=True)
class BatchResult:
    """Outcomes in input order plus the batch statistics."""

    outcomes: Tuple[EvalOutcome, ...]
    stats: BatchStats

    def __iter__(self) -> Iterator[EvalOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


def _evaluate_one(point: EvalPoint) -> EvalOutcome:
    """Run the cost model on one point; model rejections become outcomes."""
    try:
        report = analyze_layer(
            point.layer, point.dataflow, point.accelerator, point.energy_model
        )
    except (BindingError, DataflowError) as error:
        return EvalOutcome(
            report=None,
            error_type=type(error).__name__,
            error_message=str(error),
        )
    return EvalOutcome(report=report)


def _evaluate_chunk(points: Sequence[EvalPoint]) -> List[EvalOutcome]:
    """Worker entry point: evaluate one submission chunk serially."""
    return [_evaluate_one(point) for point in points]


def _evaluate_chunk_traced(points: Sequence[EvalPoint]) -> Tuple[List[EvalOutcome], list, dict]:
    """Tracing worker entry point: outcomes plus the worker's spans/metrics.

    The buffer is reset first: under the fork start method the child
    inherits the driver's spans, which must not be exported twice. The
    driver re-parents the returned spans with :func:`repro.obs.adopt_spans`.
    """
    obs.configure(enabled=True, reset=True)
    with obs.span("exec.worker_chunk", points=len(points)):
        outcomes = [_evaluate_one(point) for point in points]
    return outcomes, obs.export_spans(), obs.metrics_snapshot()


def _chunked(items: Sequence, chunk_size: int) -> List[Sequence]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


@dataclass
class BatchEvaluator:
    """A configured evaluation backend.

    Parameters
    ----------
    executor:
        ``"serial"``, ``"process"``, ``"vector"``, or ``"auto"``.
        ``vector`` groups misses by (layer, dataflow, accelerator
        template) and runs each group through the whole-grid NumPy
        engine, falling back to the scalar engines point by point for
        groups it cannot express. ``auto`` picks vector for grid-shaped
        batches (largest group >= ``VECTOR_AUTO_MIN_GROUP``), process
        when the miss count and core count justify the start-up cost,
        and serial otherwise.
    jobs:
        Worker processes for the process executor; defaults to the
        machine's core count.
    cache:
        ``True`` (the shared default cache), ``False``/``None`` (no
        memoization), or an :class:`AnalysisCache` instance.
    """

    executor: str = "auto"
    jobs: Optional[int] = None
    cache: Union[bool, AnalysisCache, None] = True
    _cache: Optional[AnalysisCache] = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; choose from {EXECUTORS}")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self._cache = resolve_cache(self.cache)

    def _resolve_jobs(self) -> int:
        return self.jobs if self.jobs is not None else (os.cpu_count() or 1)

    def _pick_executor(
        self, misses: int, groups: Optional[Dict[GroupKey, List[int]]]
    ) -> Tuple[str, int]:
        jobs = self._resolve_jobs()
        if misses == 0:
            # Fully warm batch: no work, no workers — report what ran.
            return "serial", 1
        if self.executor == "vector":
            return "vector", 1
        if self.executor == "auto" and groups:
            # Grid-shaped batch: many points per (layer, dataflow,
            # template) group means the whole-grid engine wins.
            if max(len(g) for g in groups.values()) >= VECTOR_AUTO_MIN_GROUP:
                return "vector", 1
        if self.executor == "serial" or jobs <= 1:
            return "serial", 1
        if self.executor == "process":
            return "process", jobs
        if misses >= AUTO_PROCESS_THRESHOLD:
            return "process", jobs
        return "serial", 1

    def _evaluate_vector(
        self,
        points: List[EvalPoint],
        groups: Dict[GroupKey, List[int]],
        outcomes: List[Optional[EvalOutcome]],
    ) -> Tuple[int, int]:
        """Evaluate miss groups through the whole-grid vector engine.

        Returns ``(vector_points, vector_fallbacks)``. A group falls
        back to the scalar engines point by point when it is too small
        to amortize lowering or when :func:`lower_group` rejects it;
        every fallback is counted in the obs metrics so a sweep that
        silently degrades to scalar speed is visible.
        """
        vectorized = 0
        fallbacks = 0
        for indices in groups.values():
            first = points[indices[0]]
            group_outcomes: Optional[List[EvalOutcome]] = None
            if len(indices) >= VECTOR_MIN_GROUP:
                accelerators = [points[i].accelerator for i in indices]
                with obs.span(
                    "exec.vector_group",
                    points=len(indices),
                    layer=first.layer.name,
                    dataflow=first.dataflow.name,
                ):
                    try:
                        lowered = lower_group(
                            first.layer,
                            first.dataflow,
                            accelerators[0],
                            first.energy_model,
                        )
                        group_outcomes = evaluate_grid(
                            first.layer,
                            first.dataflow,
                            accelerators,
                            first.energy_model,
                            lowered=lowered,
                        )
                    except VectorLoweringError:
                        obs.inc("exec.vector.lowering_failures")
            if group_outcomes is None:
                for index in indices:
                    outcomes[index] = _evaluate_one(points[index])
                fallbacks += len(indices)
                obs.inc("exec.vector.points_fallback", len(indices))
                continue
            for index, outcome in zip(indices, group_outcomes):
                outcomes[index] = outcome
            vectorized += len(indices)
            obs.inc("exec.vector.points_vectorized", len(indices))
        return vectorized, fallbacks

    def evaluate(self, points: Iterable[EvalPoint]) -> BatchResult:
        """Evaluate every point, cache-first, preserving input order."""
        batch = list(points)
        with obs.span("exec.evaluate", submitted=len(batch)):
            return self._evaluate(batch)

    def _evaluate(self, points: List[EvalPoint]) -> BatchResult:
        start = time.perf_counter()
        outcomes: List[Optional[EvalOutcome]] = [None] * len(points)
        obs.inc("exec.points_submitted", len(points))

        # Cache pass: satisfy what we can, remember the miss positions.
        miss_indices: List[int] = []
        keys: List[Optional[str]] = [None] * len(points)
        equiv_twin_hits = 0
        if self._cache is not None:
            with obs.span("exec.cache_lookup"):
                for index, point in enumerate(points):
                    key = point.key()
                    keys[index] = key
                    hit = self._cache.get(key)
                    if hit is not None:
                        if (
                            hit.report is not None
                            and hit.report.dataflow_name != point.dataflow.name
                        ):
                            # Shared canonical entry computed under an
                            # equivalent twin's name: restore this
                            # point's name (the only field the
                            # equivalence quotient legitimately changes).
                            equiv_twin_hits += 1
                            obs.inc("exec.equiv.twin_hits")
                            hit = EvalOutcome(
                                report=replace(
                                    hit.report, dataflow_name=point.dataflow.name
                                ),
                                cached=True,
                            )
                        outcomes[index] = hit
                    else:
                        miss_indices.append(index)
        else:
            miss_indices = list(range(len(points)))

        cache_hits = len(points) - len(miss_indices)

        # Single-flight pass: identical concurrent misses (same canonical
        # cache key — duplicate points, or equivalent spellings the
        # analyzer quotients together) are computed once. The first miss
        # per key is the leader; followers replay its outcome after the
        # executors run instead of racing the same computation. Only
        # meaningful with the cache on (keys are what prove identity).
        singleflight_hits = 0
        follower_of: Dict[int, int] = {}
        if self._cache is not None and len(miss_indices) > 1:
            leader_by_key: Dict[str, int] = {}
            leaders: List[int] = []
            for index in miss_indices:
                key_str = keys[index]
                assert key_str is not None
                leader = leader_by_key.get(key_str)
                if leader is None:
                    leader_by_key[key_str] = index
                    leaders.append(index)
                else:
                    follower_of[index] = leader
            if follower_of:
                singleflight_hits = len(follower_of)
                miss_indices = leaders
                obs.inc("exec.cache.singleflight_hits", singleflight_hits)

        groups: Optional[Dict[GroupKey, List[int]]] = None
        if miss_indices and self.executor in ("vector", "auto"):
            groups = {}
            for index in miss_indices:
                point = points[index]
                key_tuple = group_key(
                    point.layer, point.dataflow, point.accelerator, point.energy_model
                )
                groups.setdefault(key_tuple, []).append(index)
        executor, jobs = self._pick_executor(len(miss_indices), groups)
        obs.inc("exec.cache_hits", cache_hits)
        obs.inc("exec.points_evaluated", len(miss_indices))

        vector_points = 0
        vector_fallbacks = 0
        if executor == "vector":
            assert groups is not None
            with obs.span("exec.vector_evaluate", misses=len(miss_indices)):
                vector_points, vector_fallbacks = self._evaluate_vector(
                    points, groups, outcomes
                )
        elif executor == "serial":
            with obs.span("exec.serial_evaluate", misses=len(miss_indices)):
                for index in miss_indices:
                    outcomes[index] = _evaluate_one(points[index])
        elif miss_indices:
            misses = [points[i] for i in miss_indices]
            # Chunked submission: a few chunks per worker amortizes
            # pickling without starving the pool on uneven chunks.
            chunk_size = max(1, -(-len(misses) // (jobs * 4)))
            chunks = _chunked(misses, chunk_size)
            obs.set_gauge("exec.chunk_queue_depth", len(chunks))
            obs.inc("exec.chunks_submitted", len(chunks))
            # With tracing on, workers capture their own spans/metrics
            # and ship them back for re-parenting into this trace.
            traced = obs.is_enabled()
            worker_fn: Callable[[Sequence[EvalPoint]], Any] = (
                _evaluate_chunk_traced if traced else _evaluate_chunk
            )
            with obs.span("exec.process_pool", chunks=len(chunks), jobs=jobs):
                with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
                    cursor = 0
                    pending = len(chunks)
                    for result in pool.map(worker_fn, chunks):
                        if traced:
                            chunk_outcomes, worker_spans, worker_metrics = result
                            obs.adopt_spans(worker_spans)
                            obs.merge_metrics(worker_metrics)
                            pending -= 1
                            obs.set_gauge("exec.chunk_queue_depth", pending)
                        else:
                            chunk_outcomes = result
                        for outcome in chunk_outcomes:
                            outcomes[miss_indices[cursor]] = outcome
                            cursor += 1

        # Replay leader outcomes to single-flight followers, restoring
        # each follower's mapping name (the only field the equivalence
        # quotient legitimately changes) exactly like the cache-hit path.
        for index, leader in follower_of.items():
            leader_outcome = outcomes[leader]
            assert leader_outcome is not None
            point = points[index]
            if (
                leader_outcome.report is not None
                and leader_outcome.report.dataflow_name != point.dataflow.name
            ):
                leader_outcome = EvalOutcome(
                    report=replace(
                        leader_outcome.report, dataflow_name=point.dataflow.name
                    )
                )
            outcomes[index] = leader_outcome

        if self._cache is not None:
            with obs.span("exec.cache_store", misses=len(miss_indices)):
                for index in miss_indices:
                    key_str = keys[index]
                    outcome = outcomes[index]
                    if key_str is not None and outcome is not None:
                        self._cache.put(key_str, outcome)

        final = [outcome for outcome in outcomes if outcome is not None]
        assert len(final) == len(outcomes), "every point must produce an outcome"
        failures = sum(1 for outcome in final if not outcome.ok)
        stats = BatchStats(
            submitted=len(points),
            cache_hits=cache_hits,
            evaluated=len(miss_indices),
            failures=failures,
            executor=executor,
            jobs=jobs,
            wall_seconds=time.perf_counter() - start,
            vector_points=vector_points,
            vector_fallbacks=vector_fallbacks,
            equiv_twin_hits=equiv_twin_hits,
            singleflight_hits=singleflight_hits,
        )
        return BatchResult(outcomes=tuple(final), stats=stats)


def evaluate_batch(
    points: Iterable[EvalPoint],
    executor: str = "auto",
    jobs: Optional[int] = None,
    cache: Union[bool, AnalysisCache, None] = True,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchEvaluator`."""
    return BatchEvaluator(executor=executor, jobs=jobs, cache=cache).evaluate(points)
