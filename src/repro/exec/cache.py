"""Content-addressed memoization of cost-model outcomes.

The cache key is a SHA-256 over a *canonical* description of the
evaluation point:

- the layer (operator structure, dimension extents, stride, dilation,
  groups, densities);
- the dataflow's *canonical form* under the equivalence analyzer
  (:mod:`repro.equiv`): symbolic sizes evaluated against the layer,
  inert single-chunk temporal maps elided, spatial slots sorted, and —
  when the layer is transpose-symmetric and the integer-activity
  certificate holds at the accelerator's PE count — the least
  representative of the symmetry orbit. Every spelling the analyzer
  proves bit-identical shares one cache entry; anything it cannot
  certify falls back to keying on the raw evaluated directive list,
  exactly as before. The mapping *name* is part of the key only in the
  fallback tier and for points whose cluster hierarchy provably exceeds
  the PE count (binding rejections embed the name in their message);
  for shared entries the backend restores the requesting mapping's name
  on every hit;
- the full hardware configuration and energy model;
- a model-version salt hashed from the source of the cost-model modules,
  so any change to the engines invalidates every stale entry
  automatically.

Storage is two-tier: an in-memory LRU (always on) and an optional
on-disk JSON store, one file per key under
``$REPRO_CACHE_DIR`` (or ``~/.cache/repro`` when enabled explicitly),
sharded as ``<dir>/<salt>/<key[:2]>/<key>.json`` so wiping one salt
directory drops exactly one model version's entries.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import obs
from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import ClusterDirective, evaluate_size
from repro.errors import DataflowError
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import EnergyModel
from repro.model.layer import Layer
from repro.exec.serialize import EvalOutcome, outcome_from_json, outcome_to_json
from repro.tensors import dims as D

#: Environment variable naming the on-disk cache directory. When set, the
#: default cache persists outcomes across processes (and sessions).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DEFAULT_DISK_DIR = Path.home() / ".cache" / "repro"

logger = logging.getLogger(__name__)

_salt_cache: Optional[str] = None


def _salt_source_files() -> List[Path]:
    """Source files whose content defines the cost model's semantics."""
    import repro.dataflow
    import repro.engines
    import repro.equiv
    import repro.hardware
    import repro.model.layer
    import repro.tensors

    files: List[Path] = [Path(repro.model.layer.__file__)]
    for package in (
        repro.engines,
        repro.tensors,
        repro.dataflow,
        repro.hardware,
        repro.equiv,
    ):
        files.extend(sorted(Path(package.__file__).parent.glob("*.py")))
    return files


def model_version_salt() -> str:
    """A short hash of the cost-model source: the cache-version salt.

    Any edit to the engines (or the modules they build on) changes the
    salt, so entries computed by older model code can never be returned
    for a new one. Computed once per process.
    """
    global _salt_cache
    if _salt_cache is None:
        digest = hashlib.sha256()
        for path in _salt_source_files():
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _salt_cache = digest.hexdigest()[:12]
    return _salt_cache


def _canonical_size(size: Any, dim_sizes: Dict[str, int], strides: Dict[str, int]) -> Any:
    try:
        return evaluate_size(size, dim_sizes, strides)
    except DataflowError:
        # Unresolvable spelling: key on the raw text (the point will be
        # rejected by binding anyway, and rejections are cached too).
        return f"raw:{size}"


def canonical_directives(dataflow: Dataflow, layer: Layer) -> List[List[Any]]:
    """The directive list with all sizes evaluated against ``layer``.

    Spellings that the binding engine resolves identically (symbolic
    ``Sz``/``St`` expressions vs. their concrete values) canonicalize to
    the same list; structurally different mappings never collide.
    """
    dim_sizes = layer.all_dim_sizes()
    strides = {D.Y: layer.stride[0], D.X: layer.stride[1]}
    canonical: List[List[Any]] = []
    for directive in dataflow.directives:
        if isinstance(directive, ClusterDirective):
            canonical.append(["C", _canonical_size(directive.size, dim_sizes, strides)])
        else:
            canonical.append(
                [
                    "S" if directive.spatial else "T",
                    directive.dim,
                    _canonical_size(directive.size, dim_sizes, strides),
                    _canonical_size(directive.offset, dim_sizes, strides),
                ]
            )
    return canonical


def _layer_payload(layer: Layer) -> Dict[str, Any]:
    operator = layer.operator
    return {
        "name": layer.name,
        "operator": {
            "name": operator.name,
            "tensors": [
                [t.name, t.role.value, list(t.axis_templates)] for t in operator.tensors
            ],
            "reduction_dims": sorted(operator.reduction_dims),
            "compute_templates": list(operator.compute_templates),
            "used_dims": sorted(operator.used_dims),
        },
        "dims": {dim: size for dim, size in sorted(layer.dims.items())},
        "stride": list(layer.stride),
        "dilation": list(layer.dilation),
        "groups": layer.groups,
        "densities": {name: d for name, d in sorted(layer.densities.items())},
    }


def _accelerator_payload(accelerator: Accelerator) -> Dict[str, Any]:
    return {
        "num_pes": accelerator.num_pes,
        "l1_size": accelerator.l1_size,
        "l2_size": accelerator.l2_size,
        "noc": {
            "bandwidth": accelerator.noc.bandwidth,
            "avg_latency": accelerator.noc.avg_latency,
            "multicast": accelerator.noc.multicast,
        },
        "spatial_reduction": accelerator.spatial_reduction,
        "double_buffered": accelerator.double_buffered,
        "vector_width": accelerator.vector_width,
        "element_bytes": accelerator.element_bytes,
        "clock_ghz": accelerator.clock_ghz,
        "dram_bandwidth": accelerator.dram_bandwidth,
    }


def _energy_payload(model: EnergyModel) -> Dict[str, Any]:
    return {
        "mac": model.mac,
        "sram_base": model.sram_base,
        "sram_sqrt": model.sram_sqrt,
        "sram_write_factor": model.sram_write_factor,
        "noc_hop": model.noc_hop,
        "dram": model.dram,
    }


def dataflow_cache_payload(
    dataflow: Dataflow, layer: Layer, num_pes: int
) -> Dict[str, Any]:
    """The dataflow portion of the cache key: the equivalence quotient.

    Non-fallback canonical forms key on the structural canonical key —
    the orbit-least key when the transposition is certified bit-exact at
    ``num_pes`` — with the mapping name dropped, so every spelling the
    analyzer proves equivalent addresses one shared entry. Two
    exceptions keep names in the key: fallback forms (nothing proven —
    raw spelling plus name, the pre-equivalence behavior), and points
    whose cluster hierarchy needs more than ``num_pes`` PEs, where the
    outcome is a ``BindingError`` whose message embeds the name. Other
    model rejections arising after a successful bind may still share an
    entry across equivalent spellings; their ``error_message`` then
    carries the first-evaluated twin's name (``error_type``, which sweep
    consumers branch on, is spelling-independent).
    """
    from repro.equiv.canonical import canonicalize, key_to_json
    from repro.equiv.symmetry import integral_active, layer_symmetries, orbit_key
    from repro.util.intmath import prod

    form = canonicalize(dataflow, layer)
    if form.fallback:
        return {
            "name": dataflow.name,
            "directives": canonical_directives(dataflow, layer),
        }
    key = form.key
    symmetries = layer_symmetries(layer)
    if symmetries and integral_active(form, num_pes):
        key = orbit_key(key, symmetries)
    payload: Dict[str, Any] = {"key": key_to_json(key)}
    cluster_pes = prod(
        [level.cluster_size for level in form.levels if level.cluster_size is not None]
    )
    if cluster_pes > num_pes:
        payload["name"] = dataflow.name  # binding rejects; message names the mapping
    return payload


def canonical_point_payload(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel,
) -> Dict[str, Any]:
    """The full canonical description one cache key is hashed from."""
    return {
        "salt": model_version_salt(),
        "layer": _layer_payload(layer),
        "dataflow": dataflow_cache_payload(dataflow, layer, accelerator.num_pes),
        "accelerator": _accelerator_payload(accelerator),
        "energy": _energy_payload(energy_model),
    }


def cache_key(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel,
) -> str:
    """Stable content hash of one (layer, dataflow, hardware) point."""
    payload = canonical_point_payload(layer, dataflow, accelerator, energy_model)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class AnalysisCache:
    """Two-tier (memory LRU + optional disk) outcome cache.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity; oldest entries are evicted first.
    disk_dir:
        On-disk store root. ``None`` disables the disk tier; the string
        ``"auto"`` uses ``$REPRO_CACHE_DIR`` when set and
        ``~/.cache/repro`` otherwise.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        disk_dir: Union[str, Path, None] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        if disk_dir == "auto":
            disk_dir = os.environ.get(CACHE_DIR_ENV) or _DEFAULT_DISK_DIR
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._memory: Dict[str, EvalOutcome] = {}
        # The memory tier is shared across threads when the cache is
        # promoted to a cross-request tier (repro.serve): one lock keeps
        # the LRU reinsert/evict sequences atomic. Disk I/O stays outside
        # the lock — os.replace already makes entries whole-or-absent.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.corrupt_entries = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / model_version_salt() / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[EvalOutcome]:
        """The memoized outcome for ``key``, or ``None`` on a miss.

        A corrupt or truncated disk entry (interrupted writer, disk
        fault, stale handwritten file) is never fatal and never a silent
        permanent miss: it is logged, counted (``corrupt_entries`` and
        the ``cache.corrupt_entries`` metric), deleted, and the point is
        recomputed — the next ``put`` rewrites a good entry.
        """
        with self._lock:
            outcome = self._memory.pop(key, None)
            if outcome is not None:
                self._memory[key] = outcome  # re-insert: most recently used
                self.hits += 1
        if outcome is not None:
            obs.inc("cache.memory_hits")
            return outcome.as_cached()
        if self.disk_dir is not None:
            path = self._disk_path(key)
            try:
                text: Optional[str] = path.read_text()
            except OSError:
                text = None
            outcome = None
            if text is not None:
                try:
                    outcome = outcome_from_json(text)
                except (ValueError, KeyError, TypeError) as error:
                    self.corrupt_entries += 1
                    obs.inc("cache.corrupt_entries")
                    logger.warning(
                        "dropping corrupt cache entry %s (%s: %s); recomputing",
                        path,
                        type(error).__name__,
                        error,
                    )
                    try:
                        path.unlink()
                    except OSError:
                        pass
            if outcome is not None:
                self._remember(key, outcome)
                self.hits += 1
                self.disk_hits += 1
                obs.inc("cache.disk_hits")
                return outcome.as_cached()
        self.misses += 1
        obs.inc("cache.misses")
        return None

    def put(self, key: str, outcome: EvalOutcome) -> None:
        """Memoize ``outcome`` (successes and model rejections alike)."""
        outcome = EvalOutcome(
            report=outcome.report,
            error_type=outcome.error_type,
            error_message=outcome.error_message,
        )
        self._remember(key, outcome)
        if self.disk_dir is not None:
            self._write_disk(key, outcome)

    def _remember(self, key: str, outcome: EvalOutcome) -> None:
        evicted = 0
        with self._lock:
            self._memory.pop(key, None)
            self._memory[key] = outcome
            while len(self._memory) > self.max_entries:
                oldest = next(iter(self._memory))
                del self._memory[oldest]
                self.evictions += 1
                evicted += 1
        if evicted:
            obs.inc("cache.evictions", evicted)

    def _write_disk(self, key: str, outcome: EvalOutcome) -> None:
        path = self._disk_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(outcome_to_json(outcome))
                os.replace(tmp, path)  # atomic: concurrent readers see old or new
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # the disk tier is best-effort; memory stays authoritative

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._memory.clear()


_default_cache: Optional[AnalysisCache] = None


def default_cache() -> AnalysisCache:
    """The process-wide shared cache (disk tier iff ``$REPRO_CACHE_DIR``)."""
    global _default_cache
    if _default_cache is None:
        disk = os.environ.get(CACHE_DIR_ENV)
        _default_cache = AnalysisCache(disk_dir=disk if disk else None)
    return _default_cache


def resolve_cache(
    cache: Union[bool, AnalysisCache, None],
) -> Optional[AnalysisCache]:
    """Normalize the ``cache`` argument every sweep entry point accepts.

    ``True`` means the shared :func:`default_cache`, ``False``/``None``
    disables memoization, and an :class:`AnalysisCache` instance is used
    as-is.
    """
    if cache is True:
        return default_cache()
    if cache is False or cache is None:
        return None
    if isinstance(cache, AnalysisCache):
        return cache
    raise TypeError(f"cache must be a bool or AnalysisCache, got {cache!r}")
