"""Lossless (de)serialization of evaluation outcomes.

The disk tier of :class:`~repro.exec.cache.AnalysisCache` stores one
JSON document per outcome. Round-tripping must be *bit-identical*: every
float survives via ``repr`` round-trip (the ``json`` module's default),
and every mapping is written in insertion order so a report loaded from
disk iterates exactly like one computed in-process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.engines.analysis import LayerAnalysis, LevelStats

#: Bumped when the serialized document layout changes (independent of the
#: model-version salt, which tracks the cost model itself).
FORMAT_VERSION = 1


@dataclass(frozen=True)
class EvalOutcome:
    """The result of evaluating one point: a report or a model rejection.

    ``error_type``/``error_message`` record rejections the sweep
    consumers treat as "candidate is infeasible" (``BindingError`` /
    ``DataflowError``); any other exception propagates out of the
    backend instead of becoming an outcome. ``cached`` tells whether the
    outcome came from the memoization cache rather than a fresh
    cost-model run.
    """

    report: Optional[LayerAnalysis]
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.report is not None

    def as_cached(self) -> "EvalOutcome":
        return self if self.cached else replace(self, cached=True)


def _level_stats_to_dict(stats: LevelStats) -> Dict[str, Any]:
    return {
        "index": stats.index,
        "runtime_sweep": stats.runtime_sweep,
        "compute_bound_fraction": stats.compute_bound_fraction,
        "bottleneck": stats.bottleneck,
        "ingress_per_sweep": dict(stats.ingress_per_sweep),
        "delivered_per_sweep": dict(stats.delivered_per_sweep),
        "egress_per_sweep": stats.egress_per_sweep,
        "psum_readback_per_sweep": stats.psum_readback_per_sweep,
        "upstream_buffer_req": stats.upstream_buffer_req,
        "peak_bw_elems_per_cycle": stats.peak_bw_elems_per_cycle,
    }


def _level_stats_from_dict(doc: Dict[str, Any]) -> LevelStats:
    return LevelStats(
        index=doc["index"],
        runtime_sweep=doc["runtime_sweep"],
        compute_bound_fraction=doc["compute_bound_fraction"],
        bottleneck=doc["bottleneck"],
        ingress_per_sweep=dict(doc["ingress_per_sweep"]),
        delivered_per_sweep=dict(doc["delivered_per_sweep"]),
        egress_per_sweep=doc["egress_per_sweep"],
        psum_readback_per_sweep=doc["psum_readback_per_sweep"],
        upstream_buffer_req=doc["upstream_buffer_req"],
        peak_bw_elems_per_cycle=doc["peak_bw_elems_per_cycle"],
    )


def analysis_to_dict(report: LayerAnalysis) -> Dict[str, Any]:
    """A JSON-able document preserving every field and mapping order."""
    return {
        "layer_name": report.layer_name,
        "dataflow_name": report.dataflow_name,
        "num_pes": report.num_pes,
        "runtime": report.runtime,
        "total_ops": report.total_ops,
        "utilization": report.utilization,
        "level_stats": [_level_stats_to_dict(s) for s in report.level_stats],
        "l2_reads": dict(report.l2_reads),
        "l2_writes": dict(report.l2_writes),
        "l1_reads": dict(report.l1_reads),
        "l1_writes": dict(report.l1_writes),
        "intermediate_reads": report.intermediate_reads,
        "intermediate_writes": report.intermediate_writes,
        "dram_reads": dict(report.dram_reads),
        "dram_writes": dict(report.dram_writes),
        "l1_buffer_req": report.l1_buffer_req,
        "l2_buffer_req": report.l2_buffer_req,
        "intermediate_buffer_reqs": list(report.intermediate_buffer_reqs),
        "noc_bw_req_elems": report.noc_bw_req_elems,
        "noc_bw_req_gbps": report.noc_bw_req_gbps,
        "reuse_factors": dict(report.reuse_factors),
        "max_reuse_factors": dict(report.max_reuse_factors),
        "energy_breakdown": dict(report.energy_breakdown),
    }


def analysis_from_dict(doc: Dict[str, Any]) -> LayerAnalysis:
    """Inverse of :func:`analysis_to_dict`."""
    return LayerAnalysis(
        layer_name=doc["layer_name"],
        dataflow_name=doc["dataflow_name"],
        num_pes=doc["num_pes"],
        runtime=doc["runtime"],
        total_ops=doc["total_ops"],
        utilization=doc["utilization"],
        level_stats=tuple(_level_stats_from_dict(s) for s in doc["level_stats"]),
        l2_reads=dict(doc["l2_reads"]),
        l2_writes=dict(doc["l2_writes"]),
        l1_reads=dict(doc["l1_reads"]),
        l1_writes=dict(doc["l1_writes"]),
        intermediate_reads=doc["intermediate_reads"],
        intermediate_writes=doc["intermediate_writes"],
        dram_reads=dict(doc["dram_reads"]),
        dram_writes=dict(doc["dram_writes"]),
        l1_buffer_req=doc["l1_buffer_req"],
        l2_buffer_req=doc["l2_buffer_req"],
        intermediate_buffer_reqs=tuple(doc["intermediate_buffer_reqs"]),
        noc_bw_req_elems=doc["noc_bw_req_elems"],
        noc_bw_req_gbps=doc["noc_bw_req_gbps"],
        reuse_factors=dict(doc["reuse_factors"]),
        max_reuse_factors=dict(doc["max_reuse_factors"]),
        energy_breakdown=dict(doc["energy_breakdown"]),
    )


def outcome_to_json(outcome: EvalOutcome) -> str:
    """Serialize an outcome (success or rejection) for the disk cache."""
    if outcome.ok:
        doc = {
            "format": FORMAT_VERSION,
            "status": "ok",
            "report": analysis_to_dict(outcome.report),
        }
    else:
        doc = {
            "format": FORMAT_VERSION,
            "status": "error",
            "error_type": outcome.error_type,
            "error_message": outcome.error_message,
        }
    return json.dumps(doc)


def outcome_from_json(text: str) -> EvalOutcome:
    """Parse a disk-cache document.

    Raises ``ValueError``/``KeyError``/``TypeError`` on truncated,
    malformed, or format-incompatible documents — the cache layer turns
    that into a counted warning, deletes the bad file, and recomputes
    (it must never be a silent permanent miss).
    """
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError(f"cache document is {type(doc).__name__}, not an object")
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"cache document format {doc.get('format')!r} != {FORMAT_VERSION!r}"
        )
    if doc["status"] == "ok":
        return EvalOutcome(report=analysis_from_dict(doc["report"]))
    return EvalOutcome(
        report=None,
        error_type=doc["error_type"],
        error_message=doc["error_message"],
    )
