"""Heterogeneous accelerators: multiple sub-accelerators, one chip.

Section 5.1 of the paper motivates two ways to exploit per-operator
dataflow preference: flexible accelerators that reconfigure per layer
(:mod:`repro.adaptive`), and *heterogeneous* chips "that employ
multiple sub-accelerators with various dataflow styles". This module
models the second option:

- a :class:`SubAccelerator` is a PE partition with a fixed dataflow;
- layers of a network are assigned to sub-accelerators;
- under ``sequential`` execution (layer-by-layer, data dependencies
  respected) a layer simply runs on the sub-accelerator that suits it
  best, leaving the others idle — the realistic single-inference mode;
- under ``pipelined`` execution (steady-state streaming of many
  inputs), every sub-accelerator works on different inputs
  concurrently and the throughput bottleneck is the most-loaded
  partition, so the assignment balances load via a greedy
  longest-processing-time heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.dataflow.dataflow import Dataflow
from repro.engines.analysis import LayerAnalysis
from repro.errors import DataflowError, HardwareError
from repro.exec import AnalysisCache, BatchEvaluator, EvalPoint
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.network import Network


@dataclass(frozen=True)
class SubAccelerator:
    """One partition of the chip: a name, hardware, and a fixed dataflow."""

    name: str
    accelerator: Accelerator
    dataflow: Dataflow


@dataclass(frozen=True)
class Assignment:
    """One layer's placement."""

    layer_name: str
    sub_accelerator: str
    report: LayerAnalysis


@dataclass(frozen=True)
class HeterogeneousAnalysis:
    """The assigned network with sequential and pipelined costs."""

    network_name: str
    mode: str
    assignments: Tuple[Assignment, ...]

    @property
    def runtime(self) -> float:
        """Sequential latency or pipelined steady-state interval."""
        if self.mode == "sequential":
            return sum(a.report.runtime for a in self.assignments)
        loads: Dict[str, float] = {}
        for assignment in self.assignments:
            loads[assignment.sub_accelerator] = (
                loads.get(assignment.sub_accelerator, 0.0)
                + assignment.report.runtime
            )
        return max(loads.values())

    @property
    def energy_total(self) -> float:
        return sum(a.report.energy_total for a in self.assignments)

    def utilization_by_partition(self) -> Dict[str, float]:
        """Fraction of the bottleneck interval each partition works."""
        loads: Dict[str, float] = {}
        for assignment in self.assignments:
            loads[assignment.sub_accelerator] = (
                loads.get(assignment.sub_accelerator, 0.0)
                + assignment.report.runtime
            )
        bottleneck = max(loads.values()) if loads else 1.0
        return {name: load / bottleneck for name, load in loads.items()}

    def histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for assignment in self.assignments:
            counts[assignment.sub_accelerator] = (
                counts.get(assignment.sub_accelerator, 0) + 1
            )
        return counts


def analyze_heterogeneous(
    network: Network,
    sub_accelerators: Sequence[SubAccelerator],
    mode: str = "sequential",
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    executor: str = "auto",
    jobs: Optional[int] = None,
    cache: Union[bool, AnalysisCache, None] = True,
) -> HeterogeneousAnalysis:
    """Assign every layer to a sub-accelerator; see the module docstring.

    The layer×partition cost matrix is evaluated through the
    batch-evaluation backend (:mod:`repro.exec`):
    ``executor``/``jobs``/``cache`` are pure performance knobs and do
    not change the assignment.
    """
    if not sub_accelerators:
        raise HardwareError("need at least one sub-accelerator")
    names = [sub.name for sub in sub_accelerators]
    if len(set(names)) != len(names):
        raise HardwareError("sub-accelerator names must be unique")
    if mode not in ("sequential", "pipelined"):
        raise ValueError(f"unknown mode {mode!r}")

    # Evaluate every layer on every partition it binds to — one batch
    # over the whole layer×partition grid.
    evaluator = BatchEvaluator(executor=executor, jobs=jobs, cache=cache)
    batch = evaluator.evaluate(
        EvalPoint(
            layer=layer,
            dataflow=sub.dataflow,
            accelerator=sub.accelerator,
            energy_model=energy_model,
        )
        for layer in network.layers
        for sub in sub_accelerators
    )
    costs: Dict[str, Dict[str, LayerAnalysis]] = {}
    outcomes = iter(batch)
    for layer in network.layers:
        options: Dict[str, LayerAnalysis] = {}
        for sub in sub_accelerators:
            outcome = next(outcomes)
            if outcome.ok:
                options[sub.name] = outcome.report
        if not options:
            raise DataflowError(
                f"layer {layer.name!r} binds to no sub-accelerator"
            )
        costs[layer.name] = options

    if mode == "sequential":
        assignments = [
            Assignment(
                layer_name=layer.name,
                sub_accelerator=min(
                    costs[layer.name], key=lambda n: costs[layer.name][n].runtime
                ),
                report=min(
                    costs[layer.name].values(), key=lambda r: r.runtime
                ),
            )
            for layer in network.layers
        ]
        return HeterogeneousAnalysis(
            network_name=network.name, mode=mode, assignments=tuple(assignments)
        )

    # Pipelined: greedy LPT load balancing with affinity-aware costs —
    # assign the heaviest layers first to the partition that minimizes
    # the resulting bottleneck (its current load plus the layer's
    # runtime *on that partition*).
    order = sorted(
        network.layers,
        key=lambda layer: min(r.runtime for r in costs[layer.name].values()),
        reverse=True,
    )
    loads: Dict[str, float] = {sub.name: 0.0 for sub in sub_accelerators}
    chosen: Dict[str, Tuple[str, LayerAnalysis]] = {}
    for layer in order:
        best_name: Optional[str] = None
        best_load = float("inf")
        for name, report in costs[layer.name].items():
            candidate = loads[name] + report.runtime
            if candidate < best_load:
                best_load = candidate
                best_name = name
        assert best_name is not None
        loads[best_name] += costs[layer.name][best_name].runtime
        chosen[layer.name] = (best_name, costs[layer.name][best_name])

    assignments = [
        Assignment(
            layer_name=layer.name,
            sub_accelerator=chosen[layer.name][0],
            report=chosen[layer.name][1],
        )
        for layer in network.layers
    ]
    return HeterogeneousAnalysis(
        network_name=network.name, mode=mode, assignments=tuple(assignments)
    )


def split_accelerator(
    accelerator: Accelerator, shares: Mapping[str, Tuple[float, Dataflow]]
) -> List[SubAccelerator]:
    """Partition one chip's PEs into named (share, dataflow) slices."""
    total = sum(share for share, _ in shares.values())
    if total > 1.0 + 1e-9:
        raise HardwareError(f"shares sum to {total:.2f} > 1")
    subs = []
    for name, (share, flow) in shares.items():
        pes = max(1, int(accelerator.num_pes * share))
        subs.append(
            SubAccelerator(
                name=name,
                accelerator=Accelerator(
                    num_pes=pes,
                    l1_size=accelerator.l1_size,
                    l2_size=accelerator.l2_size,
                    noc=accelerator.noc,
                    spatial_reduction=accelerator.spatial_reduction,
                    double_buffered=accelerator.double_buffered,
                    vector_width=accelerator.vector_width,
                    element_bytes=accelerator.element_bytes,
                    clock_ghz=accelerator.clock_ghz,
                ),
                dataflow=flow,
            )
        )
    return subs
