"""Operator taxonomy of the paper's Table 4.

Layers are grouped into classes whose dataflow preferences the paper's
Figure 10(f) averages over: early CONV2D (wide, shallow), late CONV2D
(narrow, deep), pointwise, depthwise, transposed convolution,
fully-connected, and residual links. The early/late split follows the
paper's footnote: a CONV2D layer is *late* when it has more input
channels than input rows (``C > Y``), *early* otherwise.
"""

from __future__ import annotations

import enum

from repro.model.layer import Layer
from repro.tensors import dims as D


class OperatorClass(enum.Enum):
    """DNN operator classes of Table 4."""

    EARLY_CONV = "CONV2D early layer"
    LATE_CONV = "CONV2D late layer"
    POINTWISE = "Point-wise convolution"
    DEPTHWISE = "Depth-wise convolution"
    TRANSPOSED = "Transposed convolution"
    FULLY_CONNECTED = "Fully-connected"
    RESIDUAL = "Residual link"
    POOLING = "Pooling"


def classify_layer(layer: Layer) -> OperatorClass:
    """Assign a layer to its Table 4 operator class."""
    op_name = layer.operator.name
    if op_name == "PWCONV":
        return OperatorClass.POINTWISE
    if op_name == "DWCONV":
        return OperatorClass.DEPTHWISE
    if op_name == "TRCONV":
        return OperatorClass.TRANSPOSED
    if op_name == "FC":
        return OperatorClass.FULLY_CONNECTED
    if op_name == "ELEMENTWISE":
        return OperatorClass.RESIDUAL
    if op_name == "POOL":
        return OperatorClass.POOLING
    if op_name == "CONV2D":
        if layer.dims[D.C] * layer.groups > layer.dims[D.Y]:
            return OperatorClass.LATE_CONV
        return OperatorClass.EARLY_CONV
    raise ValueError(f"cannot classify operator {op_name!r}")
