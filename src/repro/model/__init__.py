"""DNN model descriptions: layers, networks, taxonomy, and the model zoo."""

from repro.model.layer import Layer, conv2d, dwconv, elementwise, fc, pool, pwconv, trconv
from repro.model.network import Network
from repro.model.taxonomy import OperatorClass, classify_layer

__all__ = [
    "Layer",
    "Network",
    "OperatorClass",
    "classify_layer",
    "conv2d",
    "dwconv",
    "pwconv",
    "trconv",
    "fc",
    "pool",
    "elementwise",
]
