"""AlexNet (Krizhevsky et al., 2012), the Figure 9 validation workload.

Five convolution layers named ``CONV1`` .. ``CONV5`` (Figure 9 plots
C1-C5), with the original grouped convolutions on CONV2/4/5.
"""

from __future__ import annotations

from repro.model.layer import conv2d, fc, pool
from repro.model.network import Network


def alexnet(batch: int = 1) -> Network:
    """Build AlexNet for 227x227x3 inputs."""
    layers = (
        conv2d("CONV1", n=batch, k=96, c=3, y=227, x=227, r=11, s=11, stride=4),
        pool("POOL1", n=batch, c=96, y=55, x=55, window=3, stride=2),
        conv2d(
            "CONV2", n=batch, k=256, c=96, y=27, x=27, r=5, s=5, padding=2, groups=2
        ),
        pool("POOL2", n=batch, c=256, y=27, x=27, window=3, stride=2),
        conv2d("CONV3", n=batch, k=384, c=256, y=13, x=13, r=3, s=3, padding=1),
        conv2d(
            "CONV4", n=batch, k=384, c=384, y=13, x=13, r=3, s=3, padding=1, groups=2
        ),
        conv2d(
            "CONV5", n=batch, k=256, c=384, y=13, x=13, r=3, s=3, padding=1, groups=2
        ),
        pool("POOL5", n=batch, c=256, y=13, x=13, window=3, stride=2),
        fc("FC1", n=batch, k=4096, c=256 * 6 * 6),
        fc("FC2", n=batch, k=4096, c=4096),
        fc("FC3", n=batch, k=1000, c=4096),
    )
    return Network(name="AlexNet", layers=layers)
