"""MobileNetV2 (Sandler et al., 2018) for 224x224x3 inputs.

Inverted-residual bottlenecks expand with a point-wise convolution,
filter depthwise, and project back down — the source of the paper's
point-wise and depth-wise operator classes (Table 4).
"""

from __future__ import annotations

from typing import List

from repro.model.layer import Layer, conv2d, dwconv, elementwise, fc, pwconv
from repro.model.network import Network

#: (expansion t, output channels c, repeats n, first stride s) per stage.
_BOTTLENECK_CFG = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def mobilenet_v2(batch: int = 1) -> Network:
    """Build MobileNetV2."""
    layers: List[Layer] = [
        conv2d("CONV1", n=batch, k=32, c=3, y=224, x=224, r=3, s=3, stride=2, padding=1)
    ]
    in_channels = 32
    extent = 112
    for stage, (t, out_channels, repeats, first_stride) in enumerate(
        _BOTTLENECK_CFG, start=1
    ):
        for block in range(repeats):
            stride = first_stride if block == 0 else 1
            tag = f"BN{stage}_{block + 1}"
            expanded = in_channels * t
            if t != 1:
                layers.append(
                    pwconv(
                        f"{tag}_expand",
                        n=batch,
                        k=expanded,
                        c=in_channels,
                        y=extent,
                        x=extent,
                    )
                )
            out_extent = extent // stride
            layers.append(
                dwconv(
                    f"{tag}_dw",
                    n=batch,
                    c=expanded,
                    y=extent,
                    x=extent,
                    r=3,
                    s=3,
                    stride=stride,
                    padding=1,
                )
            )
            layers.append(
                pwconv(
                    f"{tag}_project",
                    n=batch,
                    k=out_channels,
                    c=expanded,
                    y=out_extent,
                    x=out_extent,
                )
            )
            if stride == 1 and in_channels == out_channels:
                layers.append(
                    elementwise(
                        f"{tag}_add", n=batch, c=out_channels, y=out_extent, x=out_extent
                    )
                )
            in_channels = out_channels
            extent = out_extent
    layers.append(pwconv("CONV_LAST", n=batch, k=1280, c=in_channels, y=7, x=7))
    layers.append(fc("FC1000", n=batch, k=1000, c=1280))
    return Network(name="MobileNetV2", layers=tuple(layers))
