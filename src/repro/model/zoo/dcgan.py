"""DCGAN generator (Radford et al., 2015), Table 4's transposed-conv case.

The generator maps a 100-d latent vector to a 64x64x3 image through a
projection and four 4x4 stride-2 transposed convolutions.
"""

from __future__ import annotations

from repro.model.layer import fc, trconv
from repro.model.network import Network


def dcgan_generator(batch: int = 1) -> Network:
    """Build the DCGAN generator."""
    layers = (
        fc("PROJECT", n=batch, k=1024 * 4 * 4, c=100),
        trconv(
            "CONV1", n=batch, k=512, c=1024, y=4, x=4, r=4, s=4, upscale=2, padding=1
        ),
        trconv(
            "CONV2", n=batch, k=256, c=512, y=8, x=8, r=4, s=4, upscale=2, padding=1
        ),
        trconv(
            "CONV3", n=batch, k=128, c=256, y=16, x=16, r=4, s=4, upscale=2, padding=1
        ),
        trconv(
            "CONV4", n=batch, k=3, c=128, y=32, x=32, r=4, s=4, upscale=2, padding=1
        ),
    )
    return Network(name="DCGAN-G", layers=layers)
