"""UNet (Ronneberger et al., 2015) for 572x572x1 inputs.

The original unpadded architecture: 3x3 valid convolutions, 2x2 max
pools on the contracting path, and 2x2 transposed up-convolutions on the
expanding path. UNet's very wide activations and up-scale convolutions
drive the paper's YX-P runtime win (Section 5.1).
"""

from __future__ import annotations

from typing import List

from repro.model.layer import Layer, conv2d, pool, trconv
from repro.model.network import Network


def _double_conv(
    layers: List[Layer],
    tag: str,
    in_channels: int,
    out_channels: int,
    extent: int,
    batch: int,
) -> int:
    """Two valid 3x3 convolutions; return the resulting spatial extent."""
    layers.append(
        conv2d(
            f"{tag}_1", n=batch, k=out_channels, c=in_channels,
            y=extent, x=extent, r=3, s=3,
        )
    )
    layers.append(
        conv2d(
            f"{tag}_2", n=batch, k=out_channels, c=out_channels,
            y=extent - 2, x=extent - 2, r=3, s=3,
        )
    )
    return extent - 4


def unet(batch: int = 1) -> Network:
    """Build the original UNet."""
    layers: List[Layer] = []
    extent = 572
    channels = [64, 128, 256, 512, 1024]

    # Contracting path.
    down_extents = []
    in_channels = 1
    for depth, out_channels in enumerate(channels, start=1):
        extent = _double_conv(
            layers, f"DOWN{depth}", in_channels, out_channels, extent, batch
        )
        in_channels = out_channels
        if depth < len(channels):
            down_extents.append(extent)
            layers.append(
                pool(f"POOL{depth}", n=batch, c=out_channels, y=extent, x=extent, window=2)
            )
            extent //= 2

    # Expanding path: up-convolve, concatenate with the (cropped) skip,
    # then double-convolve back down in channel count.
    for depth, out_channels in enumerate(reversed(channels[:-1]), start=1):
        layers.append(
            trconv(
                f"UPCONV{depth}",
                n=batch,
                k=out_channels,
                c=in_channels,
                y=extent,
                x=extent,
                r=2,
                s=2,
                upscale=2,
            )
        )
        extent *= 2
        extent = _double_conv(
            layers, f"UP{depth}", out_channels * 2, out_channels, extent, batch
        )
        in_channels = out_channels

    layers.append(
        conv2d("FINAL", n=batch, k=2, c=64, y=extent, x=extent, r=1, s=1)
    )
    return Network(name="UNet", layers=tuple(layers))
