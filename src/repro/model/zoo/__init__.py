"""The paper's model zoo.

Five evaluation models (Figure 10): ResNet50, VGG16, ResNeXt50,
MobileNetV2, UNet — plus AlexNet (Figure 9 validation) and the DCGAN
generator (Table 4's transposed-convolution exemplar).
"""

from typing import Callable, Dict

from repro.model.network import Network
from repro.model.zoo.alexnet import alexnet
from repro.model.zoo.dcgan import dcgan_generator
from repro.model.zoo.mobilenet_v2 import mobilenet_v2
from repro.model.zoo.resnet import resnet50, resnext50
from repro.model.zoo.unet import unet
from repro.model.lstm import lstm_network
from repro.model.zoo.vgg import vgg16

#: Model constructors by canonical name.
MODELS: Dict[str, Callable[[], Network]] = {
    "vgg16": vgg16,
    "alexnet": alexnet,
    "resnet50": resnet50,
    "resnext50": resnext50,
    "mobilenet_v2": mobilenet_v2,
    "unet": unet,
    "dcgan": dcgan_generator,
    "lstm": lstm_network,
}


def build(name: str) -> Network:
    """Build a zoo model by name (see :data:`MODELS`)."""
    try:
        constructor = MODELS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    return constructor()


__all__ = [
    "MODELS",
    "build",
    "vgg16",
    "alexnet",
    "resnet50",
    "resnext50",
    "mobilenet_v2",
    "unet",
    "dcgan_generator",
    "lstm_network",
]
