"""ResNet50 and ResNeXt50-32x4d bottleneck networks (224x224x3).

Both networks share the bottleneck skeleton the paper's Table 4 lists
(point-wise reduce, 3x3 conv, point-wise expand, residual add); ResNeXt
replaces the 3x3 with a 32-group aggregated convolution over a wider
bottleneck (Table 4's "aggregated residual blocks").
"""

from __future__ import annotations

from typing import List

from repro.model.layer import Layer, conv2d, elementwise, fc, pool
from repro.model.network import Network

#: (bottleneck width for ResNet, block count, spatial extent) per stage.
_STAGES = [
    (64, 3, 56),
    (128, 4, 28),
    (256, 6, 14),
    (512, 3, 7),
]


def _bottleneck_stage(
    layers: List[Layer],
    stage_index: int,
    in_channels: int,
    width: int,
    blocks: int,
    extent: int,
    groups: int,
    batch: int,
) -> int:
    """Append one bottleneck stage; return its output channel count."""
    out_channels = width * 4
    for block in range(blocks):
        tag = f"CONV{stage_index}_{block + 1}"
        stride = 2 if (block == 0 and stage_index > 2) else 1
        in_extent = extent * stride
        mid = width * (2 if groups > 1 else 1)
        layers.append(
            conv2d(
                f"{tag}a",
                n=batch,
                k=mid,
                c=in_channels,
                y=in_extent,
                x=in_extent,
                r=1,
                s=1,
            )
        )
        layers.append(
            conv2d(
                f"{tag}b",
                n=batch,
                k=mid,
                c=mid,
                y=in_extent,
                x=in_extent,
                r=3,
                s=3,
                stride=stride,
                padding=1,
                groups=groups,
            )
        )
        layers.append(
            conv2d(
                f"{tag}c",
                n=batch,
                k=out_channels,
                c=mid,
                y=extent,
                x=extent,
                r=1,
                s=1,
            )
        )
        if block == 0:
            layers.append(
                conv2d(
                    f"{tag}_shortcut",
                    n=batch,
                    k=out_channels,
                    c=in_channels,
                    y=in_extent,
                    x=in_extent,
                    r=1,
                    s=1,
                    stride=stride,
                )
            )
        layers.append(
            elementwise(f"{tag}_add", n=batch, c=out_channels, y=extent, x=extent)
        )
        in_channels = out_channels
    return out_channels


def _build(name: str, groups: int, batch: int) -> Network:
    layers: List[Layer] = [
        conv2d("CONV1", n=batch, k=64, c=3, y=224, x=224, r=7, s=7, stride=2, padding=3),
        pool("POOL1", n=batch, c=64, y=112, x=112, window=3, stride=2),
    ]
    in_channels = 64
    for stage_offset, (width, blocks, extent) in enumerate(_STAGES):
        in_channels = _bottleneck_stage(
            layers,
            stage_index=stage_offset + 2,
            in_channels=in_channels,
            width=width,
            blocks=blocks,
            extent=extent,
            groups=groups,
            batch=batch,
        )
    layers.append(fc("FC1000", n=batch, k=1000, c=in_channels))
    return Network(name=name, layers=tuple(layers))


def resnet50(batch: int = 1) -> Network:
    """Build ResNet50."""
    return _build("ResNet50", groups=1, batch=batch)


def resnext50(batch: int = 1) -> Network:
    """Build ResNeXt50-32x4d (32-group 3x3 bottleneck convolutions)."""
    return _build("ResNeXt50", groups=32, batch=batch)
