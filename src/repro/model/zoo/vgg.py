"""VGG16 (Simonyan & Zisserman, 2015) for 224x224x3 inputs.

Convolution layers are named ``CONV1`` .. ``CONV13`` to match the paper's
references (e.g. "VGG16 CONV2" and "VGG16 CONV11" in Figure 13 and the
DSE case study). All convolutions are 3x3, stride 1, padding 1.
"""

from __future__ import annotations

from typing import List

from repro.model.layer import Layer, conv2d, fc, pool
from repro.model.network import Network

#: (output channels, spatial extent) per conv layer, stage by stage.
_VGG16_CONVS = [
    (64, 224),
    (64, 224),
    (128, 112),
    (128, 112),
    (256, 56),
    (256, 56),
    (256, 56),
    (512, 28),
    (512, 28),
    (512, 28),
    (512, 14),
    (512, 14),
    (512, 14),
]

#: Conv indices (1-based) after which a 2x2 max-pool follows.
_POOL_AFTER = {2, 4, 7, 10, 13}


def vgg16(batch: int = 1) -> Network:
    """Build VGG16."""
    layers: List[Layer] = []
    in_channels = 3
    for index, (out_channels, extent) in enumerate(_VGG16_CONVS, start=1):
        layers.append(
            conv2d(
                f"CONV{index}",
                n=batch,
                k=out_channels,
                c=in_channels,
                y=extent,
                x=extent,
                r=3,
                s=3,
                padding=1,
            )
        )
        if index in _POOL_AFTER:
            layers.append(
                pool(f"POOL{index}", n=batch, c=out_channels, y=extent, x=extent, window=2)
            )
        in_channels = out_channels
    layers.append(fc("FC1", n=batch, k=4096, c=512 * 7 * 7))
    layers.append(fc("FC2", n=batch, k=4096, c=4096))
    layers.append(fc("FC3", n=batch, k=1000, c=4096))
    return Network(name="VGG16", layers=tuple(layers))
