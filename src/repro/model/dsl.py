"""A textual DNN-model description format.

MAESTRO consumes DNN model files; this module provides the equivalent:
a line-oriented format with one ``layer`` statement per layer::

    network my-net
    layer CONV1 conv2d k=64 c=3 y=224 x=224 r=7 s=7 stride=2 padding=3
    layer POOL1 pool c=64 y=112 x=112 window=3 stride=2
    layer DW1   dwconv c=64 y=56 x=56 r=3 s=3 padding=1
    layer UP1   trconv k=32 c=64 y=28 x=28 r=2 s=2 upscale=2
    layer ADD1  elementwise c=64 y=56 x=56
    layer FC1   fc k=1000 c=2048

Comments start with ``#``; keys are the keyword arguments of the layer
constructors in :mod:`repro.model.layer`. ``serialize_network`` writes
any :class:`~repro.model.network.Network` back out (constructor-level
round-tripping: derived quantities like padding fold into y/x).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.errors import LayerError
from repro.model.layer import (
    Layer,
    conv2d,
    dwconv,
    elementwise,
    fc,
    pool,
    pwconv,
    trconv,
)
from repro.model.network import Network
from repro.tensors import dims as D

_CONSTRUCTORS: Dict[str, Callable[..., Layer]] = {
    "conv2d": conv2d,
    "pwconv": pwconv,
    "dwconv": dwconv,
    "trconv": trconv,
    "fc": fc,
    "pool": pool,
    "elementwise": elementwise,
}

_INT_KEY_RE = re.compile(r"^([a-z_]+)=(-?\d+(?:\.\d+)?)$")


def parse_network(text: str, default_name: str = "parsed") -> Network:
    """Parse a network description; see the module docstring."""
    name = default_name
    layers: List[Layer] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#")[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "network":
            if len(tokens) != 2:
                raise LayerError(f"line {line_number}: 'network <name>' expected")
            name = tokens[1]
            continue
        if tokens[0] != "layer":
            raise LayerError(
                f"line {line_number}: expected 'network' or 'layer', got {tokens[0]!r}"
            )
        if len(tokens) < 3:
            raise LayerError(f"line {line_number}: 'layer <name> <type> k=v...'")
        layer_name, layer_type = tokens[1], tokens[2].lower()
        constructor = _CONSTRUCTORS.get(layer_type)
        if constructor is None:
            raise LayerError(
                f"line {line_number}: unknown layer type {layer_type!r}; "
                f"available: {sorted(_CONSTRUCTORS)}"
            )
        kwargs: Dict[str, object] = {}
        densities: Dict[str, float] = {}
        for token in tokens[3:]:
            match = _INT_KEY_RE.match(token)
            if not match:
                raise LayerError(
                    f"line {line_number}: cannot parse parameter {token!r}"
                )
            key, value = match.group(1), match.group(2)
            if key.startswith("density_"):
                densities[key.split("_", 1)[1].upper()] = float(value)
            elif "." in value:
                raise LayerError(
                    f"line {line_number}: parameter {key!r} must be an integer"
                )
            else:
                kwargs[key] = int(value)
        if densities:
            kwargs["densities"] = densities
        try:
            layers.append(constructor(layer_name, **kwargs))
        except TypeError as error:
            raise LayerError(f"line {line_number}: {error}") from None
    if not layers:
        raise LayerError("network description has no layers")
    return Network(name=name, layers=tuple(layers))


def serialize_network(network: Network) -> str:
    """Write a network back out in the DSL (input-centric, pad folded)."""
    lines = [f"network {network.name}"]
    for layer in network.layers:
        lines.append(_serialize_layer(layer))
    return "\n".join(lines) + "\n"


def _serialize_layer(layer: Layer) -> str:
    op = layer.operator.name
    dims = layer.dims
    parts = [f"layer {layer.name}"]
    if op in ("CONV2D", "PWCONV", "TRCONV"):
        parts.append("conv2d")
        parts.append(f"n={dims[D.N]} k={dims[D.K] * layer.groups} c={dims[D.C] * layer.groups}")
        parts.append(
            f"y={dims[D.Y]} x={dims[D.X]} r={dims[D.R]} s={dims[D.S]} "
            f"stride={layer.stride[0]}"
        )
        if layer.groups > 1:
            parts.append(f"groups={layer.groups}")
    elif op == "DWCONV":
        parts.append("dwconv")
        parts.append(
            f"n={dims[D.N]} c={dims[D.C]} y={dims[D.Y]} x={dims[D.X]} "
            f"r={dims[D.R]} s={dims[D.S]} stride={layer.stride[0]}"
        )
    elif op == "FC":
        parts.append(f"fc n={dims[D.N]} k={dims[D.K]} c={dims[D.C]}")
    elif op == "POOL":
        parts.append(
            f"pool n={dims[D.N]} c={dims[D.C]} y={dims[D.Y]} x={dims[D.X]} "
            f"window={dims[D.R]} stride={layer.stride[0]}"
        )
    elif op == "ELEMENTWISE":
        parts.append(
            f"elementwise n={dims[D.N]} c={dims[D.C]} y={dims[D.Y]} x={dims[D.X]}"
        )
    else:  # pragma: no cover - defensive
        raise LayerError(f"cannot serialize operator {op}")
    for tensor, density in layer.densities.items():
        if density < 1.0:
            parts.append(f"density_{tensor.lower()}={density}")
    return " ".join(parts)
