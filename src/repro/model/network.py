"""A DNN network: an ordered collection of named layers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import LayerError
from repro.model.layer import Layer


@dataclass(frozen=True)
class Network:
    """An ordered, name-indexed sequence of layers."""

    name: str
    layers: Tuple[Layer, ...]

    def __post_init__(self) -> None:
        seen = set()
        for layer in self.layers:
            if layer.name in seen:
                raise LayerError(f"{self.name}: duplicate layer name {layer.name!r}")
            seen.add(layer.name)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"{self.name} has no layer named {name!r}")

    def select(self, predicate: Callable[[Layer], bool]) -> List[Layer]:
        """All layers matching ``predicate``, in network order."""
        return [layer for layer in self.layers if predicate(layer)]

    def conv_layers(self) -> List[Layer]:
        """Layers with a sliding-window compute domain (conv-like)."""
        return self.select(
            lambda layer: layer.operator.name
            in ("CONV2D", "PWCONV", "DWCONV", "TRCONV")
        )

    def total_ops(self) -> int:
        """Dense op count over the whole network."""
        return sum(layer.total_ops() for layer in self.layers)

    def subset(self, names: List[str], suffix: Optional[str] = None) -> "Network":
        """A new network with only the named layers (in the given order)."""
        picked = tuple(self.layer(name) for name in names)
        return Network(name=suffix or f"{self.name}-subset", layers=picked)
