"""Concrete DNN layers: operator + dimension sizes + stride + sparsity.

A :class:`Layer` pins an :class:`~repro.tensors.operators.Operator` to
concrete dimension extents. Dimensions are stored *input-centric* (``Y``
and ``X`` are input activation extents, already including any padding);
the output extents ``Y'``/``X'`` are derived from the convolution window
relation.

Sparsity follows the paper's Section 4.4: a uniform density in ``[0, 1]``
per tensor scales effective MAC counts and data traffic. Transposed
convolutions are modeled as dense convolutions over the zero-upscaled
input, with the inserted zeros captured as structured input sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import LayerError
from repro.tensors import dims as D
from repro.tensors.operators import (
    CONV2D,
    DWCONV,
    ELEMENTWISE,
    FC,
    POOL,
    PWCONV,
    TRCONV,
    Operator,
)

_DEFAULT_DENSITY = 1.0


@dataclass(frozen=True)
class Layer:
    """One DNN layer bound to concrete sizes.

    Parameters
    ----------
    name:
        Human-readable layer label, unique within a network.
    operator:
        The operator template (CONV2D, DWCONV, FC, ...).
    dims:
        Input-centric extents for the canonical dims the operator uses;
        unused dims default to 1. ``Y``/``X`` must already include
        padding.
    stride, dilation:
        ``(row, col)`` stride/dilation of the sliding window.
    groups:
        Grouped convolution factor; ``dims`` describe a single group and
        every count the analysis produces is multiplied by ``groups``.
    densities:
        Uniform density per tensor name (e.g. ``{"I": 0.25}``); missing
        tensors are dense.
    """

    name: str
    operator: Operator
    dims: Mapping[str, int]
    stride: Tuple[int, int] = (1, 1)
    dilation: Tuple[int, int] = (1, 1)
    groups: int = 1
    densities: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        sizes: Dict[str, int] = {dim: 1 for dim in D.CANONICAL_DIMS}
        for dim, size in dict(self.dims).items():
            if dim not in sizes:
                raise LayerError(f"{self.name}: unknown dimension {dim!r}")
            if not isinstance(size, int) or size < 1:
                raise LayerError(f"{self.name}: dimension {dim}={size!r} must be a positive int")
            sizes[dim] = size
        for dim, size in sizes.items():
            if size > 1 and dim not in self.operator.used_dims:
                raise LayerError(
                    f"{self.name}: dimension {dim}={size} is not used by "
                    f"operator {self.operator.name}"
                )
        if self.groups < 1:
            raise LayerError(f"{self.name}: groups must be >= 1")
        for label, pair in (("stride", self.stride), ("dilation", self.dilation)):
            if len(pair) != 2 or any(v < 1 for v in pair):
                raise LayerError(f"{self.name}: {label} must be a pair of positive ints")
        for tensor_name, density in dict(self.densities).items():
            self.operator.tensor(tensor_name)  # raises KeyError if unknown
            if not 0.0 < density <= 1.0:
                raise LayerError(
                    f"{self.name}: density of {tensor_name} must be in (0, 1], got {density}"
                )
        object.__setattr__(self, "dims", MappingProxyType(sizes))
        object.__setattr__(self, "densities", MappingProxyType(dict(self.densities)))
        # Validate the output window exists.
        for in_dim, k_dim, axis in ((D.Y, D.R, 0), (D.X, D.S, 1)):
            k_ext = (sizes[k_dim] - 1) * self.dilation[axis] + 1
            if sizes[in_dim] < k_ext:
                raise LayerError(
                    f"{self.name}: {in_dim}={sizes[in_dim]} is smaller than the "
                    f"kernel extent {k_ext} along {k_dim}"
                )

    def __reduce__(self):
        # The normalized dims/densities live in MappingProxyType views,
        # which cannot be pickled; rebuild through __init__ (re-running
        # the cheap validation) so layers cross process boundaries — the
        # batch-evaluation backend ships them to worker processes.
        return (
            Layer,
            (
                self.name,
                self.operator,
                dict(self.dims),
                self.stride,
                self.dilation,
                self.groups,
                dict(self.densities),
            ),
        )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def out_y(self) -> int:
        """Output rows ``Y'``."""
        k_ext = (self.dims[D.R] - 1) * self.dilation[0] + 1
        return (self.dims[D.Y] - k_ext) // self.stride[0] + 1

    @property
    def out_x(self) -> int:
        """Output columns ``X'``."""
        k_ext = (self.dims[D.S] - 1) * self.dilation[1] + 1
        return (self.dims[D.X] - k_ext) // self.stride[1] + 1

    def dim_size(self, dim: str) -> int:
        """Extent of any directive dimension, including ``Y'``/``X'``."""
        if dim == D.YP:
            return self.out_y
        if dim == D.XP:
            return self.out_x
        return self.dims[dim]

    def all_dim_sizes(self) -> Dict[str, int]:
        """Every directive dim's extent, canonical plus output aliases."""
        sizes = dict(self.dims)
        sizes[D.YP] = self.out_y
        sizes[D.XP] = self.out_x
        return sizes

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    def density(self, tensor_name: str) -> float:
        return self.densities.get(tensor_name, _DEFAULT_DENSITY)

    def total_ops(self) -> int:
        """Dense compute-domain size (MACs for conv/FC, ops otherwise)."""
        return self.operator.total_ops(self.all_dim_sizes()) * self.groups

    def effective_ops(self) -> float:
        """MACs after uniform-sparsity scaling of the input operands."""
        factor = 1.0
        for template in self.operator.input_tensors:
            factor *= self.density(template.name)
        return self.total_ops() * factor

    def tensor_volume(self, tensor_name: str) -> int:
        """Dense element count of a tensor (per full layer, all groups)."""
        return (
            self.operator.tensor_volume(tensor_name, self.all_dim_sizes())
            * self.groups
        )

    def touched_tensor_volume(self, tensor_name: str) -> int:
        """Elements the computation actually touches (stride-hole aware)."""
        return (
            self.operator.touched_tensor_volume(
                tensor_name, self.all_dim_sizes(), self.stride, self.dilation
            )
            * self.groups
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(
            f"{dim}={size}" for dim, size in self.dims.items() if size > 1
        )
        return f"{self.name}[{self.operator.name}]({dims})"


# ----------------------------------------------------------------------
# Convenience constructors used by the model zoo
# ----------------------------------------------------------------------
def conv2d(
    name: str,
    *,
    n: int = 1,
    k: int,
    c: int,
    y: int,
    x: int,
    r: int,
    s: int,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    densities: Optional[Mapping[str, float]] = None,
) -> Layer:
    """A standard convolution. ``y``/``x`` are *unpadded* input extents."""
    operator = PWCONV if (r == 1 and s == 1) else CONV2D
    return Layer(
        name=name,
        operator=operator,
        dims={
            D.N: n,
            D.K: k // groups,
            D.C: c // groups,
            D.Y: y + 2 * padding,
            D.X: x + 2 * padding,
            D.R: r,
            D.S: s,
        },
        stride=(stride, stride),
        groups=groups,
        densities=dict(densities or {}),
    )


def pwconv(
    name: str, *, n: int = 1, k: int, c: int, y: int, x: int, stride: int = 1
) -> Layer:
    """A pointwise (1x1) convolution."""
    return conv2d(name, n=n, k=k, c=c, y=y, x=x, r=1, s=1, stride=stride)


def dwconv(
    name: str,
    *,
    n: int = 1,
    c: int,
    y: int,
    x: int,
    r: int,
    s: int,
    stride: int = 1,
    padding: int = 0,
) -> Layer:
    """A depthwise convolution (channel multiplier 1)."""
    return Layer(
        name=name,
        operator=DWCONV,
        dims={
            D.N: n,
            D.C: c,
            D.Y: y + 2 * padding,
            D.X: x + 2 * padding,
            D.R: r,
            D.S: s,
        },
        stride=(stride, stride),
    )


def trconv(
    name: str,
    *,
    n: int = 1,
    k: int,
    c: int,
    y: int,
    x: int,
    r: int,
    s: int,
    upscale: int,
    padding: int = 0,
) -> Layer:
    """A transposed convolution producing an upscaled output.

    Modeled as a dense stride-1 convolution over the zero-upscaled input
    (extent ``(y - 1) * upscale + 1`` plus ``r - 1 - padding`` of framing
    on each side); inserted zeros become structured input sparsity.
    """
    if upscale < 1:
        raise LayerError(f"{name}: upscale must be >= 1")
    pad_y = r - 1 - padding
    pad_x = s - 1 - padding
    if pad_y < 0 or pad_x < 0:
        raise LayerError(f"{name}: padding {padding} exceeds kernel-1")
    y_up = (y - 1) * upscale + 1 + 2 * pad_y
    x_up = (x - 1) * upscale + 1 + 2 * pad_x
    density = (y * x) / float(y_up * x_up)
    return Layer(
        name=name,
        operator=TRCONV,
        dims={D.N: n, D.K: k, D.C: c, D.Y: y_up, D.X: x_up, D.R: r, D.S: s},
        stride=(1, 1),
        densities={"I": density},
    )


def fc(name: str, *, n: int = 1, k: int, c: int) -> Layer:
    """A fully-connected layer (GEMM)."""
    return Layer(name=name, operator=FC, dims={D.N: n, D.K: k, D.C: c})


def pool(
    name: str, *, n: int = 1, c: int, y: int, x: int, window: int, stride: int = 0
) -> Layer:
    """A pooling layer; ``stride`` defaults to the window size."""
    stride = stride or window
    return Layer(
        name=name,
        operator=POOL,
        dims={D.N: n, D.C: c, D.Y: y, D.X: x, D.R: window, D.S: window},
        stride=(stride, stride),
    )


def elementwise(name: str, *, n: int = 1, c: int, y: int, x: int) -> Layer:
    """An elementwise residual addition over an N x C x Y x X activation."""
    return Layer(
        name=name, operator=ELEMENTWISE, dims={D.N: n, D.C: c, D.Y: y, D.X: x}
    )
