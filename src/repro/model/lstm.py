"""LSTM layers as GEMM bundles.

The paper's abstract and Section 4.4 include LSTMs among the layer
types MAESTRO models: an LSTM cell step is four gate GEMMs against the
input (``x_t W_x``) and four against the hidden state (``h_{t-1} W_h``)
plus cheap elementwise gating. This module expands an LSTM layer into
exactly those operator instances so every engine (analysis, simulator,
tuner) applies unchanged.

The four gates share the input activations, so expressing them as one
fused GEMM with ``4 * hidden`` output neurons (the standard packed
formulation) preserves both the compute and the reuse structure; the
``fused`` flag controls whether gates are packed or emitted separately.
"""

from __future__ import annotations

from typing import List

from repro.model.layer import Layer, elementwise, fc
from repro.model.network import Network


def lstm_cell_layers(
    name: str,
    input_size: int,
    hidden_size: int,
    batch: int = 1,
    fused: bool = True,
) -> List[Layer]:
    """The layers of one LSTM cell *time step*.

    Returns the input-projection GEMM(s), the recurrent GEMM(s), and the
    elementwise gating stage.
    """
    layers: List[Layer] = []
    if fused:
        layers.append(
            fc(f"{name}_x", n=batch, k=4 * hidden_size, c=input_size)
        )
        layers.append(
            fc(f"{name}_h", n=batch, k=4 * hidden_size, c=hidden_size)
        )
    else:
        for gate in ("i", "f", "g", "o"):
            layers.append(
                fc(f"{name}_x_{gate}", n=batch, k=hidden_size, c=input_size)
            )
            layers.append(
                fc(f"{name}_h_{gate}", n=batch, k=hidden_size, c=hidden_size)
            )
    # Gating: sigmoid/tanh products and the cell-state update, modeled
    # as elementwise traffic over the four gate vectors.
    layers.append(
        elementwise(f"{name}_gates", n=batch, c=4, y=1, x=hidden_size)
    )
    return layers


def lstm_network(
    name: str = "LSTM-LM",
    input_size: int = 1024,
    hidden_size: int = 1024,
    num_layers: int = 2,
    seq_len: int = 8,
    batch: int = 1,
    fused: bool = True,
) -> Network:
    """An unrolled multi-layer LSTM (language-model shaped).

    ``seq_len`` time steps of ``num_layers`` stacked cells; layer ``l``'s
    input at step ``t`` is layer ``l-1``'s hidden state.
    """
    layers: List[Layer] = []
    for step in range(seq_len):
        feed = input_size
        for depth in range(num_layers):
            layers.extend(
                lstm_cell_layers(
                    f"T{step}_L{depth}",
                    input_size=feed,
                    hidden_size=hidden_size,
                    batch=batch,
                    fused=fused,
                )
            )
            feed = hidden_size
    return Network(name=name, layers=tuple(layers))
