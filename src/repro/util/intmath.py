"""Integer helpers used throughout the analytical model.

The cost model works almost exclusively on integer element counts and
cycle counts, so these helpers stay in integer arithmetic (no float
round-off) wherever possible.
"""

from __future__ import annotations

from typing import Iterable


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires a positive divisor, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires a non-negative dividend, got {a}")
    return -(-a // b)


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` into the inclusive range ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp range is empty: [{low}, {high}]")
    return max(low, min(high, value))


def num_chunks(total: int, size: int, offset: int) -> int:
    """Number of chunks a mapping directive produces along one dimension.

    A directive ``Map(size, offset)`` over a dimension of extent ``total``
    places chunks starting at ``0, offset, 2*offset, ...`` until the whole
    dimension is covered: ``ceil((total - size) / offset) + 1`` chunks, or a
    single chunk when ``size >= total``.
    """
    if total <= 0:
        raise ValueError(f"dimension extent must be positive, got {total}")
    if size <= 0 or offset <= 0:
        raise ValueError(
            f"mapping size and offset must be positive, got size={size} offset={offset}"
        )
    if size >= total:
        return 1
    return ceil_div(total - size, offset) + 1


def prod(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for an empty iterable)."""
    result = 1
    for value in values:
        result *= value
    return result
