"""Small shared utilities: integer math, Pareto filtering, text tables."""

from repro.util.intmath import ceil_div, clamp, num_chunks, prod
from repro.util.pareto import pareto_front
from repro.util.text_table import format_table

__all__ = [
    "ceil_div",
    "clamp",
    "num_chunks",
    "prod",
    "pareto_front",
    "format_table",
]
