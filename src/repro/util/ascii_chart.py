"""Tiny ASCII bar charts for rendering the paper's figures as text.

The benchmark harness regenerates figures; these helpers render the
series as horizontal bars (optionally on a log scale, which is how the
paper plots reuse factors in Figure 11).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def bar_chart(
    series: Sequence[Tuple[str, float]],
    width: int = 50,
    log: bool = False,
    title: str = "",
) -> str:
    """Render labeled values as horizontal bars.

    ``log=True`` scales bar lengths by log10 (all values must be > 0).
    """
    if not series:
        raise ValueError("bar_chart needs at least one value")
    values = [value for _, value in series]
    if log:
        if any(value <= 0 for value in values):
            raise ValueError("log-scale bars need positive values")
        scaled = [math.log10(value) for value in values]
        floor = min(0.0, min(scaled))
        scaled = [value - floor for value in scaled]
    else:
        if any(value < 0 for value in values):
            raise ValueError("bars need non-negative values")
        scaled = list(values)
    peak = max(scaled) or 1.0
    label_width = max(len(label) for label, _ in series)
    lines: List[str] = [title] if title else []
    for (label, value), magnitude in zip(series, scaled):
        bar = "#" * max(1 if value > 0 else 0, round(magnitude / peak * width))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:,.4g}")
    return "\n".join(lines)
