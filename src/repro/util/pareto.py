"""Pareto-front extraction for design-space exploration results."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Sequence[T],
    objectives: Sequence[Callable[[T], float]],
) -> List[T]:
    """Return the Pareto-optimal subset of ``items``.

    Every objective is *minimized*; to maximize a metric pass a key that
    negates it. An item is kept when no other item is at least as good on
    every objective and strictly better on at least one.

    The implementation sorts by the first objective and then does a sweep,
    which is ``O(n log n + n * k)`` for two objectives and degrades to the
    quadratic filter for three or more.
    """
    if not items:
        return []
    if not objectives:
        raise ValueError("pareto_front needs at least one objective")

    scored: List[Tuple[Tuple[float, ...], T]] = [
        (tuple(obj(item) for item in (candidate,) for obj in objectives), candidate)
        for candidate in items
    ]

    if len(objectives) == 2:
        scored.sort(key=lambda pair: (pair[0][0], pair[0][1]))
        front: List[T] = []
        best_second = float("inf")
        for score, item in scored:
            if score[1] < best_second:
                front.append(item)
                best_second = score[1]
        return front

    front = []
    for score, item in scored:
        dominated = False
        for other_score, _ in scored:
            if other_score is score:
                continue
            if all(o <= s for o, s in zip(other_score, score)) and any(
                o < s for o, s in zip(other_score, score)
            ):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front
