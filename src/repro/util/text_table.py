"""Plain-text table rendering for reports, examples, and benchmarks.

The benchmark harness prints the same rows and series the paper's tables
and figures report; this module gives those printouts a uniform look
without pulling in a dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered: List[List[str]] = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)
