"""Candidate dataflow templates for the auto-tuner.

A :class:`CandidateSpec` names one point in a structured dataflow
space:

- which dimension is spatially distributed at the top level (and,
  optionally, which second dimension inside a PE cluster of a chosen
  size) — the *partitioning strategy* in the paper's Table 3 sense;
- the temporal schedule family: ``reduction_inner`` sweeps C/R/S
  innermost (output-stationary flavor) or ``activation_inner`` sweeps
  the activation plane innermost (weight-stationary flavor);
- channel and activation tile sizes (the mapping sizes the paper's DSE
  identifies as the buffer-efficiency lever).

``build()`` materializes the spec as a :class:`Dataflow`; binding may
still reject a candidate on a given layer/PE count (e.g. cluster larger
than the array), which the search treats as invalid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.directives import (
    ClusterDirective,
    Directive,
    MapDirective,
    Sz,
    spatial_map,
    temporal_map,
)
from repro.tensors import dims as D

#: Dimensions a spatial map may target.
SPATIAL_DIMS: Tuple[str, ...] = (D.K, D.C, D.Y, D.X)

#: Temporal schedule families.
SCHEDULES: Tuple[str, ...] = ("reduction_inner", "activation_inner")


@dataclass(frozen=True)
class CandidateSpec:
    """One auto-tuner candidate; see the module docstring."""

    outer_spatial: str
    schedule: str
    c_tile: int = 1
    k_tile: int = 1
    y_tile: int = 1
    x_tile: int = 1
    cluster_size: Optional[int] = None
    inner_spatial: Optional[str] = None

    def __post_init__(self) -> None:
        if self.outer_spatial not in SPATIAL_DIMS:
            raise ValueError(f"bad outer_spatial {self.outer_spatial!r}")
        if self.schedule not in SCHEDULES:
            raise ValueError(f"bad schedule {self.schedule!r}")
        if (self.cluster_size is None) != (self.inner_spatial is None):
            raise ValueError("cluster_size and inner_spatial go together")
        if self.inner_spatial is not None:
            if self.inner_spatial == self.outer_spatial:
                raise ValueError("inner and outer spatial dims must differ")
            if self.inner_spatial not in SPATIAL_DIMS:
                raise ValueError(f"bad inner_spatial {self.inner_spatial!r}")

    @property
    def name(self) -> str:
        label = f"{self.outer_spatial}"
        if self.inner_spatial:
            label += f"{self.inner_spatial}x{self.cluster_size}"
        label += (
            f"-{self.schedule.split('_')[0]}"
            f"-c{self.c_tile}k{self.k_tile}y{self.y_tile}x{self.x_tile}"
        )
        return f"tuned-{label}"

    def build(self) -> Dataflow:
        """Materialize the candidate as a Dataflow."""
        directives: List[Directive] = [self._spatial_directive(self.outer_spatial)]
        channel_maps = [
            temporal_map(self.k_tile, self.k_tile, D.K),
            temporal_map(self.c_tile, self.c_tile, D.C),
        ]
        kernel_maps = [
            temporal_map(Sz(D.R), Sz(D.R), D.R),
            temporal_map(Sz(D.S), Sz(D.S), D.S),
        ]
        activation_maps = [
            temporal_map(self._plane_size("y"), self.y_tile, D.Y),
            temporal_map(self._plane_size("x"), self.x_tile, D.X),
        ]
        if self.schedule == "reduction_inner":
            order = activation_maps + [channel_maps[0], kernel_maps[0], kernel_maps[1], channel_maps[1]]
        else:  # activation_inner: weights held while the plane sweeps
            order = [channel_maps[0], channel_maps[1]] + kernel_maps + activation_maps
        # The outer spatial dim is fully distributed; every other dim
        # (including the inner-spatial one, whose top-level temporal tile
        # the cluster then distributes, KC-P style) keeps its schedule.
        directives.extend(d for d in order if d.dim != self.outer_spatial)
        if self.cluster_size is not None:
            directives.append(ClusterDirective(self.cluster_size))
            directives.append(self._spatial_directive(self.inner_spatial))
        return Dataflow(name=self.name, directives=tuple(directives))

    def _plane_size(self, axis: str):
        if axis == "y":
            return Sz(D.R) if self.y_tile == 1 else f"({self.y_tile}-1)*St(Y)+Sz(R)"
        return Sz(D.S) if self.x_tile == 1 else f"({self.x_tile}-1)*St(X)+Sz(S)"

    def _spatial_directive(self, dim: str) -> MapDirective:
        if dim == D.Y:
            return spatial_map(Sz(D.R), 1, D.Y)
        if dim == D.X:
            return spatial_map(Sz(D.S), 1, D.X)
        return spatial_map(1, 1, dim)


def enumerate_candidates(
    c_tiles: Sequence[int] = (1, 4, 16, 64),
    k_tiles: Sequence[int] = (1, 4, 16),
    plane_tiles: Sequence[int] = (1, 4),
    cluster_sizes: Sequence[int] = (8, 32),
    two_level: bool = True,
) -> Iterator[CandidateSpec]:
    """Yield the structured candidate grid (single- then two-level)."""
    for outer, schedule, c_tile, k_tile, plane in itertools.product(
        SPATIAL_DIMS, SCHEDULES, c_tiles, k_tiles, plane_tiles
    ):
        yield CandidateSpec(
            outer_spatial=outer,
            schedule=schedule,
            c_tile=c_tile,
            k_tile=k_tile,
            y_tile=plane,
            x_tile=plane,
        )
        if not two_level:
            continue
        for inner, cluster in itertools.product(SPATIAL_DIMS, cluster_sizes):
            if inner == outer:
                continue
            yield CandidateSpec(
                outer_spatial=outer,
                schedule=schedule,
                c_tile=c_tile,
                k_tile=k_tile,
                y_tile=plane,
                x_tile=plane,
                cluster_size=cluster,
                inner_spatial=inner,
            )
