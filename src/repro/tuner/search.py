"""Search strategies for the dataflow auto-tuner."""

from __future__ import annotations

import time
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.dataflow.dataflow import Dataflow
from repro.engines.analysis import LayerAnalysis
from repro.errors import BindingError, DataflowError
from repro.exec import AnalysisCache, BatchEvaluator, EvalOutcome, EvalPoint
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.lint.engine import static_errors
from repro.model.layer import Layer
from repro.model.network import Network
from repro.tuner.templates import CandidateSpec, enumerate_candidates

#: Objectives: report -> score to minimize.
OBJECTIVES: Dict[str, Callable[[LayerAnalysis], float]] = {
    "runtime": lambda report: report.runtime,
    "energy": lambda report: report.energy_total,
    "edp": lambda report: report.edp,
}


@dataclass(frozen=True)
class ScoredCandidate:
    """One evaluated candidate."""

    spec: CandidateSpec
    dataflow: Dataflow
    report: LayerAnalysis
    score: float


@dataclass(frozen=True)
class TunerResult:
    """Outcome of tuning one layer."""

    layer_name: str
    objective: str
    best: ScoredCandidate
    top: Tuple[ScoredCandidate, ...]
    evaluated: int
    rejected: int
    #: How many of ``rejected`` the static mapping analyzer caught
    #: before any cost-model evaluation.
    statically_rejected: int = 0
    #: How many of ``rejected`` the iteration-space verifier refuted
    #: (proven missed/double-counted MACs) before evaluation; only
    #: counted when ``verify_coverage`` is enabled.
    coverage_rejected: int = 0
    #: How many of ``rejected`` the symbolic abstract interpreter
    #: screened out before evaluation (interval lower bound on a buffer
    #: requirement already above the cap); only counted when
    #: ``symbolic_prune`` is enabled and a buffer cap is set.
    symbolic_rejected: int = 0
    #: How many of ``rejected`` the communication classifier screened
    #: out (spatially mapped reduction on reduction-free hardware —
    #: the DF300 race); only counted when ``comm_prune`` is enabled
    #: and the accelerator lacks ``reduction_support``.
    comm_rejected: int = 0
    #: How many candidates were scored by replaying an equivalent
    #: candidate's outcome instead of a cost-model call (``equiv_prune``:
    #: same canonical key, provably identical report).
    equiv_replayed: int = 0
    #: How many of ``rejected`` the static capacity analyzer screened
    #: out before evaluation (certified peak occupancy bound already
    #: above a buffer cap — bit-identical to the phase-3 filter); only
    #: counted when ``capacity_prune`` is enabled and a cap is set.
    capacity_rejected: int = 0
    #: How many cost-model answers came from the memoization cache
    #: (free on tuner restarts and overlapping candidate grids).
    cache_hits: int = 0
    #: Points that needed a cost-model answer, memoized or fresh.
    cost_model_calls: int = 0
    #: Wall-clock seconds the whole tuning run took.
    elapsed_seconds: float = 0.0

    @property
    def best_dataflow(self) -> Dataflow:
        return self.best.dataflow

    @property
    def best_report(self) -> LayerAnalysis:
        return self.best.report


def tune_layer(
    layer: Layer,
    accelerator: Accelerator,
    objective: str = "runtime",
    candidates: Optional[Iterable[CandidateSpec]] = None,
    strategy: str = "exhaustive",
    budget: int = 200,
    max_l1_bytes: Optional[int] = None,
    max_l2_bytes: Optional[int] = None,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    top_k: int = 5,
    seed: int = 0,
    static_lint: bool = True,
    verify_coverage: bool = False,
    symbolic_prune: bool = False,
    comm_prune: bool = False,
    equiv_prune: bool = False,
    capacity_prune: bool = False,
    executor: str = "auto",
    jobs: Optional[int] = None,
    cache: Union[bool, AnalysisCache, None] = True,
) -> TunerResult:
    """Find the best dataflow for ``layer`` on ``accelerator``.

    ``strategy`` is ``"exhaustive"`` (walk the whole candidate grid) or
    ``"random"`` (sample ``budget`` candidates uniformly). Candidates
    whose buffer requirements exceed ``max_l1_bytes``/``max_l2_bytes``
    or that fail to bind are rejected. With ``static_lint`` (the
    default) invalid candidates are caught by the static mapping
    analyzer before any cost-model evaluation; the check is
    binding-equivalent, so the surviving candidate set is identical.

    With ``verify_coverage`` each surviving candidate is additionally
    checked by the iteration-space verifier (:mod:`repro.verify`) and
    rejected when *proven* not to cover the layer's compute space
    exactly once. The pruning is sound — only refuted mappings are
    dropped — so the best candidate among correct mappings is
    unchanged.

    Surviving candidates are scored through the batch-evaluation backend
    (:mod:`repro.exec`): ``executor``/``jobs``/``cache`` are pure
    performance knobs — every combination scores the identical set
    (``executor="vector"`` batches same-template candidates through the
    whole-grid NumPy engine in :mod:`repro.vector`).

    With ``symbolic_prune`` and a buffer cap
    (``max_l1_bytes``/``max_l2_bytes``), candidates whose *interval
    lower bound* on the corresponding buffer requirement — computed by
    the abstract interpreter (:mod:`repro.absint`) without a cost-model
    run — already exceeds the cap are rejected up front
    (``symbolic_rejected``). The bound encloses the concrete
    requirement, so exactly the candidates phase 3 would reject are
    screened and the winning candidate is unchanged.

    With ``comm_prune`` and an accelerator *without*
    ``reduction_support``, each candidate is classified once by the
    communication analyzer (:mod:`repro.comm`) and rejected when it
    spatially maps a reduction-carried dimension — the DF300 write-race
    hazard — before any cost-model call (``comm_rejected``). On
    reduction-capable hardware the screen never runs, so the result is
    bit-identical with or without the flag; candidates the classifier
    cannot bind or classify are never pruned.

    With ``capacity_prune`` and a buffer cap, each candidate's *exact*
    peak occupancy bounds — computed by the static capacity analyzer
    (:mod:`repro.capacity`) without a cost-model run — are compared
    against the caps up front (``capacity_rejected``). The bounds
    reproduce the engine's ``l1_buffer_req``/``l2_buffer_req``
    bit-for-bit, so exactly the candidates phase 3 would reject are
    screened and the winner is unchanged; candidates whose bounds
    cannot be certified are never pruned.

    With ``equiv_prune`` the surviving candidates are quotiented by the
    equivalence analyzer (:mod:`repro.equiv`): only one representative
    per canonical-form class (extended to the symmetry orbit where the
    integer-activity certificate proves transposed twins bit-identical
    on this accelerator) pays a cost-model call; the rest replay its
    report with their own mapping name restored (``equiv_replayed``).
    Every replayed report is provably bit-identical to a fresh
    evaluation, so the scored set — and the winner — are unchanged.
    """
    start = time.perf_counter()
    try:
        score_fn = OBJECTIVES[objective]
    except KeyError:
        raise KeyError(f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}")

    specs = list(candidates) if candidates is not None else list(enumerate_candidates())
    if strategy == "random":
        rng = random.Random(seed)
        if len(specs) > budget:
            specs = rng.sample(specs, budget)
    elif strategy != "exhaustive":
        raise ValueError(f"unknown strategy {strategy!r}")

    # Phase 1 — enumerate: build + statically screen the candidates.
    with obs.span("tuner.enumerate", specs=len(specs)):
        rejected = 0
        statically_rejected = 0
        runnable: List[Tuple[CandidateSpec, Dataflow]] = []
        for spec in specs:
            try:
                dataflow = spec.build()
            except (BindingError, DataflowError):
                rejected += 1
                continue
            if static_lint and static_errors(dataflow, layer, accelerator):
                rejected += 1
                statically_rejected += 1
                continue
            runnable.append((spec, dataflow))

    coverage_rejected = 0
    if verify_coverage:
        with obs.span("tuner.verify_screen", candidates=len(runnable)):
            from repro.verify import Verdict, verify_dataflow

            survivors: List[Tuple[CandidateSpec, Dataflow]] = []
            verdicts: Dict[str, bool] = {}  # dataflow name -> refuted
            for spec, dataflow in runnable:
                refuted = verdicts.get(dataflow.name)
                if refuted is None:
                    try:
                        result = verify_dataflow(dataflow, layer)
                        refuted = result.verdict is Verdict.REFUTED
                    except Exception:
                        refuted = False  # never let verification break tuning
                    verdicts[dataflow.name] = refuted
                if refuted:
                    rejected += 1
                    coverage_rejected += 1
                    continue
                survivors.append((spec, dataflow))
            runnable = survivors

    comm_rejected = 0
    if comm_prune and not accelerator.reduction_support:
        with obs.span("tuner.comm_screen", candidates=len(runnable)):
            from repro.comm import classify_dataflow

            survivors = []
            races: Dict[str, bool] = {}  # dataflow name -> races
            for spec, dataflow in runnable:
                racy = races.get(dataflow.name)
                if racy is None:
                    try:
                        racy = classify_dataflow(
                            dataflow, layer, accelerator
                        ).requires_spatial_reduction
                    except Exception:
                        racy = False  # never let classification break tuning
                    races[dataflow.name] = racy
                if racy:
                    rejected += 1
                    comm_rejected += 1
                    continue
                survivors.append((spec, dataflow))
            runnable = survivors

    capacity_rejected = 0
    if capacity_prune and (max_l1_bytes is not None or max_l2_bytes is not None):
        with obs.span("tuner.capacity_screen", candidates=len(runnable)):
            from repro.capacity import compute_capacity_bounds

            survivors = []
            peaks: Dict[str, Optional[Tuple[int, int]]] = {}
            for spec, dataflow in runnable:
                if dataflow.name not in peaks:
                    try:
                        bounds = compute_capacity_bounds(dataflow, layer, accelerator)
                        peaks[dataflow.name] = (
                            bounds.l1.peak_bytes,
                            bounds.l2.peak_bytes,
                        )
                    except Exception:
                        peaks[dataflow.name] = None  # never prune uncertified
                peak = peaks[dataflow.name]
                if peak is not None and (
                    (max_l1_bytes is not None and peak[0] > max_l1_bytes)
                    or (max_l2_bytes is not None and peak[1] > max_l2_bytes)
                ):
                    rejected += 1
                    capacity_rejected += 1
                    continue
                survivors.append((spec, dataflow))
            runnable = survivors

    symbolic_rejected = 0
    if symbolic_prune and (max_l1_bytes is not None or max_l2_bytes is not None):
        with obs.span("tuner.symbolic_screen", candidates=len(runnable)):
            from repro.absint.engine import HardwareBox, abstract_analyze
            from repro.absint.shapes import ShapeBox

            box = ShapeBox.from_layer(layer)
            hw = HardwareBox.from_accelerator(accelerator)
            survivors = []
            for spec, dataflow in runnable:
                try:
                    analysis = abstract_analyze(
                        box, dataflow, hw, energy_model=energy_model
                    )
                except Exception:
                    survivors.append((spec, dataflow))  # never prune uncertified
                    continue
                if (
                    max_l1_bytes is not None
                    and analysis.l1_buffer_req.lo > max_l1_bytes
                ) or (
                    max_l2_bytes is not None
                    and analysis.l2_buffer_req.lo > max_l2_bytes
                ):
                    rejected += 1
                    symbolic_rejected += 1
                    continue
                survivors.append((spec, dataflow))
            runnable = survivors

    # Equivalence screen: one representative per canonical-form class
    # pays a cost-model call; the others replay its (provably identical)
    # report below. The orbit quotient applies only where the
    # integer-activity certificate holds at this accelerator's PE count.
    equiv_replayed = 0
    eval_indices = list(range(len(runnable)))
    replay_of: Dict[int, int] = {}
    if equiv_prune:
        with obs.span("tuner.equiv_screen", candidates=len(runnable)):
            from repro.equiv import (
                canonicalize,
                integral_active,
                layer_symmetries,
                orbit_key,
            )

            symmetries = layer_symmetries(layer)
            representatives: Dict[object, int] = {}
            eval_indices = []
            for index, (spec, dataflow) in enumerate(runnable):
                form = canonicalize(dataflow, layer)
                class_key = form.key
                if symmetries and integral_active(form, accelerator.num_pes):
                    class_key = orbit_key(class_key, symmetries)
                representative = representatives.get(class_key)
                if representative is None:
                    representatives[class_key] = index
                    eval_indices.append(index)
                else:
                    replay_of[index] = representative
            equiv_replayed = len(replay_of)
            obs.inc("tuner.pruned_by_equiv", equiv_replayed)

    # Phase 2 — evaluate through the backend (memoized, parallelizable).
    evaluator = BatchEvaluator(executor=executor, jobs=jobs, cache=cache)
    with obs.span("tuner.evaluate", candidates=len(eval_indices)):
        batch = evaluator.evaluate(
            EvalPoint(
                layer=layer,
                dataflow=runnable[index][1],
                accelerator=accelerator,
                energy_model=energy_model,
            )
            for index in eval_indices
        )
    outcome_at = dict(zip(eval_indices, batch))

    # Phase 3 — filter and score, in enumeration order.
    with obs.span("tuner.score"):
        scored: List[ScoredCandidate] = []
        for index, (spec, dataflow) in enumerate(runnable):
            outcome = outcome_at.get(index)
            if outcome is None:
                outcome = outcome_at[replay_of[index]]
                if outcome.ok and outcome.report.dataflow_name != dataflow.name:
                    outcome = EvalOutcome(
                        report=replace(outcome.report, dataflow_name=dataflow.name),
                        cached=outcome.cached,
                    )
            if not outcome.ok:
                rejected += 1
                continue
            report = outcome.report
            if max_l1_bytes is not None and report.l1_buffer_req > max_l1_bytes:
                rejected += 1
                continue
            if max_l2_bytes is not None and report.l2_buffer_req > max_l2_bytes:
                rejected += 1
                continue
            scored.append(
                ScoredCandidate(spec=spec, dataflow=dataflow, report=report, score=score_fn(report))
            )
        if not scored:
            raise DataflowError(f"no tuner candidate is feasible for layer {layer.name!r}")
        scored.sort(key=lambda candidate: candidate.score)
    obs.inc("tuner.candidates_evaluated", len(scored))
    obs.inc("tuner.pruned_by_lint", statically_rejected)
    obs.inc("tuner.pruned_by_verify", coverage_rejected)
    obs.inc("tuner.pruned_by_symbolic", symbolic_rejected)
    obs.inc("tuner.pruned_by_comm", comm_rejected)
    obs.inc("tuner.pruned_by_capacity", capacity_rejected)
    return TunerResult(
        layer_name=layer.name,
        objective=objective,
        best=scored[0],
        top=tuple(scored[:top_k]),
        evaluated=len(scored),
        rejected=rejected,
        statically_rejected=statically_rejected,
        coverage_rejected=coverage_rejected,
        symbolic_rejected=symbolic_rejected,
        comm_rejected=comm_rejected,
        equiv_replayed=equiv_replayed,
        capacity_rejected=capacity_rejected,
        cache_hits=batch.stats.cache_hits,
        cost_model_calls=batch.stats.submitted,
        elapsed_seconds=time.perf_counter() - start,
    )


def tune_network(
    network: Network,
    accelerator: Accelerator,
    objective: str = "runtime",
    **kwargs,
) -> Dict[str, TunerResult]:
    """Tune every layer of a network independently."""
    return {
        layer.name: tune_layer(layer, accelerator, objective, **kwargs)
        for layer in network.layers
    }
