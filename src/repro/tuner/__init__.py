"""Dataflow auto-tuning (the paper's Section 7 future work).

The paper closes by planning "a dataflow auto-tuner to find an optimal
dataflow on the specified DNN model and hardware configuration". This
package implements that tool on top of the cost model: a candidate
generator over parameterized dataflow templates (parallel dims, tile
sizes, orderings, cluster sizes) and search strategies (exhaustive grid
and random sampling) that rank candidates by runtime, energy, or EDP
under buffer constraints.
"""

from repro.tuner.templates import CandidateSpec, enumerate_candidates
from repro.tuner.search import TunerResult, tune_layer, tune_network

__all__ = [
    "CandidateSpec",
    "enumerate_candidates",
    "tune_layer",
    "tune_network",
    "TunerResult",
]
