"""MAESTRO's five analysis engines (Figure 7 of the paper).

- tensor analysis (:mod:`repro.engines.tensor_analysis`) — dimension
  coupling per tensor;
- cluster analysis (:mod:`repro.engines.binding`) — split a dataflow
  into cluster levels, infer omitted directives, bind symbolic sizes;
- reuse analysis (:mod:`repro.engines.reuse`) — temporal/spatial reuse
  per data-iteration (transition) case;
- performance and cost analysis (:mod:`repro.engines.analysis`) —
  runtime, activity counts, buffer requirements, energy.
"""

from repro.engines.analysis import LayerAnalysis, NetworkAnalysis, analyze_layer, analyze_network
from repro.engines.binding import BoundDataflow, BoundDirective, BoundLevel, bind_dataflow
from repro.engines.tensor_analysis import TensorInfo, analyze_tensors

__all__ = [
    "analyze_layer",
    "analyze_network",
    "LayerAnalysis",
    "NetworkAnalysis",
    "bind_dataflow",
    "BoundDataflow",
    "BoundLevel",
    "BoundDirective",
    "analyze_tensors",
    "TensorInfo",
]
