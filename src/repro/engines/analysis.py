"""Performance and cost analysis: MAESTRO's outer engines (Figure 8).

``analyze_layer`` runs the full pipeline — tensor analysis, cluster
analysis (binding), per-level reuse analysis — then folds the results
into runtime, activity counts, buffer requirements, bandwidth
requirements, reuse factors, and energy, recursively from the innermost
cluster level outward:

- the *outstanding delay* of a step is ``max(ingress, egress, compute)``
  under double buffering, with the initialization step paying the full
  serialized latency (exactly the paper's Figure 8 pseudocode);
- one step of level ``l`` is a full sweep of level ``l+1``, so the inner
  sweep's runtime is the outer level's compute delay;
- buffer requirements are twice the per-step working set (double
  buffering), per Figure 8's ``2 * max(...)`` rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.engines.binding import BoundDataflow, BoundLevel, bind_dataflow
from repro.engines.reuse import LevelReuse, analyze_level_reuse
from repro.engines.tensor_analysis import analyze_tensors
from repro.dataflow.dataflow import Dataflow
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.layer import Layer
from repro.model.network import Network
from repro.obs import inc, span


@dataclass(frozen=True)
class LevelStats:
    """Per-level performance/traffic summary (one sweep of one instance)."""

    index: int
    runtime_sweep: float
    compute_bound_fraction: float
    bottleneck: str
    ingress_per_sweep: Mapping[str, float]
    delivered_per_sweep: Mapping[str, float]
    egress_per_sweep: float
    psum_readback_per_sweep: float
    upstream_buffer_req: int
    peak_bw_elems_per_cycle: float


@dataclass(frozen=True)
class LayerAnalysis:
    """Full analysis report for one layer under one dataflow."""

    layer_name: str
    dataflow_name: str
    num_pes: int
    runtime: float
    total_ops: float
    utilization: float
    level_stats: Tuple[LevelStats, ...]
    l2_reads: Mapping[str, float]
    l2_writes: Mapping[str, float]
    l1_reads: Mapping[str, float]
    l1_writes: Mapping[str, float]
    intermediate_reads: float
    intermediate_writes: float
    dram_reads: Mapping[str, float]
    dram_writes: Mapping[str, float]
    l1_buffer_req: int
    l2_buffer_req: int
    intermediate_buffer_reqs: Tuple[int, ...]
    noc_bw_req_elems: float
    noc_bw_req_gbps: float
    reuse_factors: Mapping[str, float]
    max_reuse_factors: Mapping[str, float]
    energy_breakdown: Mapping[str, float]

    @property
    def throughput(self) -> float:
        """Average MACs (ops) per cycle."""
        return self.total_ops / self.runtime if self.runtime else 0.0

    @property
    def energy_total(self) -> float:
        return sum(self.energy_breakdown.values())

    @property
    def edp(self) -> float:
        """Energy-delay product (MAC-energy units x cycles)."""
        return self.energy_total * self.runtime

    def total(self, counter: Mapping[str, float]) -> float:
        return sum(counter.values())


@dataclass(frozen=True)
class NetworkAnalysis:
    """Aggregated analysis over a network's layers."""

    network_name: str
    dataflow_name: str
    layer_reports: Tuple[LayerAnalysis, ...]

    @property
    def runtime(self) -> float:
        return sum(report.runtime for report in self.layer_reports)

    @property
    def total_ops(self) -> float:
        return sum(report.total_ops for report in self.layer_reports)

    @property
    def energy_total(self) -> float:
        return sum(report.energy_total for report in self.layer_reports)

    def energy_breakdown(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for report in self.layer_reports:
            for component, value in report.energy_breakdown.items():
                totals[component] = totals.get(component, 0.0) + value
        return totals


def analyze_layer(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> LayerAnalysis:
    """Analyze one layer under one dataflow on one accelerator."""
    with span("engine.binding", layer=layer.name, dataflow=dataflow.name):
        bound = bind_dataflow(dataflow, layer, accelerator)
    with span("engine.tensor_analysis"):
        tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    with span("engine.reuse"):
        reuses = [analyze_level_reuse(level, tensors) for level in bound.levels]

    input_density = 1.0
    for info in tensors.inputs:
        input_density *= info.density

    # ------------------------------------------------------------------
    # Performance recursion, innermost level outward.
    # ------------------------------------------------------------------
    with span("engine.performance"):
        innermost = bound.innermost()
        ops_per_step = tensors.ops_per_chunk(innermost.chunk_sizes()) * input_density
        # Spatial reduction hardware (adder tree / forwarding chain) is
        # fully pipelined: its depth adds latency but does not reduce
        # steady-state throughput, so no per-step penalty is modeled.
        compute_delay = max(1.0, ops_per_step / accelerator.vector_width)

        level_stats: List[LevelStats] = []
        t_inner = compute_delay
        for level, reuse in zip(reversed(bound.levels), reversed(reuses)):
            if level.index == 0:
                init_scale = None
            else:
                init_scale = _avg_step_change_ratio(reuses[level.index - 1])
            stats = _analyze_level_performance(
                level,
                reuse,
                accelerator,
                t_inner,
                serial_init=level.index == 0,
                init_scale=init_scale,
            )
            level_stats.append(stats)
            t_inner = stats.runtime_sweep
        level_stats.reverse()
        runtime = level_stats[0].runtime_sweep * layer.groups

    # ------------------------------------------------------------------
    # Activity counts (whole layer, all groups).
    # ------------------------------------------------------------------
    with span("engine.accounting"):
        total_ops = layer.effective_ops()

        multipliers = _sweep_multipliers(bound)  # executions of each level's sweep
        group_factor = layer.groups

        l2_reads: Dict[str, float] = {}
        l2_writes: Dict[str, float] = {}
        l1_reads: Dict[str, float] = {}
        l1_writes: Dict[str, float] = {}
        intermediate_reads = 0.0
        intermediate_writes = 0.0

        top = level_stats[0]
        out_name = tensors.output.name
        for name, volume in top.ingress_per_sweep.items():
            l2_reads[name] = volume * group_factor
        l2_reads[out_name] = (
            l2_reads.get(out_name, 0.0) + top.psum_readback_per_sweep * group_factor
        )
        l2_writes[out_name] = top.egress_per_sweep * group_factor

        # Writes into the innermost (PE L1) buffers: the innermost level's
        # delivered ingress, once per execution of its sweep.
        bottom = level_stats[-1]
        bottom_multiplier = multipliers[-1] * group_factor
        for name, volume in bottom.delivered_per_sweep.items():
            l1_writes[name] = volume * bottom_multiplier
        # Compute-side L1 activity: every op reads each input operand and
        # (when the operator reduces) read-modify-writes a partial sum.
        has_reduction = bool(tensors.reduction_dims)
        for info in tensors.inputs:
            l1_reads[info.name] = l1_reads.get(info.name, 0.0) + total_ops
        l1_reads[out_name] = total_ops if has_reduction else 0.0
        l1_writes[out_name] = l1_writes.get(out_name, 0.0) + total_ops

        # Intermediate cluster buffers (multi-level dataflows): ingress reads
        # at inner level boundaries, delivered writes from the level above,
        # and pass-through output traffic.
        for depth in range(1, len(level_stats)):
            stats = level_stats[depth]
            above = level_stats[depth - 1]
            multiplier = multipliers[depth] * group_factor
            multiplier_above = multipliers[depth - 1] * group_factor
            intermediate_reads += (
                sum(stats.ingress_per_sweep.values()) + stats.psum_readback_per_sweep
            ) * multiplier
            intermediate_writes += (
                sum(above.delivered_per_sweep.values()) * multiplier_above
            )
            intermediate_reads += stats.egress_per_sweep * multiplier
            intermediate_writes += stats.egress_per_sweep * multiplier

        # ------------------------------------------------------------------
        # Buffer requirements (double buffering).
        # ------------------------------------------------------------------
        element_bytes = accelerator.element_bytes
        buffering = 2 if accelerator.double_buffered else 1
        l1_req = buffering * sum(
            info.volume(innermost.chunk_sizes()) for info in tensors.tensors
        ) * element_bytes
        l2_req = buffering * int(
            sum(reuses[0].unique_chunk_volumes[t.name] / max(t.density, 1e-12)
                for t in tensors.tensors)
        ) * element_bytes
        intermediate_reqs = tuple(
            buffering
            * sum(info.volume(level.chunk_sizes()) for info in tensors.tensors)
            * element_bytes
            for level in bound.levels[:-1]
        )

        # ------------------------------------------------------------------
        # DRAM traffic.
        # ------------------------------------------------------------------
        dram_reads: Dict[str, float] = {}
        dram_writes: Dict[str, float] = {}
        l2_fits = accelerator.l2_size is None or accelerator.l2_size >= l2_req
        for info in tensors.inputs:
            streamed = layer.touched_tensor_volume(info.name) * info.density
            if not l2_fits:
                streamed = max(streamed, l2_reads.get(info.name, 0.0))
            dram_reads[info.name] = streamed
        dram_writes[out_name] = layer.tensor_volume(out_name) * tensors.output.density
        # Whatever enters L2 from DRAM is also written into L2 once.
        for name, volume in dram_reads.items():
            l2_writes[name] = l2_writes.get(name, 0.0) + volume

        # ------------------------------------------------------------------
        # Reuse factors and bandwidth requirement.
        # ------------------------------------------------------------------
        reuse_factors: Dict[str, float] = {}
        max_reuse_factors: Dict[str, float] = {}
        for info in tensors.inputs:
            fetched = l2_reads.get(info.name, 0.0)
            reuse_factors[info.name] = total_ops / fetched if fetched else float("inf")
            volume = layer.touched_tensor_volume(info.name) * info.density
            max_reuse_factors[info.name] = total_ops / volume if volume else float("inf")

        noc_bw_req = top.peak_bw_elems_per_cycle
        noc_bw_req_gbps = noc_bw_req * element_bytes * accelerator.clock_ghz

        # ------------------------------------------------------------------
        # Energy.
        # ------------------------------------------------------------------
        l1_capacity = accelerator.l1_size if accelerator.l1_size is not None else max(
            l1_req, 1
        )
        l2_capacity = accelerator.l2_size if accelerator.l2_size is not None else max(
            l2_req, 1
        )
        e_l1_read = energy_model.sram_access(l1_capacity)
        e_l1_write = energy_model.sram_write(l1_capacity)
        e_l2_read = energy_model.sram_access(l2_capacity)
        e_l2_write = energy_model.sram_write(l2_capacity)
        noc_traffic = sum(l2_reads.values()) + top.egress_per_sweep * group_factor
        energy_breakdown = {
            "MAC": total_ops * energy_model.mac,
            "L1 read": sum(l1_reads.values()) * e_l1_read,
            "L1 write": sum(l1_writes.values()) * e_l1_write,
            "L2 read": sum(l2_reads.values()) * e_l2_read,
            "L2 write": sum(l2_writes.values()) * e_l2_write,
            "intermediate": (intermediate_reads * e_l1_read + intermediate_writes * e_l1_write),
            "NoC": noc_traffic * energy_model.noc_hop,
            "DRAM": (sum(dram_reads.values()) + sum(dram_writes.values()))
            * energy_model.dram,
        }

        # Off-chip roofline: DRAM must stream the layer's working set within
        # the runtime (only binding when `dram_bandwidth` is configured).
        if accelerator.dram_bandwidth is not None:
            dram_traffic = sum(dram_reads.values()) + sum(dram_writes.values())
            runtime = max(runtime, dram_traffic / accelerator.dram_bandwidth)

        utilization = min(
            1.0,
            total_ops
            / (runtime * accelerator.num_pes * accelerator.vector_width),
        )

    inc("engine.layers_analyzed")
    return LayerAnalysis(
        layer_name=layer.name,
        dataflow_name=dataflow.name,
        num_pes=accelerator.num_pes,
        runtime=runtime,
        total_ops=total_ops,
        utilization=utilization,
        level_stats=tuple(level_stats),
        l2_reads=l2_reads,
        l2_writes=l2_writes,
        l1_reads=l1_reads,
        l1_writes=l1_writes,
        intermediate_reads=intermediate_reads,
        intermediate_writes=intermediate_writes,
        dram_reads=dram_reads,
        dram_writes=dram_writes,
        l1_buffer_req=int(l1_req),
        l2_buffer_req=int(l2_req),
        intermediate_buffer_reqs=tuple(int(v) for v in intermediate_reqs),
        noc_bw_req_elems=noc_bw_req,
        noc_bw_req_gbps=noc_bw_req_gbps,
        reuse_factors=reuse_factors,
        max_reuse_factors=max_reuse_factors,
        energy_breakdown=energy_breakdown,
    )


def _sweep_multipliers(bound: BoundDataflow) -> List[float]:
    """How many times each level's sweep executes across the layer.

    Level 0 sweeps once; each deeper level sweeps once per step of every
    outer level, on every active sub-unit of every outer level.
    """
    multipliers = [1.0]
    running = 1.0
    for level in bound.levels[:-1]:
        running *= level.sweep_steps * level.avg_active
        multipliers.append(running)
    return multipliers


def _avg_step_change_ratio(parent_reuse: LevelReuse) -> Dict[str, float]:
    """Fraction of each tensor's chunk that changes per parent step.

    A child level's per-sweep initialization only needs to (re)distribute
    what its parent actually delivered that step; tensors stationary at
    the parent level stay resident in the child's buffers across sweeps.
    The ratio averages the parent's per-step fetch over the full chunk.
    """
    steps = parent_reuse.level.sweep_steps
    ratios: Dict[str, float] = {}
    for name, init_traffic in parent_reuse.init.traffic.items():
        full = init_traffic.fetch
        if full <= 0:
            ratios[name] = 0.0
            continue
        total = init_traffic.fetch + sum(
            cls.count * cls.traffic[name].fetch for cls in parent_reuse.classes
        )
        ratios[name] = min(1.0, (total / steps) / full)
    return ratios


def _analyze_level_performance(
    level: BoundLevel,
    reuse: LevelReuse,
    accelerator: Accelerator,
    t_inner: float,
    serial_init: bool = True,
    init_scale: "Optional[Dict[str, float]]" = None,
) -> LevelStats:
    """Fold one level's transition classes into a sweep runtime."""
    noc = accelerator.noc
    multicast = noc.multicast
    out_name = reuse.output_name

    def init_factor(name: str) -> float:
        if init_scale is None:
            return 1.0
        return init_scale.get(name, 1.0)

    def ingress_volume(traffic) -> float:
        total = 0.0
        for name, tensor_traffic in traffic.items():
            if name == out_name:
                continue
            total += tensor_traffic.unique if multicast else tensor_traffic.delivered
        return total

    def egress_volume(traffic) -> float:
        tensor_traffic = traffic[out_name]
        if reuse.output_spatially_reduced and not accelerator.spatial_reduction:
            return tensor_traffic.delivered
        return tensor_traffic.unique

    ingress_sweep: Dict[str, float] = {}
    delivered_sweep: Dict[str, float] = {}
    for name, tensor_traffic in reuse.init.traffic.items():
        if name == out_name:
            continue
        factor = init_factor(name)
        ingress_sweep[name] = (
            tensor_traffic.unique if multicast else tensor_traffic.delivered
        ) * factor
        delivered_sweep[name] = tensor_traffic.delivered * factor

    init_ingress = sum(ingress_sweep.values())
    init_delay = noc.delay(int(math.ceil(init_ingress)))
    if serial_init:
        # Pipeline fill at the top level: nothing overlaps the first fetch.
        runtime = init_delay + t_inner
    else:
        # Inner levels are double-buffered against the level above: the
        # first distribution overlaps the previous outer step.
        runtime = max(init_delay, t_inner)
    compute_steps = 1.0
    total_steps = 1.0

    comm_volume = init_ingress

    sweep_steps = reuse.level.sweep_steps
    # Amortized egress per output-advancing transition.
    output_transitions = sum(
        cls.count for cls in reuse.classes if cls.outputs_advance
    )
    egress_hw_factor = (
        reuse.level.avg_active
        if reuse.output_spatially_reduced and not accelerator.spatial_reduction
        else 1.0
    )
    egress_total = reuse.egress_per_sweep * egress_hw_factor
    readback_total = reuse.psum_readback_per_sweep

    for cls in reuse.classes:
        ingress = ingress_volume(cls.traffic)
        egress = egress_volume(cls.traffic) if cls.outputs_advance else 0.0
        readback = 0.0
        if cls.outputs_advance and readback_total > 0:
            readback = egress  # partial sums come back before accumulation
        ingress_delay = noc.delay(int(math.ceil(ingress + readback)))
        egress_delay = noc.delay(int(math.ceil(egress)))
        if accelerator.double_buffered:
            step_delay = max(ingress_delay, egress_delay, t_inner)
        else:
            # Without double buffering nothing overlaps: serialize.
            step_delay = ingress_delay + egress_delay + t_inner
        runtime += cls.count * step_delay
        if step_delay == t_inner:
            compute_steps += cls.count
        total_steps += cls.count
        comm_volume += cls.count * (ingress + readback + egress)
        for name, tensor_traffic in cls.traffic.items():
            if name == out_name:
                continue
            volume = tensor_traffic.unique if multicast else tensor_traffic.delivered
            ingress_sweep[name] = ingress_sweep.get(name, 0.0) + cls.count * volume
            delivered_sweep[name] = (
                delivered_sweep.get(name, 0.0) + cls.count * tensor_traffic.delivered
            )

    compute_fraction = compute_steps / total_steps
    bottleneck = "compute" if compute_fraction >= 0.5 else "communication"
    # Sustained bandwidth to keep communication hidden under compute:
    # total moved volume over the compute time of the whole sweep.
    egress_unaccounted = egress_total + readback_total - sum(
        cls.count * egress_volume(cls.traffic)
        for cls in reuse.classes
        if cls.outputs_advance
    )
    peak_bw = (comm_volume + max(0.0, egress_unaccounted)) / max(
        total_steps * t_inner, 1.0
    )

    upstream_req = 2 * int(
        sum(reuse.unique_chunk_volumes.values())
    ) * accelerator.element_bytes

    return LevelStats(
        index=level.index,
        runtime_sweep=runtime,
        compute_bound_fraction=compute_fraction,
        bottleneck=bottleneck,
        ingress_per_sweep=ingress_sweep,
        delivered_per_sweep=delivered_sweep,
        egress_per_sweep=egress_total,
        psum_readback_per_sweep=readback_total,
        upstream_buffer_req=upstream_req,
        peak_bw_elems_per_cycle=peak_bw,
    )


def analyze_network(
    network: Network,
    dataflow: Dataflow,
    accelerator: Accelerator,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    layers: Optional[List[str]] = None,
) -> NetworkAnalysis:
    """Analyze every (or the named) layer of a network under one dataflow."""
    reports = []
    for layer in network.layers:
        if layers is not None and layer.name not in layers:
            continue
        reports.append(analyze_layer(layer, dataflow, accelerator, energy_model))
    return NetworkAnalysis(
        network_name=network.name,
        dataflow_name=dataflow.name,
        layer_reports=tuple(reports),
    )
