"""Reuse analysis: per-transition-class data movement at each level.

The paper's Reuse Analysis (RA) engine, formulated over *transition
classes*. Executing a level is an odometer sweep over its directives;
every step transition is classified by the outermost directive that
advances. For a level with entries ``e_1 .. e_m`` (outer to inner) with
``n_i`` steps each, class ``i`` occurs ``(n_i - 1) * prod_{j<i} n_j``
times, plus one initialization step — exactly the paper's Init / Steady
/ Edge data-iteration cases.

For each class and tensor we compute:

- ``fetch`` — new elements one sub-unit must receive (its chunk delta
  along the advancing dims; the full chunk if an inner coupled directive
  resets; zero if the tensor is stationary across the transition);
- ``unique`` — the union of all sub-units' new data (halo-aware), i.e.
  what must cross the level boundary when multicast is available;
- ``delivered`` — ``fetch`` summed over active sub-units, i.e. the
  traffic without multicast and the writes into sub-unit buffers.

All volumes are scaled by tensor density (uniform sparsity model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.engines.binding import BoundLevel
from repro.obs import inc
from repro.engines.tensor_analysis import TensorAnalysis, TensorInfo


@dataclass(frozen=True)
class OdometerEntry:
    """One iterator of a level's sweep.

    Temporal directives iterate alone; all spatial directives of a level
    share a single *fold* entry (they are distributed jointly), whose
    advance shifts every spatially mapped dim by ``width * offset``.
    """

    position: int
    steps: int
    advancing_offsets: Mapping[str, int]
    is_fold: bool


@dataclass(frozen=True)
class TensorTraffic:
    """Per-class data movement of one tensor (elements, density-scaled)."""

    fetch: float
    unique: float
    delivered: float
    stationary: bool


@dataclass(frozen=True)
class TransitionClass:
    """One transition class: which entry advances, how often, traffic."""

    label: str
    count: int
    traffic: Mapping[str, TensorTraffic]
    outputs_advance: bool


@dataclass(frozen=True)
class LevelReuse:
    """Reuse analysis result for one level."""

    level: BoundLevel
    init: TransitionClass
    classes: Tuple[TransitionClass, ...]
    output_name: str
    chunk_volumes: Mapping[str, float]
    unique_chunk_volumes: Mapping[str, float]
    outputs_per_sweep: float
    psum_factor: int
    output_spatially_reduced: bool
    multicast_tensors: Tuple[str, ...]

    @property
    def egress_per_sweep(self) -> float:
        """Output elements leaving the level per sweep (incl. partials)."""
        return self.outputs_per_sweep * self.psum_factor

    @property
    def psum_readback_per_sweep(self) -> float:
        """Partial sums re-read from the upper buffer per sweep."""
        return self.outputs_per_sweep * (self.psum_factor - 1)


def build_odometer(level: BoundLevel) -> List[OdometerEntry]:
    """Collapse a level's directives into odometer entries."""
    entries: List[OdometerEntry] = []
    fold_offsets: Dict[str, int] = {}
    fold_position = None
    for position, directive in enumerate(level.directives):
        if directive.spatial:
            fold_offsets[directive.dim] = directive.offset * level.width
            if fold_position is None:
                fold_position = position
        else:
            entries.append(
                OdometerEntry(
                    position=position,
                    steps=directive.steps,
                    advancing_offsets={directive.dim: directive.offset},
                    is_fold=False,
                )
            )
    if fold_offsets:
        entries.append(
            OdometerEntry(
                position=fold_position if fold_position is not None else 0,
                steps=level.folds,
                advancing_offsets=fold_offsets,
                is_fold=True,
            )
        )
        entries.sort(key=lambda entry: entry.position)
    return entries


def _moves_tensor(tensor: TensorInfo, offsets: Mapping[str, int]) -> bool:
    """Whether shifting chunk starts by ``offsets`` moves the tensor's data."""
    return any(abs(axis.shift(offsets)) > 0 for axis in tensor.axes)


def _tensor_traffic(
    tensor: TensorInfo,
    sizes: Mapping[str, int],
    spatial_offsets: Mapping[str, int],
    active: float,
    advancing: Mapping[str, int],
    inner_entries: "Tuple[OdometerEntry, ...]",
) -> TensorTraffic:
    """Traffic of one tensor for one transition class.

    When an *inner* iterator that moves the tensor resets on this
    transition, the retained overlap from the previous step is stale
    (the sub-unit buffers hold the end of the previous inner sweep, not
    its beginning), so the whole chunk must be refetched. Only when no
    inner reset touches the tensor does the halo delta apply.
    """
    inner_reset_moves = any(
        entry.steps > 1 and _moves_tensor(tensor, entry.advancing_offsets)
        for entry in inner_entries
    )

    advance_delta: Dict[int, int] = {}
    if inner_reset_moves:
        # Full chunk refetch: no advance_delta entries, all axes at extent.
        pass
    else:
        for axis_index, axis in enumerate(tensor.axes):
            if not any(dim in advancing for dim in axis.dims):
                continue
            shift = abs(axis.shift(advancing))
            if shift <= 0:
                continue
            extent = axis.extent(sizes)
            advance_delta[axis_index] = min(int(math.ceil(shift)), extent)
        if not advance_delta:
            return TensorTraffic(0.0, 0.0, 0.0, stationary=True)

    fetch = 1.0
    unique = 1.0
    for axis_index, axis in enumerate(tensor.axes):
        extent = axis.extent(sizes)
        sigma = abs(axis.shift(spatial_offsets))
        term = advance_delta.get(axis_index, extent)
        fetch *= term
        unique *= term + (active - 1.0) * min(sigma, float(term))

    fetch *= tensor.density
    unique *= tensor.density
    delivered = fetch * active
    return TensorTraffic(fetch=fetch, unique=unique, delivered=delivered, stationary=False)


def _full_chunk_traffic(
    tensor: TensorInfo,
    sizes: Mapping[str, int],
    spatial_offsets: Mapping[str, int],
    active: float,
) -> TensorTraffic:
    """Init-step traffic: the whole first chunk for every tensor."""
    fetch = 1.0
    unique = 1.0
    for axis in tensor.axes:
        extent = axis.extent(sizes)
        sigma = abs(axis.shift(spatial_offsets))
        fetch *= extent
        unique *= extent + (active - 1.0) * min(sigma, float(extent))
    fetch *= tensor.density
    unique *= tensor.density
    return TensorTraffic(fetch, unique, fetch * active, stationary=False)


def analyze_level_reuse(level: BoundLevel, tensors: TensorAnalysis) -> LevelReuse:
    """Run reuse analysis for one bound level."""
    inc("reuse.levels_analyzed")
    sizes = level.chunk_sizes()
    spatial_offsets = level.spatial_offsets
    active = level.avg_active
    entries = build_odometer(level)

    init_traffic = {
        t.name: _full_chunk_traffic(t, sizes, spatial_offsets, active)
        for t in tensors.tensors
    }
    init = TransitionClass(
        label="init", count=1, traffic=init_traffic, outputs_advance=False
    )

    classes: List[TransitionClass] = []
    outer_product = 1
    for index, entry in enumerate(entries):
        if entry.steps > 1:
            count = (entry.steps - 1) * outer_product
            inner_entries = tuple(entries[index + 1 :])
            traffic = {
                t.name: _tensor_traffic(
                    t,
                    sizes,
                    spatial_offsets,
                    active,
                    entry.advancing_offsets,
                    inner_entries,
                )
                for t in tensors.tensors
            }
            output_name = tensors.output.name
            outputs_advance = not traffic[output_name].stationary
            label = "+".join(sorted(entry.advancing_offsets)) + (
                " (fold)" if entry.is_fold else ""
            )
            classes.append(
                TransitionClass(
                    label=label,
                    count=count,
                    traffic=traffic,
                    outputs_advance=outputs_advance,
                )
            )
        outer_product *= entry.steps

    chunk_volumes = {
        t.name: t.volume(sizes) * t.density for t in tensors.tensors
    }
    unique_chunk_volumes = {
        t.name: _full_chunk_traffic(t, sizes, spatial_offsets, active).unique
        for t in tensors.tensors
    }

    output = tensors.output
    outputs_per_sweep = output.volume(level.local_sizes) * output.density
    psum_factor = _psum_factor(entries, tensors)
    output_sigma_zero = all(
        abs(axis.shift(spatial_offsets)) == 0 for axis in output.axes
    )
    output_spatially_reduced = (
        level.width > 1 and level.spatial_chunks > 1 and output_sigma_zero
    )
    multicast_tensors = tuple(
        t.name
        for t in tensors.tensors
        if not t.is_output
        and level.width > 1
        and all(abs(axis.shift(spatial_offsets)) == 0 for axis in t.axes)
    )

    return LevelReuse(
        level=level,
        init=init,
        classes=tuple(classes),
        output_name=output.name,
        chunk_volumes=chunk_volumes,
        unique_chunk_volumes=unique_chunk_volumes,
        outputs_per_sweep=outputs_per_sweep,
        psum_factor=psum_factor,
        output_spatially_reduced=output_spatially_reduced,
        multicast_tensors=multicast_tensors,
    )


def _psum_factor(entries: List[OdometerEntry], tensors: TensorAnalysis) -> int:
    """How many times each output leaves the level per sweep.

    Outputs leave once unless a reduction-dimension iterator sits *outer*
    to the innermost output-advancing iterator, in which case every
    output tile is revisited (written up as partial sums and read back)
    once per outer reduction step.
    """
    output = tensors.output

    def advances_output(entry: OdometerEntry) -> bool:
        return any(
            abs(axis.shift(entry.advancing_offsets)) > 0 for axis in output.axes
        )

    innermost_output_pos = None
    for index, entry in enumerate(entries):
        if entry.steps > 1 and advances_output(entry):
            innermost_output_pos = index
    if innermost_output_pos is None:
        return 1
    factor = 1
    for index, entry in enumerate(entries[:innermost_output_pos]):
        if entry.steps > 1 and not advances_output(entry):
            if set(entry.advancing_offsets) & tensors.reduction_dims:
                factor *= entry.steps
    return factor
