"""Cluster analysis: bind a symbolic dataflow to a layer and a PE count.

This engine implements the paper's Cluster Analysis (CLA) stage: it
splits the directive list into cluster levels, evaluates symbolic sizes
against the layer, infers omitted directives, clamps over-sized
mappings, counts temporal steps and spatial folds, and derives each
level's *local* dimension extents (the chunk handed down by the level
above).

Joint spatial distribution (several ``SpatialMap`` directives in one
level) is supported with aligned semantics: sub-cluster ``i`` takes
chunk ``i`` along every spatially mapped dimension, which expresses
Eyeriss-style diagonal mappings (Figure 6, Table 3's YR-P).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.obs import inc
from repro.dataflow.directives import MapDirective, evaluate_size
from repro.errors import BindingError
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer
from repro.tensors import dims as D
from repro.util.intmath import ceil_div, num_chunks, prod


@dataclass(frozen=True)
class BoundDirective:
    """A map directive with concrete sizes and iteration counts.

    ``steps`` is the number of *temporal* iterations the directive
    contributes at its level: chunk count for temporal maps, fold count
    for spatial maps. ``chunks`` is the raw chunk count along the
    dimension. ``edge_size`` is the size of the last (possibly partial)
    chunk.
    """

    dim: str
    spatial: bool
    size: int
    offset: int
    chunks: int
    steps: int
    edge_size: int

    @property
    def temporal_steps(self) -> int:
        return self.steps


@dataclass(frozen=True)
class BoundLevel:
    """One bound cluster level.

    Attributes
    ----------
    width:
        Number of sub-units (sub-clusters or PEs) the level maps across.
    directives:
        Bound map directives, outermost first, including inferred ones.
    local_sizes:
        The dimension extents this level iterates over (the chunk the
        parent level maps onto one sub-unit; full layer dims at level 0).
    spatial_offsets:
        Per-dimension chunk shift between adjacent sub-units (0 for
        dimensions that are not spatially mapped).
    spatial_chunks:
        Joint spatial chunk count (1 when nothing is spatially mapped).
    folds:
        Temporal folds of the spatial distribution
        (``ceil(spatial_chunks / width)``).
    avg_active:
        Average number of active sub-units per step, accounting for the
        partially filled last fold.
    """

    index: int
    width: int
    directives: Tuple[BoundDirective, ...]
    local_sizes: Mapping[str, int]
    spatial_offsets: Mapping[str, int]
    spatial_chunks: int
    folds: int
    avg_active: float

    @property
    def sweep_steps(self) -> int:
        """Total temporal steps for one full sweep of this level."""
        return prod(d.steps for d in self.directives)

    def chunk_sizes(self) -> Dict[str, int]:
        """Per-step, per-sub-unit mapped chunk size for every dimension."""
        return {d.dim: d.size for d in self.directives}

    def directive_for(self, dim: str) -> BoundDirective:
        for directive in self.directives:
            if directive.dim == dim:
                return directive
        raise KeyError(f"level {self.index} has no directive for {dim}")


@dataclass(frozen=True)
class BoundDataflow:
    """A dataflow bound to a layer and accelerator: all levels resolved."""

    dataflow: Dataflow
    layer: Layer
    levels: Tuple[BoundLevel, ...]
    row_rep: str  # "input" or "output": coordinate system of the row axis
    col_rep: str
    used_pes: int  # PEs covered by the cluster hierarchy (<= num_pes)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def innermost(self) -> BoundLevel:
        return self.levels[-1]

    def total_steps(self) -> int:
        """PE-level time steps for the whole layer (all levels)."""
        return prod(level.sweep_steps for level in self.levels)

    def average_utilization(self) -> float:
        """Average fraction of PEs doing useful work (spatial folds only)."""
        utilization = self.used_pes / self.layer_pes()
        for level in self.levels:
            utilization *= level.avg_active / level.width
        return utilization

    def layer_pes(self) -> int:
        return self._num_pes

    # populated by bind_dataflow
    _num_pes: int = 0


def _relevant_dims(dataflow: Dataflow, layer: Layer) -> Tuple[List[str], str, str]:
    """The dimension names this binding tracks, plus axis representations."""
    row_rep = "output" if dataflow.uses_output_coordinates("row") else "input"
    col_rep = "output" if dataflow.uses_output_coordinates("col") else "input"
    dims = [D.N, D.K, D.C]
    dims.append(D.YP if row_rep == "output" else D.Y)
    dims.append(D.XP if col_rep == "output" else D.X)
    dims.extend([D.R, D.S])
    return dims, row_rep, col_rep


def bind_dataflow(
    dataflow: Dataflow, layer: Layer, accelerator: Accelerator
) -> BoundDataflow:
    """Bind ``dataflow`` to ``layer`` on ``accelerator``; see module doc."""
    inc("binding.dataflows_bound")
    dims, row_rep, col_rep = _relevant_dims(dataflow, layer)
    full_sizes = layer.all_dim_sizes()
    level_specs = dataflow.levels()

    cluster_sizes = []
    for spec in level_specs[:-1]:
        size = evaluate_size(spec.cluster_size, full_sizes)
        if size < 1:
            raise BindingError(
                f"{dataflow.name} on {layer.name}: cluster size {size} < 1"
            )
        cluster_sizes.append(size)

    pes_per_top_cluster = prod(cluster_sizes)
    if pes_per_top_cluster > accelerator.num_pes:
        raise BindingError(
            f"{dataflow.name} on {layer.name}: cluster hierarchy needs "
            f"{pes_per_top_cluster} PEs but only {accelerator.num_pes} exist"
        )
    top_width = accelerator.num_pes // pes_per_top_cluster
    widths = [top_width] + cluster_sizes
    used_pes = top_width * pes_per_top_cluster

    # Sizes and offsets on the *input* coordinates Y/X are expressed in
    # input-index units. Stride-portable mappings spell the layer stride
    # explicitly with ``St(Y)``/``St(X)`` (the paper's Figure 7 "apply
    # stride" step, made visible in the directive), exactly as tile
    # sizes already do with ``(4-1)*St(Y)+Sz(R)``. Offsets used to be
    # multiplied by the stride implicitly at *every* cluster level,
    # which broke diagonal inner walks (YR-P/row-stationary map Y and R
    # jointly with a unit offset meaning "next input row"): on strided
    # layers the inner walk advanced ``stride`` rows per PE and skipped
    # output rows — the coverage gap the iteration-space verifier
    # refuted on all strided zoo layers.
    strides = {D.Y: layer.stride[0], D.X: layer.stride[1]}

    local_sizes: Dict[str, int] = {dim: full_sizes[dim] for dim in dims}
    levels: List[BoundLevel] = []
    for index, spec in enumerate(level_specs):
        level = _bind_level(
            index=index,
            spec_maps=spec.maps,
            width=widths[index],
            local_sizes=local_sizes,
            full_sizes=full_sizes,
            dims=dims,
            strides=strides,
            context=f"{dataflow.name} on {layer.name}, level {index}",
        )
        levels.append(level)
        local_sizes = level.chunk_sizes()

    bound = BoundDataflow(
        dataflow=dataflow,
        layer=layer,
        levels=tuple(levels),
        row_rep=row_rep,
        col_rep=col_rep,
        used_pes=used_pes,
    )
    object.__setattr__(bound, "_num_pes", accelerator.num_pes)
    return bound


def _bind_level(
    index: int,
    spec_maps: Tuple[MapDirective, ...],
    width: int,
    local_sizes: Mapping[str, int],
    full_sizes: Mapping[str, int],
    dims: List[str],
    strides: Mapping[str, int],
    context: str,
) -> BoundLevel:
    bound: List[BoundDirective] = []
    seen: Dict[str, int] = {}
    spatial_offsets: Dict[str, int] = {dim: 0 for dim in dims}
    spatial_chunk_counts: List[int] = []

    for directive in spec_maps:
        if directive.dim not in dims:
            raise BindingError(
                f"{context}: dimension {directive.dim} is not part of this "
                f"binding's dimension set {dims}"
            )
        if directive.dim in seen:
            raise BindingError(
                f"{context}: dimension {directive.dim} mapped twice in one level"
            )
        local = local_sizes.get(directive.dim, 1)
        size = min(evaluate_size(directive.size, full_sizes, strides), local)
        offset = evaluate_size(directive.offset, full_sizes, strides)
        if size < 1 or offset < 1:
            raise BindingError(
                f"{context}: non-positive size/offset on {directive.dim} "
                f"(size={size}, offset={offset})"
            )
        chunks = num_chunks(local, size, offset)
        if directive.spatial:
            spatial_offsets[directive.dim] = offset
            spatial_chunk_counts.append(chunks)
            steps = ceil_div(chunks, width)
        else:
            steps = chunks
        edge_size = local - (chunks - 1) * offset if chunks > 1 else size
        bound.append(
            BoundDirective(
                dim=directive.dim,
                spatial=directive.spatial,
                size=size,
                offset=offset,
                chunks=chunks,
                steps=steps,
                edge_size=max(1, edge_size),
            )
        )
        seen[directive.dim] = size

    # Joint spatial distribution: aligned chunk counts required.
    if spatial_chunk_counts:
        spatial_chunks = max(spatial_chunk_counts)
        if len(set(spatial_chunk_counts)) > 1:
            # Aligned joint maps normally have matching counts (YR-P);
            # tolerate mismatch by folding on the largest count.
            spatial_chunks = max(spatial_chunk_counts)
        folds = ceil_div(spatial_chunks, width)
        # Every spatial directive folds together; normalize their steps.
        bound = [
            BoundDirective(
                dim=d.dim,
                spatial=d.spatial,
                size=d.size,
                offset=d.offset,
                chunks=d.chunks,
                steps=folds if d.spatial else d.steps,
                edge_size=d.edge_size,
            )
            for d in bound
        ]
    else:
        spatial_chunks = 1
        folds = 1

    avg_active = spatial_chunks / folds if width > 1 else 1.0
    avg_active = min(float(width), avg_active)
    if width > 1 and not spatial_chunk_counts:
        # Nothing distinguishes the sub-units: only one does useful work.
        avg_active = 1.0

    # Inferred directives for unmapped dims: a single full-size chunk,
    # placed outermost (position is irrelevant because steps == 1).
    inferred = [
        BoundDirective(
            dim=dim,
            spatial=False,
            size=local_sizes.get(dim, 1),
            offset=local_sizes.get(dim, 1),
            chunks=1,
            steps=1,
            edge_size=local_sizes.get(dim, 1),
        )
        for dim in dims
        if dim not in seen
    ]

    return BoundLevel(
        index=index,
        width=width,
        directives=tuple(inferred) + tuple(bound),
        local_sizes=dict(local_sizes),
        spatial_offsets=spatial_offsets,
        spatial_chunks=spatial_chunks,
        folds=folds,
        avg_active=avg_active,
    )
