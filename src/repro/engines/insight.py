"""Qualitative reuse summaries (the paper's Figure 5 / Table 1 view).

While :mod:`repro.engines.analysis` quantifies reuse, this module
classifies it: for each cluster level of a bound dataflow it reports
which tensors are temporally stationary across the most frequent
(steady, innermost) transition, which enjoy partial temporal reuse
(sliding-window overlap), which are spatially multicast, and whether
outputs are spatially reduced — the vocabulary of the paper's dataflow
taxonomy (weight-stationary, output-stationary, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.engines.binding import bind_dataflow
from repro.engines.reuse import LevelReuse, analyze_level_reuse
from repro.engines.tensor_analysis import analyze_tensors
from repro.obs import span
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer


@dataclass(frozen=True)
class LevelReuseSummary:
    """Reuse classification for one cluster level."""

    level: int
    temporally_stationary: Tuple[str, ...]
    partial_temporal_reuse: Tuple[str, ...]
    spatial_multicast: Tuple[str, ...]
    spatial_reduction: bool
    informal_style: str


@dataclass(frozen=True)
class ReuseSummary:
    """Per-level reuse classification for a whole dataflow."""

    dataflow_name: str
    layer_name: str
    levels: Tuple[LevelReuseSummary, ...]

    @property
    def innermost(self) -> LevelReuseSummary:
        return self.levels[-1]

    def describe(self) -> str:
        lines = [f"{self.dataflow_name} on {self.layer_name}:"]
        for level in self.levels:
            lines.append(
                f"  level {level.level}: {level.informal_style}"
            )
            if level.temporally_stationary:
                lines.append(
                    "    temporal reuse (stationary): "
                    + ", ".join(level.temporally_stationary)
                )
            if level.partial_temporal_reuse:
                lines.append(
                    "    partial temporal reuse: "
                    + ", ".join(level.partial_temporal_reuse)
                )
            if level.spatial_multicast:
                lines.append(
                    "    spatial multicast: " + ", ".join(level.spatial_multicast)
                )
            if level.spatial_reduction:
                lines.append("    spatial reduction of outputs")
        return "\n".join(lines)


def summarize_reuse(
    layer: Layer, dataflow: Dataflow, accelerator: Accelerator
) -> ReuseSummary:
    """Classify the reuse each level of ``dataflow`` exposes on ``layer``."""
    with span("engine.insight", layer=layer.name, dataflow=dataflow.name):
        bound = bind_dataflow(dataflow, layer, accelerator)
        tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
        summaries: List[LevelReuseSummary] = []
        for level in bound.levels:
            reuse = analyze_level_reuse(level, tensors)
            summaries.append(_summarize_level(reuse, tensors.output.name))
    return ReuseSummary(
        dataflow_name=dataflow.name,
        layer_name=layer.name,
        levels=tuple(summaries),
    )


def _summarize_level(reuse: LevelReuse, output_name: str) -> LevelReuseSummary:
    steady = _steady_class(reuse)
    stationary: List[str] = []
    partial: List[str] = []
    if steady is not None:
        for name, traffic in steady.traffic.items():
            chunk = reuse.chunk_volumes.get(name, 0.0)
            if traffic.stationary:
                stationary.append(name)
            elif 0.0 < traffic.fetch < chunk:
                partial.append(name)

    style = _informal_style(output_name, stationary, reuse)
    return LevelReuseSummary(
        level=reuse.level.index,
        temporally_stationary=tuple(sorted(stationary)),
        partial_temporal_reuse=tuple(sorted(partial)),
        spatial_multicast=tuple(sorted(reuse.multicast_tensors)),
        spatial_reduction=reuse.output_spatially_reduced,
        informal_style=style,
    )


def _steady_class(reuse: LevelReuse):
    """The most frequent transition class (the innermost steady case)."""
    best = None
    for cls in reuse.classes:
        if best is None or cls.count > best.count:
            best = cls
    return best


def _informal_style(
    output_name: str, stationary: List[str], reuse: LevelReuse
) -> str:
    """The paper's informal dataflow-style name for a level."""
    labels = []
    if output_name in stationary:
        labels.append("output-stationary")
    if "W" in stationary:
        labels.append("weight-stationary")
    if "I" in stationary:
        labels.append("input-stationary")
    if not labels:
        labels.append("no stationary tensor")
    if reuse.output_spatially_reduced:
        labels.append("collaborative (spatial reduction)")
    return ", ".join(labels)
