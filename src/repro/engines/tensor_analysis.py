"""Tensor analysis: resolve each tensor's axes and dimension coupling.

Implements the paper's Tensor Analysis engine: from the layer's operator
and the dataflow's coordinate representation, produce per-tensor
:class:`TensorInfo` with concrete axes (extent/delta/shift machinery)
and the set of directive dimensions the tensor is coupled to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Mapping, Tuple

from repro.model.layer import Layer
from repro.obs import inc
from repro.tensors.axes import Axis
from repro.tensors.operators import TensorRole
from repro.util.intmath import prod


@dataclass(frozen=True)
class TensorInfo:
    """One tensor's analysis view.

    ``axes`` are the resolved :class:`~repro.tensors.axes.Axis` objects;
    ``coupled_dims`` the directive dims appearing in any axis; ``density``
    the layer's uniform density for this tensor.
    """

    name: str
    role: TensorRole
    axes: Tuple[Axis, ...]
    coupled_dims: FrozenSet[str]
    density: float

    @property
    def is_output(self) -> bool:
        return self.role is TensorRole.OUTPUT

    def volume(self, sizes: Mapping[str, int]) -> int:
        """Chunk volume: the product of all axis extents under ``sizes``."""
        return prod(axis.extent(sizes) for axis in self.axes)


@dataclass(frozen=True)
class TensorAnalysis:
    """All tensors of a layer plus the resolved compute-domain axes."""

    tensors: Tuple[TensorInfo, ...]
    compute_axes: Tuple[Axis, ...]
    reduction_dims: FrozenSet[str]

    def tensor(self, name: str) -> TensorInfo:
        for info in self.tensors:
            if info.name == name:
                return info
        raise KeyError(f"no tensor named {name!r}")

    @property
    def inputs(self) -> List[TensorInfo]:
        return [t for t in self.tensors if not t.is_output]

    @property
    def output(self) -> TensorInfo:
        for info in self.tensors:
            if info.is_output:
                return info
        raise KeyError("no output tensor")

    def ops_per_chunk(self, sizes: Mapping[str, int]) -> int:
        """Compute-domain points in one mapped chunk."""
        return prod(axis.extent(sizes) for axis in self.compute_axes)


def analyze_tensors(layer: Layer, row_rep: str, col_rep: str) -> TensorAnalysis:
    """Resolve the layer's tensors for the given coordinate representation."""
    inc("tensor_analysis.layers_resolved")
    operator = layer.operator
    infos = []
    for template in operator.tensors:
        axes = operator.resolve_axes(
            template.axis_templates, row_rep, col_rep, layer.stride, layer.dilation
        )
        coupled: set = set()
        for axis in axes:
            coupled.update(axis.dims)
        infos.append(
            TensorInfo(
                name=template.name,
                role=template.role,
                axes=axes,
                coupled_dims=frozenset(coupled),
                density=layer.density(template.name),
            )
        )
    compute_axes = operator.resolve_axes(
        operator.compute_templates, row_rep, col_rep, layer.stride, layer.dilation
    )
    return TensorAnalysis(
        tensors=tuple(infos),
        compute_axes=compute_axes,
        reduction_dims=operator.reduction_dims,
    )
