"""Design-space definition for hardware DSE.

A :class:`DesignSpace` enumerates candidate hardware configurations:
PE counts, NoC bandwidths, and per-dataflow tile-size variants (the
mapping sizes of the dataflow's directives, which the paper identifies
as the lever behind buffer-use efficiency). Buffer capacities are not
swept independently: the DSE sizes L1/L2 from the cost model's reported
requirement for each point, exactly as the paper's tool does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.errors import DSEError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated hardware design."""

    num_pes: int
    noc_bandwidth: int
    dataflow_name: str
    tile_label: str
    l1_size: int
    l2_size: int
    area: float
    power: float
    throughput: float
    runtime: float
    energy: float

    @property
    def edp(self) -> float:
        return self.energy * self.runtime


@dataclass(frozen=True)
class DesignSpace:
    """The swept parameter grid.

    ``dataflow_variants`` are ``(label, dataflow)`` pairs — typically one
    base dataflow instantiated at several tile sizes.
    """

    pe_counts: Sequence[int]
    noc_bandwidths: Sequence[int]
    dataflow_variants: Sequence[Tuple[str, Dataflow]]

    def __post_init__(self) -> None:
        if not self.pe_counts or not self.noc_bandwidths or not self.dataflow_variants:
            raise DSEError("design space must have at least one value per axis")
        if any(p < 1 for p in self.pe_counts):
            raise DSEError("PE counts must be positive")
        if any(b < 1 for b in self.noc_bandwidths):
            raise DSEError("NoC bandwidths must be positive")

    @property
    def size(self) -> int:
        return (
            len(self.pe_counts)
            * len(self.noc_bandwidths)
            * len(self.dataflow_variants)
        )


def default_pe_counts(max_pes: int = 1024, step: int = 8) -> List[int]:
    """A linear PE grid like the paper's sweep (``step`` granularity)."""
    return list(range(step, max_pes + 1, step))


def default_bandwidths(max_bw: int = 128) -> List[int]:
    """Powers of two up to ``max_bw`` elements/cycle."""
    values = []
    bandwidth = 1
    while bandwidth <= max_bw:
        values.append(bandwidth)
        bandwidth *= 2
    return values


def kc_partitioned_variants(
    c_tiles: Sequence[int] = (8, 16, 32, 64),
    spatial_tiles: Sequence[Tuple[int, int]] = ((1, 1), (1, 4), (4, 4), (8, 8)),
) -> List[Tuple[str, Dataflow]]:
    """KC-P across cluster sizes and activation tile sizes."""
    from repro.dataflow.library import kc_partitioned

    return [
        (
            f"KC-P/c{c}y{y}x{x}",
            kc_partitioned(c_tile=c, y_tile=y, x_tile=x),
        )
        for c in c_tiles
        for y, x in spatial_tiles
    ]


def yr_partitioned_variants(
    ck_tiles: Sequence[Tuple[int, int]] = ((1, 1), (2, 2), (4, 4), (8, 4)),
    x_tiles: Sequence[int] = (1, 4, 14),
) -> List[Tuple[str, Dataflow]]:
    """YR-P across (C-tile, K-tile) and X-tile combinations."""
    from repro.dataflow.library import yr_partitioned

    return [
        (f"YR-P/c{c}k{k}x{x}", yr_partitioned(c_tile=c, k_tile=k, x_tile=x))
        for c, k in ck_tiles
        for x in x_tiles
    ]
