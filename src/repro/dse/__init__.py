"""Hardware design-space exploration on top of the cost model (Section 5.2).

The explorer sweeps PE count, NoC bandwidth, and dataflow tile sizes
under area and power constraints, sizing buffers from the model's
reported requirements (as the paper's DSE does), and skips invalid
subspaces by bounding area/power from below before evaluating — the
pruning that gives the paper its high effective DSE rate.
"""

from repro.dse.space import DesignPoint, DesignSpace
from repro.dse.explorer import DSEResult, DSEStatistics, explore
from repro.dse.objectives import edp_objective, energy_objective, throughput_objective

__all__ = [
    "DesignSpace",
    "DesignPoint",
    "explore",
    "DSEResult",
    "DSEStatistics",
    "throughput_objective",
    "energy_objective",
    "edp_objective",
]
