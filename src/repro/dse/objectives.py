"""Optimization objectives for the DSE (throughput, energy, EDP)."""

from __future__ import annotations

from typing import Callable

from repro.dse.space import DesignPoint


def throughput_objective(point: DesignPoint) -> float:
    """Maximize MACs/cycle (returned negated: objectives are minimized)."""
    return -point.throughput


def energy_objective(point: DesignPoint) -> float:
    """Minimize total energy."""
    return point.energy


def edp_objective(point: DesignPoint) -> float:
    """Minimize the energy-delay product."""
    return point.edp


OBJECTIVES: dict = {
    "throughput": throughput_objective,
    "energy": energy_objective,
    "edp": edp_objective,
}


def get_objective(name: str) -> Callable[[DesignPoint], float]:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; available: {sorted(OBJECTIVES)}"
        ) from None
