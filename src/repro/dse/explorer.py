"""The pruned design-space sweep (the paper's DSE tool, Section 5.2).

For every (PEs, bandwidth, dataflow-variant) triple the explorer:

1. prunes by lower-bound area/power *before* touching the cost model —
   if PEs + NoC alone exceed the budget, every buffer choice above them
   does too, so the whole subspace is skipped (the optimization behind
   the paper's 0.17M designs/second effective rate);
2. rejects statically unbindable mappings via the lint engine;
3. evaluates every surviving candidate through the batch-evaluation
   backend (:mod:`repro.exec`): memoized against previous sweeps and,
   for large miss sets, fanned out over worker processes — results are
   bit-identical to the serial loop, in the same order;
4. sizes L1/L2 exactly to the model's reported requirement and applies
   the area/power constraint to the resulting concrete design;
5. records the point and maintains throughput-, energy-, and
   EDP-optimized leaders plus the full valid set for Pareto analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro import obs
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import DataflowError
from repro.exec import AnalysisCache, BatchEvaluator, EvalPoint
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.area import DEFAULT_AREA_MODEL, AreaModel
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.lint.engine import required_pes, static_errors
from repro.model.layer import Layer
from repro.util.pareto import pareto_front


@dataclass(frozen=True)
class DSEStatistics:
    """Sweep statistics, the paper's Figure 13(c) table.

    ``pruned`` includes ``static_rejects``: mapping×hardware points the
    static mapping analyzer rejected without a cost-model run.
    ``cost_model_calls`` counts the points that needed a cost-model
    answer — memoized (``cache_hits``) or freshly evaluated (including
    evaluations that were rejected by binding) — so the lint pruning win
    stays measurable with the cache on. With ``symbolic_prune`` two more
    buckets appear: ``symbolic_rejects`` (points in hardware regions the
    abstract interpreter proved over-budget — they could never become
    valid designs) and ``bnb_pruned`` (points in regions whose interval
    bounds are dominated by the running incumbents on *all* objectives —
    they could never become an optimum). With ``equiv_prune``,
    ``equiv_replays`` counts grid points satisfied by replaying an
    equivalent candidate's outcome instead of a cost-model call. The
    sweep invariant checked by :func:`explore`::

        explored == space.size
        cost_model_calls + pruned + symbolic_rejects + bnb_pruned
            + equiv_replays == explored
        evaluated <= cost_model_calls  (failures are the difference)
    """

    explored: int
    evaluated: int
    valid: int
    pruned: int
    elapsed_seconds: float
    static_rejects: int = 0
    coverage_rejects: int = 0
    cost_model_calls: int = 0
    cache_hits: int = 0
    executor: str = "serial"
    eval_wall_seconds: float = 0.0
    #: Points inside hardware regions the symbolic branch-and-bound
    #: proved infeasible (interval lower-bound area/power over budget).
    symbolic_rejects: int = 0
    #: Points inside hardware regions dominated by the incumbents on
    #: every objective simultaneously (interval upper/lower bounds).
    bnb_pruned: int = 0
    #: Points whose mapping the communication classifier proved to race
    #: (spatially mapped reduction on reduction-free hardware) under
    #: ``comm_prune``; zero whenever the hardware supports reduction.
    comm_rejects: int = 0
    #: Points answered by replaying an equivalence-class representative's
    #: outcome (``equiv_prune``): same canonical key at the same grid
    #: point, so the cost model's answer is provably identical.
    equiv_replays: int = 0
    #: Points whose requirement-sized design provably busts the budget
    #: (``capacity_prune``): the static occupancy bounds reproduce the
    #: engine's buffer requirements bit-for-bit, so the fold-time
    #: area/power rejection is decided before any cost-model call.
    capacity_rejects: int = 0

    @property
    def effective_rate(self) -> float:
        """Explored designs per second (pruned subspaces included)."""
        return self.explored / self.elapsed_seconds if self.elapsed_seconds else 0.0


@dataclass(frozen=True)
class DSEResult:
    """All valid designs plus the per-objective optima."""

    points: Tuple[DesignPoint, ...]
    statistics: DSEStatistics
    throughput_optimal: Optional[DesignPoint]
    energy_optimal: Optional[DesignPoint]
    edp_optimal: Optional[DesignPoint]

    def pareto(self) -> List[DesignPoint]:
        """Throughput/energy Pareto front of the valid designs."""
        return pareto_front(
            list(self.points),
            objectives=[lambda p: -p.throughput, lambda p: p.energy],
        )


def explore(
    layer: Layer,
    space: DesignSpace,
    area_budget: float,
    power_budget: float,
    area_model: AreaModel = DEFAULT_AREA_MODEL,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    noc_latency: int = 2,
    static_lint: bool = True,
    verify_coverage: bool = False,
    executor: str = "auto",
    jobs: Optional[int] = None,
    cache: Union[bool, AnalysisCache, None] = True,
    symbolic_prune: bool = False,
    symbolic_block: int = 8,
    spatial_reduction: bool = True,
    noc_multicast: bool = True,
    comm_prune: bool = False,
    equiv_prune: bool = False,
    capacity_prune: bool = False,
) -> DSEResult:
    """Sweep ``space`` for ``layer`` under the given budgets.

    With ``static_lint`` (the default) every dataflow variant is checked
    once by the static mapping analyzer; points whose mapping cannot
    bind (wrong sizes, duplicated dims, cluster hierarchy larger than
    the PE array) are counted into ``pruned`` without paying a
    cost-model evaluation. The check is binding-equivalent, so the
    surviving set — and therefore every optimum — is identical to a
    sweep with ``static_lint=False``.

    With ``verify_coverage`` the iteration-space verifier
    (:mod:`repro.verify`) additionally checks each variant once against
    the layer and prunes variants *proven* not to cover the compute
    space exactly once (``coverage_rejects``). The pruning is sound:
    only mappings refuted with a concrete missed or double-counted MAC
    are dropped, so the optima over *correct* mappings are unchanged
    (and bit-identical when every variant is sound).

    ``executor``/``jobs``/``cache`` configure the batch-evaluation
    backend (:mod:`repro.exec`); every combination returns bit-identical
    results, so they are pure performance knobs. Grid-shaped sweeps
    auto-select the ``vector`` executor, which evaluates a whole
    hardware grid per (layer, dataflow) through the NumPy engine
    (:mod:`repro.vector`); pruning passes compose with it by shrinking
    the groups before they reach the backend.

    With ``symbolic_prune`` the sweep runs a sound branch-and-bound over
    the hardware grid: candidates are grouped into regions of up to
    ``symbolic_block`` consecutive PE counts per (variant, bandwidth),
    each region is abstract-interpreted once with the PE count as an
    interval (:mod:`repro.absint`), and the region is discarded without
    any cost-model call when either (a) its interval *lower-bound*
    area/power already busts the budget — no point inside could become
    a valid design — or (b) its interval bounds are beaten by the
    running incumbents on throughput, energy, *and* EDP simultaneously
    — no point inside could become an optimum. Because the interval
    bounds enclose every concrete outcome in the region (and dominance
    is strict), the three reported optima are bit-identical to the
    exhaustive sweep; only the Pareto set may lose dominated interior
    points. Regions the abstract engine cannot certify (partial binding
    failures) are never pruned.

    ``spatial_reduction`` and ``noc_multicast`` set the communication
    capabilities of every swept accelerator (the Table 5 switches). With
    ``comm_prune`` on *reduction-free* hardware
    (``spatial_reduction=False``), each variant is probe-classified once
    by the communication analyzer (:mod:`repro.comm`) and grid points
    where the mapping spatially maps a reduction-carried dimension —
    i.e. would race its output writes, the DF300 hazard — are rejected
    (``comm_rejects``) before any cost-model call. The screen factors
    the classification by PE count (inner-level races are PE-count
    independent; a top-level race needs two or more top clusters), so
    one probe decides every grid point. On reduction-capable hardware
    the screen is inert by construction, so optima are bit-identical
    with or without ``comm_prune``; variants the classifier cannot bind
    or classify are never pruned.

    With ``equiv_prune`` the mapping axis is quotiented by the
    equivalence analyzer (:mod:`repro.equiv`): each variant's canonical
    form is computed once, and at every (PEs, bandwidth) grid point only
    one representative per equivalence class pays a cost-model call —
    the other members replay its outcome (``equiv_replays``). Classes
    use the exact canonical key, extended to the symmetry orbit only
    where the integer-activity certificate proves transposed twins
    bit-identical, so every replayed outcome is provably equal to what
    the cost model would have returned and all optima are bit-identical
    to the unquotiented sweep. Variants the analyzer cannot certify fall
    back to raw-spelling identity and are never grouped beyond it. The
    quotient applies to the exhaustive sweep; under ``symbolic_prune``
    the branch-and-bound's region machinery takes precedence and the
    quotient is not applied.

    With ``capacity_prune`` each surviving candidate is screened by the
    static occupancy analyzer (:mod:`repro.capacity`) before entering
    the cost model: the analyzer reproduces the engine's buffer
    requirements bit-for-bit from the binding alone, so the
    requirement-sized design's area/power — exactly what ``fold_point``
    checks after evaluation — is known up front, and points that would
    be folded away are rejected (``capacity_rejects``) without a
    cost-model call. Because the decision replicates the fold check on
    identical values, the valid set, Pareto front, and optima are
    bit-identical with or without the screen. Two monotonicity facts
    let one rejection discard whole sub-regions: area/power grow with
    NoC bandwidth (a reject at the smallest bandwidth rejects the row)
    and with PE count while the L2 requirement never shrinks with it
    (a smallest-bandwidth reject covers every larger array for the same
    variant). Candidates whose bounds cannot be certified are never
    pruned.
    """
    start = time.perf_counter()
    explored = pruned = static_rejects = coverage_rejects = comm_rejects = 0
    capacity_rejects = 0

    def make_noc(bandwidth: int) -> NoC:
        return NoC(
            bandwidth=bandwidth, avg_latency=noc_latency, multicast=noc_multicast
        )

    # One static pass per variant: the layer-only lint verdict and the
    # PE demand of the cluster hierarchy (compared per PE count below).
    variant_lint: dict = {}
    if static_lint:
        with obs.span("dse.static_screen"):
            for label, dataflow in space.dataflow_variants:
                try:
                    needed = required_pes(dataflow, layer)
                except DataflowError:
                    variant_lint[(label, dataflow.name)] = (True, 0)
                    continue
                errors = static_errors(dataflow, layer)
                variant_lint[(label, dataflow.name)] = (bool(errors), needed)

    # One coverage verification per variant (the layer is fixed, so the
    # verdict is independent of the hardware grid): refuted variants are
    # pruned from every grid point they would have occupied.
    variant_refuted: dict = {}
    if verify_coverage:
        with obs.span("dse.verify_screen"):
            from repro.verify import Verdict, verify_dataflow

            for label, dataflow in space.dataflow_variants:
                key = (label, dataflow.name)
                if static_lint and variant_lint.get(key, (False, 0))[0]:
                    continue  # already rejected statically
                try:
                    result = verify_dataflow(dataflow, layer)
                except Exception:
                    continue  # never let verification break the sweep
                variant_refuted[key] = result.verdict is Verdict.REFUTED

    # One communication probe per variant: only meaningful (and only
    # run) when the swept hardware lacks spatial reduction, so the
    # screen cannot touch a capable-hardware sweep. A probe that cannot
    # classify (binding failure, exotic mapping) yields no demand and
    # never prunes.
    variant_demand: dict = {}
    if comm_prune and not spatial_reduction:
        with obs.span("dse.comm_screen"):
            from repro.comm import reduction_demand

            for label, dataflow in space.dataflow_variants:
                key = (label, dataflow.name)
                if static_lint and variant_lint.get(key, (False, 0))[0]:
                    continue  # already rejected statically
                if verify_coverage and variant_refuted.get(key):
                    continue  # already rejected by the verifier
                try:
                    variant_demand[key] = reduction_demand(dataflow, layer)
                except Exception:
                    continue  # never let classification break the sweep

    # One canonical form per variant (layer fixed, so the form — and the
    # layer's symmetry group — are independent of the hardware grid).
    # Only the orbit extension depends on the PE count, decided per grid
    # point below by the integer-activity certificate.
    variant_form: dict = {}
    equiv_symmetries: tuple = ()
    if equiv_prune and not symbolic_prune:
        with obs.span("dse.equiv_screen"):
            from repro.equiv import canonicalize, layer_symmetries

            equiv_symmetries = layer_symmetries(layer)
            for label, dataflow in space.dataflow_variants:
                variant_form[(label, dataflow.name)] = canonicalize(dataflow, layer)

    # Capacity screen state: the requirement-sized (l1, l2) per
    # (variant, PE count) — bandwidth-independent, since the occupancy
    # bounds never read the NoC — plus, per variant, the smallest PE
    # count rejected at the minimum bandwidth. Area/power are monotone
    # in bandwidth and PE count while the L2 requirement never shrinks
    # with the array, so every point at or above that floor is rejected
    # without re-binding.
    capacity_sizes: dict = {}
    capacity_reject_floor: dict = {}
    if capacity_prune:
        from repro.capacity import capacity_requirements

    # ------------------------------------------------------------------
    # Phase 1 — enumerate: classify every grid point as budget-pruned,
    # statically rejected, or a candidate for the cost model.
    # ------------------------------------------------------------------
    candidates: List[Tuple[int, int, str, object]] = []  # (pes, bw, label, flow)
    with obs.span("dse.enumerate"):
        for num_pes in space.pe_counts:
            # Prune the whole PE row if even the cheapest NoC busts the budget.
            min_bw = min(space.noc_bandwidths)
            if (
                area_model.min_area(num_pes, min_bw) > area_budget
                or area_model.min_power(num_pes, min_bw) > power_budget
            ):
                pruned += len(space.noc_bandwidths) * len(space.dataflow_variants)
                explored += len(space.noc_bandwidths) * len(space.dataflow_variants)
                continue
            for bandwidth in space.noc_bandwidths:
                if (
                    area_model.min_area(num_pes, bandwidth) > area_budget
                    or area_model.min_power(num_pes, bandwidth) > power_budget
                ):
                    pruned += len(space.dataflow_variants)
                    explored += len(space.dataflow_variants)
                    continue
                for label, dataflow in space.dataflow_variants:
                    explored += 1
                    if static_lint:
                        bad, needed = variant_lint[(label, dataflow.name)]
                        if bad or needed > num_pes:
                            pruned += 1
                            static_rejects += 1
                            continue
                    if verify_coverage and variant_refuted.get((label, dataflow.name)):
                        pruned += 1
                        coverage_rejects += 1
                        continue
                    demand = variant_demand.get((label, dataflow.name))
                    if demand is not None and demand.races_on(num_pes):
                        pruned += 1
                        comm_rejects += 1
                        continue
                    if capacity_prune:
                        floor = capacity_reject_floor.get((label, dataflow.name))
                        if floor is not None and num_pes >= floor:
                            # Rejected at (floor, min_bw): area/power are
                            # monotone in PEs and bandwidth, L1 is
                            # PE-independent, and L2 never shrinks as the
                            # array grows, so this point busts the budget
                            # too — even without re-binding.
                            pruned += 1
                            capacity_rejects += 1
                            continue
                        size_key = (label, dataflow.name, num_pes)
                        if size_key not in capacity_sizes:
                            capacity_sizes[size_key] = capacity_requirements(
                                dataflow,
                                layer,
                                Accelerator(
                                    num_pes=num_pes,
                                    noc=make_noc(bandwidth),
                                    spatial_reduction=spatial_reduction,
                                ),
                            )
                        sizes = capacity_sizes[size_key]
                        if sizes is not None:
                            sized = Accelerator(
                                num_pes=num_pes,
                                l1_size=sizes[0],
                                l2_size=sizes[1],
                                noc=make_noc(bandwidth),
                                spatial_reduction=spatial_reduction,
                            )
                            if (
                                area_model.area(sized) > area_budget
                                or area_model.power(sized) > power_budget
                            ):
                                pruned += 1
                                capacity_rejects += 1
                                if bandwidth == min_bw:
                                    capacity_reject_floor[
                                        (label, dataflow.name)
                                    ] = min(
                                        capacity_reject_floor.get(
                                            (label, dataflow.name), num_pes
                                        ),
                                        num_pes,
                                    )
                                continue
                    candidates.append((num_pes, bandwidth, label, dataflow))

    def fold_point(
        num_pes: int, bandwidth: int, label: str, dataflow, report
    ) -> Optional[DesignPoint]:
        """Size the buffers, apply the budget, build the design point."""
        l1 = max(report.l1_buffer_req, 1)
        l2 = max(report.l2_buffer_req, 1)
        sized = Accelerator(
            num_pes=num_pes,
            l1_size=l1,
            l2_size=l2,
            noc=make_noc(bandwidth),
            spatial_reduction=spatial_reduction,
        )
        area = area_model.area(sized)
        power = area_model.power(sized)
        if area > area_budget or power > power_budget:
            return None
        return DesignPoint(
            num_pes=num_pes,
            noc_bandwidth=bandwidth,
            dataflow_name=dataflow.name,
            tile_label=label,
            l1_size=l1,
            l2_size=l2,
            area=area,
            power=power,
            throughput=report.throughput,
            runtime=report.runtime,
            energy=report.energy_total,
        )

    # ------------------------------------------------------------------
    # Phase 2 — evaluate the candidates through the batch backend,
    # either exhaustively or region-by-region under the symbolic
    # branch-and-bound. Valid points are collected with their original
    # enumeration index so the final fold order is identical either way.
    # ------------------------------------------------------------------
    evaluator = BatchEvaluator(executor=executor, jobs=jobs, cache=cache)
    indexed_points: List[Tuple[int, DesignPoint]] = []
    evaluated = 0
    symbolic_rejects = bnb_pruned = 0
    calls_submitted = cache_hits = 0
    equiv_replays = 0
    executor_name = "serial"
    eval_wall = 0.0

    if not symbolic_prune:
        # Under equiv_prune, pick one representative per (PEs, bandwidth,
        # equivalence class); the other members replay its outcome. The
        # orbit key is used only where the integer-activity certificate
        # proves transposed twins bit-identical at that PE count.
        eval_indices = list(range(len(candidates)))
        replay_of: dict = {}  # candidate index -> representative index
        if variant_form:
            from repro.equiv import integral_active, orbit_key

            representatives: dict = {}
            eval_indices = []
            for index, (num_pes, bandwidth, label, dataflow) in enumerate(candidates):
                form = variant_form[(label, dataflow.name)]
                class_key = form.key
                if equiv_symmetries and integral_active(form, num_pes):
                    class_key = orbit_key(class_key, equiv_symmetries)
                group = (num_pes, bandwidth, class_key)
                representative = representatives.get(group)
                if representative is None:
                    representatives[group] = index
                    eval_indices.append(index)
                else:
                    replay_of[index] = representative
            equiv_replays = len(replay_of)
            obs.inc("dse.pruned_by_equiv", equiv_replays)

        with obs.span("dse.evaluate", candidates=len(eval_indices)):
            batch = evaluator.evaluate(
                EvalPoint(
                    layer=layer,
                    dataflow=candidates[index][3],
                    accelerator=Accelerator(
                        num_pes=candidates[index][0],
                        noc=make_noc(candidates[index][1]),
                        spatial_reduction=spatial_reduction,
                    ),
                    energy_model=energy_model,
                )
                for index in eval_indices
            )
        calls_submitted = batch.stats.submitted
        cache_hits = batch.stats.cache_hits
        executor_name = batch.stats.executor
        eval_wall = batch.stats.wall_seconds
        outcome_at = dict(zip(eval_indices, batch))
        with obs.span("dse.fold"):
            for index, (num_pes, bandwidth, label, dataflow) in enumerate(candidates):
                outcome = outcome_at.get(index)
                replayed = outcome is None
                if replayed:
                    outcome = outcome_at[replay_of[index]]
                if not outcome.ok:
                    continue
                if not replayed:
                    evaluated += 1
                point = fold_point(num_pes, bandwidth, label, dataflow, outcome.report)
                if point is not None:
                    indexed_points.append((index, point))
    else:
        regions = _pe_regions(candidates, symbolic_block)
        interim = {"throughput": None, "energy": None, "edp": None}
        with obs.span("dse.bnb", regions=len(regions)):
            for region in regions:
                verdict = _region_bounds(
                    layer,
                    region,
                    noc_latency,
                    area_model,
                    energy_model,
                    area_budget,
                    power_budget,
                )
                if verdict is _INFEASIBLE:
                    symbolic_rejects += len(region)
                    continue
                if verdict is not None and _dominated(verdict, interim):
                    bnb_pruned += len(region)
                    continue
                batch = evaluator.evaluate(
                    EvalPoint(
                        layer=layer,
                        dataflow=dataflow,
                        accelerator=Accelerator(
                            num_pes=num_pes,
                            noc=make_noc(bandwidth),
                            spatial_reduction=spatial_reduction,
                        ),
                        energy_model=energy_model,
                    )
                    for _, (num_pes, bandwidth, label, dataflow) in region
                )
                calls_submitted += batch.stats.submitted
                cache_hits += batch.stats.cache_hits
                executor_name = batch.stats.executor
                eval_wall += batch.stats.wall_seconds
                for (index, (num_pes, bandwidth, label, dataflow)), outcome in zip(
                    region, batch
                ):
                    if not outcome.ok:
                        continue
                    evaluated += 1
                    point = fold_point(
                        num_pes, bandwidth, label, dataflow, outcome.report
                    )
                    if point is not None:
                        indexed_points.append((index, point))
                        _update_leaders(interim, point)

    # ------------------------------------------------------------------
    # Phase 3 — fold the surviving valid points in their original
    # enumeration order: the leaders are first-achiever-stable, so this
    # reproduces the exhaustive sweep's optima exactly.
    # ------------------------------------------------------------------
    indexed_points.sort(key=lambda pair: pair[0])
    points: List[DesignPoint] = []
    best = {"throughput": None, "energy": None, "edp": None}
    for _, point in indexed_points:
        points.append(point)
        _update_leaders(best, point)

    # The ExploreResult invariant, explicit: every grid point is
    # accounted for exactly once — budget-pruned, lint-rejected,
    # symbolically discarded, or answered by the cost model (evaluated
    # successfully or failed).
    failures = calls_submitted - evaluated
    budget_pruned = (
        pruned - static_rejects - coverage_rejects - comm_rejects - capacity_rejects
    )
    assert explored == space.size, (
        f"enumeration drift: walked {explored} of {space.size} grid points"
    )
    assert (
        evaluated
        + failures
        + static_rejects
        + coverage_rejects
        + comm_rejects
        + capacity_rejects
        + budget_pruned
        + symbolic_rejects
        + bnb_pruned
        + equiv_replays
        == space.size
    ), (
        f"statistics drift: evaluated={evaluated} failures={failures} "
        f"static_rejects={static_rejects} coverage_rejects={coverage_rejects} "
        f"comm_rejects={comm_rejects} capacity_rejects={capacity_rejects} "
        f"budget_pruned={budget_pruned} symbolic_rejects={symbolic_rejects} "
        f"bnb_pruned={bnb_pruned} equiv_replays={equiv_replays} "
        f"do not partition the {space.size}-point grid"
    )

    elapsed = time.perf_counter() - start
    obs.inc("dse.points_explored", explored)
    obs.inc("dse.mappings_evaluated", evaluated)
    obs.inc("dse.pruned_by_lint", static_rejects)
    obs.inc("dse.pruned_by_verify", coverage_rejects)
    obs.inc("dse.pruned_by_symbolic", symbolic_rejects + bnb_pruned)
    obs.inc("dse.pruned_by_comm", comm_rejects)
    obs.inc("dse.pruned_by_capacity", capacity_rejects)
    statistics = DSEStatistics(
        explored=explored,
        evaluated=evaluated,
        valid=len(points),
        pruned=pruned,
        elapsed_seconds=elapsed,
        static_rejects=static_rejects,
        coverage_rejects=coverage_rejects,
        cost_model_calls=calls_submitted,
        cache_hits=cache_hits,
        executor=executor_name,
        eval_wall_seconds=eval_wall,
        symbolic_rejects=symbolic_rejects,
        bnb_pruned=bnb_pruned,
        comm_rejects=comm_rejects,
        equiv_replays=equiv_replays,
        capacity_rejects=capacity_rejects,
    )
    return DSEResult(
        points=tuple(points),
        statistics=statistics,
        throughput_optimal=best["throughput"],
        energy_optimal=best["energy"],
        edp_optimal=best["edp"],
    )


#: Region verdict sentinel: every point in the region is over budget.
_INFEASIBLE = object()

#: One enumerated candidate with its original index.
_Indexed = Tuple[int, Tuple[int, int, str, object]]


def _pe_regions(
    candidates: "List[Tuple[int, int, str, object]]", block: int
) -> "List[List[_Indexed]]":
    """Group candidates into branch-and-bound regions.

    A region holds up to ``block`` candidates that share a bandwidth and
    a dataflow variant and differ only in PE count (the enumeration is
    PE-major, so each region's PE counts are increasing). One abstract
    interpretation with the PE count as an interval then bounds every
    candidate in the region at once. Regions come back ordered by their
    first candidate's enumeration index, so incumbents grow in a
    deterministic order.
    """
    grouped: "dict" = {}
    for index, candidate in enumerate(candidates):
        _, bandwidth, label, dataflow = candidate
        key = (bandwidth, label, id(dataflow))
        blocks = grouped.setdefault(key, [])
        if not blocks or len(blocks[-1]) >= max(1, block):
            blocks.append([])
        blocks[-1].append((index, candidate))
    regions = [region for blocks in grouped.values() for region in blocks]
    regions.sort(key=lambda region: region[0][0])
    return regions


def _region_bounds(
    layer: Layer,
    region: "List[_Indexed]",
    noc_latency: int,
    area_model: AreaModel,
    energy_model: EnergyModel,
    area_budget: float,
    power_budget: float,
):
    """Abstract-interpret one region; classify it or return its bounds.

    Returns ``_INFEASIBLE`` when the interval lower-bound area/power of
    the cheapest configuration in the region already busts the budget
    (so no point inside can pass the phase-3 check), the region's
    :class:`~repro.absint.engine.AbstractAnalysis` when bounds are
    available for the dominance test, or ``None`` when the abstract
    engine cannot certify the region (it is then evaluated in full —
    soundness over speed).
    """
    from repro.absint.engine import HardwareBox, abstract_analyze
    from repro.absint.interval import IntervalInt
    from repro.absint.shapes import ShapeBox

    pes = [candidate[0] for _, candidate in region]
    bandwidth = region[0][1][1]
    dataflow = region[0][1][3]
    try:
        analysis = abstract_analyze(
            ShapeBox.from_layer(layer),
            dataflow,
            HardwareBox(
                num_pes=IntervalInt(min(pes), max(pes)),
                bandwidth=IntervalInt.point(bandwidth),
                avg_latency=noc_latency,
            ),
            energy_model=energy_model,
        )
    except Exception:
        return None
    if analysis.caveats:
        return None  # partial binding failures: bounds cover only a subfamily
    cheapest = Accelerator(
        num_pes=min(pes),
        l1_size=max(analysis.l1_buffer_req.lo, 1),
        l2_size=max(analysis.l2_buffer_req.lo, 1),
        noc=NoC(bandwidth=bandwidth, avg_latency=noc_latency),
    )
    if (
        area_model.area(cheapest) > area_budget
        or area_model.power(cheapest) > power_budget
    ):
        return _INFEASIBLE
    return analysis


def _dominated(analysis, interim: dict) -> bool:
    """Whether the incumbents beat the whole region on every objective.

    Strict inequalities keep first-achiever tie-breaking intact: a
    region containing a point that merely *ties* an incumbent is still
    evaluated, so the final optima match the exhaustive sweep exactly.
    """
    best_tp = interim["throughput"]
    best_en = interim["energy"]
    best_edp = interim["edp"]
    if best_tp is None or best_en is None or best_edp is None:
        return False
    return (
        analysis.throughput.hi < best_tp.throughput
        and analysis.energy_total.lo > best_en.energy
        and analysis.edp.lo > best_edp.edp
    )


def _update_leaders(best: dict, point: DesignPoint) -> None:
    if best["throughput"] is None or point.throughput > best["throughput"].throughput:
        best["throughput"] = point
    if best["energy"] is None or point.energy < best["energy"].energy:
        best["energy"] = point
    if best["edp"] is None or point.edp < best["edp"].edp:
        best["edp"] = point
