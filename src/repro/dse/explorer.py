"""The pruned design-space sweep (the paper's DSE tool, Section 5.2).

For every (PEs, bandwidth, dataflow-variant) triple the explorer:

1. prunes by lower-bound area/power *before* touching the cost model —
   if PEs + NoC alone exceed the budget, every buffer choice above them
   does too, so the whole subspace is skipped (the optimization behind
   the paper's 0.17M designs/second effective rate);
2. runs the analytical model with auto-sized buffers;
3. sizes L1/L2 exactly to the model's reported requirement and applies
   the area/power constraint to the resulting concrete design;
4. records the point and maintains throughput-, energy-, and
   EDP-optimized leaders plus the full valid set for Pareto analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dse.space import DesignPoint, DesignSpace
from repro.engines.analysis import analyze_layer
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator, NoC
from repro.hardware.area import DEFAULT_AREA_MODEL, AreaModel
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.lint.engine import required_pes, static_errors
from repro.model.layer import Layer
from repro.util.pareto import pareto_front


@dataclass(frozen=True)
class DSEStatistics:
    """Sweep statistics, the paper's Figure 13(c) table.

    ``pruned`` includes ``static_rejects``: mapping×hardware points the
    static mapping analyzer rejected without a cost-model run.
    ``cost_model_calls`` counts actual :func:`analyze_layer` invocations
    (including ones that raised), so the lint pruning win is measurable.
    """

    explored: int
    evaluated: int
    valid: int
    pruned: int
    elapsed_seconds: float
    static_rejects: int = 0
    cost_model_calls: int = 0

    @property
    def effective_rate(self) -> float:
        """Explored designs per second (pruned subspaces included)."""
        return self.explored / self.elapsed_seconds if self.elapsed_seconds else 0.0


@dataclass(frozen=True)
class DSEResult:
    """All valid designs plus the per-objective optima."""

    points: Tuple[DesignPoint, ...]
    statistics: DSEStatistics
    throughput_optimal: Optional[DesignPoint]
    energy_optimal: Optional[DesignPoint]
    edp_optimal: Optional[DesignPoint]

    def pareto(self) -> List[DesignPoint]:
        """Throughput/energy Pareto front of the valid designs."""
        return pareto_front(
            list(self.points),
            objectives=[lambda p: -p.throughput, lambda p: p.energy],
        )


def explore(
    layer: Layer,
    space: DesignSpace,
    area_budget: float,
    power_budget: float,
    area_model: AreaModel = DEFAULT_AREA_MODEL,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    noc_latency: int = 2,
    static_lint: bool = True,
) -> DSEResult:
    """Sweep ``space`` for ``layer`` under the given budgets.

    With ``static_lint`` (the default) every dataflow variant is checked
    once by the static mapping analyzer; points whose mapping cannot
    bind (wrong sizes, duplicated dims, cluster hierarchy larger than
    the PE array) are counted into ``pruned`` without paying a
    cost-model evaluation. The check is binding-equivalent, so the
    surviving set — and therefore every optimum — is identical to a
    sweep with ``static_lint=False``.
    """
    points: List[DesignPoint] = []
    explored = evaluated = pruned = 0
    static_rejects = cost_model_calls = 0
    start = time.perf_counter()

    best = {"throughput": None, "energy": None, "edp": None}

    # One static pass per variant: the layer-only lint verdict and the
    # PE demand of the cluster hierarchy (compared per PE count below).
    variant_lint: dict = {}
    if static_lint:
        for label, dataflow in space.dataflow_variants:
            try:
                needed = required_pes(dataflow, layer)
            except DataflowError:
                variant_lint[(label, dataflow.name)] = (True, 0)
                continue
            errors = static_errors(dataflow, layer)
            variant_lint[(label, dataflow.name)] = (bool(errors), needed)

    for num_pes in space.pe_counts:
        # Prune the whole PE row if even the cheapest NoC busts the budget.
        min_bw = min(space.noc_bandwidths)
        if (
            area_model.min_area(num_pes, min_bw) > area_budget
            or area_model.min_power(num_pes, min_bw) > power_budget
        ):
            pruned += len(space.noc_bandwidths) * len(space.dataflow_variants)
            explored += len(space.noc_bandwidths) * len(space.dataflow_variants)
            continue
        for bandwidth in space.noc_bandwidths:
            if (
                area_model.min_area(num_pes, bandwidth) > area_budget
                or area_model.min_power(num_pes, bandwidth) > power_budget
            ):
                pruned += len(space.dataflow_variants)
                explored += len(space.dataflow_variants)
                continue
            accelerator = Accelerator(
                num_pes=num_pes,
                noc=NoC(bandwidth=bandwidth, avg_latency=noc_latency),
            )
            for label, dataflow in space.dataflow_variants:
                explored += 1
                if static_lint:
                    bad, needed = variant_lint[(label, dataflow.name)]
                    if bad or needed > num_pes:
                        pruned += 1
                        static_rejects += 1
                        continue
                cost_model_calls += 1
                try:
                    report = analyze_layer(layer, dataflow, accelerator, energy_model)
                except (BindingError, DataflowError):
                    continue
                evaluated += 1
                l1 = max(report.l1_buffer_req, 1)
                l2 = max(report.l2_buffer_req, 1)
                sized = Accelerator(
                    num_pes=num_pes,
                    l1_size=l1,
                    l2_size=l2,
                    noc=NoC(bandwidth=bandwidth, avg_latency=noc_latency),
                )
                area = area_model.area(sized)
                power = area_model.power(sized)
                if area > area_budget or power > power_budget:
                    continue
                point = DesignPoint(
                    num_pes=num_pes,
                    noc_bandwidth=bandwidth,
                    dataflow_name=dataflow.name,
                    tile_label=label,
                    l1_size=l1,
                    l2_size=l2,
                    area=area,
                    power=power,
                    throughput=report.throughput,
                    runtime=report.runtime,
                    energy=report.energy_total,
                )
                points.append(point)
                _update_leaders(best, point)

    elapsed = time.perf_counter() - start
    statistics = DSEStatistics(
        explored=explored,
        evaluated=evaluated,
        valid=len(points),
        pruned=pruned,
        elapsed_seconds=elapsed,
        static_rejects=static_rejects,
        cost_model_calls=cost_model_calls,
    )
    return DSEResult(
        points=tuple(points),
        statistics=statistics,
        throughput_optimal=best["throughput"],
        energy_optimal=best["energy"],
        edp_optimal=best["edp"],
    )


def _update_leaders(best: dict, point: DesignPoint) -> None:
    if best["throughput"] is None or point.throughput > best["throughput"].throughput:
        best["throughput"] = point
    if best["energy"] is None or point.energy < best["energy"].energy:
        best["energy"] = point
    if best["edp"] is None or point.edp < best["edp"].edp:
        best["edp"] = point
