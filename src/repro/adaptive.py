"""Adaptive dataflow selection (Section 5.1, Figure 10(f)).

The paper observes that different DNN operators prefer different
dataflows and quantifies the benefit of picking the best dataflow per
layer (a flexible accelerator like MAERI/FlexFlow, or a heterogeneous
multi-sub-accelerator chip): about 37% runtime and 10% energy reduction
on average. :func:`adaptive_analysis` reproduces that experiment: it
evaluates every candidate dataflow on every layer and keeps the best
one per layer under the chosen metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.engines.analysis import LayerAnalysis, analyze_layer
from repro.errors import BindingError, DataflowError
from repro.hardware.accelerator import Accelerator
from repro.hardware.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.model.network import Network

#: Selection metrics: map a layer report to a score to minimize.
METRICS: Dict[str, Callable[[LayerAnalysis], float]] = {
    "runtime": lambda report: report.runtime,
    "energy": lambda report: report.energy_total,
    "edp": lambda report: report.edp,
}


@dataclass(frozen=True)
class AdaptiveChoice:
    """The winning dataflow for one layer."""

    layer_name: str
    dataflow_name: str
    report: LayerAnalysis


@dataclass(frozen=True)
class AdaptiveAnalysis:
    """Per-layer best-dataflow selection over a network."""

    network_name: str
    metric: str
    choices: Tuple[AdaptiveChoice, ...]

    @property
    def runtime(self) -> float:
        return sum(choice.report.runtime for choice in self.choices)

    @property
    def energy_total(self) -> float:
        return sum(choice.report.energy_total for choice in self.choices)

    def dataflow_histogram(self) -> Dict[str, int]:
        """How often each dataflow wins."""
        histogram: Dict[str, int] = {}
        for choice in self.choices:
            histogram[choice.dataflow_name] = (
                histogram.get(choice.dataflow_name, 0) + 1
            )
        return histogram


def adaptive_analysis(
    network: Network,
    dataflows: Mapping[str, Dataflow],
    accelerator: Accelerator,
    metric: str = "runtime",
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> AdaptiveAnalysis:
    """Pick the best dataflow per layer; see the module docstring."""
    try:
        score = METRICS[metric]
    except KeyError:
        raise KeyError(f"unknown metric {metric!r}; available: {sorted(METRICS)}")

    choices: List[AdaptiveChoice] = []
    for layer in network.layers:
        best: Optional[AdaptiveChoice] = None
        for name, dataflow in dataflows.items():
            try:
                report = analyze_layer(layer, dataflow, accelerator, energy_model)
            except (BindingError, DataflowError):
                continue
            if best is None or score(report) < score(best.report):
                best = AdaptiveChoice(
                    layer_name=layer.name, dataflow_name=name, report=report
                )
        if best is None:
            raise DataflowError(
                f"no candidate dataflow binds to layer {layer.name!r}"
            )
        choices.append(best)
    return AdaptiveAnalysis(
        network_name=network.name, metric=metric, choices=tuple(choices)
    )
