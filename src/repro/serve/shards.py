"""Sharded design-space sweeps with anytime Pareto-front updates.

The explorer's enumeration is PE-major and every grid point is folded
independently (phase 2 of :func:`repro.dse.explorer.explore` has no
cross-point state outside the leader fold, which is order-restored in
phase 3). Partitioning the PE axis into contiguous blocks therefore
yields embarrassingly parallel shards whose *concatenated* point lists
are exactly the whole-space sweep's point list — the invariant this
module's bit-identical merge (and the CI parity gate) rests on.

:func:`sharded_explore` runs one :func:`explore` per shard on a thread
pool (each shard's batch backend still auto-selects the vectorized
whole-grid engine for grid-shaped miss sets, or fans out worker
processes), invokes an ``on_update`` callback with the *anytime* Pareto
front every time a shard lands, and merges the shard results into a
single :class:`~repro.dse.explorer.DSEResult` whose points, Pareto
front, and per-objective optima are bit-identical to the in-process
sweep.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.dse.explorer import DSEResult, DSEStatistics, explore, _update_leaders
from repro.dse.space import DesignPoint, DesignSpace
from repro.exec import AnalysisCache
from repro.model.layer import Layer
from repro.util.pareto import pareto_front


class SweepCancelled(Exception):
    """Raised when a sharded sweep is cancelled between shards."""


@dataclass(frozen=True)
class ShardUpdate:
    """One anytime progress event: the front after a shard landed."""

    shards_done: int
    shards_total: int
    points_explored: int
    points_valid: int
    front: Tuple[DesignPoint, ...]


def shard_pe_counts(pe_counts: Sequence[int], shards: int) -> List[List[int]]:
    """Partition the PE axis into up to ``shards`` contiguous blocks."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    count = min(shards, len(pe_counts))
    base, extra = divmod(len(pe_counts), count)
    blocks: List[List[int]] = []
    cursor = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        blocks.append(list(pe_counts[cursor : cursor + size]))
        cursor += size
    return blocks


def shard_spaces(space: DesignSpace, shards: int) -> List[DesignSpace]:
    """Split ``space`` into PE-contiguous shard spaces.

    Every shard keeps the full bandwidth and mapping axes — the
    grid-partition invariant that makes shard results concatenate into
    the whole-space sweep.
    """
    return [
        replace(space, pe_counts=block)
        for block in shard_pe_counts(space.pe_counts, shards)
    ]


def _front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    return pareto_front(
        list(points), objectives=[lambda p: -p.throughput, lambda p: p.energy]
    )


def merge_shard_results(
    results: Sequence[DSEResult], elapsed_seconds: float
) -> DSEResult:
    """Fold per-shard results (in shard order) into one :class:`DSEResult`.

    Points are concatenated in shard order — the whole-space enumeration
    order — and the per-objective leaders are re-folded over that
    sequence, so first-achiever tie-breaking (and therefore every
    optimum) matches the unsharded sweep exactly.
    """
    if not results:
        raise ValueError("no shard results to merge")
    points: List[DesignPoint] = []
    for result in results:
        points.extend(result.points)
    best: Dict[str, Optional[DesignPoint]] = {
        "throughput": None,
        "energy": None,
        "edp": None,
    }
    for point in points:
        _update_leaders(best, point)
    totals = dict(
        explored=0,
        evaluated=0,
        valid=0,
        pruned=0,
        static_rejects=0,
        coverage_rejects=0,
        cost_model_calls=0,
        cache_hits=0,
        symbolic_rejects=0,
        bnb_pruned=0,
        comm_rejects=0,
        equiv_replays=0,
    )
    eval_wall = 0.0
    executors = []
    for result in results:
        stats = result.statistics
        for name in totals:
            totals[name] += getattr(stats, name)
        eval_wall += stats.eval_wall_seconds
        executors.append(stats.executor)
    executor = executors[0] if len(set(executors)) == 1 else "mixed"
    statistics = DSEStatistics(
        elapsed_seconds=elapsed_seconds,
        executor=f"sharded[{len(results)}]/{executor}" if len(results) > 1 else executor,
        eval_wall_seconds=eval_wall,
        **totals,
    )
    return DSEResult(
        points=tuple(points),
        statistics=statistics,
        throughput_optimal=best["throughput"],
        energy_optimal=best["energy"],
        edp_optimal=best["edp"],
    )


def sharded_explore(
    layer: Layer,
    space: DesignSpace,
    *,
    shards: int = 1,
    cache: Union[bool, AnalysisCache, None] = True,
    pool: Optional[ThreadPoolExecutor] = None,
    on_update: Optional[Callable[[ShardUpdate], None]] = None,
    cancel: Optional[threading.Event] = None,
    **explore_kwargs: object,
) -> DSEResult:
    """Sweep ``space`` in PE-contiguous shards; bit-identical merge.

    ``on_update`` fires after every shard completes, carrying the
    Pareto front of every point seen so far (the *anytime* front — it
    only ever grows toward the final front). ``cancel`` is checked
    before each shard starts and between completions; a set event
    raises :class:`SweepCancelled` without waiting for remaining
    shards. Shard sweeps share ``cache``, so concurrent shards never
    recompute each other's overlapping canonical points.

    Blocking call — run it on a worker thread from async contexts.
    """
    start = time.perf_counter()
    spaces = shard_spaces(space, shards)
    results: List[Optional[DSEResult]] = [None] * len(spaces)

    def run_shard(index: int) -> Tuple[int, DSEResult]:
        if cancel is not None and cancel.is_set():
            raise SweepCancelled(f"cancelled before shard {index}")
        with obs.span("serve.shard", shard=index, points=spaces[index].size):
            result = explore(layer, spaces[index], cache=cache, **explore_kwargs)
        return index, result

    if len(spaces) == 1:
        index, result = run_shard(0)
        results[0] = result
        merged = merge_shard_results([result], time.perf_counter() - start)
        if on_update is not None:
            on_update(
                ShardUpdate(
                    shards_done=1,
                    shards_total=1,
                    points_explored=merged.statistics.explored,
                    points_valid=merged.statistics.valid,
                    front=tuple(merged.pareto()),
                )
            )
        return merged

    owned_pool = pool is None
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=len(spaces), thread_name_prefix="repro-shard"
        )
    try:
        futures = {pool.submit(run_shard, index) for index in range(len(spaces))}
        done_count = 0
        explored = valid = 0
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                index, result = future.result()  # propagates SweepCancelled
                results[index] = result
                done_count += 1
                explored += result.statistics.explored
                valid += result.statistics.valid
                if on_update is not None:
                    # Fold the anytime front over completed shards in
                    # shard-index order (not completion order) so the
                    # event stream is deterministic and the final update
                    # equals the merged result's front exactly.
                    seen: List[DesignPoint] = []
                    for partial in results:
                        if partial is not None:
                            seen.extend(partial.points)
                    on_update(
                        ShardUpdate(
                            shards_done=done_count,
                            shards_total=len(spaces),
                            points_explored=explored,
                            points_valid=valid,
                            front=tuple(_front(seen)),
                        )
                    )
            if cancel is not None and cancel.is_set():
                for future in futures:
                    future.cancel()
                raise SweepCancelled(
                    f"cancelled after {done_count}/{len(spaces)} shards"
                )
    finally:
        if owned_pool:
            pool.shutdown(wait=False, cancel_futures=True)

    final = [result for result in results if result is not None]
    assert len(final) == len(spaces), "every shard must produce a result"
    return merge_shard_results(final, time.perf_counter() - start)
