"""The asyncio analysis server: DSE-as-a-service.

One process, one event loop, stdlib only. The event loop owns admission
control, validation, single-flight deduplication, and streaming; the
actual analytical work (cost model, sweeps, tuning) runs on a bounded
thread pool via :func:`asyncio.to_thread`, where each job's batch
backend (:mod:`repro.exec`) still auto-selects the vectorized
whole-grid engine or fans out worker processes exactly as the CLI does.

Endpoints (see ``docs/serving.md`` for schemas and curl examples):

- ``GET  /healthz`` — liveness + drain state;
- ``GET  /metrics`` — Prometheus text exposition of the whole
  :mod:`repro.obs` registry (request latencies, queue depth, cache
  counters, sweep counters);
- ``GET  /v1/jobs`` — the in-memory job table;
- ``POST /v1/analyze | /v1/lint | /v1/verify | /v1/tune`` — one JSON
  document in, one JSON document out;
- ``POST /v1/dse`` — a design-space sweep, sharded over the PE axis;
  with ``"stream": true`` the response is NDJSON carrying *anytime*
  Pareto-front updates as shards land, ending in the final front (bit
  identical to the in-process explorer);
- ``POST /admin/shutdown`` — graceful drain (only when enabled).

Sharing model: all jobs evaluate through one process-wide
:class:`~repro.exec.AnalysisCache` (the content-addressed outcome cache
promoted to a cross-request tier — keys already carry the canonical
mapping form and the model-version salt, so results are safely
shareable across tenants), and identical in-flight jobs are
single-flighted: followers subscribe to the leader's job record instead
of re-running the sweep.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.exec import AnalysisCache, resolve_cache
from repro.serve import protocol
from repro.serve.http import (
    DEFAULT_MAX_BODY,
    HttpError,
    NDJSONStream,
    Request,
    read_request,
    send_error,
    send_json,
    send_text,
)
from repro.serve.shards import ShardUpdate, SweepCancelled, sharded_explore

#: Latency histogram buckets: 1ms .. 30s (request-scale, not engine-scale).
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


@dataclass
class ServeConfig:
    """Deployment knobs for one :class:`AnalysisServer`."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: Jobs allowed to run concurrently (thread-pool slots).
    max_concurrency: int = 4
    #: Jobs allowed to wait for a slot before admission returns 503.
    queue_limit: int = 32
    #: Per-job wall-clock timeout (seconds); jobs over it return 504.
    job_timeout: float = 300.0
    #: Seconds to wait for in-flight jobs on graceful shutdown.
    drain_timeout: float = 15.0
    #: Request-body cap in bytes.
    max_body: int = DEFAULT_MAX_BODY
    #: Default shard count for DSE jobs that do not pin one.
    default_shards: int = 4
    #: The shared outcome cache: ``True`` = process default tier.
    cache: Union[bool, AnalysisCache, None] = True
    #: Allow ``POST /admin/shutdown`` (used by the CI smoke lane).
    allow_shutdown: bool = False


@dataclass
class JobRecord:
    """One submitted job: state, event history, and subscribers."""

    id: str
    kind: str
    key: str
    state: str = "queued"  # queued | running | done | failed | cancelled
    created: float = field(default_factory=time.time)
    wall_seconds: float = 0.0
    followers: int = 0
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: List["asyncio.Queue[Dict[str, Any]]"] = field(default_factory=list)
    cancel: threading.Event = field(default_factory=threading.Event)

    def publish(self, event: Dict[str, Any]) -> None:
        """Append to history and fan out to live subscribers (loop thread)."""
        self.events.append(event)
        for queue in list(self.subscribers):
            queue.put_nowait(event)

    def subscribe(self) -> "asyncio.Queue[Dict[str, Any]]":
        """A queue pre-loaded with history; future events follow."""
        queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        self.subscribers.append(queue)
        return queue

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "key": self.key[:16],
            "state": self.state,
            "created": self.created,
            "wall_seconds": round(self.wall_seconds, 6),
            "followers": self.followers,
            "error": self.error,
            "events": len(self.events),
        }


_TERMINAL = ("result", "error")


class AnalysisServer:
    """The DSE-as-a-service HTTP server (one per process)."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.cache: Optional[AnalysisCache] = resolve_cache(self.config.cache)
        self.port: Optional[int] = None  # actual port once bound
        self.started = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots = asyncio.Semaphore(max(1, self.config.max_concurrency))
        self._queued = 0
        self._active_jobs = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._connections: set = set()
        self._inflight: Dict[str, JobRecord] = {}
        self._jobs: "Dict[str, JobRecord]" = {}
        self._job_ids = itertools.count(1)
        self._routes: Dict[
            Tuple[str, str], Callable[[Request], Awaitable[Dict[str, Any]]]
        ] = {
            ("GET", "/healthz"): self._h_healthz,
            ("GET", "/v1/jobs"): self._h_jobs,
            ("POST", "/v1/analyze"): self._h_analyze,
            ("POST", "/v1/lint"): self._h_lint,
            ("POST", "/v1/verify"): self._h_verify,
            ("POST", "/v1/tune"): self._h_tune,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (port 0 picks an ephemeral port)."""
        obs.configure(enabled=True)
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=max(MAX_HEADER_LIMIT, self.config.max_body + 1024),
        )
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else self.config.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight jobs, then release the loop.

        With ``drain`` the server waits up to ``drain_timeout`` seconds
        for running jobs; whatever remains is cancelled (shard sweeps
        observe their cancel event between shards).
        """
        if self._draining:
            return
        self._draining = True
        obs.inc("serve.shutdowns")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + (self.config.drain_timeout if drain else 0.0)
        while self._active_jobs and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for record in self._inflight.values():
            record.cancel.set()
        # Give cancelled jobs a moment to unwind before dropping the loop.
        deadline = time.monotonic() + 1.0
        while self._active_jobs and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for connection in list(self._connections):
            connection.cancel()
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        start = time.perf_counter()
        route_name = "unmatched"
        status = 500
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader, self.config.max_body), timeout=30.0
                )
            except asyncio.TimeoutError:
                raise HttpError(408, "timed out reading request")
            if request is None:
                return
            route_name, status = await self._dispatch(request, writer)
        except HttpError as error:
            status = error.status
            try:
                await send_error(writer, error)
            except (ConnectionError, OSError):
                pass
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            status = 0  # client went away mid-response
        except Exception as error:  # never let one request kill the server
            status = 500
            try:
                await send_error(writer, HttpError(500, f"internal error: {error}"))
            except (ConnectionError, OSError):
                pass
        finally:
            if task is not None:
                self._connections.discard(task)
            elapsed = time.perf_counter() - start
            obs.inc(f"serve.requests.{route_name}")
            obs.inc(f"serve.responses.{status}")
            obs.observe(
                f"serve.latency.{route_name}", elapsed, buckets=LATENCY_BUCKETS
            )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Tuple[str, int]:
        """Route one request; returns (route-name, status) for metrics."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/metrics" and method == "GET":
            await send_text(
                writer, 200, self._metrics_text(), "text/plain; version=0.0.4"
            )
            return "metrics", 200
        if path == "/admin/shutdown" and method == "POST":
            if not self.config.allow_shutdown:
                raise HttpError(404, "shutdown endpoint is disabled")
            assert self._loop is not None
            self._loop.create_task(self.shutdown())
            await send_json(writer, 202, {"status": "draining"})
            return "shutdown", 202
        if path == "/v1/dse" and method == "POST":
            status = await self._h_dse(request, writer)
            return "dse", status

        handler = self._routes.get((method, path))
        if handler is None:
            known = {p for _, p in self._routes} | {"/metrics", "/v1/dse"}
            if path in known:
                raise HttpError(405, f"{method} not allowed on {path}")
            raise HttpError(404, f"no route for {path}")
        if self._draining and path not in ("/healthz",):
            raise HttpError(503, "server is draining")
        payload = await handler(request)
        await send_json(writer, 200, payload)
        return path.rsplit("/", 1)[-1], 200

    # ------------------------------------------------------------------
    # Admission + single-flight job machinery
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        if self._draining:
            raise HttpError(503, "server is draining")
        if self._queued >= self.config.queue_limit:
            obs.inc("serve.rejected_busy")
            raise HttpError(
                503,
                f"queue full ({self.config.queue_limit} jobs waiting); retry later",
            )

    async def _run_job(
        self,
        kind: str,
        doc: Any,
        work: Callable[[JobRecord, Dict[str, Any]], Dict[str, Any]],
    ) -> JobRecord:
        """Admit, single-flight, and execute one job to completion.

        Returns the job record once its terminal event is published.
        ``work`` runs on a worker thread with the record (for its cancel
        event) and the normalized document, and must return the terminal
        ``result`` payload.
        """
        normalized = protocol.validate(kind, doc)
        key = protocol.job_key(kind, normalized)
        leader = self._inflight.get(key)
        if leader is not None:
            # Single-flight: identical in-flight work is joined, not
            # re-run. Wait on the leader's terminal event.
            leader.followers += 1
            obs.inc("serve.singleflight_hits")
            queue = leader.subscribe()
            while True:
                event = await queue.get()
                if event.get("event") in _TERMINAL:
                    return leader
        record = JobRecord(id=f"job-{next(self._job_ids)}", kind=kind, key=key)
        record.publish(
            {"event": "accepted", "job_id": record.id, "kind": kind, "key": key[:16]}
        )
        self._jobs[record.id] = record
        if len(self._jobs) > 256:  # bounded job table: drop the oldest
            self._jobs.pop(next(iter(self._jobs)))
        self._inflight[key] = record
        self._queued += 1
        obs.set_gauge("serve.queue_depth", self._queued)
        started = time.perf_counter()
        dequeued = False
        try:
            async with self._slots:
                self._queued -= 1
                dequeued = True
                obs.set_gauge("serve.queue_depth", self._queued)
                self._active_jobs += 1
                obs.set_gauge("serve.jobs_active", self._active_jobs)
                record.state = "running"
                try:
                    result = await asyncio.wait_for(
                        asyncio.to_thread(work, record, normalized),
                        timeout=self.config.job_timeout,
                    )
                except asyncio.TimeoutError:
                    record.cancel.set()
                    record.state = "cancelled"
                    record.error = f"timed out after {self.config.job_timeout:.0f}s"
                    record.publish(
                        {"event": "error", "status": 504, "error": record.error}
                    )
                    return record
                except SweepCancelled as error:
                    record.state = "cancelled"
                    record.error = str(error)
                    record.publish(
                        {"event": "error", "status": 503, "error": record.error}
                    )
                    return record
                except HttpError as error:
                    record.state = "failed"
                    record.error = error.message
                    record.publish(
                        {
                            "event": "error",
                            "status": error.status,
                            "error": error.message,
                            "details": error.details,
                        }
                    )
                    return record
                except Exception as error:
                    record.state = "failed"
                    record.error = f"{type(error).__name__}: {error}"
                    record.publish(
                        {"event": "error", "status": 500, "error": record.error}
                    )
                    return record
                record.state = "done"
                record.publish({"event": "result", **result})
                return record
        finally:
            record.wall_seconds = time.perf_counter() - started
            if not dequeued:
                # Cancelled while still waiting for a slot.
                self._queued -= 1
                obs.set_gauge("serve.queue_depth", self._queued)
            if record.state != "queued":
                self._active_jobs -= 1
            obs.set_gauge("serve.jobs_active", self._active_jobs)
            self._inflight.pop(key, None)
            if not record.events or record.events[-1].get("event") not in _TERMINAL:
                # Aborted without a terminal event (e.g. the leader's
                # connection task was cancelled mid-job): publish one so
                # single-flight followers are released, not stranded.
                record.cancel.set()
                record.state = "cancelled"
                record.error = record.error or "job aborted"
                record.publish({"event": "error", "status": 500, "error": record.error})
            obs.observe(
                f"serve.job_seconds.{kind}", record.wall_seconds, buckets=LATENCY_BUCKETS
            )

    @staticmethod
    def _terminal(record: JobRecord) -> Dict[str, Any]:
        """The job's terminal event, raised as an error when it failed."""
        event = record.events[-1]
        if event.get("event") == "error":
            raise HttpError(
                int(event.get("status", 500)),
                str(event.get("error")),
                details=event.get("details"),
            )
        return event

    # ------------------------------------------------------------------
    # Simple (one-shot JSON) job endpoints
    # ------------------------------------------------------------------
    async def _h_analyze(self, request: Request) -> Dict[str, Any]:
        self._admit()
        record = await self._run_job("analyze", request.json(), self._work_analyze)
        return self._terminal(record)

    def _work_analyze(self, record: JobRecord, norm: Dict[str, Any]) -> Dict[str, Any]:
        from repro.exec import BatchEvaluator, EvalPoint
        from repro.exec.serialize import analysis_to_dict

        flow = self._flow_of(norm)
        accelerator = protocol.build_accelerator(norm["accelerator"])
        layers = protocol.resolve_layers(norm["model"], norm["layer"])
        evaluator = BatchEvaluator(executor="auto", cache=self.cache)
        batch = evaluator.evaluate(
            EvalPoint(layer=layer, dataflow=flow, accelerator=accelerator)
            for layer in layers
        )
        reports = []
        for layer, outcome in zip(layers, batch):
            if outcome.ok:
                reports.append(
                    {
                        "layer": layer.name,
                        "ok": True,
                        "cached": outcome.cached,
                        "report": analysis_to_dict(outcome.report),
                    }
                )
            else:
                reports.append(
                    {
                        "layer": layer.name,
                        "ok": False,
                        "cached": outcome.cached,
                        "error_type": outcome.error_type,
                        "error": outcome.error_message,
                    }
                )
        stats = batch.stats
        return {
            "job_id": record.id,
            "model": norm["model"],
            "dataflow": flow.name,
            "layers": reports,
            "stats": {
                "submitted": stats.submitted,
                "cache_hits": stats.cache_hits,
                "evaluated": stats.evaluated,
                "singleflight_hits": stats.singleflight_hits,
                "executor": stats.executor,
            },
        }

    async def _h_lint(self, request: Request) -> Dict[str, Any]:
        self._admit()
        record = await self._run_job("lint", request.json(), self._work_lint)
        return self._terminal(record)

    def _work_lint(self, record: JobRecord, norm: Dict[str, Any]) -> Dict[str, Any]:
        from repro.lint import lint_dataflow

        flow = self._flow_of(norm)
        layer = None
        if norm["model"] is not None:
            layer = protocol.resolve_layers(norm["model"], norm["layer"])[0]
        accelerator = protocol.build_accelerator(norm["accelerator"])
        report = lint_dataflow(flow, layer, accelerator)
        return {
            "job_id": record.id,
            "dataflow": flow.name,
            "ok": not report.has_errors,
            "report": report.to_dict(),
        }

    async def _h_verify(self, request: Request) -> Dict[str, Any]:
        self._admit()
        record = await self._run_job("verify", request.json(), self._work_verify)
        return self._terminal(record)

    def _work_verify(self, record: JobRecord, norm: Dict[str, Any]) -> Dict[str, Any]:
        from repro.model.layer import conv2d
        from repro.verify import DEFAULT_BUDGET, verify_dataflow

        flow = self._flow_of(norm)
        if norm["model"] is not None:
            layers = protocol.resolve_layers(norm["model"], norm["layer"])
        else:
            layers = [conv2d("verify-default", k=8, c=8, y=18, x=18, r=3, s=3)]
        budget = norm["budget"] if norm["budget"] is not None else DEFAULT_BUDGET
        results = [verify_dataflow(flow, layer, budget=budget) for layer in layers]
        return {
            "job_id": record.id,
            "dataflow": flow.name,
            "all_proven": all(result.proven for result in results),
            "results": [result.to_dict() for result in results],
        }

    async def _h_tune(self, request: Request) -> Dict[str, Any]:
        self._admit()
        record = await self._run_job("tune", request.json(), self._work_tune)
        return self._terminal(record)

    def _work_tune(self, record: JobRecord, norm: Dict[str, Any]) -> Dict[str, Any]:
        from repro.tuner import tune_layer

        layer = protocol.resolve_layers(norm["model"], norm["layer"])[0]
        accelerator = protocol.build_accelerator(norm["accelerator"])
        result = tune_layer(
            layer,
            accelerator,
            objective=norm["objective"],
            strategy=norm["strategy"],
            budget=norm["budget"],
            top_k=norm["top_k"],
            max_l1_bytes=norm["max_l1"],
            max_l2_bytes=norm["max_l2"],
            executor=norm["executor"],
            jobs=norm["jobs"],
            cache=self.cache,
        )
        return {
            "job_id": record.id,
            "layer": result.layer_name,
            "objective": result.objective,
            "evaluated": result.evaluated,
            "rejected": result.rejected,
            "cache_hits": result.cache_hits,
            "top": [
                {
                    "name": candidate.spec.name,
                    "runtime": candidate.report.runtime,
                    "energy": candidate.report.energy_total,
                    "score": candidate.score,
                }
                for candidate in result.top
            ],
        }

    # ------------------------------------------------------------------
    # DSE: sharded sweep with streaming anytime fronts
    # ------------------------------------------------------------------
    async def _h_dse(self, request: Request, writer: asyncio.StreamWriter) -> int:
        self._admit()
        doc = request.json()
        norm = protocol.validate("dse", doc)
        stream = norm["stream"]
        if not stream:
            record = await self._run_job("dse", doc, self._work_dse)
            await send_json(writer, 200, self._terminal(record))
            return 200

        # Streaming: subscribe before the job runs so every anytime
        # front update is observed; single-flight followers replay the
        # leader's history and then follow along live.
        key = protocol.job_key("dse", norm)
        leader = self._inflight.get(key)
        ndjson = NDJSONStream(writer)
        if leader is not None:
            leader.followers += 1
            obs.inc("serve.singleflight_hits")
            queue = leader.subscribe()
        else:
            queue = None

        if queue is not None:
            status = 200
            while True:
                event = await queue.get()
                await ndjson.emit(event)
                if event.get("event") in _TERMINAL:
                    if event.get("event") == "error":
                        status = int(event.get("status", 500))
                    return status

        # Leader path: run the job while streaming its events.
        job = asyncio.ensure_future(self._run_job("dse", doc, self._work_dse))
        # The record is created inside _run_job; wait for it to appear.
        while key not in self._inflight and not job.done():
            await asyncio.sleep(0)
        record = self._inflight.get(key)
        if record is None:
            # Validation re-raised before the record existed.
            await job  # propagate the HttpError
            return 500
        queue = record.subscribe()
        status = 200
        try:
            while True:
                event = await queue.get()
                await ndjson.emit(event)
                if event.get("event") in _TERMINAL:
                    if event.get("event") == "error":
                        status = int(event.get("status", 500))
                    break
        except (ConnectionError, OSError):
            # Client went away: cancel the sweep unless followers remain.
            if record.followers == 0:
                record.cancel.set()
            raise
        await job
        return status

    def _work_dse(self, record: JobRecord, norm: Dict[str, Any]) -> Dict[str, Any]:
        layer, space, kwargs = protocol.dse_inputs(norm)
        shards = norm["shards"] or min(
            self.config.default_shards, max(1, len(space.pe_counts))
        )
        loop = self._loop
        assert loop is not None

        def on_update(update: ShardUpdate) -> None:
            event = {
                "event": "front",
                "shards_done": update.shards_done,
                "shards_total": update.shards_total,
                "points_explored": update.points_explored,
                "points_valid": update.points_valid,
                "front": [protocol.design_point_dict(p) for p in update.front],
            }
            loop.call_soon_threadsafe(record.publish, event)

        result = sharded_explore(
            layer,
            space,
            shards=shards,
            cache=self.cache,
            on_update=on_update,
            cancel=record.cancel,
            **kwargs,
        )
        front = result.pareto()
        optima = {
            "throughput": result.throughput_optimal,
            "energy": result.energy_optimal,
            "edp": result.edp_optimal,
        }
        return {
            "job_id": record.id,
            "model": norm["model"],
            "layer": norm["layer"],
            "dataflow": norm["dataflow"],
            "shards": shards,
            "front": [protocol.design_point_dict(p) for p in front],
            "optima": {
                name: (protocol.design_point_dict(p) if p is not None else None)
                for name, p in optima.items()
            },
            "statistics": protocol.statistics_dict(result.statistics),
        }

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    async def _h_healthz(self, request: Request) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
            "jobs_active": self._active_jobs,
            "jobs_queued": self._queued,
            "cache_entries": len(self.cache) if self.cache is not None else 0,
        }

    async def _h_jobs(self, request: Request) -> Dict[str, Any]:
        return {"jobs": [record.summary() for record in self._jobs.values()]}

    def _metrics_text(self) -> str:
        from repro.obs.exporters import to_prometheus

        if self.cache is not None:
            obs.set_gauge("serve.cache.entries", len(self.cache))
            obs.set_gauge("serve.cache.hits", self.cache.hits)
            obs.set_gauge("serve.cache.misses", self.cache.misses)
            obs.set_gauge("serve.cache.disk_hits", self.cache.disk_hits)
        obs.set_gauge("serve.uptime_seconds", time.time() - self.started)
        return to_prometheus(obs.metrics_snapshot())

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _flow_of(norm: Dict[str, Any]) -> Any:
        doc = {
            key: norm[key]
            for key in ("dataflow", "dataflow_text")
            if norm.get(key) is not None
        }
        flow, _ = protocol.resolve_dataflow(doc)
        return flow


#: Stream-reader limit floor; must exceed the largest request head.
MAX_HEADER_LIMIT = 256 * 1024


async def serve_main(config: ServeConfig) -> None:
    """Run a server until SIGINT/SIGTERM (the CLI entry point)."""
    import signal

    server = AnalysisServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum, lambda: loop.create_task(server.shutdown())
            )
        except NotImplementedError:  # non-POSIX event loops
            pass
    print(f"repro serve: listening on http://{config.host}:{server.port}")
    await server.serve_forever()
    print("repro serve: drained, bye")


class ThreadedServer:
    """Run an :class:`AnalysisServer` on a background thread.

    The harness tests and the load benchmark use this to stand a real
    server up inside one process::

        with ThreadedServer(ServeConfig(port=0)) as server:
            client = ServeClient(port=server.port)
            ...
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig(port=0)
        self.server: Optional[AnalysisServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def _main(self) -> None:
        async def run() -> None:
            self.server = AnalysisServer(self.config)
            try:
                await self.server.start()
            finally:
                self._ready.set()
            await self.server.serve_forever()

        try:
            asyncio.run(run())
        except BaseException as error:  # surfaced by __enter__/stop
            self._error = error
            self._ready.set()

    def __enter__(self) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        if self.server is None or self.server.port is None:
            raise RuntimeError("server failed to bind within 30s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        server = self.server
        if (
            server is not None
            and server._loop is not None
            and not server._loop.is_closed()
        ):
            coroutine = server.shutdown()
            try:
                asyncio.run_coroutine_threadsafe(
                    coroutine, server._loop
                ).result(timeout=timeout)
            except Exception:
                # The loop may have exited between the check and the
                # submission (e.g. an /admin/shutdown raced us); close
                # the orphaned coroutine instead of leaking a warning.
                coroutine.close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
