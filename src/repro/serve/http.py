"""Minimal HTTP/1.1 layer over asyncio streams.

Just enough HTTP for the analysis server (:mod:`repro.serve.app`) — no
framework, no dependencies:

- :func:`read_request` parses one request (request line, headers,
  ``Content-Length``-delimited body) off a :class:`asyncio.StreamReader`
  with hard caps on header and body size;
- :func:`send_json` / :func:`send_text` write complete
  ``Connection: close`` responses;
- :class:`NDJSONStream` writes a streaming ``application/x-ndjson``
  response: headers first, then one JSON document per line as events
  arrive, delimited by connection close (the one framing every HTTP
  client understands — no chunked-decoding requirement on consumers).

Every response closes the connection: the server's workloads are
long-lived jobs, not chatty small requests, so keep-alive buys nothing
and connection-per-request keeps drain semantics trivial.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional
from urllib.parse import parse_qsl, urlsplit

#: Hard cap on the request head (request line + headers).
MAX_HEADER_BYTES = 64 * 1024

#: Default cap on request bodies; the server config can lower it.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """An error that maps directly onto an HTTP error response."""

    def __init__(self, status: int, message: str, details: Optional[Any] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    peer: str = ""
    _json: Any = field(default=None, repr=False)

    def json(self) -> Any:
        """The body parsed as JSON (400 on empty or malformed bodies)."""
        if self._json is None:
            if not self.body:
                raise HttpError(400, "request body must be a JSON object")
            try:
                self._json = json.loads(self.body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise HttpError(400, f"malformed JSON body: {error}")
        return self._json


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed heads, oversized headers or
    bodies, and unsupported transfer encodings.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close before any bytes: not an error
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")

    return Request(
        method=method,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, length: Optional[int]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_text(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
) -> None:
    """Write one complete text response and flush it."""
    body = text.encode("utf-8")
    writer.write(_head(status, content_type, len(body)) + body)
    await writer.drain()


async def send_json(
    writer: asyncio.StreamWriter, status: int, payload: Mapping[str, Any]
) -> None:
    """Write one complete JSON response and flush it."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    writer.write(_head(status, "application/json", len(body)) + body)
    await writer.drain()


async def send_error(writer: asyncio.StreamWriter, error: HttpError) -> None:
    """Write an :class:`HttpError` as a JSON error document."""
    payload: Dict[str, Any] = {"error": error.message, "status": error.status}
    if error.details is not None:
        payload["details"] = error.details
    await send_json(writer, error.status, payload)


class NDJSONStream:
    """A streaming newline-delimited-JSON response.

    ``start()`` writes the response head; every ``emit(obj)`` appends one
    JSON line and flushes, so clients observe events as they happen. The
    body is delimited by connection close (no Content-Length).
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self.started = False

    async def start(self, status: int = 200) -> None:
        if not self.started:
            self._writer.write(_head(status, "application/x-ndjson", None))
            await self._writer.drain()
            self.started = True

    async def emit(self, event: Mapping[str, Any]) -> None:
        await self.start()
        self._writer.write(json.dumps(event, sort_keys=True).encode("utf-8") + b"\n")
        await self._writer.drain()
