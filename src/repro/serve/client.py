"""A thin stdlib-socket client for the analysis server.

No ``requests``, no ``http.client`` connection pooling — just one
socket per call, mirroring the server's connection-per-request model.
The client exists so tests, benchmarks, and notebook users can hit a
server without hand-writing HTTP::

    client = ServeClient(port=8787)
    client.healthz()
    result = client.analyze(model="conf_micro", layer="CONV1", dataflow="NVDLA-like")
    for event in client.dse_stream(model="conf_micro", layer="CONV1", shards=4):
        print(event["event"], len(event.get("front", [])))

Errors come back as :class:`ServeError` carrying the HTTP status and
the server's structured ``details`` (e.g. lint diagnostics on 422).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Optional, Tuple


class ServeError(Exception):
    """An HTTP error response from the analysis server."""

    def __init__(self, status: int, message: str, details: Optional[Any] = None):
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message
        self.details = details


def _parse_head(raw: bytes) -> Tuple[int, Dict[str, str]]:
    lines = raw.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ServeError(0, f"malformed response head: {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return status, headers


class _Response:
    """One in-flight HTTP response over a raw socket."""

    def __init__(self, sock: socket.socket):
        self._file = sock.makefile("rb")
        self._sock = sock
        head = b""
        while not head.endswith(b"\r\n\r\n"):
            chunk = self._file.readline()
            if not chunk:
                raise ServeError(0, "connection closed before response head")
            head += chunk
        self.status, self.headers = _parse_head(head[:-4])

    def body(self) -> bytes:
        length = self.headers.get("content-length")
        if length is not None:
            return self._file.read(int(length))
        return self._file.read()  # close-delimited

    def lines(self) -> Iterator[bytes]:
        """Yield NDJSON lines until the server closes the connection."""
        while True:
            line = self._file.readline()
            if not line:
                return
            line = line.strip()
            if line:
                yield line

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


class ServeClient:
    """Talk to one :class:`~repro.serve.app.AnalysisServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 300.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, payload: Optional[Any]) -> _Response:
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Connection: close\r\n"
        )
        if body:
            head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        try:
            sock.sendall(head.encode("latin-1") + b"\r\n" + body)
            return _Response(sock)
        except BaseException:
            sock.close()
            raise

    @staticmethod
    def _raise_for(status: int, doc: Any) -> None:
        if status >= 400:
            if isinstance(doc, dict):
                raise ServeError(
                    status, str(doc.get("error", "error")), doc.get("details")
                )
            raise ServeError(status, str(doc))

    def _json(self, method: str, path: str, payload: Optional[Any] = None) -> Any:
        response = self._open(method, path, payload)
        try:
            raw = response.body()
        finally:
            response.close()
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            raise ServeError(response.status, f"non-JSON response: {raw[:200]!r}")
        self._raise_for(response.status, doc)
        return doc

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus exposition text from ``/metrics``."""
        response = self._open("GET", "/metrics", None)
        try:
            raw = response.body()
        finally:
            response.close()
        if response.status >= 400:
            raise ServeError(response.status, raw.decode("utf-8", "replace")[:200])
        return raw.decode("utf-8")

    def jobs(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/jobs")

    def analyze(self, **job: Any) -> Dict[str, Any]:
        return self._json("POST", "/v1/analyze", job)

    def lint(self, **job: Any) -> Dict[str, Any]:
        return self._json("POST", "/v1/lint", job)

    def verify(self, **job: Any) -> Dict[str, Any]:
        return self._json("POST", "/v1/verify", job)

    def tune(self, **job: Any) -> Dict[str, Any]:
        return self._json("POST", "/v1/tune", job)

    def dse(self, **job: Any) -> Dict[str, Any]:
        """Run a DSE sweep; blocks until the final front arrives."""
        job.pop("stream", None)
        return self._json("POST", "/v1/dse", job)

    def dse_stream(self, **job: Any) -> Iterator[Dict[str, Any]]:
        """Run a streamed DSE sweep, yielding NDJSON events as they land.

        Events: ``accepted`` → ``front`` (anytime updates, one or more)
        → ``result`` (the final front) or ``error``. An ``error`` event
        raises :class:`ServeError` after being observed.
        """
        job["stream"] = True
        response = self._open("POST", "/v1/dse", job)
        try:
            if response.headers.get("content-type", "").startswith("application/json"):
                # Rejected before streaming began (4xx/5xx as plain JSON).
                doc = json.loads(response.body().decode("utf-8"))
                self._raise_for(response.status, doc)
                yield doc
                return
            for line in response.lines():
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("event") == "error":
                    raise ServeError(
                        int(event.get("status", 500)),
                        str(event.get("error")),
                        event.get("details"),
                    )
                if event.get("event") == "result":
                    return
        finally:
            response.close()

    def shutdown(self) -> Dict[str, Any]:
        """Gracefully drain the server (requires ``allow_shutdown``)."""
        return self._json("POST", "/admin/shutdown", {})
