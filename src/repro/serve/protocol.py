"""Request schemas for the analysis server: validate, lint, normalize.

Every job kind the server accepts (``analyze`` / ``lint`` / ``verify``
/ ``dse`` / ``tune``) has a validator here that:

1. rejects unknown fields and mistyped/out-of-range values with a 400
   carrying the offending field name (typo safety for a JSON API);
2. fills defaults, producing a *normalized* document — the canonical
   form hashed into the job key for single-flight deduplication and
   result sharing;
3. resolves and **lints the mapping up front** where one is named:
   a request whose mapping cannot bind is rejected with a 422 carrying
   the rustc-style diagnostics, before it ever occupies a worker slot.

The job key is a SHA-256 over the normalized document plus the
cost-model version salt (:func:`repro.exec.cache.model_version_salt`),
so two tenants submitting the same work share one in-flight computation
and one cached answer, while a model-code change can never replay a
stale job result.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dataflow.dataflow import Dataflow
from repro.dataflow.library import table3_dataflows
from repro.dataflow.parser import parse_dataflow
from repro.dse.space import (
    DesignSpace,
    default_bandwidths,
    default_pe_counts,
    kc_partitioned_variants,
    yr_partitioned_variants,
)
from repro.errors import DataflowError
from repro.hardware.accelerator import Accelerator, NoC
from repro.model.layer import Layer
from repro.model.zoo import MODELS, build
from repro.serve.http import HttpError

#: DSE hardware-grid caps: a public endpoint must bound the work a
#: single request can demand (the paper-scale sweep is a batch job, not
#: one HTTP call).
MAX_PES_CAP = 4096
MAX_SHARDS = 64

JOB_KINDS = ("analyze", "lint", "verify", "dse", "tune")


def _bad(field: str, message: str) -> HttpError:
    return HttpError(400, f"bad field {field!r}: {message}")


def _check_unknown(doc: Dict[str, Any], allowed: Tuple[str, ...], kind: str) -> None:
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        raise HttpError(
            400,
            f"unknown field(s) for {kind!r} job: {', '.join(unknown)}",
            details={"allowed": sorted(allowed)},
        )


def _get_str(
    doc: Dict[str, Any],
    field: str,
    default: Optional[str] = None,
    required: bool = False,
    choices: Optional[Tuple[str, ...]] = None,
) -> Optional[str]:
    if field not in doc:
        if required:
            raise _bad(field, "required")
        return default
    value = doc[field]
    if not isinstance(value, str):
        raise _bad(field, f"expected a string, got {type(value).__name__}")
    if choices is not None and value not in choices:
        raise _bad(field, f"expected one of {sorted(choices)}, got {value!r}")
    return value


def _get_int(
    doc: Dict[str, Any],
    field: str,
    default: Optional[int] = None,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
) -> Optional[int]:
    if field not in doc:
        return default
    value = doc[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(field, f"expected an integer, got {type(value).__name__}")
    if lo is not None and value < lo:
        raise _bad(field, f"must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise _bad(field, f"must be <= {hi}, got {value}")
    return value


def _get_float(
    doc: Dict[str, Any], field: str, default: float, lo: Optional[float] = None
) -> float:
    if field not in doc:
        return default
    value = doc[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(field, f"expected a number, got {type(value).__name__}")
    if lo is not None and value < lo:
        raise _bad(field, f"must be >= {lo}, got {value}")
    return float(value)


def _get_bool(doc: Dict[str, Any], field: str, default: bool) -> bool:
    if field not in doc:
        return default
    value = doc[field]
    if not isinstance(value, bool):
        raise _bad(field, f"expected a boolean, got {type(value).__name__}")
    return value


# ----------------------------------------------------------------------
# Shared sub-documents
# ----------------------------------------------------------------------
ACCEL_FIELDS = (
    "pes",
    "bandwidth",
    "latency",
    "l1",
    "l2",
    "spatial_reduction",
    "multicast",
)


def normalize_accelerator(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Validate an ``accelerator`` sub-document and fill defaults."""
    _check_unknown(doc, ACCEL_FIELDS, "accelerator")
    return {
        "pes": _get_int(doc, "pes", default=256, lo=1, hi=MAX_PES_CAP),
        "bandwidth": _get_int(doc, "bandwidth", default=32, lo=1),
        "latency": _get_int(doc, "latency", default=2, lo=0),
        "l1": _get_int(doc, "l1", default=None, lo=1),
        "l2": _get_int(doc, "l2", default=None, lo=1),
        "spatial_reduction": _get_bool(doc, "spatial_reduction", True),
        "multicast": _get_bool(doc, "multicast", True),
    }


def build_accelerator(norm: Dict[str, Any]) -> Accelerator:
    """An :class:`Accelerator` from a normalized accelerator document."""
    kwargs: Dict[str, Any] = {}
    if norm["l1"] is not None:
        kwargs["l1_size"] = norm["l1"]
    if norm["l2"] is not None:
        kwargs["l2_size"] = norm["l2"]
    return Accelerator(
        num_pes=norm["pes"],
        spatial_reduction=norm["spatial_reduction"],
        noc=NoC(
            bandwidth=norm["bandwidth"],
            avg_latency=norm["latency"],
            multicast=norm["multicast"],
        ),
        **kwargs,
    )


def resolve_model(doc: Dict[str, Any]) -> str:
    name = _get_str(doc, "model", required=True)
    assert name is not None
    if name not in MODELS:
        raise _bad("model", f"unknown model (choose from {sorted(MODELS)})")
    return name


def resolve_layers(model: str, layer: Optional[str]) -> List[Layer]:
    network = build(model)
    if layer is None:
        return list(network.layers)
    try:
        return [network.layer(layer)]
    except Exception:
        names = [lyr.name for lyr in network.layers]
        raise _bad("layer", f"unknown layer of {model!r} (choose from {names})")


def resolve_dataflow(doc: Dict[str, Any]) -> Tuple[Dataflow, Dict[str, Any]]:
    """Resolve ``dataflow`` (library name) or ``dataflow_text`` (DSL).

    Returns the dataflow plus the normalized fields describing it.
    """
    name = _get_str(doc, "dataflow")
    text = _get_str(doc, "dataflow_text")
    if (name is None) == (text is None):
        raise HttpError(
            400, "pass exactly one of 'dataflow' (library name) or 'dataflow_text'"
        )
    if name is not None:
        catalog = table3_dataflows()
        if name not in catalog:
            raise _bad(
                "dataflow", f"unknown library dataflow (choose from {sorted(catalog)})"
            )
        return catalog[name], {"dataflow": name, "dataflow_text": None}
    assert text is not None
    try:
        flow = parse_dataflow(text, name="request")
    except (DataflowError, ValueError) as error:
        raise HttpError(422, f"dataflow_text does not parse: {error}")
    return flow, {"dataflow": None, "dataflow_text": text}


def lint_gate(flow: Dataflow, layer: Layer, accelerator: Accelerator) -> None:
    """Reject (422 + diagnostics) mappings the static analyzer refutes."""
    from repro.lint import lint_dataflow

    report = lint_dataflow(flow, layer, accelerator)
    if report.has_errors:
        raise HttpError(
            422,
            f"mapping fails static lint against layer {layer.name!r}",
            details=report.to_dict(),
        )


# ----------------------------------------------------------------------
# Per-kind validators: doc -> normalized doc
# ----------------------------------------------------------------------
def validate_analyze(doc: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(
        doc, ("model", "layer", "dataflow", "dataflow_text", "accelerator"), "analyze"
    )
    model = resolve_model(doc)
    layer = _get_str(doc, "layer")
    flow, flow_fields = resolve_dataflow(doc)
    accel = normalize_accelerator(doc.get("accelerator") or {})
    layers = resolve_layers(model, layer)
    if layer is not None:
        # A single named layer is linted up front: a request that cannot
        # bind is rejected before it occupies a worker slot. Whole-model
        # sweeps report per-layer errors inline instead.
        lint_gate(flow, layers[0], build_accelerator(accel))
    return {"model": model, "layer": layer, "accelerator": accel, **flow_fields}


def validate_lint(doc: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(
        doc, ("model", "layer", "dataflow", "dataflow_text", "accelerator"), "lint"
    )
    layer = _get_str(doc, "layer")
    model = resolve_model(doc) if ("model" in doc or layer is not None) else None
    if layer is not None and model is None:
        raise _bad("layer", "requires 'model'")
    _, flow_fields = resolve_dataflow(doc)
    accel = normalize_accelerator(doc.get("accelerator") or {})
    if model is not None:
        resolve_layers(model, layer)
    return {"model": model, "layer": layer, "accelerator": accel, **flow_fields}


def validate_verify(doc: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(
        doc, ("model", "layer", "dataflow", "dataflow_text", "budget"), "verify"
    )
    layer = _get_str(doc, "layer")
    model = resolve_model(doc) if ("model" in doc or layer is not None) else None
    if layer is not None and model is None:
        raise _bad("layer", "requires 'model'")
    _, flow_fields = resolve_dataflow(doc)
    if model is not None:
        resolve_layers(model, layer)
    return {
        "model": model,
        "layer": layer,
        "budget": _get_int(doc, "budget", default=None, lo=1),
        **flow_fields,
    }


DSE_FAMILIES = ("KC-P", "YR-P")


def validate_dse(doc: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(
        doc,
        (
            "model",
            "layer",
            "dataflow",
            "area",
            "power",
            "max_pes",
            "pe_step",
            "max_bandwidth",
            "shards",
            "executor",
            "jobs",
            "stream",
            "verify_coverage",
            "equiv_prune",
            "capacity_prune",
            "spatial_reduction",
            "multicast",
        ),
        "dse",
    )
    model = resolve_model(doc)
    layer = _get_str(doc, "layer", required=True)
    resolve_layers(model, layer)
    max_pes = _get_int(doc, "max_pes", default=512, lo=1, hi=MAX_PES_CAP)
    pe_step = _get_int(doc, "pe_step", default=8, lo=1)
    assert max_pes is not None and pe_step is not None
    if pe_step > max_pes:
        raise _bad("pe_step", f"must be <= max_pes ({max_pes})")
    return {
        "model": model,
        "layer": layer,
        "dataflow": _get_str(doc, "dataflow", default="KC-P", choices=DSE_FAMILIES),
        "area": _get_float(doc, "area", default=16.0, lo=0.0),
        "power": _get_float(doc, "power", default=450.0, lo=0.0),
        "max_pes": max_pes,
        "pe_step": pe_step,
        "max_bandwidth": _get_int(doc, "max_bandwidth", default=128, lo=1),
        "shards": _get_int(doc, "shards", default=None, lo=1, hi=MAX_SHARDS),
        "executor": _get_str(
            doc,
            "executor",
            default="auto",
            choices=("auto", "serial", "process", "vector"),
        ),
        "jobs": _get_int(doc, "jobs", default=None, lo=1),
        "stream": _get_bool(doc, "stream", False),
        "verify_coverage": _get_bool(doc, "verify_coverage", False),
        "equiv_prune": _get_bool(doc, "equiv_prune", False),
        "capacity_prune": _get_bool(doc, "capacity_prune", False),
        "spatial_reduction": _get_bool(doc, "spatial_reduction", True),
        "multicast": _get_bool(doc, "multicast", True),
    }


def validate_tune(doc: Dict[str, Any]) -> Dict[str, Any]:
    _check_unknown(
        doc,
        (
            "model",
            "layer",
            "accelerator",
            "objective",
            "strategy",
            "budget",
            "top_k",
            "max_l1",
            "max_l2",
            "executor",
            "jobs",
        ),
        "tune",
    )
    model = resolve_model(doc)
    layer = _get_str(doc, "layer", required=True)
    resolve_layers(model, layer)
    return {
        "model": model,
        "layer": layer,
        "accelerator": normalize_accelerator(doc.get("accelerator") or {}),
        "objective": _get_str(
            doc, "objective", default="runtime", choices=("runtime", "energy", "edp")
        ),
        "strategy": _get_str(
            doc, "strategy", default="exhaustive", choices=("exhaustive", "random")
        ),
        "budget": _get_int(doc, "budget", default=200, lo=1, hi=100_000),
        "top_k": _get_int(doc, "top_k", default=5, lo=1, hi=100),
        "max_l1": _get_int(doc, "max_l1", default=None, lo=1),
        "max_l2": _get_int(doc, "max_l2", default=None, lo=1),
        "executor": _get_str(
            doc,
            "executor",
            default="auto",
            choices=("auto", "serial", "process", "vector"),
        ),
        "jobs": _get_int(doc, "jobs", default=None, lo=1),
    }


VALIDATORS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "analyze": validate_analyze,
    "lint": validate_lint,
    "verify": validate_verify,
    "dse": validate_dse,
    "tune": validate_tune,
}


def validate(kind: str, doc: Any) -> Dict[str, Any]:
    """Validate one job document; raises :class:`HttpError` on rejects."""
    if kind not in VALIDATORS:
        raise HttpError(404, f"unknown job kind {kind!r} (one of {list(JOB_KINDS)})")
    if not isinstance(doc, dict):
        raise HttpError(400, "request body must be a JSON object")
    return VALIDATORS[kind](doc)


def job_key(kind: str, normalized: Dict[str, Any]) -> str:
    """Content hash of a normalized job: the single-flight/reuse key."""
    from repro.exec.cache import model_version_salt

    payload = {"kind": kind, "job": normalized, "salt": model_version_salt()}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# DSE request -> explorer inputs, and result serializers
# ----------------------------------------------------------------------
def dse_inputs(norm: Dict[str, Any]) -> Tuple[Layer, DesignSpace, Dict[str, Any]]:
    """The (layer, space, explore-kwargs) triple a DSE job sweeps.

    Shared by the server and by parity checks: any consumer holding the
    normalized document can rebuild the exact in-process sweep.
    """
    layer = resolve_layers(norm["model"], norm["layer"])[0]
    variants = (
        kc_partitioned_variants()
        if norm["dataflow"] == "KC-P"
        else yr_partitioned_variants()
    )
    space = DesignSpace(
        pe_counts=default_pe_counts(max_pes=norm["max_pes"], step=norm["pe_step"]),
        noc_bandwidths=default_bandwidths(norm["max_bandwidth"]),
        dataflow_variants=variants,
    )
    kwargs = {
        "area_budget": norm["area"],
        "power_budget": norm["power"],
        "verify_coverage": norm["verify_coverage"],
        "equiv_prune": norm["equiv_prune"],
        "capacity_prune": norm["capacity_prune"],
        "spatial_reduction": norm["spatial_reduction"],
        "noc_multicast": norm["multicast"],
        "executor": norm["executor"],
        "jobs": norm["jobs"],
    }
    return layer, space, kwargs


def design_point_dict(point: Any) -> Dict[str, Any]:
    """One :class:`~repro.dse.space.DesignPoint` as a JSON document."""
    return {
        "num_pes": point.num_pes,
        "noc_bandwidth": point.noc_bandwidth,
        "dataflow_name": point.dataflow_name,
        "tile_label": point.tile_label,
        "l1_size": point.l1_size,
        "l2_size": point.l2_size,
        "area": point.area,
        "power": point.power,
        "throughput": point.throughput,
        "runtime": point.runtime,
        "energy": point.energy,
        "edp": point.edp,
    }


def statistics_dict(stats: Any) -> Dict[str, Any]:
    """A :class:`~repro.dse.explorer.DSEStatistics` as a JSON document."""
    from dataclasses import asdict

    return asdict(stats)
