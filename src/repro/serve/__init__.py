"""DSE-as-a-service: the async analysis server (:mod:`repro.serve`).

The package turns the repo's analytical stack — cost model, lint,
verification, tuner, and the design-space explorer — into a long-lived
HTTP/JSON service:

- :class:`AnalysisServer` / :class:`ServeConfig` — the asyncio server
  (``repro serve`` on the CLI);
- :class:`ThreadedServer` — run a real server on a background thread
  (tests, benchmarks, embedding);
- :class:`~repro.serve.client.ServeClient` — a thin stdlib-socket
  client speaking the same protocol;
- :func:`sharded_explore` — PE-contiguous sharded sweeps with anytime
  Pareto-front callbacks, bit-identical to the in-process explorer;
- :mod:`repro.serve.protocol` — request validation and the normalized
  job documents both sides of the wire agree on.

See ``docs/serving.md`` for the API reference and deployment notes.
"""

from repro.serve.app import AnalysisServer, ServeConfig, ThreadedServer, serve_main
from repro.serve.client import ServeClient, ServeError
from repro.serve.http import HttpError
from repro.serve.shards import (
    ShardUpdate,
    SweepCancelled,
    merge_shard_results,
    shard_spaces,
    sharded_explore,
)

__all__ = [
    "AnalysisServer",
    "HttpError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ShardUpdate",
    "SweepCancelled",
    "ThreadedServer",
    "merge_shard_results",
    "serve_main",
    "shard_spaces",
    "sharded_explore",
]
