"""Exception hierarchy for the repro package.

All errors raised by the package derive from :class:`ReproError` so callers
can catch everything coming from this library with a single ``except``.

Errors raised by code that went through the static mapping analyzer carry
the structured findings in ``diagnostics`` (a list of
:class:`repro.lint.Diagnostic`), so an ``except DataflowError`` site can
inspect codes, severities, and fix-its instead of parsing the message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    ``diagnostics`` holds the :class:`repro.lint.Diagnostic` findings
    behind the error when it came out of the static mapping analyzer;
    it is empty for errors raised directly.
    """

    def __init__(self, *args, diagnostics=None):
        super().__init__(*args)
        self.diagnostics = list(diagnostics or [])

    def __str__(self) -> str:
        base = super().__str__()
        codes = sorted({d.code for d in self.diagnostics})
        if codes:
            return f"{base} [{', '.join(codes)}]"
        return base


class DataflowError(ReproError):
    """A dataflow description is malformed or inconsistent."""


class DataflowParseError(DataflowError):
    """The textual dataflow DSL could not be parsed.

    ``position`` is the 0-based character offset of the error inside the
    offending size expression (when known); ``span`` a
    :class:`repro.lint.SourceSpan` locating the error in DSL source text
    (when the expression came from a parsed file).
    """

    def __init__(self, *args, diagnostics=None, position=None, span=None):
        super().__init__(*args, diagnostics=diagnostics)
        self.position = position
        self.span = span


class BindingError(DataflowError):
    """A dataflow could not be bound to a concrete layer.

    Raised for example when a symbolic size like ``Sz(R)`` references a
    dimension the layer does not define, or when a mapping is incompatible
    with the layer geometry (e.g. an input-dim chunk smaller than the
    filter extent).
    """


class UnsupportedDataflowError(DataflowError):
    """The dataflow is syntactically valid but outside the modeled space."""


class LayerError(ReproError):
    """A layer definition is invalid (non-positive dims, bad stride, ...)."""


class HardwareError(ReproError):
    """A hardware configuration is invalid."""


class AnalysisError(ReproError):
    """The analysis engines hit an internal inconsistency."""


class DSEError(ReproError):
    """Design-space exploration was configured incorrectly."""
