"""Brute-force PE access-set enumeration: ground truth for the classifier.

The closed-form classifier (:mod:`repro.comm.classify`) never looks at
individual elements; this module does. For every concurrently active
sub-unit of a level it materializes the *exact* set of tensor-element
coordinates the sub-unit touches during one fold step — walking the
same chunk semantics the cluster-analysis engine binds (sub-unit ``p``
takes chunk ``p`` along every spatially mapped dimension, temporal
dimensions sit at their first chunk) and the same window relations the
tensor axes encode (``in = out * stride + k * dilation`` and the
full-window output rule). Classification then falls out of plain set
algebra:

- all sets identical      -> multicast (reads) / reduction (output)
- pairwise disjoint       -> unicast
- otherwise               -> forwarding (reads) / reduction (output)

and the sharing degree is the literal maximum, over elements, of how
many sub-units touch the element. The differential cross-check
(:mod:`repro.comm.crosscheck`) compares these ground-truth verdicts
with the classifier's closed form on every golden mapping and on
randomized mappings in the property-test suite.

Enumeration is budgeted: levels with more than ``max_units`` active
sub-units, or joint spatial distributions whose per-dimension chunk
counts disagree (sub-units past the short dimension execute nothing —
outside the aligned-chunk model), return ``None`` instead of a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.tensors.axes import Axis, ConvOutputAxis, PlainAxis, SlidingInputAxis

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engines.binding import BoundLevel
    from repro.engines.tensor_analysis import TensorAnalysis, TensorInfo

from repro.comm.classify import CommPattern

__all__ = [
    "DEFAULT_MAX_UNITS",
    "BruteForceComm",
    "brute_force_level",
    "sub_unit_access_sets",
]

#: Enumeration budget: levels wider than this are not brute-forced.
DEFAULT_MAX_UNITS = 64

#: One tensor-element coordinate: a value per tensor axis.
Element = Tuple[int, ...]


@dataclass(frozen=True)
class BruteForceComm:
    """Ground-truth verdict for one tensor at one level."""

    tensor: str
    is_output: bool
    pattern: CommPattern
    degree: int
    sub_units: int


def _dim_ranges(level: "BoundLevel", sub_unit: int) -> Dict[str, range]:
    """The dimension-index window sub-unit ``p`` covers in one fold step.

    Spatially mapped dimensions give sub-unit ``p`` their chunk ``p``
    (``[p * offset, p * offset + size)`` clamped to the level's local
    extent); every temporal dimension sits at its first chunk.
    """
    ranges: Dict[str, range] = {}
    for directive in level.directives:
        local = level.local_sizes.get(directive.dim, 1)
        if directive.spatial:
            start = sub_unit * directive.offset
            stop = min(start + directive.size, local)
        else:
            start = 0
            stop = min(directive.size, local)
        ranges[directive.dim] = range(start, max(start, stop))
    return ranges


def _axis_elements(axis: Axis, ranges: Dict[str, range]) -> FrozenSet[int]:
    """Exact element indices one dimension window touches along ``axis``."""
    if isinstance(axis, PlainAxis):
        return frozenset(ranges.get(axis.dim, range(1)))
    if isinstance(axis, SlidingInputAxis):
        outs = ranges.get(axis.out_dim, range(1))
        kernels = ranges.get(axis.kernel_dim, range(1))
        return frozenset(
            out * axis.stride + k * axis.dilation for out in outs for k in kernels
        )
    if isinstance(axis, ConvOutputAxis):
        ins = ranges.get(axis.in_dim, range(1))
        kernels = ranges.get(axis.kernel_dim, range(1))
        if len(ins) == 0 or len(kernels) == 0:
            return frozenset()
        # Outputs whose full kernel window lies inside the input window
        # (the extent rule of ConvOutputAxis, element by element):
        # o*stride + kb*dil >= in_lo  and  o*stride + (ke-1)*dil <= in_hi.
        in_lo, in_hi = ins[0], ins[-1]
        k_lo, k_hi = kernels[0], kernels[-1]
        lo = -(-(in_lo - k_lo * axis.dilation) // axis.stride)  # ceil div
        hi = (in_hi - k_hi * axis.dilation) // axis.stride
        return frozenset(range(lo, hi + 1))
    raise NotImplementedError(f"unknown axis kind {type(axis).__name__}")


def _tensor_elements(
    tensor: "TensorInfo", ranges: Dict[str, range]
) -> FrozenSet[Element]:
    """The exact element-coordinate set of one tensor for one window."""
    per_axis = [_axis_elements(axis, ranges) for axis in tensor.axes]
    if any(len(values) == 0 for values in per_axis):
        return frozenset()
    elements: List[Element] = [()]
    for values in per_axis:
        elements = [prefix + (v,) for prefix in elements for v in sorted(values)]
    return frozenset(elements)


def sub_unit_access_sets(
    level: "BoundLevel",
    tensors: "TensorAnalysis",
    max_units: int = DEFAULT_MAX_UNITS,
) -> Optional[Dict[str, List[FrozenSet[Element]]]]:
    """Per-tensor, per-sub-unit element sets, or ``None`` over budget.

    Returns ``None`` for degenerate levels (nothing concurrent), levels
    wider than ``max_units``, and misaligned joint distributions (a
    spatial dimension with fewer chunks than active sub-units).
    """
    active = min(level.width, level.spatial_chunks)
    if active <= 1 or active > max_units:
        return None
    for directive in level.directives:
        if directive.spatial and directive.chunks < active:
            return None
    sets: Dict[str, List[FrozenSet[Element]]] = {
        tensor.name: [] for tensor in tensors.tensors
    }
    for sub_unit in range(active):
        ranges = _dim_ranges(level, sub_unit)
        for tensor in tensors.tensors:
            sets[tensor.name].append(_tensor_elements(tensor, ranges))
    return sets


def _classify_sets(
    tensor: "TensorInfo", access: List[FrozenSet[Element]]
) -> BruteForceComm:
    """Set-algebra classification plus the literal max sharing degree."""
    non_empty = [s for s in access if s]
    counts: Dict[Element, int] = {}
    for s in non_empty:
        for element in s:
            counts[element] = counts.get(element, 0) + 1
    degree = max(counts.values()) if counts else 0

    if len(non_empty) <= 1 or degree <= 1:
        pattern = CommPattern.UNICAST
    elif all(s == non_empty[0] for s in non_empty) and len(non_empty) == len(access):
        pattern = (
            CommPattern.REDUCTION if tensor.is_output else CommPattern.MULTICAST
        )
    else:
        pattern = (
            CommPattern.REDUCTION if tensor.is_output else CommPattern.FORWARDING
        )
    return BruteForceComm(
        tensor=tensor.name,
        is_output=tensor.is_output,
        pattern=pattern,
        degree=degree,
        sub_units=len(access),
    )


def brute_force_level(
    level: "BoundLevel",
    tensors: "TensorAnalysis",
    max_units: int = DEFAULT_MAX_UNITS,
) -> Optional[Dict[str, BruteForceComm]]:
    """Ground-truth classification of one level, or ``None`` over budget."""
    sets = sub_unit_access_sets(level, tensors, max_units)
    if sets is None:
        return None
    return {
        tensor.name: _classify_sets(tensor, sets[tensor.name])
        for tensor in tensors.tensors
    }
