"""Differential verification of the communication classifier.

Every claim :mod:`repro.comm.classify` makes is replayed against two
independent oracles:

1. **The reuse engine** (:mod:`repro.engines.reuse`): the classifier's
   multicast set must equal ``LevelReuse.multicast_tensors`` and its
   exact-overlap output reduction must equal
   ``LevelReuse.output_spatially_reduced``, level by level. The two
   implementations share the axis abstraction but derive the verdicts
   independently (the reuse engine from traffic formulas, the
   classifier from the overlap closed form).

2. **Brute-force PE access-set enumeration**
   (:mod:`repro.comm.enumerate`): on levels within the enumeration
   budget, the pattern must match the literal set algebra and the
   claimed sharing degree must equal the literal per-element maximum.
   Degrees are compared only where the closed form is exact: integral
   axis shifts and contiguous sliding windows (a stride wider than the
   kernel window leaves gaps the interval model deliberately smooths
   over); patterns are compared always.

``crosscheck_comm`` runs both oracles for one (dataflow, layer) pair
and reports every disagreement; the golden suite and the ``verify
--comm`` CLI run it over the whole mapping library and the example
corpus. A clean report is the acceptance evidence that classifications
are *certified*, not just plausible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro import obs
from repro.comm.classify import (
    CommAnalysis,
    CommPattern,
    LevelComm,
    TensorComm,
    bind_for_comm,
    classify_bound,
)
from repro.comm.enumerate import DEFAULT_MAX_UNITS, brute_force_level
from repro.tensors.axes import SlidingInputAxis

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.dataflow import Dataflow
    from repro.engines.tensor_analysis import TensorAnalysis, TensorInfo
    from repro.hardware.accelerator import Accelerator
    from repro.model.layer import Layer

__all__ = [
    "CommCrosscheckReport",
    "CommMismatch",
    "crosscheck_comm",
]


@dataclass(frozen=True)
class CommMismatch:
    """One claim an oracle disagreed with."""

    oracle: str  # "reuse-engine" or "brute-force"
    level: int
    tensor: str
    quantity: str
    claimed: str
    oracle_value: str

    def describe(self) -> str:
        return (
            f"[{self.oracle}] level {self.level}, tensor {self.tensor}: "
            f"{self.quantity} claimed {self.claimed}, oracle says "
            f"{self.oracle_value}"
        )


@dataclass(frozen=True)
class CommCrosscheckReport:
    """Outcome of one differential communication cross-check."""

    dataflow_name: str
    layer_name: str
    analysis: CommAnalysis
    levels_checked: int
    brute_forced_levels: int
    degrees_compared: int
    mismatches: Tuple[CommMismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        verdict = "AGREE" if self.ok else "DISAGREE"
        lines = [
            f"{verdict}: {self.dataflow_name} on {self.layer_name} — "
            f"{self.levels_checked} level(s) vs reuse engine, "
            f"{self.brute_forced_levels} brute-forced, "
            f"{self.degrees_compared} degree(s) compared"
        ]
        lines.extend(f"  {mismatch.describe()}" for mismatch in self.mismatches)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "dataflow": self.dataflow_name,
            "layer": self.layer_name,
            "ok": self.ok,
            "levels_checked": self.levels_checked,
            "brute_forced_levels": self.brute_forced_levels,
            "degrees_compared": self.degrees_compared,
            "mismatches": [m.describe() for m in self.mismatches],
        }


def _degree_is_exact(tensor_info: "TensorInfo", comm: TensorComm, sizes: dict) -> bool:
    """Where the closed-form degree is exact against literal enumeration.

    Fractional shifts (strided output axes) and gapped sliding windows
    (stride wider than the kernel window) are interval-model
    smoothings; the pattern still holds but the per-element count may
    differ, so those degrees are excluded from the exact comparison.
    """
    if not comm.integral_shifts:
        return False
    for axis in tensor_info.axes:
        if isinstance(axis, SlidingInputAxis):
            k_ext = (sizes[axis.kernel_dim] - 1) * axis.dilation + 1
            if axis.stride > k_ext:
                return False
    return True


def _check_against_reuse(
    level_comm: LevelComm, level, tensors: "TensorAnalysis"
) -> List[CommMismatch]:
    """Oracle 1: the reuse engine's spatial-reuse verdicts."""
    from repro.engines.reuse import analyze_level_reuse

    reuse = analyze_level_reuse(level, tensors)
    mismatches: List[CommMismatch] = []

    claimed_multicast = set(level_comm.multicast_tensors)
    reuse_multicast = set(reuse.multicast_tensors)
    if claimed_multicast != reuse_multicast:
        mismatches.append(
            CommMismatch(
                oracle="reuse-engine",
                level=level_comm.index,
                tensor=",".join(sorted(claimed_multicast ^ reuse_multicast)),
                quantity="multicast set",
                claimed=str(sorted(claimed_multicast)),
                oracle_value=str(sorted(reuse_multicast)),
            )
        )

    output = level_comm.output_comm
    claimed_reduced = (
        output is not None
        and output.pattern is CommPattern.REDUCTION
        and output.exact_overlap
    )
    if claimed_reduced != reuse.output_spatially_reduced:
        mismatches.append(
            CommMismatch(
                oracle="reuse-engine",
                level=level_comm.index,
                tensor=reuse.output_name,
                quantity="exact spatial reduction",
                claimed=str(claimed_reduced),
                oracle_value=str(reuse.output_spatially_reduced),
            )
        )
    return mismatches


def crosscheck_comm(
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Optional[Accelerator]" = None,
    max_units: int = DEFAULT_MAX_UNITS,
) -> CommCrosscheckReport:
    """Replay one mapping's classification against both oracles."""
    from repro.engines.tensor_analysis import analyze_tensors

    bound = bind_for_comm(dataflow, layer, accelerator, max_width=max_units)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    analysis = classify_bound(bound, tensors)

    levels_checked = 0
    brute_forced = 0
    degrees_compared = 0
    mismatches: List[CommMismatch] = []
    for level, level_comm in zip(bound.levels, analysis.levels):
        if level_comm.degenerate:
            continue
        levels_checked += 1
        mismatches.extend(_check_against_reuse(level_comm, level, tensors))

        ground_truth = brute_force_level(level, tensors, max_units)
        if ground_truth is None:
            continue
        brute_forced += 1
        sizes = level.chunk_sizes()
        for comm in level_comm.tensors:
            truth = ground_truth[comm.tensor]
            if truth.pattern is not comm.pattern:
                mismatches.append(
                    CommMismatch(
                        oracle="brute-force",
                        level=level_comm.index,
                        tensor=comm.tensor,
                        quantity="pattern",
                        claimed=comm.pattern.value,
                        oracle_value=truth.pattern.value,
                    )
                )
                continue
            if _degree_is_exact(tensors.tensor(comm.tensor), comm, sizes):
                degrees_compared += 1
                if truth.degree != comm.degree:
                    mismatches.append(
                        CommMismatch(
                            oracle="brute-force",
                            level=level_comm.index,
                            tensor=comm.tensor,
                            quantity="sharing degree",
                            claimed=str(comm.degree),
                            oracle_value=str(truth.degree),
                        )
                    )

    obs.inc("comm.crosschecks_run")
    if mismatches:
        obs.inc("comm.crosscheck_mismatches", len(mismatches))
    return CommCrosscheckReport(
        dataflow_name=dataflow.name,
        layer_name=layer.name,
        analysis=analysis,
        levels_checked=levels_checked,
        brute_forced_levels=brute_forced,
        degrees_compared=degrees_compared,
        mismatches=tuple(mismatches),
    )
