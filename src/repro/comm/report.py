"""Human-readable rendering of communication classifications.

The ``analyze --comm`` and ``lint --comm`` CLI views share this table:
one row per non-degenerate (level, tensor) pair showing the certified
pattern, its fan-in/fan-out degree, and the closed-form degree formula
so the verdict stays auditable at a glance. JSON output goes through
``CommAnalysis.to_dict`` directly; this module only owns the text view.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.comm.classify import CommAnalysis
from repro.util.text_table import format_table

__all__ = [
    "comm_rows",
    "render_comm_table",
    "render_comm_summary",
]

_HEADERS = (
    "level",
    "tensor",
    "pattern",
    "fan-in",
    "fan-out",
    "chain",
    "degree formula",
)


def comm_rows(analysis: CommAnalysis) -> List[Sequence[object]]:
    """Table rows for every classified (level, tensor) pair."""
    rows: List[Sequence[object]] = []
    for level in analysis.levels:
        for tensor in level.tensors:
            rows.append(
                (
                    level.index,
                    tensor.tensor,
                    tensor.pattern.value,
                    tensor.fan_in,
                    tensor.fan_out,
                    tensor.chain_length,
                    tensor.degree_formula,
                )
            )
    return rows


def render_comm_table(analysis: CommAnalysis) -> str:
    """The full per-tensor classification table for one mapping."""
    title = (
        f"communication: {analysis.dataflow_name} on {analysis.layer_name} "
        f"({analysis.num_pes} PEs)"
    )
    rows = comm_rows(analysis)
    if not rows:
        return f"{title}\n  (no concurrent spatial levels: nothing to communicate)"
    return format_table(_HEADERS, rows, title=title)


def render_comm_summary(analysis: CommAnalysis) -> str:
    """One-line demand summary: pattern counts plus hardware needs."""
    counts = analysis.pattern_counts()
    parts = [f"{name}={count}" for name, count in counts.items() if count]
    if not parts:
        parts = ["no concurrent spatial levels"]
    needs = []
    if analysis.requires_spatial_reduction:
        needs.append("needs reduction tree")
    if analysis.requires_multicast:
        needs.append("needs multicast")
    tail = f" [{', '.join(needs)}]" if needs else ""
    return f"comm: {', '.join(parts)}{tail}"
