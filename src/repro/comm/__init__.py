"""Static inter-PE communication & concurrency analysis.

Classifies, from directives alone, each (level, tensor) pair into
multicast / unicast / neighbor-forwarding / reduction fan-in with an
exact sharing degree (:mod:`repro.comm.classify`), validates every
claim against brute-force PE access-set enumeration
(:mod:`repro.comm.enumerate`) and the reuse engine via the
differential cross-check (:mod:`repro.comm.crosscheck`), and renders
the results for the CLI (:mod:`repro.comm.report`). The DF300-series
lint rules and the DSE/tuner ``comm_prune`` capability screens are
built on these classifications.
"""

from repro.comm.classify import (
    DEFAULT_MAX_WIDTH,
    STATIC_PROVENANCE,
    CommAnalysis,
    CommPattern,
    LevelComm,
    ReductionDemand,
    TensorComm,
    bind_for_comm,
    classify_bound,
    classify_dataflow,
    classify_level,
    reduction_demand,
)
from repro.comm.crosscheck import CommCrosscheckReport, CommMismatch, crosscheck_comm
from repro.comm.enumerate import (
    DEFAULT_MAX_UNITS,
    BruteForceComm,
    brute_force_level,
    sub_unit_access_sets,
)
from repro.comm.report import comm_rows, render_comm_summary, render_comm_table

__all__ = [
    "DEFAULT_MAX_UNITS",
    "DEFAULT_MAX_WIDTH",
    "STATIC_PROVENANCE",
    "BruteForceComm",
    "CommAnalysis",
    "CommCrosscheckReport",
    "CommMismatch",
    "CommPattern",
    "LevelComm",
    "ReductionDemand",
    "TensorComm",
    "bind_for_comm",
    "brute_force_level",
    "classify_bound",
    "classify_dataflow",
    "classify_level",
    "comm_rows",
    "crosscheck_comm",
    "reduction_demand",
    "render_comm_summary",
    "render_comm_table",
    "sub_unit_access_sets",
]
