"""Static inter-PE communication classification from directives alone.

The paper's data-centric claim (Section 3, Table 2) is that the
directive list determines spatial reuse — which tensors are multicast
across PEs, which outputs need a reduction fan-in — without running
anything. This module makes the classification explicit and certified:
for every cluster level and tensor it derives, purely from the bound
directives,

- the *spatial access relation*: sub-unit ``p`` of a level reads the
  tensor elements whose axis intervals start at ``p * sigma_a`` with
  width ``e_a`` (``sigma_a`` is the axis shift induced by the level's
  spatial offsets, ``e_a`` the axis extent of one mapped chunk);
- the *pairwise overlap structure* between sub-units, which along each
  axis is ``max(0, e_a - |i - j| * sigma_a)`` shared elements; and
- the resulting :class:`CommPattern` with an exact per-element sharing
  degree (fan-out for reads, fan-in for output writes).

The classification is a closed form over ``(e_a, sigma_a)`` pairs:

========================  =============================================
all ``sigma_a == 0``      every sub-unit touches the *same* chunk —
                          ``MULTICAST`` for inputs, ``REDUCTION``
                          fan-in for the output (a reduction-carried
                          dimension is spatially mapped);
some ``sigma_a >= e_a``   adjacent chunks are disjoint along that axis,
                          hence fully disjoint — ``UNICAST``;
otherwise                 chunks overlap partially (``0 < sigma_a <
                          e_a``): neighbor ``FORWARDING`` chains for
                          inputs (store-and-forward halo reuse), a
                          partial-overlap ``REDUCTION`` for the output.
========================  =============================================

The sharing degree of one element is the number of sub-units whose
chunk covers it: ``min(active, min_a floor((e_a - 1) / sigma_a) + 1)``
over the axes with ``sigma_a > 0`` (unconstrained axes are shared by
everyone), where ``active = min(width, spatial_chunks)`` is the number
of concurrently active sub-units in one fold. Every
:class:`TensorComm` carries this formula spelled out plus a provenance
string; :mod:`repro.comm.crosscheck` replays each claim against the
reuse engine and against brute-force PE access-set enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataflow.dataflow import Dataflow
    from repro.engines.binding import BoundDataflow, BoundLevel
    from repro.engines.tensor_analysis import TensorAnalysis, TensorInfo
    from repro.hardware.accelerator import Accelerator
    from repro.model.layer import Layer

__all__ = [
    "STATIC_PROVENANCE",
    "CommAnalysis",
    "CommPattern",
    "LevelComm",
    "ReductionDemand",
    "TensorComm",
    "bind_for_comm",
    "classify_bound",
    "classify_dataflow",
    "reduction_demand",
]

#: Provenance stamped on every classification: the verdict is a closed
#: form over the bound directives, no cost model or simulation involved.
STATIC_PROVENANCE = "static: derived from directives (Table 2 closed form)"

#: Default cap on the synthetic top-level width used when classifying
#: without a concrete accelerator; matches the brute-force enumeration
#: budget of the differential cross-check (<= 64 PEs per level).
DEFAULT_MAX_WIDTH = 64


class CommPattern(Enum):
    """The four inter-PE communication patterns of a (level, tensor)."""

    MULTICAST = "multicast"
    UNICAST = "unicast"
    FORWARDING = "forwarding"
    REDUCTION = "reduction"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TensorComm:
    """Certified communication pattern of one tensor at one level.

    ``degree`` is the maximum per-element sharing degree across the
    level's concurrently active sub-units: the multicast fan-out for
    read tensors, the reduction fan-in for the output. ``axis_profile``
    records the ``(extent, shift)`` pair of every tensor axis — the
    entire input to the classification — and ``degree_formula`` spells
    the closed form so the degree stays auditable as a function of the
    cluster size. ``exact_overlap`` is true when every sub-unit touches
    the identical chunk (all shifts zero); a partial-overlap reduction
    (``exact_overlap=False``) still implies concurrent writes to the
    shared elements.
    """

    tensor: str
    is_output: bool
    pattern: CommPattern
    degree: int
    chain_length: int
    overlap_volume: int
    exact_overlap: bool
    integral_shifts: bool
    axis_profile: Tuple[Tuple[int, float], ...]
    degree_formula: str
    provenance: str = STATIC_PROVENANCE

    @property
    def fan_out(self) -> int:
        """Sub-units receiving each delivered element (reads)."""
        return 1 if self.is_output else self.degree

    @property
    def fan_in(self) -> int:
        """Sub-units contributing writes per output element."""
        return self.degree if self.is_output else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "tensor": self.tensor,
            "is_output": self.is_output,
            "pattern": self.pattern.value,
            "degree": self.degree,
            "fan_in": self.fan_in,
            "fan_out": self.fan_out,
            "chain_length": self.chain_length,
            "overlap_volume": self.overlap_volume,
            "exact_overlap": self.exact_overlap,
            "degree_formula": self.degree_formula,
            "provenance": self.provenance,
        }


@dataclass(frozen=True)
class LevelComm:
    """Communication structure of one cluster level.

    A *degenerate* level (width 1 or a single joint spatial chunk) has
    no inter-PE concurrency at all: ``tensors`` is empty and no pattern
    is claimed.
    """

    index: int
    width: int
    spatial_chunks: int
    active: int
    spatial_dims: Tuple[str, ...]
    degenerate: bool
    tensors: Tuple[TensorComm, ...]

    @property
    def multicast_tensors(self) -> Tuple[str, ...]:
        """Read tensors every sub-unit receives identically."""
        return tuple(
            t.tensor for t in self.tensors if t.pattern is CommPattern.MULTICAST
        )

    @property
    def output_comm(self) -> Optional[TensorComm]:
        for tensor in self.tensors:
            if tensor.is_output:
                return tensor
        return None

    @property
    def requires_reduction(self) -> bool:
        """Concurrent sub-units write overlapping output elements."""
        output = self.output_comm
        return output is not None and output.pattern is CommPattern.REDUCTION

    @property
    def requires_multicast(self) -> bool:
        return bool(self.multicast_tensors)

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.index,
            "width": self.width,
            "spatial_chunks": self.spatial_chunks,
            "active": self.active,
            "spatial_dims": list(self.spatial_dims),
            "degenerate": self.degenerate,
            "tensors": [t.to_dict() for t in self.tensors],
        }


@dataclass(frozen=True)
class CommAnalysis:
    """Per-level communication classification of one bound mapping."""

    dataflow_name: str
    layer_name: str
    num_pes: int
    levels: Tuple[LevelComm, ...]

    @property
    def requires_spatial_reduction(self) -> bool:
        """Some level spatially maps a reduction-carried output overlap."""
        return any(level.requires_reduction for level in self.levels)

    @property
    def requires_multicast(self) -> bool:
        return any(level.requires_multicast for level in self.levels)

    def pattern_counts(self) -> Dict[str, int]:
        """How many (level, tensor) pairs landed on each pattern."""
        counts = {pattern.value: 0 for pattern in CommPattern}
        for level in self.levels:
            for tensor in level.tensors:
                counts[tensor.pattern.value] += 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "dataflow": self.dataflow_name,
            "layer": self.layer_name,
            "num_pes": self.num_pes,
            "requires_spatial_reduction": self.requires_spatial_reduction,
            "requires_multicast": self.requires_multicast,
            "pattern_counts": self.pattern_counts(),
            "levels": [level.to_dict() for level in self.levels],
        }


def _classify_tensor(
    tensor: "TensorInfo", level: "BoundLevel", active: int
) -> TensorComm:
    """Apply the closed-form classification to one tensor at one level."""
    sizes = level.chunk_sizes()
    offsets = level.spatial_offsets
    extents = [axis.extent(sizes) for axis in tensor.axes]
    sigmas = [abs(axis.shift(offsets)) for axis in tensor.axes]
    profile = tuple(zip(extents, sigmas))
    integral = all(float(sigma).is_integer() for sigma in sigmas)

    if any(extent <= 0 for extent in extents):
        # The mapped chunk produces/touches nothing along some axis
        # (e.g. an input window narrower than the kernel): no elements,
        # no communication.
        return TensorComm(
            tensor=tensor.name,
            is_output=tensor.is_output,
            pattern=CommPattern.UNICAST,
            degree=0,
            chain_length=active,
            overlap_volume=0,
            exact_overlap=False,
            integral_shifts=integral,
            axis_profile=profile,
            degree_formula="0 (empty chunk: some axis extent is 0)",
        )

    overlap_volume = 1
    for extent, sigma in profile:
        overlap_volume *= max(0, extent - int(math.ceil(sigma)))

    if all(sigma == 0 for sigma in sigmas):
        pattern = CommPattern.REDUCTION if tensor.is_output else CommPattern.MULTICAST
        return TensorComm(
            tensor=tensor.name,
            is_output=tensor.is_output,
            pattern=pattern,
            degree=active,
            chain_length=active,
            overlap_volume=overlap_volume,
            exact_overlap=True,
            integral_shifts=True,
            axis_profile=profile,
            degree_formula=(
                f"active = min(width={level.width}, "
                f"chunks={level.spatial_chunks}) = {active}"
            ),
        )

    if any(sigma >= extent for extent, sigma in profile):
        # Disjoint along at least one axis => disjoint overall for every
        # pair of sub-units (|i - j| * sigma >= sigma >= extent).
        return TensorComm(
            tensor=tensor.name,
            is_output=tensor.is_output,
            pattern=CommPattern.UNICAST,
            degree=1,
            chain_length=active,
            overlap_volume=0,
            exact_overlap=False,
            integral_shifts=integral,
            axis_profile=profile,
            degree_formula="1 (some axis shift >= its extent: disjoint chunks)",
        )

    # Partial overlap on every shifted axis: a neighbor-forwarding chain
    # for reads, overlapping concurrent writes (partial reduction) for
    # the output. Per-axis cover of one element: floor((e-1)/sigma) + 1.
    covers = [
        int(math.floor((extent - 1) / sigma)) + 1
        for extent, sigma in profile
        if sigma > 0
    ]
    degree = min([active] + covers)
    cover_text = ", ".join(
        f"floor(({extent}-1)/{sigma:g})+1={int(math.floor((extent - 1) / sigma)) + 1}"
        for extent, sigma in profile
        if sigma > 0
    )
    pattern = CommPattern.REDUCTION if tensor.is_output else CommPattern.FORWARDING
    return TensorComm(
        tensor=tensor.name,
        is_output=tensor.is_output,
        pattern=pattern,
        degree=degree,
        chain_length=active,
        overlap_volume=overlap_volume,
        exact_overlap=False,
        integral_shifts=integral,
        axis_profile=profile,
        degree_formula=f"min(active={active}, {cover_text}) = {degree}",
    )


def classify_level(level: "BoundLevel", tensors: "TensorAnalysis") -> LevelComm:
    """Classify every tensor's communication pattern at one bound level."""
    spatial_dims = tuple(d.dim for d in level.directives if d.spatial)
    active = min(level.width, level.spatial_chunks)
    degenerate = level.width <= 1 or level.spatial_chunks <= 1
    classified: Tuple[TensorComm, ...] = ()
    if not degenerate:
        classified = tuple(
            _classify_tensor(tensor, level, active) for tensor in tensors.tensors
        )
    return LevelComm(
        index=level.index,
        width=level.width,
        spatial_chunks=level.spatial_chunks,
        active=active,
        spatial_dims=spatial_dims,
        degenerate=degenerate,
        tensors=classified,
    )


def classify_bound(bound: "BoundDataflow", tensors: "TensorAnalysis") -> CommAnalysis:
    """Classify every level of an already-bound mapping."""
    levels = tuple(classify_level(level, tensors) for level in bound.levels)
    analysis = CommAnalysis(
        dataflow_name=bound.dataflow.name,
        layer_name=bound.layer.name,
        num_pes=bound.layer_pes(),
        levels=levels,
    )
    obs.inc("comm.mappings_classified")
    for level in levels:
        for tensor in level.tensors:
            obs.inc(f"comm.pattern.{tensor.pattern.value}")
    return analysis


def bind_for_comm(
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Optional[Accelerator]" = None,
    max_width: int = DEFAULT_MAX_WIDTH,
) -> "BoundDataflow":
    """Bind for communication analysis.

    With a concrete ``accelerator`` this is plain binding. Without one,
    the synthetic accelerator that exactly fits the cluster hierarchy
    (the verifier's choice) would leave the *top* level with width 1 —
    degenerate, hiding its communication structure entirely. So the
    probe binds twice: once to read the top level's joint spatial chunk
    count (which is width-independent), then for real with a top width
    of ``min(max_width, spatial_chunks)`` so every fold-free sub-unit
    is visible to the classifier.
    """
    from repro.engines.binding import bind_dataflow
    from repro.hardware.accelerator import Accelerator
    from repro.lint.rules import required_pes

    if accelerator is not None:
        return bind_dataflow(dataflow, layer, accelerator)
    base = required_pes(dataflow, layer)
    probe = bind_dataflow(dataflow, layer, Accelerator(num_pes=base))
    width = max(1, min(max_width, probe.levels[0].spatial_chunks))
    if width == 1:
        return probe
    return bind_dataflow(dataflow, layer, Accelerator(num_pes=base * width))


def classify_dataflow(
    dataflow: "Dataflow",
    layer: "Layer",
    accelerator: "Optional[Accelerator]" = None,
    max_width: int = DEFAULT_MAX_WIDTH,
) -> CommAnalysis:
    """Bind ``dataflow`` to ``layer`` and classify every level.

    See :func:`bind_for_comm` for how the accelerator defaults; raises
    :class:`~repro.errors.BindingError` (as binding would) when the
    mapping cannot bind at all.
    """
    from repro.engines.tensor_analysis import analyze_tensors

    bound = bind_for_comm(dataflow, layer, accelerator, max_width)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    return classify_bound(bound, tensors)


@dataclass(frozen=True)
class ReductionDemand:
    """Where a mapping needs spatial-reduction hardware, PE-count-wise.

    ``inner`` races are independent of the PE count (inner level widths
    are the fixed cluster sizes); a ``top`` race appears exactly when
    the PE array fits two or more top-level clusters. This lets a
    search loop decide :meth:`races_on` for every grid point from one
    probe classification.
    """

    required_pes: int
    inner: bool
    top: bool

    def races_on(self, num_pes: int) -> bool:
        """Whether the mapping needs a spatial reduction at ``num_pes`` PEs."""
        return self.inner or (self.top and num_pes // self.required_pes >= 2)


def reduction_demand(dataflow: "Dataflow", layer: "Layer") -> ReductionDemand:
    """Probe-classify a mapping's spatial-reduction needs once.

    Binds with a synthetic two-cluster accelerator so the top level's
    communication structure is visible, then splits the reduction
    requirement into the PE-count-independent ``inner`` part and the
    ``top`` part that materializes once ``num_pes >= 2 * required_pes``.
    """
    from repro.engines.tensor_analysis import analyze_tensors
    from repro.engines.binding import bind_dataflow
    from repro.hardware.accelerator import Accelerator
    from repro.lint.rules import required_pes

    base = required_pes(dataflow, layer)
    bound = bind_dataflow(dataflow, layer, Accelerator(num_pes=2 * base))
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    analysis = classify_bound(bound, tensors)
    inner = any(
        level.requires_reduction for level in analysis.levels if level.index > 0
    )
    top = analysis.levels[0].requires_reduction
    return ReductionDemand(required_pes=base, inner=inner, top=top)
