"""Human-readable reports for layer and network analyses.

Renders a :class:`~repro.engines.analysis.LayerAnalysis` as the kind of
multi-section report MAESTRO prints: performance, per-level bottleneck
information, per-tensor traffic, buffer requirements, reuse factors,
and an energy breakdown bar chart.
"""

from __future__ import annotations

from typing import List

from repro.engines.analysis import LayerAnalysis, NetworkAnalysis
from repro.util.ascii_chart import bar_chart
from repro.util.text_table import format_table


def layer_report(analysis: LayerAnalysis) -> str:
    """A full text report for one analyzed layer."""
    sections: List[str] = []
    sections.append(
        f"=== {analysis.layer_name} under {analysis.dataflow_name} "
        f"on {analysis.num_pes} PEs ==="
    )

    sections.append(
        "\n".join(
            [
                f"runtime          : {analysis.runtime:,.0f} cycles",
                f"compute          : {analysis.total_ops:,.0f} ops",
                f"throughput       : {analysis.throughput:.2f} ops/cycle",
                f"PE utilization   : {analysis.utilization:.1%}",
                f"NoC bandwidth req: {analysis.noc_bw_req_elems:.1f} elems/cycle "
                f"({analysis.noc_bw_req_gbps:.1f} GB/s)",
            ]
        )
    )

    level_rows = []
    for stats in analysis.level_stats:
        level_rows.append(
            [
                stats.index,
                f"{stats.runtime_sweep:,.0f}",
                stats.bottleneck,
                f"{stats.compute_bound_fraction:.0%}",
                f"{stats.egress_per_sweep:,.0f}",
            ]
        )
    sections.append(
        format_table(
            ["level", "sweep cycles", "bottleneck", "compute-bound steps", "egress/sweep"],
            level_rows,
            title="per-level performance",
        )
    )

    tensor_names = sorted(set(analysis.l2_reads) | set(analysis.l1_writes))
    traffic_rows = []
    for name in tensor_names:
        traffic_rows.append(
            [
                name,
                f"{analysis.l2_reads.get(name, 0):,.0f}",
                f"{analysis.l2_writes.get(name, 0):,.0f}",
                f"{analysis.l1_reads.get(name, 0):,.0f}",
                f"{analysis.l1_writes.get(name, 0):,.0f}",
                f"{analysis.dram_reads.get(name, 0):,.0f}",
                f"{analysis.dram_writes.get(name, 0):,.0f}",
            ]
        )
    sections.append(
        format_table(
            ["tensor", "L2 rd", "L2 wr", "L1 rd", "L1 wr", "DRAM rd", "DRAM wr"],
            traffic_rows,
            title="traffic (element accesses)",
        )
    )

    reuse_rows = [
        [name, f"{factor:,.1f}", f"{analysis.max_reuse_factors[name]:,.1f}"]
        for name, factor in sorted(analysis.reuse_factors.items())
    ]
    sections.append(
        format_table(
            ["tensor", "reuse factor", "algorithmic max"],
            reuse_rows,
            title="reuse (uses per L2 fetch)",
        )
    )

    buffers = [
        f"L1 per PE        : {analysis.l1_buffer_req:,} B",
        f"L2 shared        : {analysis.l2_buffer_req:,} B",
    ]
    total_levels = len(analysis.level_stats)
    for depth, requirement in enumerate(analysis.intermediate_buffer_reqs):
        buffers.append(
            f"cluster buffer (level {depth}/{total_levels - 1} chunk, "
            f"per depth-{depth + 1} sub-cluster): {requirement:,} B"
        )
    sections.append("buffer requirements (double-buffered)\n" + "\n".join(buffers))

    sections.append(
        bar_chart(
            sorted(analysis.energy_breakdown.items(), key=lambda kv: -kv[1]),
            width=40,
            title=f"energy breakdown (total {analysis.energy_total:,.0f} x MAC)",
        )
    )
    return "\n\n".join(sections)


def network_report(analysis: NetworkAnalysis, top: int = 10) -> str:
    """A summary report for a whole network: totals plus hottest layers."""
    sections = [
        f"=== {analysis.network_name} under {analysis.dataflow_name} ===",
        f"total runtime : {analysis.runtime:,.0f} cycles",
        f"total compute : {analysis.total_ops:,.0f} ops",
        f"total energy  : {analysis.energy_total:,.0f} x MAC",
    ]
    hottest = sorted(
        analysis.layer_reports, key=lambda report: report.runtime, reverse=True
    )[:top]
    rows = [
        [
            report.layer_name,
            f"{report.runtime:,.0f}",
            f"{report.runtime / analysis.runtime:.1%}",
            f"{report.utilization:.2f}",
        ]
        for report in hottest
    ]
    sections.append(
        format_table(
            ["layer", "cycles", "share", "utilization"],
            rows,
            title=f"top {len(rows)} layers by runtime",
        )
    )
    sections.append(
        bar_chart(
            sorted(analysis.energy_breakdown().items(), key=lambda kv: -kv[1]),
            width=40,
            title="energy breakdown",
        )
    )
    return "\n\n".join(sections)
