"""Cycle-approximate reference simulator (Figure 9 substitute).

The paper validates MAESTRO against RTL simulations of MAERI and
Eyeriss. RTL is unavailable offline, so this package provides an
*independent* reference: an event-driven simulator that executes the
bound schedule step by step, computing data movement by diffing actual
index regions (interval arithmetic) instead of the analytical model's
closed-form transition classes, and timing a double-buffered
fetch/compute/writeback pipeline explicitly.

Agreement between :func:`simulate_layer` and
:func:`repro.engines.analyze_layer` (a few percent, at a 100-1000x
runtime cost for the simulator) reproduces the paper's validation
claim in structure.
"""

from repro.simulator.simulator import SimulationResult, simulate_layer

__all__ = ["simulate_layer", "SimulationResult"]
