"""Event-driven double-buffered pipeline simulator.

``simulate_layer`` executes the bound schedule explicitly:

1. build the joint odometer over every cluster level's iterators;
2. walk it step by step (with run-length compression of the innermost
   iterator — consecutive steady steps have identical footprints);
3. at every step, derive each tensor's touched data region by interval
   arithmetic (:mod:`repro.simulator.regions`) and diff it against the
   previous step's region to get the actual ingress/egress volumes;
4. time a three-stage fetch / compute / writeback pipeline with double
   buffering: fetch ``k`` may start once slot ``k-2`` is free, compute
   ``k`` once fetch ``k`` is done, writeback follows compute.

The volumes come from region diffs, not from the analytical model's
closed-form transition classes, so agreement between the two is a real
consistency check (the paper's Figure 9 methodology with the RTL
replaced by this executor — see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro import obs
from repro.dataflow.dataflow import Dataflow
from repro.engines.binding import bind_dataflow
from repro.engines.reuse import build_odometer
from repro.engines.tensor_analysis import analyze_tensors
from repro.hardware.accelerator import Accelerator
from repro.model.layer import Layer
from repro.util.intmath import prod


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated layer execution."""

    layer_name: str
    dataflow_name: str
    runtime: float
    steps_simulated: int
    steps_total: int
    extrapolated: bool
    l2_ingress: float
    l2_egress: float
    #: Dense MACs the schedule issues: steady innermost-tile MACs times
    #: the chunk count of every level (spatial and temporal), times
    #: ``layer.groups``. Edge tiles are counted at their steady size, so
    #: for edge-free configurations this equals ``layer.total_ops()``
    #: exactly — the differential check the iteration-space verifier
    #: (:mod:`repro.verify`) relies on.
    macs_issued: int = 0

    @property
    def cycles(self) -> float:
        return self.runtime


@dataclass
class _JointEntry:
    level: int
    steps: int
    offsets: Mapping[str, int]  # dim -> start shift per advance


class _Pipeline:
    """Double-buffered fetch/compute/writeback clock bookkeeping."""

    def __init__(self) -> None:
        self.fetch_done = 0.0
        self.prev_fetch_done = 0.0
        self.compute_done = 0.0
        self.prev_compute_done = 0.0
        self.writeback_done = 0.0

    def step(self, fetch_time: float, compute_time: float, writeback_time: float) -> None:
        fetch_start = max(self.fetch_done, self.prev_compute_done)
        fetch_done = fetch_start + fetch_time
        compute_done = max(self.compute_done, fetch_done) + compute_time
        writeback_done = max(self.writeback_done, compute_done) + writeback_time
        self.prev_compute_done = self.compute_done
        self.prev_fetch_done = self.fetch_done
        self.fetch_done = fetch_done
        self.compute_done = compute_done
        self.writeback_done = writeback_done

    def run(self, count: int, fetch: float, compute: float, writeback: float) -> None:
        """Advance ``count`` identical steps (fast-forward after warmup)."""
        exact = min(count, 3)
        for _ in range(exact):
            self.step(fetch, compute, writeback)
        remaining = count - exact
        if remaining > 0:
            increment = max(fetch, compute, writeback)
            self.fetch_done += increment * remaining
            self.prev_fetch_done += increment * remaining
            self.compute_done += increment * remaining
            self.prev_compute_done += increment * remaining
            self.writeback_done += increment * remaining

    @property
    def elapsed(self) -> float:
        return self.writeback_done


def simulate_layer(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    max_outer_states: int = 200_000,
) -> SimulationResult:
    """Simulate one layer; see the module docstring.

    ``max_outer_states`` caps the number of explicitly simulated outer
    odometer states; beyond it the runtime is extrapolated linearly and
    the result is flagged ``extrapolated``.
    """
    with obs.span("simulator.layer", layer=layer.name, dataflow=dataflow.name):
        result = _simulate_layer(layer, dataflow, accelerator, max_outer_states)
    obs.inc("simulator.events_stepped", result.steps_simulated)
    obs.inc("simulator.macs_issued", result.macs_issued)
    return result


def _simulate_layer(
    layer: Layer,
    dataflow: Dataflow,
    accelerator: Accelerator,
    max_outer_states: int,
) -> SimulationResult:
    bound = bind_dataflow(dataflow, layer, accelerator)
    tensors = analyze_tensors(layer, bound.row_rep, bound.col_rep)
    from repro.simulator.regions import array_union_box

    # Joint odometer: every level's iterators, outer levels first.
    joint: List[_JointEntry] = []
    for level in bound.levels:
        for entry in build_odometer(level):
            if entry.steps <= 1:
                continue
            offsets = dict(entry.advancing_offsets)
            if entry.is_fold:
                # advancing_offsets already include the width factor.
                pass
            joint.append(
                _JointEntry(level=level.index, steps=entry.steps, offsets=offsets)
            )

    innermost_sizes = bound.innermost().chunk_sizes()
    shift_sets = [
        (level.spatial_offsets, int(round(level.avg_active)))
        for level in bound.levels
        if level.width > 1
    ]

    input_density = 1.0
    for info in tensors.inputs:
        input_density *= info.density
    dense_ops_per_chunk = tensors.ops_per_chunk(innermost_sizes)
    chunk_executions = 1
    for level in bound.levels:
        if any(d.spatial for d in level.directives):
            chunk_executions *= level.spatial_chunks
        for directive in level.directives:
            if not directive.spatial:
                chunk_executions *= directive.chunks
    macs_issued = dense_ops_per_chunk * chunk_executions * layer.groups
    ops_per_step = dense_ops_per_chunk * input_density
    compute_time = max(1.0, ops_per_step / accelerator.vector_width)

    noc = accelerator.noc
    out_name = tensors.output.name

    # Split the joint odometer into outer entries and the innermost run.
    if joint:
        inner = joint[-1]
        outer_entries = joint[:-1]
    else:
        inner = _JointEntry(level=0, steps=1, offsets={})
        outer_entries = []
    outer_states_total = prod(entry.steps for entry in outer_entries)
    total_steps = outer_states_total * inner.steps

    starts: Dict[str, int] = {}

    def boxes_at(offsets_acc: Mapping[str, int]):
        return {
            info.name: array_union_box(
                info.axes, offsets_acc, innermost_sizes, shift_sets
            )
            for info in tensors.tensors
        }

    pipeline = _Pipeline()
    prev_boxes: Dict[str, object] = {}
    seen_outputs: set = set()
    l2_ingress = 0.0
    l2_egress = 0.0

    counters = [0] * len(outer_entries)
    simulated_states = 0
    extrapolated = False

    def current_starts() -> Dict[str, int]:
        acc: Dict[str, int] = {dim: 0 for dim in innermost_sizes}
        for entry, counter in zip(outer_entries, counters):
            for dim, offset in entry.offsets.items():
                acc[dim] = acc.get(dim, 0) + counter * offset
        return acc

    def process_step(step_starts: Mapping[str, int], repeat: int) -> None:
        nonlocal prev_boxes, l2_ingress, l2_egress
        boxes = boxes_at(step_starts)
        out_key = tuple(
            (iv.start, iv.stop) for iv in boxes[out_name].intervals
        )
        revisited = out_key in seen_outputs
        seen_outputs.add(out_key)
        fetch_volume = 0.0
        for info in tensors.inputs:
            new = boxes[info.name].new_volume_vs(prev_boxes.get(info.name))
            fetch_volume += new * info.density
        out_new = boxes[out_name].new_volume_vs(prev_boxes.get(out_name))
        writeback_volume = out_new * tensors.output.density
        if revisited:
            # Previously written partial sums must be read back before
            # this step can accumulate into them.
            fetch_volume += writeback_volume
        fetch_time = noc.delay(int(math.ceil(fetch_volume)))
        writeback_time = noc.delay(int(math.ceil(writeback_volume)))
        pipeline.run(1, fetch_time, compute_time, writeback_time)
        l2_ingress += fetch_volume
        l2_egress += writeback_volume
        prev_boxes = boxes
        if repeat > 0:
            # Steady inner steps: diff one representative advance.
            next_starts = dict(step_starts)
            for dim, offset in inner.offsets.items():
                next_starts[dim] = next_starts.get(dim, 0) + offset
            steady_boxes = boxes_at(next_starts)
            steady_fetch = 0.0
            for info in tensors.inputs:
                new = steady_boxes[info.name].new_volume_vs(boxes[info.name])
                steady_fetch += new * info.density
            steady_out = steady_boxes[out_name].new_volume_vs(boxes[out_name])
            steady_wb = steady_out * tensors.output.density
            if revisited:
                steady_fetch += steady_wb
            pipeline.run(
                repeat,
                noc.delay(int(math.ceil(steady_fetch))),
                compute_time,
                noc.delay(int(math.ceil(steady_wb))),
            )
            l2_ingress += steady_fetch * repeat
            l2_egress += steady_wb * repeat
            # Advance prev to the final inner position of the run.
            final_starts = dict(step_starts)
            for dim, offset in inner.offsets.items():
                final_starts[dim] = final_starts.get(dim, 0) + offset * repeat
            prev_boxes = boxes_at(final_starts)

    while True:
        process_step(current_starts(), inner.steps - 1)
        simulated_states += 1
        if simulated_states >= outer_states_total:
            break
        if simulated_states >= max_outer_states:
            extrapolated = True
            break
        # Advance the outer odometer (innermost outer entry fastest).
        for index in range(len(outer_entries) - 1, -1, -1):
            counters[index] += 1
            if counters[index] < outer_entries[index].steps:
                break
            counters[index] = 0
        else:
            break

    runtime = pipeline.elapsed
    if extrapolated and simulated_states:
        scale = outer_states_total / simulated_states
        runtime *= scale
        l2_ingress *= scale
        l2_egress *= scale

    return SimulationResult(
        layer_name=layer.name,
        dataflow_name=dataflow.name,
        runtime=runtime * layer.groups,
        steps_simulated=simulated_states * inner.steps,
        steps_total=total_steps,
        extrapolated=extrapolated,
        l2_ingress=l2_ingress * layer.groups,
        l2_egress=l2_egress * layer.groups,
        macs_issued=macs_issued,
    )
