"""Index-region arithmetic for the reference simulator.

The simulator tracks, per dimension, the half-open index interval the
current step maps, and derives each tensor's touched data region as an
axis-aligned box. This is an independent re-derivation of the data
footprint (interval arithmetic on actual chunk positions) rather than a
reuse of the analytical model's extent/delta formulas, which is what
makes simulator-vs-model agreement a meaningful validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.tensors.axes import Axis, ConvOutputAxis, PlainAxis, SlidingInputAxis


@dataclass(frozen=True)
class Interval:
    """A half-open integer interval ``[start, stop)``."""

    start: int
    stop: int

    @property
    def length(self) -> int:
        return max(0, self.stop - self.start)

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.start, other.start), min(self.stop, other.stop))


@dataclass(frozen=True)
class Box:
    """An axis-aligned box: one interval per tensor axis."""

    intervals: Tuple[Interval, ...]

    def volume(self) -> int:
        result = 1
        for interval in self.intervals:
            result *= interval.length
            if result == 0:
                return 0
        return result

    def intersection_volume(self, other: "Box") -> int:
        result = 1
        for mine, theirs in zip(self.intervals, other.intervals):
            result *= mine.intersect(theirs).length
            if result == 0:
                return 0
        return result

    def new_volume_vs(self, previous: "Box | None") -> int:
        """Elements in this box not present in ``previous``."""
        if previous is None:
            return self.volume()
        return self.volume() - self.intersection_volume(previous)


def axis_interval(axis: Axis, starts: Mapping[str, int], sizes: Mapping[str, int]) -> Interval:
    """The data interval an axis touches for the given chunk positions."""
    if isinstance(axis, PlainAxis):
        start = starts[axis.dim]
        return Interval(start, start + sizes[axis.dim])
    if isinstance(axis, SlidingInputAxis):
        out0 = starts[axis.out_dim]
        out1 = out0 + sizes[axis.out_dim] - 1
        k0 = starts[axis.kernel_dim]
        k1 = k0 + sizes[axis.kernel_dim] - 1
        lo = out0 * axis.stride + k0 * axis.dilation
        hi = out1 * axis.stride + k1 * axis.dilation
        return Interval(lo, hi + 1)
    if isinstance(axis, ConvOutputAxis):
        in0 = starts[axis.in_dim]
        in1 = in0 + sizes[axis.in_dim] - 1
        k0 = starts[axis.kernel_dim]
        k1 = k0 + sizes[axis.kernel_dim] - 1
        # Complete output windows only: y' such that y' * stride + k lies
        # inside [in0, in1] for EVERY mapped k, i.e.
        # y' in [ceil((in0 - k0*dil)/stride), (in1 - k1*dil)//stride].
        lo = -(-(in0 - k0 * axis.dilation) // axis.stride)
        hi = (in1 - k1 * axis.dilation) // axis.stride
        lo = max(lo, 0)
        return Interval(lo, hi + 1)
    raise TypeError(f"unknown axis type {type(axis).__name__}")


def tensor_box(
    axes: Tuple[Axis, ...], starts: Mapping[str, int], sizes: Mapping[str, int]
) -> Box:
    """The box a tensor chunk occupies for the given chunk positions."""
    return Box(tuple(axis_interval(axis, starts, sizes) for axis in axes))


def array_union_box(
    axes: Tuple[Axis, ...],
    starts: Mapping[str, int],
    sizes: Mapping[str, int],
    shift_sets: List[Tuple[Mapping[str, int], int]],
) -> Box:
    """Approximate union box across all sub-units of all levels.

    ``shift_sets`` holds one ``(spatial_offsets, active_units)`` pair per
    cluster level; the union along each axis spans from the base interval
    to the interval shifted by the accumulated maximum per-unit shift.
    For contiguous or overlapping chunk distributions (offset <= size,
    the modeled space) the span is exact.
    """
    intervals = []
    for axis in axes:
        base = axis_interval(axis, starts, sizes)
        lo, hi = base.start, base.stop
        for spatial_offsets, active in shift_sets:
            shift = axis.shift(spatial_offsets) * max(0, active - 1)
            if shift >= 0:
                hi += int(round(shift))
            else:
                lo += int(round(shift))
        intervals.append(Interval(lo, hi))
    return Box(tuple(intervals))
