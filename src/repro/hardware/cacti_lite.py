"""CACTI-lite: a first-order analytical SRAM model.

The paper multiplies activity counts by per-access energies from CACTI
simulations (28 nm, 2 KB L1, 1 MB L2). CACTI itself is a closed tool
chain we cannot run offline, so this module implements the standard
first-order scaling relations its outputs follow, normalized to a
16-bit MAC:

- a square array of ``capacity`` bits has wordlines and bitlines of
  length ``O(sqrt(capacity))``; switched capacitance per access — and
  hence dynamic energy — grows with that length plus a fixed decoder/
  sense-amp floor;
- area is cell area times capacity plus periphery that also grows with
  ``sqrt(capacity)``;
- access time grows with wire RC, again ``O(sqrt(capacity))``;
- extra ports multiply cell area (~2x per port) and add bitline energy;
- banking divides the effective length by ``sqrt(banks)`` for energy
  and latency at an area overhead per bank.

Calibration anchors (28 nm-class, widely published ballpark): a 2 KB
scratchpad read ~1.2x MAC energy, a 1 MB SRAM ~18x, DRAM ~200x. These
match :class:`repro.hardware.energy.EnergyModel`'s defaults; the point
of this module is to expose the *functional form* with ports/banking
knobs and to generate EnergyModel instances for other anchor points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.energy import EnergyModel


@dataclass(frozen=True)
class SramConfig:
    """One SRAM macro."""

    capacity_bytes: int
    ports: int = 1
    banks: int = 1
    word_bytes: int = 2

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise HardwareError("capacity must be positive")
        if self.ports < 1 or self.banks < 1 or self.word_bytes < 1:
            raise HardwareError("ports, banks, word size must be >= 1")
        if self.banks > self.capacity_bytes:
            raise HardwareError("more banks than bytes")


@dataclass(frozen=True)
class CactiLite:
    """First-order SRAM scaling model; see the module docstring.

    Units: energy in MAC-energy multiples, area in mm^2, time in ns.
    """

    energy_floor: float = 0.42          # decoder + sense amps, x MAC
    energy_per_sqrt_byte: float = 0.01716  # bitline/wordline term
    port_energy_factor: float = 0.35    # extra bitline energy per port
    cell_area_per_kb: float = 0.045     # mm^2 per KB (6T cell + spacing)
    periphery_area_coeff: float = 2.0e-4  # mm^2 per sqrt(byte)
    port_area_factor: float = 0.9       # ~2x cells per extra port
    bank_area_overhead: float = 0.002   # mm^2 per extra bank
    time_floor_ns: float = 0.15
    time_per_sqrt_byte_ns: float = 0.0009

    def _effective_length(self, config: SramConfig) -> float:
        return math.sqrt(config.capacity_bytes / config.banks)

    def read_energy(self, config: SramConfig) -> float:
        """Energy of one read, in MAC-energy units."""
        length = self._effective_length(config)
        port_scale = 1.0 + self.port_energy_factor * (config.ports - 1)
        return (self.energy_floor + self.energy_per_sqrt_byte * length) * port_scale

    def write_energy(self, config: SramConfig) -> float:
        """Writes cost about the same as reads at this fidelity."""
        return self.read_energy(config)

    def area(self, config: SramConfig) -> float:
        """Macro area in mm^2."""
        kb = config.capacity_bytes / 1024.0
        port_scale = 1.0 + self.port_area_factor * (config.ports - 1)
        return (
            self.cell_area_per_kb * kb * port_scale
            + self.periphery_area_coeff * math.sqrt(config.capacity_bytes)
            + self.bank_area_overhead * (config.banks - 1)
        )

    def access_time_ns(self, config: SramConfig) -> float:
        """Access latency in nanoseconds."""
        return (
            self.time_floor_ns
            + self.time_per_sqrt_byte_ns * self._effective_length(config)
        )

    def access_cycles(self, config: SramConfig, clock_ghz: float = 1.0) -> int:
        """Access latency in (ceil) clock cycles."""
        return max(1, math.ceil(self.access_time_ns(config) * clock_ghz))

    def energy_model(self, dram: float = 200.0, noc_hop: float = 0.3) -> EnergyModel:
        """An :class:`EnergyModel` with this model's single-port curve."""
        return EnergyModel(
            mac=1.0,
            sram_base=self.energy_floor,
            sram_sqrt=self.energy_per_sqrt_byte,
            sram_write_factor=1.0,
            noc_hop=noc_hop,
            dram=dram,
        )


#: The default instance (28 nm-flavored calibration).
DEFAULT_CACTI_LITE = CactiLite()
