"""Area and power models for design-space exploration.

The paper synthesizes multipliers, adders, buses, arbiters, and
scratchpads in 28 nm RTL and fits bus cost to a linear and arbiter cost
to a quadratic regression (Section 5.2). We embed constants with the
same functional forms, calibrated so that an Eyeriss-class design
(168 PEs, ~200 KB of SRAM, modest NoC) lands near the paper's
16 mm^2 / 450 mW budget. Absolute values are placeholders; every DSE
conclusion reproduced from the paper depends only on the relative
trade-off between PEs, SRAM, and NoC bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import Accelerator


@dataclass(frozen=True)
class AreaModel:
    """Area (mm^2) and power (mW) as functions of the configuration.

    Functional forms:

    - PEs: linear (MAC + control + register overhead);
    - SRAM: linear in capacity;
    - bus: linear in ``bandwidth * num_pes`` (wire dominated);
    - arbiter: quadratic in ``num_pes`` (matrix arbiter), linear in
      bandwidth.
    """

    pe_area: float = 0.04            # mm^2 per PE (MAC + control + regs)
    sram_area_per_kb: float = 0.05   # mm^2 per KB (L1 and L2 alike)
    bus_area_coeff: float = 2.0e-5   # mm^2 per (element/cycle * PE)
    arbiter_area_coeff: float = 1.0e-7  # mm^2 per PE^2 per (element/cycle)

    pe_power: float = 1.2            # mW per PE (dynamic + leakage @1GHz)
    sram_power_per_kb: float = 0.5   # mW per KB
    bus_power_coeff: float = 1.0e-3  # mW per (element/cycle * PE)
    arbiter_power_coeff: float = 5.0e-6  # mW per PE^2 per (element/cycle)

    def area(self, accelerator: Accelerator) -> float:
        """Total area in mm^2; buffers must be concrete (not None)."""
        l1_kb, l2_kb = _buffer_kb(accelerator)
        pes = accelerator.num_pes
        bandwidth = accelerator.noc.bandwidth
        return (
            self.pe_area * pes
            + self.sram_area_per_kb * (l1_kb * pes + l2_kb)
            + self.bus_area_coeff * bandwidth * pes
            + self.arbiter_area_coeff * bandwidth * pes * pes
        )

    def power(self, accelerator: Accelerator) -> float:
        """Total power in mW; buffers must be concrete (not None)."""
        l1_kb, l2_kb = _buffer_kb(accelerator)
        pes = accelerator.num_pes
        bandwidth = accelerator.noc.bandwidth
        return (
            self.pe_power * pes
            + self.sram_power_per_kb * (l1_kb * pes + l2_kb)
            + self.bus_power_coeff * bandwidth * pes
            + self.arbiter_power_coeff * bandwidth * pes * pes
        )

    def min_area(self, num_pes: int, bandwidth: int) -> float:
        """Lower bound on area for any design with these PEs/bandwidth.

        Used by the DSE to prune whole subspaces (buffers only add area,
        so zero-buffer area bounds every point in the subspace).
        """
        return (
            self.pe_area * num_pes
            + self.bus_area_coeff * bandwidth * num_pes
            + self.arbiter_area_coeff * bandwidth * num_pes * num_pes
        )

    def min_power(self, num_pes: int, bandwidth: int) -> float:
        """Lower bound on power, mirroring :meth:`min_area`."""
        return (
            self.pe_power * num_pes
            + self.bus_power_coeff * bandwidth * num_pes
            + self.arbiter_power_coeff * bandwidth * num_pes * num_pes
        )


def _buffer_kb(accelerator: Accelerator) -> "tuple[float, float]":
    if accelerator.l1_size is None or accelerator.l2_size is None:
        raise ValueError(
            "area/power need concrete buffer sizes; size the accelerator "
            "from the analysis' buffer requirements first"
        )
    return accelerator.l1_size / 1024.0, accelerator.l2_size / 1024.0


#: The default model used by the DSE unless a caller overrides it.
DEFAULT_AREA_MODEL = AreaModel()
