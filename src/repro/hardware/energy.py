"""Energy cost tables, normalized to one MAC operation.

The paper multiplies MAESTRO's activity counts by per-access energies
from CACTI (28 nm, 2 KB L1 scratchpad, 1 MB shared L2). CACTI is not
available offline, so this module embeds a smooth surrogate calibrated
to widely published ratios (Eyeriss/CACTI ballpark): a 2 KB scratchpad
access costs about 1.2x a 16-bit MAC, a 1 MB SRAM about 18x, and DRAM
about 200x. SRAM access energy grows with the square root of capacity,
the standard first-order CACTI trend.

All energies are unitless multiples of MAC energy, which is exactly how
the paper reports Figure 12 ("normalized to the MAC energy").
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in units of one MAC.

    ``sram_base``/``sram_sqrt`` parameterize per-access SRAM energy as
    ``sram_base + sram_sqrt * sqrt(capacity_bytes)``; the defaults hit
    1.2x MAC at 2 KB and 18x MAC at 1 MB.
    """

    mac: float = 1.0
    sram_base: float = 0.42
    sram_sqrt: float = 0.01716
    sram_write_factor: float = 1.0
    noc_hop: float = 0.3
    dram: float = 200.0

    def sram_access(self, capacity_bytes: int) -> float:
        """Energy of one read from an SRAM of the given capacity."""
        if capacity_bytes < 1:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        return self.sram_base + self.sram_sqrt * math.sqrt(capacity_bytes)

    def sram_write(self, capacity_bytes: int) -> float:
        """Energy of one write to an SRAM of the given capacity."""
        return self.sram_access(capacity_bytes) * self.sram_write_factor


#: The default model used everywhere unless a caller overrides it.
DEFAULT_ENERGY_MODEL = EnergyModel()
